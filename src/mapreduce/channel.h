#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <utility>

#include "common/backoff.h"
#include "common/result.h"

/// \file channel.h
/// The transport layer of multi-process MapReduce execution: a small framed
/// message channel between the supervising parent and one worker process.
///
/// Frames reuse the spill-segment disciplines of spill.h — length framing
/// and a CRC32 trailer — so the wire format is the same shape as a sorted
/// run on disk: [u8 type][varint64 payload length][payload][4-byte CRC32 of
/// the payload, little endian]. A frame that fails its CRC is an IoError;
/// the supervisor treats a channel that produced one like a crashed worker,
/// because record boundaries are lost.
///
/// That shared shape is what makes the streamed shuffle cheap: a sorted
/// spill run is already length-framed records plus a CRC trailer, so a
/// worker ships it as raw kRunData payload bytes — a framed copy of the
/// file extent, no re-serialization on either side.
///
/// Three transports:
///  * `PipeChannel` — a socketpair(AF_UNIX, SOCK_STREAM) endpoint; the
///    default transport between supervisor and forked workers. `Send` is
///    mutex guarded so a worker's heartbeat thread and its task loop can
///    share the descriptor.
///  * `TcpChannel`/`TcpListener` — the same framed protocol over TCP, so
///    the transport is host-transparent: the supervisor listens, workers
///    connect (with a seeded exponential backoff) and identify themselves
///    with a kHello frame. Unlike a socketpair, a TCP connection can be
///    re-established after a drop — the supervisor keeps the worker's
///    stream state and the worker resends from the last committed run.
///  * `LoopbackChannel` — an in-memory queue pair for protocol tests: what
///    one endpoint sends the other receives, byte-for-byte through the same
///    encoder/decoder as the descriptor paths.

namespace ddp {
namespace mr {

/// Frame type tags. Values are part of the wire format; append only.
enum class MessageType : uint8_t {
  kHello = 1,      // worker -> supervisor: alive and ready (HelloMsg)
  kTask = 2,       // supervisor -> worker: run one task attempt
  kResult = 3,     // worker -> supervisor: attempt finished
  kHeartbeat = 4,  // worker -> supervisor: still making progress
  kShutdown = 5,   // supervisor -> worker: exit the task loop
  // Streamed shuffle (see supervisor.h): a worker ships each sorted run of
  // a successful attempt as kRunBegin (RunBeginMsg), kRunData chunks of raw
  // CRC-trailed segment bytes, then kRunEnd (RunEndMsg); the supervisor
  // commits the run and answers kRunAck (RunAckMsg), which doubles as the
  // flow-control credit and the resume point after a reconnect.
  kRunBegin = 6,  // worker -> supervisor: a run follows
  kRunData = 7,   // worker -> supervisor: raw segment bytes of the open run
  kRunEnd = 8,    // worker -> supervisor: run complete, commit it
  kRunAck = 9,    // supervisor -> worker: runs/bytes committed so far
  // Serving layer (see src/server/protocol.h): clustering jobs submitted to
  // a long-lived ddp_server daemon over the same framed transport. Client
  // requests carry the job id; the server replies on the same type, and
  // pushes kJobProgress unsolicited for jobs that asked for streamed
  // progress.
  kJobSubmit = 10,    // client -> server: JobSubmitMsg; reply kJobStatus
  kJobStatus = 11,    // client -> server: JobPollMsg; server -> client: JobStatusMsg
  kJobProgress = 12,  // server -> client: JobStatusMsg, pushed while running
  kJobResult = 13,    // client -> server: JobPollMsg; server -> client: JobResultMsg
  kJobCancel = 14,    // client -> server: JobCancelMsg; reply kJobStatus
  // Remote workers (see remote_worker.h): exec'd ddp_worker processes dial
  // the supervisor's listener and announce themselves with a kHello whose
  // flags mark them remote. Task bodies cannot cross by fork, so the
  // supervisor first installs the phase's registered job (kJobSetup), then
  // assigns tasks by value: each kTaskAssign carries the task's serialized
  // input and the worker looks the body up by name in its JobRegistry.
  kJobSetup = 15,    // supervisor -> worker: install a registered job (JobSetupMsg)
  kTaskAssign = 16,  // supervisor -> worker: run one named-task attempt (TaskAssignMsg)
};

struct Frame {
  MessageType type = MessageType::kHello;
  std::string payload;
};

/// Which concrete channel carries supervisor<->worker traffic. The framed
/// protocol is transport-independent; only connection lifecycle differs
/// (a socketpair cannot be re-established, TCP can).
enum class Transport {
  kPipe,  // socketpair created before fork (single host, default)
  kTcp,   // supervisor listens, workers connect/reconnect
};

class CommChannel {
 public:
  virtual ~CommChannel() = default;

  /// Sends one frame. Thread-safe. A peer that vanished mid-write yields
  /// IoError (never SIGPIPE).
  virtual Status Send(const Frame& frame) = 0;

  /// Receives the next frame, waiting at most `timeout_seconds` for it to
  /// start arriving (<= 0 waits forever). A clean peer close yields
  /// IoError("channel closed"); a missed deadline yields DeadlineExceeded.
  virtual Status Recv(Frame* frame, double timeout_seconds) = 0;

  /// Pollable descriptor for readiness multiplexing, or -1 if the channel
  /// has none (loopback).
  virtual int fd() const { return -1; }

  /// Half-closes the sending direction (TCP FIN / SHUT_WR): the peer reads
  /// everything already sent and then a clean EOF, while this end can still
  /// Recv. Channels without directional close treat it as a no-op.
  virtual void ShutdownWrite() {}

  virtual void Close() = 0;
};

/// Serializes `frame` into the on-wire byte sequence (tests and both
/// channel implementations share this).
std::string EncodeFrame(const Frame& frame);

/// A CommChannel over one stream-socket descriptor — the shared engine of
/// PipeChannel (socketpair) and TcpChannel (connected TCP socket). Owns the
/// descriptor.
class FdChannel : public CommChannel {
 public:
  explicit FdChannel(int fd) : fd_(fd) {}
  ~FdChannel() override;

  FdChannel(const FdChannel&) = delete;
  FdChannel& operator=(const FdChannel&) = delete;

  Status Send(const Frame& frame) override;
  Status Recv(Frame* frame, double timeout_seconds) override;
  int fd() const override { return fd_; }
  void ShutdownWrite() override;
  void Close() override;

 private:
  /// Reads exactly n bytes, polling with the deadline between short reads.
  Status ReadExact(void* out, size_t n, double deadline_seconds);

  std::mutex send_mu_;
  int fd_ = -1;
};

/// One end of a socketpair.
class PipeChannel : public FdChannel {
 public:
  using FdChannel::FdChannel;

  /// Creates a connected channel pair (parent end, child end).
  static Result<std::pair<std::unique_ptr<PipeChannel>,
                          std::unique_ptr<PipeChannel>>>
  CreatePair();
};

/// A connected TCP endpoint speaking the same framed protocol.
class TcpChannel : public FdChannel {
 public:
  using FdChannel::FdChannel;

  /// Connects to `host:port`, retrying with a seeded exponential backoff
  /// until `deadline_seconds` of wall time have elapsed. `host` must be a
  /// numeric IPv4 address (the supervisor and its workers exchange
  /// addresses, not names). TCP_NODELAY is set: frames are latency-bound
  /// control traffic or already-batched run chunks.
  static Result<std::unique_ptr<TcpChannel>> Connect(
      const std::string& host, uint16_t port,
      const ExponentialBackoff::Params& backoff, uint64_t seed,
      double deadline_seconds);
};

/// A listening TCP socket the supervisor multiplexes alongside its worker
/// channels (fd() joins the poll set; Accept when it turns readable).
class TcpListener {
 public:
  /// Binds and listens on `host:port`; port 0 picks an ephemeral port
  /// (reported by port() — how tests and single-host runs avoid collisions).
  static Result<std::unique_ptr<TcpListener>> Listen(const std::string& host,
                                                     uint16_t port);

  explicit TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Accepts one pending connection, waiting at most `timeout_seconds` for
  /// one to arrive. DeadlineExceeded when none does.
  Result<std::unique_ptr<TcpChannel>> Accept(double timeout_seconds);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// In-memory channel endpoint for protocol tests. `MakePair` wires two
/// endpoints so each Send lands in the peer's receive queue after a round
/// trip through the wire encoding (CRC checks included).
class LoopbackChannel : public CommChannel {
 public:
  static std::pair<std::unique_ptr<LoopbackChannel>,
                   std::unique_ptr<LoopbackChannel>>
  MakePair();

  Status Send(const Frame& frame) override;
  Status Recv(Frame* frame, double timeout_seconds) override;
  void Close() override;

  /// Test hook: appends raw bytes to this endpoint's receive queue as if
  /// the peer had written them (for corruption tests).
  void InjectRaw(std::string bytes);

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> frames;  // encoded wire bytes, one per frame
    bool closed = false;
  };

  std::shared_ptr<Queue> incoming_;
  std::shared_ptr<Queue> outgoing_;
};

/// Decodes one wire-encoded frame (shared by LoopbackChannel and tests;
/// FdChannel decodes incrementally off the descriptor).
Status DecodeFrame(const std::string& bytes, Frame* frame);

}  // namespace mr
}  // namespace ddp

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <utility>

#include "common/result.h"

/// \file channel.h
/// The transport layer of multi-process MapReduce execution: a small framed
/// message channel between the supervising parent and one worker process.
///
/// Frames reuse the spill-segment disciplines of spill.h — length framing
/// and a CRC32 trailer — so the wire format is the same shape as a sorted
/// run on disk: [u8 type][varint64 payload length][payload][4-byte CRC32 of
/// the payload, little endian]. A frame that fails its CRC is an IoError;
/// the supervisor treats a channel that produced one like a crashed worker,
/// because record boundaries are lost.
///
/// Two implementations:
///  * `PipeChannel` — a socketpair(AF_UNIX, SOCK_STREAM) endpoint; the real
///    transport between supervisor and forked workers. `Send` is mutex
///    guarded so a worker's heartbeat thread and its task loop can share
///    the descriptor.
///  * `LoopbackChannel` — an in-memory queue pair for protocol tests: what
///    one endpoint sends the other receives, byte-for-byte through the same
///    encoder/decoder as the pipe path.

namespace ddp {
namespace mr {

/// Frame type tags. Values are part of the wire format; append only.
enum class MessageType : uint8_t {
  kHello = 1,      // worker -> supervisor: alive and ready
  kTask = 2,       // supervisor -> worker: run one task attempt
  kResult = 3,     // worker -> supervisor: attempt finished
  kHeartbeat = 4,  // worker -> supervisor: still making progress
  kShutdown = 5,   // supervisor -> worker: exit the task loop
};

struct Frame {
  MessageType type = MessageType::kHello;
  std::string payload;
};

class CommChannel {
 public:
  virtual ~CommChannel() = default;

  /// Sends one frame. Thread-safe. A peer that vanished mid-write yields
  /// IoError (never SIGPIPE).
  virtual Status Send(const Frame& frame) = 0;

  /// Receives the next frame, waiting at most `timeout_seconds` for it to
  /// start arriving (<= 0 waits forever). A clean peer close yields
  /// IoError("channel closed"); a missed deadline yields DeadlineExceeded.
  virtual Status Recv(Frame* frame, double timeout_seconds) = 0;

  /// Pollable descriptor for readiness multiplexing, or -1 if the channel
  /// has none (loopback).
  virtual int fd() const { return -1; }

  virtual void Close() = 0;
};

/// Serializes `frame` into the on-wire byte sequence (tests and both
/// channel implementations share this).
std::string EncodeFrame(const Frame& frame);

/// One end of a socketpair. Owns the descriptor.
class PipeChannel : public CommChannel {
 public:
  /// Creates a connected channel pair (parent end, child end).
  static Result<std::pair<std::unique_ptr<PipeChannel>,
                          std::unique_ptr<PipeChannel>>>
  CreatePair();

  explicit PipeChannel(int fd) : fd_(fd) {}
  ~PipeChannel() override;

  PipeChannel(const PipeChannel&) = delete;
  PipeChannel& operator=(const PipeChannel&) = delete;

  Status Send(const Frame& frame) override;
  Status Recv(Frame* frame, double timeout_seconds) override;
  int fd() const override { return fd_; }
  void Close() override;

 private:
  /// Reads exactly n bytes, polling with the deadline between short reads.
  Status ReadExact(void* out, size_t n, double deadline_seconds);

  std::mutex send_mu_;
  int fd_ = -1;
};

/// In-memory channel endpoint for protocol tests. `MakePair` wires two
/// endpoints so each Send lands in the peer's receive queue after a round
/// trip through the wire encoding (CRC checks included).
class LoopbackChannel : public CommChannel {
 public:
  static std::pair<std::unique_ptr<LoopbackChannel>,
                   std::unique_ptr<LoopbackChannel>>
  MakePair();

  Status Send(const Frame& frame) override;
  Status Recv(Frame* frame, double timeout_seconds) override;
  void Close() override;

  /// Test hook: appends raw bytes to this endpoint's receive queue as if
  /// the peer had written them (for corruption tests).
  void InjectRaw(std::string bytes);

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> frames;  // encoded wire bytes, one per frame
    bool closed = false;
  };

  std::shared_ptr<Queue> incoming_;
  std::shared_ptr<Queue> outgoing_;
};

/// Decodes one wire-encoded frame (shared by LoopbackChannel and tests;
/// PipeChannel decodes incrementally off the descriptor).
Status DecodeFrame(const std::string& bytes, Frame* frame);

}  // namespace mr
}  // namespace ddp

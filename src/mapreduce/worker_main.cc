#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mapreduce/supervisor.h"
#include "obs/heartbeat.h"

/// \file worker_main.cc
/// The worker side of multi-process execution. Workers are forked, not
/// exec'd — the typed map/reduce closures cannot be shipped to a fresh
/// binary, so the child inherits them (and the job input) copy-on-write.
/// This loop answers each kTask frame by running the task body, streaming
/// every run of its output (kRunBegin / kRunData* / kRunEnd, raw spill
/// bytes) under the supervisor's flow-control window, then sending a slim
/// kResult frame.
///
/// A successful attempt stays pending — runs, spill files and all — until
/// the next kTask arrives: the supervisor dispatches a new task only after
/// committing the previous result, so receiving one doubles as the commit
/// acknowledgement. Until then a dropped connection (TCP) is survivable:
/// reconnect with a bumped hello generation, read the resume kRunAck, and
/// re-ship from the last committed run boundary.
///
/// Exit discipline: the child leaves ONLY through _exit. Running the
/// parent's static destructors (thread pools, metric registries) in a
/// forked image would touch state whose owning threads do not exist here.
/// Pending spill files are released explicitly before _exit; files of a
/// SIGKILLed worker are recovered by the supervisor's orphan reaper.

namespace ddp {
namespace mr {

#ifndef _WIN32

namespace {

/// The channel, shared between the task loop and the heartbeat thread.
/// Only the task loop replaces the pointer (on reconnect); the heartbeat
/// thread only sends, holding the mutex across the whole Send.
struct ChannelHolder {
  std::mutex mu;
  std::unique_ptr<CommChannel> ch;

  Status Send(const Frame& frame) {
    std::lock_guard<std::mutex> lock(mu);
    if (ch == nullptr) return Status::IoError("channel detached");
    // ddp-lint: allow(lock-across-blocking) -- holding mu across the Send is
    // the whole point of this wrapper: frames from the task loop and the
    // heartbeat thread must not interleave mid-frame on the shared channel.
    return ch->Send(frame);
  }

  /// Task-loop use only: the task loop is the sole replacer, so the raw
  /// pointer stays valid in its hands between replacements.
  CommChannel* get() {
    std::lock_guard<std::mutex> lock(mu);
    return ch.get();
  }

  void Replace(std::unique_ptr<CommChannel> next) {
    std::unique_ptr<CommChannel> old;
    {
      std::lock_guard<std::mutex> lock(mu);
      old = std::move(ch);
      ch = std::move(next);
    }
    if (old != nullptr) old->Close();
  }

  /// Drops the connection on purpose (chaos injection) with an orderly
  /// half-close: the supervisor reads every frame already in flight, then a
  /// clean EOF. An abrupt close() would race — unread acks in our receive
  /// buffer turn it into a TCP RST, which can flush the partial run out of
  /// the supervisor's receive buffer before it is seen, making the
  /// resent-run accounting nondeterministic. The descriptor stays open (we
  /// can still Recv) until the reconnect path replaces it.
  void ShutdownWriteCurrent() {
    std::lock_guard<std::mutex> lock(mu);
    if (ch != nullptr) ch->ShutdownWrite();
  }
};

/// A committed attempt waiting for its supervisor-side commit (signalled by
/// the next kTask). Holds the runs so a reconnect can re-ship them.
struct PendingAttempt {
  uint64_t task = 0;
  uint64_t attempt = 0;
  TaskResult result;
  std::string result_frame;  // encoded ResultMsg
  bool dropped = false;      // chaos drop already injected once
};

Status ReadExtent(const std::string& path, uint64_t offset, uint64_t length,
                  std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open spill file " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  out->resize(static_cast<size_t>(length));
  in.read(out->data(), static_cast<std::streamsize>(length));
  if (static_cast<uint64_t>(in.gcount()) != length) {
    return Status::IoError("short read from spill file " + path);
  }
  return Status::OK();
}

}  // namespace

int WorkerLoop(std::unique_ptr<CommChannel> channel, const WorkerTaskFn& fn,
               const WorkerMainConfig& cfg) {
  // Workers inherit the parent's stderr; only warnings and errors are worth
  // duplicating num_workers times.
  SetLogLevel(LogLevel::kWarning);
  // Forked children watch getppid() to notice supervisor death; an exec'd
  // remote worker (check_parent == false) has no parent to watch and relies
  // on channel errors instead.
  const pid_t supervisor_pid = cfg.check_parent ? ::getppid() : -1;
  const uint64_t window =
      cfg.stream_window_bytes > 0 ? cfg.stream_window_bytes : (4u << 20);

  ChannelHolder holder;
  holder.ch = std::move(channel);
  uint64_t generation = 0;

  // Liveness beats ride on a ProgressHeartbeat: its timer thread fires
  // `report`, which sends a kHeartbeat frame whenever a task is running or
  // streaming. Sends go through the holder, so the beat thread survives
  // channel replacement on reconnect.
  std::atomic<uint64_t> current_task{UINT64_MAX};
  std::optional<obs::ProgressHeartbeat> beat;
  if (cfg.heartbeat_seconds > 0.0) {
    beat.emplace(cfg.heartbeat_seconds, [&holder, &current_task] {
      const uint64_t t = current_task.load(std::memory_order_relaxed);
      if (t != UINT64_MAX) {
        (void)holder.Send(Frame{MessageType::kHeartbeat, std::string()});
      }
      return std::string("worker beat");
    });
  }

  std::optional<PendingAttempt> pending;
  int exit_code = 0;

  // Ships `p`'s runs starting at run index `from_run` with `acked_bytes` of
  // credit already granted, then the result frame. kShutdown mid-stream is
  // Cancelled; a channel error bubbles up for the reconnect path.
  auto ship = [&](PendingAttempt& p, uint64_t from_run,
                  uint64_t acked_bytes) -> Status {
    const uint64_t total_runs = p.result.runs.size();
    const bool want_crash = p.result.crash_after_runs >= 0;
    const uint64_t crash_at =
        want_crash ? std::min<uint64_t>(
                         static_cast<uint64_t>(p.result.crash_after_runs),
                         total_runs)
                   : 0;
    const bool want_drop =
        p.result.drop_after_runs >= 0 && cfg.reconnect != nullptr;
    const uint64_t drop_at =
        want_drop ? std::min<uint64_t>(
                        static_cast<uint64_t>(p.result.drop_after_runs),
                        total_runs == 0 ? 0 : total_runs - 1)
                  : 0;
    uint64_t sent_bytes = acked_bytes;

    // Blocks until un-acked bytes fit under `cap`, draining queued acks.
    auto drain_until = [&](uint64_t cap) -> Status {
      while (sent_bytes - acked_bytes > cap) {
        Frame f;
        DDP_RETURN_NOT_OK(holder.get()->Recv(&f, /*timeout_seconds=*/30.0));
        if (f.type == MessageType::kShutdown) {
          return Status::Cancelled("shutdown mid-stream");
        }
        if (f.type != MessageType::kRunAck) continue;
        RunAckMsg ack;
        DDP_RETURN_NOT_OK(RunAckMsg::Decode(f.payload, &ack));
        if (ack.task == p.task && ack.attempt == p.attempt) {
          acked_bytes = ack.acked_bytes;
        }
      }
      return Status::OK();
    };

    constexpr size_t kChunk = 256 * 1024;
    for (uint64_t i = from_run; i < total_runs; ++i) {
      if (want_crash && i >= crash_at) CrashSelf();
      DDP_RETURN_NOT_OK(drain_until(window));
      const OutboundRun& run = p.result.runs[i];
      std::string data;
      if (run.file != nullptr) {
        DDP_RETURN_NOT_OK(
            ReadExtent(run.file->path(), run.offset, run.length, &data));
      } else {
        data = run.bytes;  // copied: a reconnect may need to re-ship it
        AppendRunTrailer(&data);
      }
      RunBeginMsg begin;
      begin.task = p.task;
      begin.attempt = p.attempt;
      begin.seq = i;
      begin.partition = run.partition;
      begin.spill_index = run.spill_index;
      begin.length = data.size();
      DDP_RETURN_NOT_OK(
          holder.Send(Frame{MessageType::kRunBegin, begin.Encode()}));
      const bool drop_here = want_drop && !p.dropped && i == drop_at;
      size_t off = 0;
      do {
        const size_t n = std::min(kChunk, data.size() - off);
        DDP_RETURN_NOT_OK(
            holder.Send(Frame{MessageType::kRunData, data.substr(off, n)}));
        off += n;
        if (drop_here) {
          // Chaos: vanish mid-run after the first chunk. The partial run is
          // discarded by the supervisor and re-shipped after reconnect.
          p.dropped = true;
          holder.ShutdownWriteCurrent();
          return Status::IoError("injected channel drop");
        }
      } while (off < data.size());
      RunEndMsg end;
      end.task = p.task;
      end.attempt = p.attempt;
      end.seq = i;
      DDP_RETURN_NOT_OK(holder.Send(Frame{MessageType::kRunEnd, end.Encode()}));
      sent_bytes += data.size();
    }
    if (want_crash && crash_at >= total_runs) CrashSelf();
    if (want_drop && total_runs == 0 && !p.dropped) {
      p.dropped = true;
      holder.ShutdownWriteCurrent();
      return Status::IoError("injected channel drop");
    }
    return holder.Send(Frame{MessageType::kResult, p.result_frame});
  };

  // Re-establishes the channel and re-identifies. False: unrecoverable.
  auto reconnect = [&]() -> bool {
    if (cfg.reconnect == nullptr) return false;
    if (cfg.check_parent && ::getppid() != supervisor_pid) {
      return false;  // orphaned
    }
    auto next = cfg.reconnect();
    if (!next.ok()) return false;
    holder.Replace(std::move(next).value());
    ++generation;
    HelloMsg hello;
    hello.worker_id = cfg.worker_id;
    hello.generation = generation;
    hello.flags = cfg.hello_flags;
    return holder.Send(Frame{MessageType::kHello, hello.Encode()}).ok();
  };

  {
    HelloMsg hello;
    hello.worker_id = cfg.worker_id;
    hello.flags = cfg.hello_flags;
    (void)holder.Send(Frame{MessageType::kHello, hello.Encode()});
  }

  // Runs one attempt (kTask or kTaskAssign), ships its runs and result, and
  // leaves the successful attempt pending until the next task commits it.
  // False: the loop should exit (shutdown mid-stream).
  auto run_attempt = [&](uint64_t task_id, uint64_t attempt, bool quarantined,
                         auto&& body) -> bool {
    // A new task means the previous result was committed: its runs (and
    // their spill files) can finally go.
    pending.reset();
    current_task.store(task_id, std::memory_order_relaxed);
    PendingAttempt p;
    p.task = task_id;
    p.attempt = attempt;
    ResultMsg result;
    result.task = task_id;
    result.attempt = attempt;
    Stopwatch watch;
    Status st;
    try {
      st = body(quarantined, &p.result);
    } catch (const std::exception& e) {
      st = Status::Internal(std::string("worker task threw: ") + e.what());
    } catch (...) {
      st = Status::Internal("worker task threw a non-std exception");
    }
    result.seconds = watch.ElapsedSeconds();
    result.status_code = static_cast<int32_t>(st.code());
    result.status_message = st.message();
    if (st.ok()) {
      result.payload = p.result.payload;
    } else {
      // A failed attempt ships nothing; drop its runs (and files) now.
      p.result = TaskResult{};
    }
    p.result_frame = result.Encode();

    Status shipped = ship(p, 0, 0);
    current_task.store(UINT64_MAX, std::memory_order_relaxed);
    if (shipped.IsCancelled()) return false;
    if (st.ok()) {
      pending.emplace(std::move(p));
    }
    // When the ship failed (dropped mid-stream) the next loop iteration's
    // Recv fails fast and runs the reconnect/resume path.
    return true;
  };

  for (;;) {
    Frame frame;
    Status received = holder.get()->Recv(&frame, /*timeout_seconds=*/1.0);
    if (received.IsDeadlineExceeded()) {
      // Idle tick: if the supervisor died we are an orphan — exit rather
      // than wait forever on a socket nobody will write to again.
      if (cfg.check_parent && ::getppid() != supervisor_pid) {
        exit_code = 1;
        break;
      }
      continue;
    }
    if (!received.ok()) {
      // The connection dropped. On a reconnecting transport: re-identify,
      // read the resume ack, and re-ship the pending attempt from the last
      // committed run boundary. Otherwise the worker is done.
      if (!reconnect()) {
        exit_code = pending.has_value() ? 1 : 0;
        break;
      }
      Frame resume;
      Status rst = holder.get()->Recv(&resume, /*timeout_seconds=*/5.0);
      if (!rst.ok()) continue;  // loop classifies the next failure
      if (resume.type != MessageType::kRunAck) continue;
      RunAckMsg ack;
      if (!RunAckMsg::Decode(resume.payload, &ack).ok()) continue;
      if (pending.has_value() && ack.task == pending->task &&
          ack.attempt == pending->attempt) {
        current_task.store(pending->task, std::memory_order_relaxed);
        Status shipped = ship(*pending, ack.acked_runs, ack.acked_bytes);
        current_task.store(UINT64_MAX, std::memory_order_relaxed);
        if (shipped.IsCancelled()) break;
      } else {
        // Nothing in flight for us: the last result is committed (or
        // stale). Release its runs and spill files.
        pending.reset();
      }
      continue;
    }
    if (frame.type == MessageType::kShutdown) break;
    if (frame.type == MessageType::kJobSetup) {
      // Remote workers: install the phase's registered job. A worker that
      // cannot serve the job (unknown registry id, bad context blob) is
      // useless to this supervisor — exit so it gets evicted cleanly.
      JobSetupMsg setup;
      if (cfg.on_job_setup == nullptr ||
          !JobSetupMsg::Decode(frame.payload, &setup).ok()) {
        exit_code = 1;
        break;
      }
      Status installed = cfg.on_job_setup(setup);
      if (!installed.ok()) {
        DDP_LOG(Warning) << "worker " << cfg.worker_id
                         << " cannot install job '" << setup.job_id
                         << "': " << installed.ToString();
        exit_code = 1;
        break;
      }
      continue;
    }
    if (frame.type == MessageType::kTaskAssign) {
      TaskAssignMsg assign;
      if (cfg.on_task_assign == nullptr ||
          !TaskAssignMsg::Decode(frame.payload, &assign).ok()) {
        exit_code = 1;
        break;
      }
      if (!run_attempt(assign.task, assign.attempt, assign.quarantined,
                       [&](bool quarantined, TaskResult* result) {
                         return cfg.on_task_assign(assign.task, assign.attempt,
                                                   quarantined, assign.input,
                                                   result);
                       })) {
        break;
      }
      continue;
    }
    if (frame.type != MessageType::kTask) continue;  // stray acks etc.
    TaskMsg task;
    if (!TaskMsg::Decode(frame.payload, &task).ok()) break;
    if (!run_attempt(task.task, task.attempt, task.quarantined,
                     [&](bool quarantined, TaskResult* result) {
                       return fn(static_cast<size_t>(task.task),
                                 static_cast<size_t>(task.attempt),
                                 quarantined, result);
                     })) {
      break;
    }
  }
  pending.reset();  // unlink this worker's spill files before exiting
  beat.reset();     // join the beat thread before tearing the process down
  return exit_code;
}

void WorkerMain(std::unique_ptr<CommChannel> channel, const WorkerTaskFn& fn,
                const WorkerMainConfig& cfg) {
  // Exit discipline: a forked child leaves ONLY through _exit — running the
  // parent's static destructors in a forked image would touch state whose
  // owning threads do not exist here.
  ::_exit(WorkerLoop(std::move(channel), fn, cfg));
}

#else

int WorkerLoop(std::unique_ptr<CommChannel>, const WorkerTaskFn&,
               const WorkerMainConfig&) {
  return 1;
}

void WorkerMain(std::unique_ptr<CommChannel>, const WorkerTaskFn&,
                const WorkerMainConfig&) {
  std::abort();
}

#endif

}  // namespace mr
}  // namespace ddp

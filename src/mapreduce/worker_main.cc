#include "mapreduce/supervisor.h"

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/heartbeat.h"

/// \file worker_main.cc
/// The worker side of multi-process execution. Workers are forked, not
/// exec'd — the typed map/reduce closures cannot be shipped to a fresh
/// binary, so the child inherits them (and the job input) copy-on-write and
/// this loop just answers kTask frames with kResult frames.
///
/// Exit discipline: the child leaves ONLY through _exit. Running the
/// parent's static destructors (thread pools, metric registries) in a
/// forked image would touch state whose owning threads do not exist here.

namespace ddp {
namespace mr {

#ifndef _WIN32

void WorkerMain(CommChannel* channel, const WorkerTaskFn& fn,
                double heartbeat_seconds) {
  // Workers inherit the parent's stderr; only warnings and errors are worth
  // duplicating num_workers times.
  SetLogLevel(LogLevel::kWarning);
  const pid_t supervisor_pid = ::getppid();

  // Liveness beats ride on a ProgressHeartbeat: its timer thread fires
  // `report`, which sends a kHeartbeat frame whenever a task is running.
  // Channel sends are mutex-guarded, so the beat thread and the task loop
  // can share the descriptor.
  std::atomic<uint64_t> current_task{UINT64_MAX};
  std::optional<obs::ProgressHeartbeat> beat;
  if (heartbeat_seconds > 0.0) {
    beat.emplace(heartbeat_seconds, [channel, &current_task] {
      const uint64_t t = current_task.load(std::memory_order_relaxed);
      if (t != UINT64_MAX) {
        Frame hb{MessageType::kHeartbeat, std::string()};
        (void)channel->Send(hb);
      }
      return std::string("worker beat");
    });
  }

  (void)channel->Send(Frame{MessageType::kHello, ""});
  for (;;) {
    Frame frame;
    Status received = channel->Recv(&frame, /*timeout_seconds=*/1.0);
    if (received.IsDeadlineExceeded()) {
      // Idle tick: if the supervisor died we are an orphan — exit rather
      // than wait forever on a socket nobody will write to again.
      if (::getppid() != supervisor_pid) {
        beat.reset();
        ::_exit(1);
      }
      continue;
    }
    if (!received.ok() || frame.type == MessageType::kShutdown) break;
    if (frame.type != MessageType::kTask) continue;
    TaskMsg task;
    if (!TaskMsg::Decode(frame.payload, &task).ok()) break;

    current_task.store(task.task, std::memory_order_relaxed);
    ResultMsg result;
    result.task = task.task;
    result.attempt = task.attempt;
    Stopwatch watch;
    Status st;
    try {
      st = fn(static_cast<size_t>(task.task),
              static_cast<size_t>(task.attempt), task.quarantined,
              &result.payload);
    } catch (const std::exception& e) {
      st = Status::Internal(std::string("worker task threw: ") + e.what());
    } catch (...) {
      st = Status::Internal("worker task threw a non-std exception");
    }
    result.seconds = watch.ElapsedSeconds();
    result.status_code = static_cast<int32_t>(st.code());
    result.status_message = st.message();
    if (!st.ok()) result.payload.clear();
    current_task.store(UINT64_MAX, std::memory_order_relaxed);
    if (!channel->Send(Frame{MessageType::kResult, result.Encode()}).ok()) {
      break;
    }
  }
  beat.reset();  // join the beat thread before tearing the process down
  ::_exit(0);
}

#else

void WorkerMain(CommChannel*, const WorkerTaskFn&, double) { std::abort(); }

#endif

}  // namespace mr
}  // namespace ddp

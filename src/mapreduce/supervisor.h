#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "mapreduce/channel.h"

/// \file supervisor.h
/// Crash-fault-tolerant supervision of forked worker processes — the "job
/// tracker over real processes" counterpart of the in-process scheduler in
/// mapreduce.h. A `WorkerSupervisor` forks `num_workers` children (plain
/// fork, no exec: the typed task closures cannot cross an exec boundary, so
/// workers inherit the job's closures and input copy-on-write), feeds them
/// task attempts over `PipeChannel`s, and supervises:
///
///  * crash — the worker died unexpectedly (channel EOF + waitpid). The
///    in-flight attempt is charged and retried after a seeded exponential
///    backoff; a replacement worker is forked while the phase-wide restart
///    budget (`max_worker_restarts`) lasts.
///  * hang — the attempt overran `task_deadline_seconds`, or the worker's
///    heartbeat (a child-side ProgressHeartbeat that sends a kHeartbeat
///    frame per beat) went silent past the grace window. The worker is
///    SIGKILLed and the attempt charged, exactly like an in-process
///    deadline kill.
///  * poison — a task whose attempts killed `quarantine_after_crashes`
///    consecutive workers. With `skip_bad_records` the task is re-run
///    quarantined (the worker suppresses the poisonous record and counts it
///    skipped, Hadoop's skip-mode); otherwise the job fails.
///
/// Results are committed per task index, so scheduling order, crashes, and
/// respawns never affect output order — the bit-identity argument of the
/// multi-process mode reduces to "task bodies are pure and the commit slot
/// is the task id" (docs/architecture.md, "Multi-process execution").
///
/// Raw process-control calls (fork/kill/waitpid) live in supervisor.cc and
/// nowhere else; ddp_lint's process-control rule keeps it that way.

namespace ddp {
namespace mr {

/// Robustness accounting for one supervised phase.
struct SupervisorStats {
  uint64_t worker_crashes = 0;   // unexpected worker deaths
  uint64_t worker_hangs = 0;     // workers killed for deadline/silence
  uint64_t worker_kills = 0;     // SIGKILLs issued by the supervisor
  uint64_t worker_restarts = 0;  // replacement workers forked
  uint64_t quarantined_tasks = 0;
  uint64_t retries = 0;          // failed attempts that were retried
  uint64_t deadline_kills = 0;   // hangs triggered by the task deadline
  uint64_t spill_files_reaped = 0;
  std::vector<double> durations;  // committed attempt seconds
};

struct SupervisorConfig {
  std::string job_name;
  int phase = 0;  // 0 = map, 1 = reduce (naming and chaos-phase parity)
  size_t num_workers = 1;
  size_t num_tasks = 0;
  size_t max_task_attempts = 4;
  /// Replacement workers the phase may fork after the initial crew.
  size_t max_worker_restarts = 8;
  /// Consecutive worker-killing crashes before a task is declared
  /// poisonous. The quarantined task gets a fresh attempt budget.
  size_t quarantine_after_crashes = 2;
  bool skip_bad_records = false;
  double task_deadline_seconds = 0.0;
  /// Interval of the worker's kHeartbeat frames; 0 disables the heartbeat
  /// thread (hangs are then caught by the task deadline alone).
  double child_heartbeat_seconds = 0.25;
  /// A busy worker silent for more than grace * child_heartbeat_seconds is
  /// declared hung.
  double heartbeat_grace = 8.0;
  uint64_t backoff_seed = 1;
  ExponentialBackoff::Params retry_backoff{0.002, 2.0, 0.25, 0.25};
  ExponentialBackoff::Params respawn_backoff{0.002, 2.0, 0.25, 0.25};
  /// Non-empty: reap orphan spill files of dead processes from this
  /// directory after each worker death (see spill.h ReapOrphanSpillFiles).
  std::string spill_dir;
  /// Parent-side progress heartbeat interval (mr::Options::heartbeat_seconds).
  double progress_heartbeat_seconds = 0.0;
};

/// One task attempt, executed inside the worker process. `quarantined` tells
/// the body to suppress (and count as skipped) the record that has been
/// crashing workers. The serialized result goes to `payload`.
using WorkerTaskFn = std::function<Status(
    size_t task, size_t attempt, bool quarantined, std::string* payload)>;

/// Called in the supervising parent, in frame order, as each task's first
/// successful attempt arrives. Decodes/commits the payload (and adopts any
/// spill files it references — this runs before the producing worker's
/// death could mark those files orphaned). A non-OK return fails the job.
using CommitFn = std::function<Status(size_t task, bool quarantined,
                                      double seconds, std::string payload)>;

/// True when this platform/build can run forked workers: POSIX, and not
/// ThreadSanitizer (TSan does not support threads in forked children, so
/// fork mode degrades to the in-process executor there).
bool ForkExecutionSupported();

/// SIGKILLs the calling process — the worker-side chaos injection for
/// `FaultInjection::worker_crash_rate` / `poison_task_rate`. Lives here so
/// raw kill() stays inside src/mapreduce/.
[[noreturn]] void CrashSelf();

/// Wire payloads for kTask / kResult frames.
struct TaskMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  bool quarantined = false;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, TaskMsg* out);
};

struct ResultMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  int32_t status_code = 0;  // StatusCode of the attempt
  std::string status_message;
  double seconds = 0.0;  // child-measured attempt duration
  std::string payload;   // serialized task output (empty on failure)

  std::string Encode() const;
  static Status Decode(const std::string& bytes, ResultMsg* out);
};

class WorkerSupervisor {
 public:
  /// Runs tasks [0, num_tasks) on forked workers, committing each task's
  /// result through `commit`. Returns NotImplemented when fork execution is
  /// unsupported or no worker could be spawned at all — both before any
  /// task ran, so the caller can fall back to the in-process executor.
  static Status RunPhase(const SupervisorConfig& config, const WorkerTaskFn& fn,
                         const CommitFn& commit, SupervisorStats* stats);
};

/// Child-side protocol loop (worker_main.cc): answer kTask frames with
/// kResult frames until kShutdown, a closed channel, or orphaning (the
/// supervisor process died). Never returns to the caller's stack — exits
/// the process via _exit so a forked child cannot run parent destructors.
[[noreturn]] void WorkerMain(CommChannel* channel, const WorkerTaskFn& fn,
                             double heartbeat_seconds);

}  // namespace mr
}  // namespace ddp

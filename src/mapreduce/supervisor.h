#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "mapreduce/channel.h"
#include "mapreduce/spill.h"

/// \file supervisor.h
/// Crash-fault-tolerant supervision of forked worker processes — the "job
/// tracker over real processes" counterpart of the in-process scheduler in
/// mapreduce.h. A `WorkerSupervisor` forks `num_workers` children (plain
/// fork, no exec: the typed task closures cannot cross an exec boundary, so
/// workers inherit the job's closures and input copy-on-write), feeds them
/// task attempts over a `CommChannel` (socketpair or TCP), and supervises:
///
///  * crash — the worker died unexpectedly (channel EOF + waitpid). The
///    in-flight attempt is charged and retried after a seeded exponential
///    backoff; a replacement worker is forked while the phase-wide restart
///    budget (`max_worker_restarts`) lasts.
///  * hang — the attempt overran `task_deadline_seconds`, or the worker's
///    heartbeat (a child-side ProgressHeartbeat that sends a kHeartbeat
///    frame per beat) went silent past the grace window. The worker is
///    SIGKILLed and the attempt charged, exactly like an in-process
///    deadline kill.
///  * poison — a task whose attempts killed `quarantine_after_crashes`
///    consecutive workers. With `skip_bad_records` the task is re-run
///    quarantined (the worker suppresses the poisonous record and counts it
///    skipped, Hadoop's skip-mode); otherwise the job fails.
///  * disconnect (TCP only) — the connection dropped but waitpid says the
///    worker lives. The supervisor keeps the attempt in flight and the
///    already-committed runs; the worker reconnects with a seeded backoff,
///    re-identifies itself (kHello carries worker id + generation), and a
///    resume kRunAck tells it which run boundary to restart from. Only a
///    worker silent past `reconnect_grace_seconds` is killed as a hang.
///
/// The streamed shuffle: a successful attempt does NOT relay its map output
/// through the result payload. The worker ships each sorted, CRC-trailed
/// spill run (and each in-memory tail, trailer appended) as its own
/// kRunBegin / kRunData* / kRunEnd exchange — the run bytes on the wire are
/// byte-identical to the run bytes on disk, no re-serialization — and the
/// supervisor commits every run as it completes: tails stay in memory,
/// disk-backed runs are appended to a supervisor-owned spill file. Flow
/// control is credit-based: the supervisor acks committed bytes
/// (cumulative, at least every half window) and the worker opens a new run
/// only while un-acked bytes stay under `stream_window_bytes`, so neither
/// side ever holds more than one run plus a window of the shuffle in
/// memory. The slim kResult frame that follows carries counters only, and
/// arrives after every run frame by stream ordering — so a committed
/// result always has its full run set.
///
/// Results are committed per task index, so scheduling order, crashes,
/// respawns, and reconnects never affect output order — the bit-identity
/// argument of the multi-process mode reduces to "task bodies are pure,
/// the commit slot is the task id, and the merge tie-break ordinal (map
/// task, spill index, tail) rides inside the run stream"
/// (docs/architecture.md, "Multi-process execution").
///
/// Raw process-control calls (fork/kill/waitpid) and raw sockets live in
/// src/mapreduce/ and nowhere else; ddp_lint's process-control rule keeps
/// it that way.

namespace ddp {
namespace mr {

/// Robustness accounting for one supervised phase.
struct SupervisorStats {
  uint64_t worker_crashes = 0;   // unexpected worker deaths
  uint64_t worker_hangs = 0;     // workers killed for deadline/silence
  uint64_t worker_kills = 0;     // SIGKILLs issued by the supervisor
  uint64_t worker_restarts = 0;  // replacement workers forked
  uint64_t quarantined_tasks = 0;
  uint64_t retries = 0;          // failed attempts that were retried
  uint64_t deadline_kills = 0;   // hangs triggered by the task deadline
  uint64_t spill_files_reaped = 0;
  uint64_t shuffle_streamed_bytes = 0;  // run bytes committed off the wire
  uint64_t shuffle_resent_runs = 0;     // runs re-shipped after a reconnect
  uint64_t channel_reconnects = 0;      // TCP connections re-established
  uint64_t workers_registered = 0;  // remote workers admitted to the phase
  uint64_t workers_evicted = 0;     // remote workers dropped (death/silence)
  uint64_t tasks_reassigned = 0;    // in-flight tasks moved off evicted workers
  std::vector<double> durations;  // committed attempt seconds
};

class RemoteWorkerPool;

struct SupervisorConfig {
  std::string job_name;
  int phase = 0;  // 0 = map, 1 = reduce (naming and chaos-phase parity)
  size_t num_workers = 1;
  size_t num_tasks = 0;
  size_t max_task_attempts = 4;
  /// Replacement workers the phase may fork after the initial crew.
  size_t max_worker_restarts = 8;
  /// Consecutive worker-killing crashes before a task is declared
  /// poisonous. The quarantined task gets a fresh attempt budget.
  size_t quarantine_after_crashes = 2;
  bool skip_bad_records = false;
  double task_deadline_seconds = 0.0;
  /// Interval of the worker's kHeartbeat frames; 0 disables the heartbeat
  /// thread (hangs are then caught by the task deadline alone).
  double child_heartbeat_seconds = 0.25;
  /// A busy worker silent for more than grace * child_heartbeat_seconds is
  /// declared hung.
  double heartbeat_grace = 8.0;
  uint64_t backoff_seed = 1;
  ExponentialBackoff::Params retry_backoff{0.002, 2.0, 0.25, 0.25};
  ExponentialBackoff::Params respawn_backoff{0.002, 2.0, 0.25, 0.25};
  /// Non-empty: reap orphan spill files of dead processes from this
  /// directory after each worker death (see spill.h ReapOrphanSpillFiles).
  /// Also where the supervisor writes its own shuffle spill files when
  /// workers stream disk-backed runs (resolved via ResolveSpillDir).
  std::string spill_dir;
  /// Parent-side progress heartbeat interval (mr::Options::heartbeat_seconds).
  double progress_heartbeat_seconds = 0.0;
  /// How supervisor and workers talk. kTcp listens on tcp_host:tcp_port
  /// (port 0 picks an ephemeral port) and supports worker reconnection.
  Transport transport = Transport::kPipe;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  /// Per-worker cap on shipped-but-unacked run bytes (the shuffle
  /// backpressure window). 0 derives a default: the job's memory budget
  /// when one is set (floored at 4 KiB), else 4 MiB.
  uint64_t stream_window_bytes = 0;
  /// TCP only: how long a live worker may stay disconnected before the
  /// supervisor gives up and SIGKILLs it like a hang.
  double reconnect_grace_seconds = 5.0;
  /// Non-null: schedule on exec'd remote workers (remote_worker.h) alongside
  /// any forked crew. Remote workers are admitted off the pool's listener
  /// (parked channels first), installed with `remote_setup_payload` over a
  /// kJobSetup frame, and fed kTaskAssign frames whose input bytes come from
  /// `remote_task_input`. An evicted remote worker's in-flight task is
  /// reassigned to a surviving worker (counted in `tasks_reassigned`). The
  /// pool outlives the phase: healthy idle workers are parked back into it.
  RemoteWorkerPool* remote_pool = nullptr;
  /// Encoded JobSetupMsg installing this phase's registered job.
  std::string remote_setup_payload;
  /// Serialized input for one task, shipped inside its kTaskAssign frame.
  std::function<Result<std::string>(size_t task)> remote_task_input;
};

/// A run spill index reserved for in-memory tail segments: tails sort after
/// every disk run of their task in the merge ordinal (map task, spill
/// index, tail), so the sentinel is the max value.
constexpr uint32_t kTailRunIndex = 0xFFFFFFFFu;

/// One sorted run a worker will ship for a committed attempt, in merge
/// order (disk runs in spill order, then non-empty tails by partition).
/// Either `file` (a disk extent, CRC trailer included in `length`) or
/// `bytes` (an in-memory tail, no trailer — the shipper appends one).
struct OutboundRun {
  uint32_t partition = 0;
  uint32_t spill_index = 0;  // kTailRunIndex for tails
  std::shared_ptr<SpillFileHandle> file;  // null for tails
  uint64_t offset = 0;
  uint64_t length = 0;  // shipped bytes incl the 4-byte trailer
  std::string bytes;    // tail frames (trailer appended when shipped)
};

/// What one task attempt produces inside the worker: a slim result payload
/// (counters, never data) plus the runs to stream before it. The chaos
/// knobs let deterministic fault injection act at run granularity.
struct TaskResult {
  std::string payload;
  std::vector<OutboundRun> runs;
  /// >= 0: SIGKILL self after shipping this many runs (mid-shuffle crash
  /// chaos, clamped to runs.size()).
  int64_t crash_after_runs = -1;
  /// >= 0: drop the connection mid-run after shipping this many full runs
  /// (reconnect chaos; ignored on transports that cannot reconnect).
  int64_t drop_after_runs = -1;
};

/// One task attempt, executed inside the worker process. `quarantined` tells
/// the body to suppress (and count as skipped) the record that has been
/// crashing workers.
using WorkerTaskFn = std::function<Status(
    size_t task, size_t attempt, bool quarantined, TaskResult* result)>;

/// A run the supervisor committed off the wire, in stream order. Disk runs
/// live in a supervisor-owned spill file (`length` includes the fresh CRC
/// trailer, matching SpillRun); tails are in-memory frames, trailer
/// verified and stripped.
struct CommittedRun {
  uint32_t partition = 0;
  uint32_t spill_index = 0;  // kTailRunIndex for tails
  std::shared_ptr<SpillFileHandle> file;  // null for tails
  uint64_t offset = 0;
  uint64_t length = 0;
  std::string bytes;
};

/// Called in the supervising parent, in frame order, as each task's first
/// successful attempt arrives, with every run of that attempt already
/// committed. A non-OK return fails the job.
using CommitFn =
    std::function<Status(size_t task, bool quarantined, double seconds,
                         std::string payload, std::vector<CommittedRun> runs)>;

/// True when this platform/build can run forked workers: POSIX, and not
/// ThreadSanitizer (TSan does not support threads in forked children, so
/// fork mode degrades to the in-process executor there).
bool ForkExecutionSupported();

/// SIGKILLs the calling process — the worker-side chaos injection for
/// `FaultInjection::worker_crash_rate` / `poison_task_rate`. Lives here so
/// raw kill() stays inside src/mapreduce/.
[[noreturn]] void CrashSelf();

/// Wire payloads (Encode/Decode pairs; all varint-framed like the spill
/// format). TaskMsg rides kTask, ResultMsg kResult, HelloMsg kHello,
/// RunBeginMsg kRunBegin, RunEndMsg kRunEnd, RunAckMsg kRunAck. kRunData
/// frames carry raw run bytes (the channel framing already CRC-protects
/// each chunk; the run trailer protects the whole).
struct TaskMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  bool quarantined = false;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, TaskMsg* out);
};

struct ResultMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  int32_t status_code = 0;  // StatusCode of the attempt
  std::string status_message;
  double seconds = 0.0;  // child-measured attempt duration
  std::string payload;   // serialized task counters (empty on failure)

  std::string Encode() const;
  static Status Decode(const std::string& bytes, ResultMsg* out);
};

/// Capability bits carried in HelloMsg::flags.
/// kWorkerHelloRemote: the worker is an exec'd ddp_worker process executing
/// registered jobs by name (kJobSetup / kTaskAssign) rather than a forked
/// child sharing the supervisor's closures.
constexpr uint32_t kWorkerHelloRemote = 1u << 0;

struct HelloMsg {
  uint64_t worker_id = 0;
  /// 0 on first connect; incremented per reconnect. A generation > 0 hello
  /// triggers the resume protocol.
  uint64_t generation = 0;
  /// Capability flags (kWorkerHello*). Encoded only when nonzero so the
  /// fork-worker hello bytes are unchanged from earlier protocol revisions;
  /// Decode treats a missing field as 0.
  uint32_t flags = 0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, HelloMsg* out);
};

/// Installs one phase of a registered job on a remote worker (rides
/// kJobSetup, answered implicitly by the worker accepting kTaskAssign
/// frames). Everything a fork-worker would have captured by closure travels
/// here by value: the registry id naming the task body, the driver context
/// blob the registered factory decodes, and the knobs RunForkedPhase would
/// have baked into the body (partition count, spill budget, deterministic
/// chaos rates).
struct JobSetupMsg {
  std::string job_id;    // JobRegistry id naming the task body
  std::string job_name;  // spec.name verbatim (chaos hashing, spill prefixes)
  uint32_t phase = 0;    // 0 = map, 1 = reduce
  std::string ctx;       // driver context blob for the registered factory
  uint64_t num_partitions = 0;
  uint64_t memory_budget_bytes = 0;
  std::string spill_dir;
  bool skip_bad_records = false;
  /// FaultInjection, flattened (seed + rates) so remote chaos hashes
  /// identically to fork-mode chaos.
  uint64_t fault_seed = 0;
  double map_failure_rate = 0.0;
  double reduce_failure_rate = 0.0;
  double straggler_rate = 0.0;
  double straggler_slowdown = 1.0;
  double straggler_min_seconds = 0.0;
  double corruption_rate = 0.0;
  double worker_crash_rate = 0.0;
  double poison_task_rate = 0.0;
  double channel_drop_rate = 0.0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobSetupMsg* out);
};

/// One named-task attempt for a remote worker (rides kTaskAssign). The
/// counterpart of TaskMsg with the task's serialized input carried by value
/// — remote workers share no address space, so input cannot ride
/// copy-on-write.
struct TaskAssignMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  bool quarantined = false;
  std::string input;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, TaskAssignMsg* out);
};

struct RunBeginMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  uint64_t seq = 0;  // run index within the attempt's stream order
  uint32_t partition = 0;
  uint32_t spill_index = 0;  // kTailRunIndex for tails
  uint64_t length = 0;       // total run bytes incl trailer

  std::string Encode() const;
  static Status Decode(const std::string& bytes, RunBeginMsg* out);
};

struct RunEndMsg {
  uint64_t task = 0;
  uint64_t attempt = 0;
  uint64_t seq = 0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, RunEndMsg* out);
};

/// Cumulative commit acknowledgement — both the flow-control credit and
/// the resume point after a reconnect. `task == kNoTask` in a resume ack
/// means the supervisor has no attempt in flight for this worker (its last
/// result already committed) and the worker should drop its pending state.
struct RunAckMsg {
  static constexpr uint64_t kNoTask = ~uint64_t{0};

  uint64_t task = 0;
  uint64_t attempt = 0;
  uint64_t acked_runs = 0;   // runs committed so far for this attempt
  uint64_t acked_bytes = 0;  // their total shipped bytes

  std::string Encode() const;
  static Status Decode(const std::string& bytes, RunAckMsg* out);
};

class WorkerSupervisor {
 public:
  /// Runs tasks [0, num_tasks) on forked workers and/or remote workers from
  /// `config.remote_pool`, committing each task's result (and streamed
  /// runs) through `commit`. Returns NotImplemented when fork execution is
  /// unsupported (and no remote pool is configured), when no worker could
  /// be spawned at all, or when a configured remote pool never produced a
  /// live worker — all before any task committed, so the caller can fall
  /// back to the in-process executor.
  static Status RunPhase(const SupervisorConfig& config, const WorkerTaskFn& fn,
                         const CommitFn& commit, SupervisorStats* stats);
};

/// Child-side knobs for WorkerMain / WorkerLoop.
struct WorkerMainConfig {
  double heartbeat_seconds = 0.25;
  uint64_t worker_id = 0;
  /// Shipped-but-unacked byte cap; a new run starts only under the cap.
  uint64_t stream_window_bytes = 4u << 20;
  /// Re-establishes the channel after a drop (TCP). Null: a channel error
  /// is fatal to the worker, as on a socketpair.
  std::function<Result<std::unique_ptr<CommChannel>>()> reconnect;
  /// Forked children watch getppid() to detect supervisor death; an exec'd
  /// remote worker has no parent relationship to watch, so it sets false.
  bool check_parent = true;
  /// Capability flags for the hello (kWorkerHello*), re-sent on reconnect.
  uint32_t hello_flags = 0;
  /// Remote-worker hooks. on_job_setup installs a registered job when a
  /// kJobSetup frame arrives; on_task_assign runs one named-task attempt
  /// (kTaskAssign). Null hooks reject those frames, as a fork worker would.
  std::function<Status(const JobSetupMsg& setup)> on_job_setup;
  std::function<Status(uint64_t task, uint64_t attempt, bool quarantined,
                       const std::string& input, TaskResult* result)>
      on_task_assign;
};

/// The worker protocol loop shared by forked children and exec'd remote
/// workers: identify with kHello, answer kTask / kTaskAssign frames by
/// streaming the attempt's runs then a kResult frame, until kShutdown, an
/// unrecoverable channel error, or orphaning. Returns the process exit code
/// (remote workers return to main; forked children must _exit instead).
int WorkerLoop(std::unique_ptr<CommChannel> channel, const WorkerTaskFn& fn,
               const WorkerMainConfig& config);

/// Forked-child entry: WorkerLoop, then _exit so a forked child cannot run
/// parent destructors.
[[noreturn]] void WorkerMain(std::unique_ptr<CommChannel> channel,
                             const WorkerTaskFn& fn,
                             const WorkerMainConfig& config);

}  // namespace mr
}  // namespace ddp

#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <optional>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/counters.h"
#include "mapreduce/spill.h"
#include "mapreduce/supervisor.h"
#include "obs/heartbeat.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file mapreduce.h
/// A typed, in-process MapReduce runtime. This is the paper's execution
/// substrate: every distributed DP variant (Basic-DDP, LSH-DDP, EDDPC,
/// MR K-means) is written as genuine map()/reduce() functions against this
/// API and executed here.
///
/// Faithfulness to a Hadoop-style system:
///  * Map tasks run in parallel over input splits.
///  * Every intermediate (key, value) pair is SERIALIZED into a
///    per-reduce-partition byte buffer — `JobCounters::shuffle_bytes` is the
///    size of real encoded data, the quantity a cluster would move over the
///    network. Records are length-framed (like Hadoop's IFile) so the reduce
///    side can re-sync past a corrupt record.
///  * Reduce partitions deserialize, sort by key, group, and run reduce tasks
///    in parallel. Output order is deterministic (partition-major, key-sorted
///    within a partition).
///  * An optional combiner folds map-side values per key before
///    serialization, shrinking shuffle volume exactly as Hadoop combiners do.
///  * The full Hadoop fault-tolerance toolkit, driven by deterministic chaos
///    injection (`FaultInjection`): task retry with an attempt budget,
///    speculative backup attempts for stragglers (first finisher commits,
///    losers are abandoned), per-attempt deadlines, bad-record skipping
///    (`Options::skip_bad_records`), user-exception capture, and job-boundary
///    checkpoint/resume (`Options::checkpoint`). Tasks are pure functions of
///    their input split, so every recovery path yields bit-identical output.
///  * Out-of-core execution (`Options::memory_budget_bytes`, spill.h): map
///    tasks spill sorted, CRC-trailed runs to `Options::spill_dir` when their
///    buffered intermediate bytes exceed the budget, and reduce streams a
///    k-way merge over those runs instead of materializing the partition —
///    Hadoop's spill/merge pipeline. Output is bit-identical to the
///    in-memory path at every budget.
///
/// Type requirements:
///  * `MidK`: Serde<MidK>, `KeyTraits<MidK>::Hash`, operator== and
///    `KeyTraits<MidK>::Less` (defaults use std::hash / operator<).
///  * `MidV`, and nothing else: Serde<MidV>.

namespace ddp {
namespace mr {

/// Hash/order customization point for intermediate keys.
template <typename K, typename Enable = void>
struct KeyTraits {
  static size_t Hash(const K& k) { return std::hash<K>{}(k); }
  static bool Less(const K& a, const K& b) { return a < b; }
};

/// Keys that are vectors of integers (LSH bucket signatures).
template <typename T>
struct KeyTraits<std::vector<T>, std::enable_if_t<std::is_integral_v<T>>> {
  static size_t Hash(const std::vector<T>& k) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (T v : k) {
      h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
  static bool Less(const std::vector<T>& a, const std::vector<T>& b) {
    return a < b;
  }
};

/// Pair keys (e.g. (layout m, bucket id)).
template <typename A, typename B>
struct KeyTraits<std::pair<A, B>> {
  static size_t Hash(const std::pair<A, B>& k) {
    size_t h1 = KeyTraits<A>::Hash(k.first);
    size_t h2 = KeyTraits<B>::Hash(k.second);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
  static bool Less(const std::pair<A, B>& a, const std::pair<A, B>& b) {
    if (KeyTraits<A>::Less(a.first, b.first)) return true;
    if (KeyTraits<A>::Less(b.first, a.first)) return false;
    return KeyTraits<B>::Less(a.second, b.second);
  }
};

/// Receives intermediate pairs from map functions.
template <typename MidK, typename MidV>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const MidK& key, const MidV& value) = 0;
};

/// Deterministic chaos injection, for exercising the recovery paths the way
/// a Hadoop cluster loses, slows, and corrupts tasks. Every decision is a
/// pure function of (seed, job name, phase, task, attempt), so runs remain
/// reproducible and every recovery path produces identical output.
struct FaultInjection {
  double map_failure_rate = 0.0;     // probability a map attempt fails
  double reduce_failure_rate = 0.0;  // probability a reduce attempt fails
  /// Straggler model: with probability `straggler_rate`, an attempt dawdles
  /// after finishing its work as if it ran on a slow node, stretching its
  /// wall time to ~`straggler_slowdown` times the compute time (but at least
  /// `straggler_min_seconds`, so micro-tasks still produce wall-clock-visible
  /// stragglers). The dawdle is interruptible: abandoned attempts release
  /// their worker as soon as the scheduler cancels them.
  double straggler_rate = 0.0;
  double straggler_slowdown = 10.0;
  double straggler_min_seconds = 0.0;
  /// Shuffle corruption: probability, per (map task, partition), of appending
  /// a poisoned frame to that partition's buffer. Poisoned frames are
  /// well-formed at the framing layer but never decode as a record, so they
  /// model flipped bits caught by deserialization. The injection ignores the
  /// attempt number: retried and speculative attempts build bit-identical
  /// buffers, and a poisoned frame is "off-path" chaff whose skipping cannot
  /// change job output.
  double corruption_rate = 0.0;
  /// Multi-process chaos (ExecMode::kFork only; the in-process executor has
  /// no worker processes to lose). `worker_crash_rate` is the probability,
  /// per (task, attempt), that the attempt SIGKILLs its worker — a second
  /// hash bit picks whether the crash lands before the task body ("mid-map")
  /// or after the body but before the result ships ("mid-shuffle").
  /// `poison_task_rate` is the probability a TASK is poisonous: its record
  /// deterministically kills the worker on every attempt, independent of the
  /// attempt number, until the supervisor quarantines it (skip_bad_records)
  /// or fails the job. Both injections are suppressed in quarantine, so a
  /// quarantined task commits the same bytes an in-process run produces.
  double worker_crash_rate = 0.0;
  double poison_task_rate = 0.0;
  /// TCP transport only: probability, per (task, attempt), that the worker's
  /// connection drops mid-run while it streams the attempt's shuffle runs.
  /// The worker reconnects, the supervisor discards the partial run and
  /// answers with the last committed run boundary, and the stream resumes —
  /// committed bytes are identical to an undropped run. Ignored on
  /// transports that cannot reconnect (a socketpair drop is a worker loss).
  double channel_drop_rate = 0.0;
  uint64_t seed = 1;
};

/// Execution substrate for the map and reduce phases.
enum class ExecMode {
  /// Tasks run on a thread pool in this process (RunRobustPhase).
  kInProc = 0,
  /// Tasks run in forked worker processes under a WorkerSupervisor
  /// (supervisor.h): real crash isolation, heartbeat hang detection, seeded
  /// backoff reattempts, poison-task quarantine. Falls back to kInProc —
  /// counted in JobCounters::exec_fallbacks — when fork execution is
  /// unsupported (non-POSIX, TSan) or no worker could be spawned, and for
  /// reduce phases whose output type has no Serde (the results could not
  /// cross the process boundary). Output is bit-identical to kInProc.
  kFork = 1,
  /// Tasks run in separately exec'd ddp_worker processes (possibly on other
  /// hosts) that dialed `Options::remote_pool`'s listener, plus
  /// `Options::remote_local_workers` forked locals. Tasks ship by *name*
  /// (JobSpec::remote_task_id against the worker's JobRegistry) with their
  /// input serialized by value, so nothing is fork-captured. Jobs whose
  /// input type has no Serde or whose spec carries no remote_task_id
  /// degrade to kFork semantics (counted in exec_fallbacks). Output is
  /// bit-identical to kInProc.
  kRemote = 2,
};

struct Options {
  /// Number of worker threads for the map and reduce phases.
  size_t num_workers = 0;  // 0 => DefaultParallelism()
  /// Number of reduce partitions (0 => 4 * workers, Hadoop-style default).
  size_t num_partitions = 0;
  /// Attempts per task before the whole job fails (Hadoop default: 4).
  size_t max_task_attempts = 4;
  FaultInjection faults;
  /// Cluster cost model (paper Eq. (9)): when > 0, JobCounters reports
  /// modeled_seconds = total_seconds + shuffle_bytes / this bandwidth,
  /// charging every shuffled byte the network/disk cost an in-process run
  /// does not pay. 0 disables (modeled_seconds == total_seconds).
  double modeled_shuffle_bandwidth = 0.0;  // bytes per second

  /// Wall-clock budget per task attempt; an attempt that exceeds it counts
  /// as a failed attempt (feeding max_task_attempts) instead of hanging the
  /// job. 0 disables. Attempts sleeping in an injected straggler dawdle are
  /// killed promptly; attempts stuck in user code are charged when they
  /// return.
  double task_deadline_seconds = 0.0;

  /// Hadoop-style speculative execution: once `speculative_min_completed`
  /// attempts have committed, a task whose sole running attempt has been in
  /// flight longer than `speculative_multiplier` times the median committed
  /// attempt time gets one backup attempt. First finisher commits; the loser
  /// is cancelled and its output discarded. Output is bit-identical either
  /// way because attempts are pure.
  bool speculative_execution = false;
  double speculative_multiplier = 3.0;
  size_t speculative_min_completed = 3;

  /// When true, a shuffle record that fails to deserialize is skipped and
  /// counted in JobCounters::skipped_records, instead of failing the job
  /// after every other partition has done its work (Hadoop's
  /// "skip bad records" mode). When false, the first bad record aborts the
  /// job and cancels in-flight partitions early.
  bool skip_bad_records = false;

  /// Optional job-boundary checkpointing: completed jobs persist their
  /// output here and are replayed on re-runs (see checkpoint.h). Borrowed,
  /// not owned. Jobs whose output type has no Serde are executed normally
  /// (re-running them on resume is correct, just not free).
  CheckpointStore* checkpoint = nullptr;

  /// Out-of-core execution. When > 0, a map task whose buffered intermediate
  /// payload bytes reach this budget key-sorts its in-memory segment and
  /// spills it to `spill_dir` as CRC-trailed sorted runs (one per non-empty
  /// partition); the reduce side then streams a k-way merge over each
  /// partition's runs plus the in-memory tails instead of decoding and
  /// sorting the whole partition. 0 keeps the all-in-memory path. Output is
  /// bit-identical either way (see spill.h for the determinism contract).
  uint64_t memory_budget_bytes = 0;
  /// Directory for spill files; empty means "<system temp>/ddp-spill".
  /// Files are created with process-unique names and removed when the job's
  /// intermediate state is dropped, so concurrent jobs can share it.
  std::string spill_dir;

  /// Progress heartbeat (obs/heartbeat.h): when > 0, each map/reduce phase
  /// logs tasks-done/total and the completion rate every this many seconds.
  /// 0 (default) starts no heartbeat thread at all.
  double heartbeat_seconds = 0.0;

  /// Execution substrate (see ExecMode). Multi-process knobs below apply
  /// only to kFork.
  ExecMode exec_mode = ExecMode::kInProc;
  /// Replacement workers each phase may fork after its initial crew dies.
  size_t max_worker_restarts = 8;
  /// Consecutive worker-killing crashes before a task is declared
  /// poisonous and routed through skip_bad_records quarantine.
  size_t quarantine_after_crashes = 2;
  /// Interval of worker liveness heartbeats (kHeartbeat frames); silence
  /// past 8x this interval SIGKILLs the worker as hung. 0 disables.
  double worker_heartbeat_seconds = 0.25;
  /// Transport carrying supervisor<->worker frames (channel.h). kPipe forks
  /// over a socketpair; kTcp listens on `tcp_host:tcp_port` (port 0 picks an
  /// ephemeral port) and workers connect — host-transparent framing, plus
  /// reconnect-and-resume across dropped connections.
  Transport transport = Transport::kPipe;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;

  /// ExecMode::kRemote: the pool of exec'd ddp_worker processes
  /// (remote_worker.h) whose listener remote workers dial. Borrowed, not
  /// owned; one job may use a pool at a time. Required for kRemote — a null
  /// pool degrades the job to kFork semantics.
  RemoteWorkerPool* remote_pool = nullptr;
  /// Local fork workers to run alongside the remote crew (kRemote only;
  /// 0 means the job runs on remote workers exclusively). The mixed crew
  /// shares one scheduler, so a lost remote worker's tasks can land on a
  /// local fork worker and vice versa.
  size_t remote_local_workers = 0;

  /// Cooperative cancellation shared across a pipeline: when set, RunJob
  /// checks the flag before doing any work and again at the map->reduce
  /// boundary, returning Cancelled instead of launching further tasks.
  /// The serving layer (src/server/) points every job of one submission at
  /// the same flag, so a kJobCancel takes effect at the next phase
  /// boundary. Checkpoints saved before the cancel stay valid: a
  /// cancelled-and-resubmitted pipeline resumes from the last completed
  /// job.
  std::shared_ptr<std::atomic<bool>> cancel_flag;
  /// When non-empty, RunJob bumps the registry counter
  /// "<metrics_prefix>.mr_jobs" as each MapReduce job finishes — the
  /// per-submission progress feed of the serving layer, which namespaces it
  /// "server.job.<n>". Must match the [a-z0-9_.]+ metric-name hygiene rule.
  std::string metrics_prefix;

  size_t ResolvedWorkers() const {
    return num_workers == 0 ? DefaultParallelism() : num_workers;
  }
  size_t ResolvedPartitions() const {
    return num_partitions == 0 ? 4 * ResolvedWorkers() : num_partitions;
  }
};

/// A MapReduce job specification.
///
/// `map` is invoked once per input record; `reduce` once per distinct key
/// with all values for that key. `combiner`, when set, is applied map-side to
/// the value list of each key within one map task and must return the
/// combined value list (commonly a single element for sum/min/max).
template <typename In, typename MidK, typename MidV, typename Out>
struct JobSpec {
  std::string name = "job";
  std::function<void(const In&, Emitter<MidK, MidV>*)> map;
  std::function<void(const MidK&, std::span<const MidV>, std::vector<Out>*)>
      reduce;
  std::function<std::vector<MidV>(const MidK&, std::vector<MidV>)> combiner;

  /// Remote execution identity (ExecMode::kRemote): the JobRegistry id this
  /// spec's tasks run under in a ddp_worker binary. The registered factory
  /// on the worker side must rebuild an equivalent spec from the context
  /// blob `remote_ctx` writes (typically a driver Ctx struct's Encode).
  /// Empty keeps the job local: kRemote degrades to kFork semantics.
  std::string remote_task_id;
  std::function<void(BufferWriter*)> remote_ctx;
};

namespace internal {

/// Pure chaos decision: does event `attempt` of task `task` in `phase` fire?
/// Shared by failure injection (phases 0/1), shuffle corruption (phase 2,
/// with the partition index in the `attempt` slot), and straggler injection
/// (phases 4/5).
inline bool ShouldInjectFailure(const FaultInjection& faults, double rate,
                                const std::string& job_name, int phase,
                                size_t task, size_t attempt) {
  if (rate <= 0.0) return false;
  uint64_t h = faults.seed ^ (uint64_t{0x9e3779b97f4a7c15} * (task + 1)) ^
               (uint64_t{0xc2b2ae3d27d4eb4f} * (attempt + 1)) ^
               (uint64_t{0x165667b19e3779f9} * static_cast<uint64_t>(phase + 1));
  for (char c : job_name) {
    h = h * uint64_t{0x100000001b3} ^ static_cast<uint8_t>(c);
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Map-side emitter that serializes each pair, length-framed, into the
/// buffer of the partition its key hashes to. Frame headers exist so the
/// reduce side can skip a corrupt record; they are bookkeeping, not payload,
/// so byte accounting (`payload_bytes`) counts only the key/value encodings
/// — the quantity the paper's shuffle-cost figures report.
template <typename MidK, typename MidV>
class PartitionedEmitter : public Emitter<MidK, MidV> {
 public:
  explicit PartitionedEmitter(size_t num_partitions)
      : buffers_(num_partitions), payload_bytes_(num_partitions, 0) {}

  void Emit(const MidK& key, const MidV& value) override {
    size_t p = KeyTraits<MidK>::Hash(key) % buffers_.size();
    scratch_.clear();
    BufferWriter rec(&scratch_);
    Serde<MidK>::Write(&rec, key);
    Serde<MidV>::Write(&rec, value);
    BufferWriter out(&buffers_[p]);
    out.PutVarint64(scratch_.size());
    out.PutRaw(scratch_.data(), scratch_.size());
    payload_bytes_[p] += scratch_.size();
    ++records_;
  }

  /// Appends an undecodable frame to partition `p` (shuffle-corruption
  /// injection). The frame is well-formed at the framing layer, so
  /// skip_bad_records can step over it, but its payload can never decode as
  /// a record: 0xff is an unterminated varint and too short for any
  /// fixed-width field, and a decode that somehow consumed less than the
  /// frame is rejected as short.
  void AppendPoisonFrame(size_t p) {
    BufferWriter out(&buffers_[p]);
    out.PutVarint64(1);
    out.PutByte(0xff);
  }

  std::vector<std::string>& buffers() { return buffers_; }
  const std::vector<uint64_t>& payload_bytes() const { return payload_bytes_; }
  uint64_t records() const { return records_; }

 private:
  std::vector<std::string> buffers_;
  std::vector<uint64_t> payload_bytes_;
  std::string scratch_;
  uint64_t records_ = 0;
};

/// Map-side emitter for the out-of-core path: forwards every pair into a
/// memory-budgeted SpillingBuffer (spill.h), which sorts and flushes runs to
/// disk whenever the budget is hit. Spill I/O errors are deferred and
/// surfaced by Finish(), keeping the Emitter interface non-failing.
template <typename MidK, typename MidV>
class SpillingEmitter : public Emitter<MidK, MidV> {
 public:
  SpillingEmitter(size_t num_partitions, uint64_t budget_bytes,
                  std::string spill_dir, std::string file_prefix)
      : buffer_(num_partitions, budget_bytes, std::move(spill_dir),
                std::move(file_prefix)) {}

  void Emit(const MidK& key, const MidV& value) override {
    buffer_.Add(key, value);
  }

  void AppendPoisonFrame(size_t p) { buffer_.AddPoisonFrame(p); }

  SpillingBuffer<MidK, MidV, KeyTraits<MidK>>& buffer() { return buffer_; }

 private:
  SpillingBuffer<MidK, MidV, KeyTraits<MidK>> buffer_;
};

/// Map-side emitter that holds pairs in memory for combining.
template <typename MidK, typename MidV>
class CombiningEmitter : public Emitter<MidK, MidV> {
 public:
  void Emit(const MidK& key, const MidV& value) override {
    groups_[key].push_back(value);
    ++records_;
  }

  /// Applies `combiner` per key and forwards results to `sink` in
  /// KeyTraits order. Hash-map iteration order must never reach the
  /// shuffle: downstream record order has to be derivable from the keys
  /// alone, not from a particular hash table's bucket layout.
  void Flush(
      const std::function<std::vector<MidV>(const MidK&, std::vector<MidV>)>&
          combiner,
      Emitter<MidK, MidV>* sink) {
    std::vector<const MidK*> keys;
    keys.reserve(groups_.size());
    for (auto& [key, values] : groups_) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(), [](const MidK* a, const MidK* b) {
      return KeyTraits<MidK>::Less(*a, *b);
    });
    for (const MidK* key : keys) {
      std::vector<MidV> combined = combiner(*key, std::move(groups_[*key]));
      for (MidV& v : combined) sink->Emit(*key, v);
    }
    groups_.clear();
  }

  uint64_t records() const { return records_; }

 private:
  struct HashFn {
    size_t operator()(const MidK& k) const { return KeyTraits<MidK>::Hash(k); }
  };
  std::unordered_map<MidK, std::vector<MidV>, HashFn> groups_;
  uint64_t records_ = 0;
};

/// Robustness accounting for one phase, merged into JobCounters by RunJob.
struct PhaseStats {
  uint64_t retries = 0;
  uint64_t speculative_launches = 0;
  uint64_t speculative_wins = 0;
  uint64_t deadline_kills = 0;
  uint64_t exceptions = 0;
  std::vector<double> durations;  // committed attempts only
};

/// One map task's output: per-partition sorted in-memory tails plus the
/// sorted runs spilled to disk, with the byte/record accounting RunJob
/// merges into JobCounters. Hoisted out of RunJob so a remote ddp_worker's
/// registered job (remote_job.h) produces the exact same shape.
struct MapTaskOutput {
  std::vector<std::string> buffers;
  std::vector<uint64_t> payload_bytes;
  std::vector<SpillRun> runs;
  uint64_t records = 0;
  uint64_t combine_in = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_files = 0;
  double spill_seconds = 0.0;
};

/// One reduce task's output (shared with remote_job.h like MapTaskOutput).
/// `group_size_log2` is the log2-bucketed group-size histogram
/// (bucket = floor(log2(size))) — the per-key population skew picture.
template <typename Out>
struct ReduceTaskOutput {
  std::vector<Out> out;
  uint64_t groups = 0;
  uint64_t skipped = 0;
  uint64_t merge_passes = 0;
  std::vector<uint64_t> group_size_log2;
};

/// ReduceTaskOutput wire codec (multi-process reduce phases; requires
/// Serde<Out>). Reduce outputs are final results, not shuffle data, so the
/// whole output rides the result payload and no runs stream ahead of it.
template <typename Out>
void SerializeReduceOutput(BufferWriter* w, ReduceTaskOutput<Out>& ro) {
  Serde<std::vector<Out>>::Write(w, ro.out);
  w->PutVarint64(ro.groups);
  w->PutVarint64(ro.skipped);
  w->PutVarint64(ro.merge_passes);
  Serde<std::vector<uint64_t>>::Write(w, ro.group_size_log2);
}

template <typename Out>
Status DeserializeReduceOutput(BufferReader* r, ReduceTaskOutput<Out>* ro) {
  DDP_RETURN_NOT_OK(Serde<std::vector<Out>>::Read(r, &ro->out));
  DDP_RETURN_NOT_OK(r->GetVarint64(&ro->groups));
  DDP_RETURN_NOT_OK(r->GetVarint64(&ro->skipped));
  DDP_RETURN_NOT_OK(r->GetVarint64(&ro->merge_passes));
  return Serde<std::vector<uint64_t>>::Read(r, &ro->group_size_log2);
}

/// MapTaskOutput wire codec: counters and byte accounting only. The data —
/// sorted runs and tails — does not ride the result payload; it streams
/// ahead of it as spill segments (ExtractMapRuns / InjectMapRuns), so the
/// supervising parent never materializes a whole map output.
inline void SerializeMapCounters(BufferWriter* w, MapTaskOutput& mo) {
  Serde<std::vector<uint64_t>>::Write(w, mo.payload_bytes);
  w->PutVarint64(mo.records);
  w->PutVarint64(mo.combine_in);
  w->PutVarint64(mo.spilled_bytes);
  w->PutVarint64(mo.spill_files);
  w->PutDouble(mo.spill_seconds);
}

inline Status DeserializeMapCounters(BufferReader* r, MapTaskOutput* mo) {
  DDP_RETURN_NOT_OK(Serde<std::vector<uint64_t>>::Read(r, &mo->payload_bytes));
  DDP_RETURN_NOT_OK(r->GetVarint64(&mo->records));
  DDP_RETURN_NOT_OK(r->GetVarint64(&mo->combine_in));
  DDP_RETURN_NOT_OK(r->GetVarint64(&mo->spilled_bytes));
  DDP_RETURN_NOT_OK(r->GetVarint64(&mo->spill_files));
  DDP_RETURN_NOT_OK(r->GetDouble(&mo->spill_seconds));
  return Status::OK();
}

/// Worker side: lists the attempt's runs in merge-ordinal order — disk runs
/// in spill order, then each non-empty tail (tails sort after every disk
/// run of their task; see kTailRunIndex). The OutboundRuns keep the
/// spill-file handles alive until the supervisor confirms the commit.
inline std::vector<OutboundRun> ExtractMapRuns(MapTaskOutput& mo) {
  std::vector<OutboundRun> runs;
  runs.reserve(mo.runs.size() + mo.buffers.size());
  for (SpillRun& run : mo.runs) {
    OutboundRun r;
    r.partition = run.partition;
    r.spill_index = run.spill_index;
    r.file = std::move(run.file);
    r.offset = run.offset;
    r.length = run.length;
    runs.push_back(std::move(r));
  }
  mo.runs.clear();
  for (size_t p = 0; p < mo.buffers.size(); ++p) {
    if (mo.buffers[p].empty()) continue;
    OutboundRun r;
    r.partition = static_cast<uint32_t>(p);
    r.spill_index = kTailRunIndex;
    r.bytes = std::move(mo.buffers[p]);
    runs.push_back(std::move(r));
  }
  mo.buffers.clear();
  return runs;
}

/// Parent side: grafts the committed runs back into a MapTaskOutput shaped
/// exactly like an in-process map task's — tails per partition, disk runs
/// (now extents of a supervisor-owned spill file) in stream order — so the
/// reduce phase cannot tell how the bytes arrived.
inline Status InjectMapRuns(size_t num_partitions,
                            std::vector<CommittedRun> runs,
                            MapTaskOutput* mo) {
  mo->buffers.assign(num_partitions, std::string());
  mo->runs.clear();
  for (CommittedRun& cr : runs) {
    if (cr.partition >= num_partitions) {
      return Status::IoError("streamed run names partition " +
                             std::to_string(cr.partition) + " of " +
                             std::to_string(num_partitions));
    }
    if (cr.spill_index == kTailRunIndex) {
      mo->buffers[cr.partition] = std::move(cr.bytes);
    } else {
      SpillRun run;
      run.file = std::move(cr.file);
      run.partition = cr.partition;
      run.spill_index = cr.spill_index;
      run.offset = cr.offset;
      run.length = cr.length;
      mo->runs.push_back(std::move(run));
    }
  }
  return Status::OK();
}

/// The chaos knobs one worker-side attempt rolls — a value type so fork
/// closures and remote registered jobs (which rebuild it from a JobSetupMsg
/// on another host) inject from identical hashes.
struct WorkerChaosParams {
  FaultInjection faults;
  double failure_rate = 0.0;  // this phase's injected-failure probability
  std::string job_name;
  int phase = 0;
  /// channel_drop_rate applies (reconnecting transports only: TCP fork
  /// workers and remote workers; a socketpair drop is a worker loss).
  bool drop_chaos = false;
};

/// Runs one worker-side task attempt with the full fork-mode chaos order:
/// poison-task and mid-map crashes before the body, injected failure and
/// straggler dawdle after it, mid-shuffle crash / mid-run channel drop
/// markers on the extracted runs, then the serialized counter payload.
/// `body(task, cancel, &out)` is the phase body; `extract_runs(out)` lists
/// the attempt's outbound runs; `serialize(writer, out)` encodes the slim
/// result payload. Shared verbatim by RunForkedPhase's fork closure and the
/// remote worker's registered jobs so retries re-roll the same
/// deterministic hashes on any substrate.
template <typename Output, typename Body, typename ExtractFn, typename SerFn>
Status RunWorkerAttempt(const WorkerChaosParams& chaos, size_t t,
                        size_t attempt, bool quarantined, const Body& body,
                        const ExtractFn& extract_runs, const SerFn& serialize,
                        TaskResult* result) {
  const FaultInjection& faults = chaos.faults;
  // A poisonous task SIGKILLs its worker on every attempt
  // (attempt-independent hash) until quarantine suppresses it; a crash
  // event kills this one attempt's worker, before the body ("mid-map") or
  // while streaming its runs, result unsent ("mid-shuffle"), by a second
  // hash bit. Quarantine suppresses both so the committed bytes match the
  // in-process run.
  bool crash_mid_shuffle = false;
  if (!quarantined) {
    if (ShouldInjectFailure(faults, faults.poison_task_rate, chaos.job_name,
                            chaos.phase + 8, t, /*attempt=*/0)) {
      CrashSelf();
    }
    if (ShouldInjectFailure(faults, faults.worker_crash_rate, chaos.job_name,
                            chaos.phase + 6, t, attempt)) {
      if (ShouldInjectFailure(faults, 0.5, chaos.job_name, chaos.phase + 10,
                              t, attempt)) {
        CrashSelf();  // mid-map: the body never ran
      }
      crash_mid_shuffle = true;  // die at a run boundary mid-stream
    }
  }
  Output out{};
  CancelToken cancel;  // hung workers are killed, not cancelled
  Stopwatch watch;
  Status st = body(t, &cancel, &out);
  // In-process chaos parity (worker-side, so retries re-roll the same
  // deterministic hashes the thread scheduler would).
  if (st.ok() && ShouldInjectFailure(faults, chaos.failure_rate,
                                     chaos.job_name, chaos.phase, t,
                                     attempt)) {
    st = Status::Internal("injected task failure");
  }
  if (st.ok() && ShouldInjectFailure(faults, faults.straggler_rate,
                                     chaos.job_name, chaos.phase + 4, t,
                                     attempt)) {
    const double dawdle =
        std::max(faults.straggler_min_seconds,
                 watch.ElapsedSeconds() *
                     std::max(0.0, faults.straggler_slowdown - 1.0));
    cancel.WaitFor(dawdle);  // dawdles until the supervisor's hang kill
  }
  if (!st.ok()) {
    if (crash_mid_shuffle) CrashSelf();  // parity: the worker still dies
    return st;
  }
  result->runs = extract_runs(out);
  if (crash_mid_shuffle) {
    result->crash_after_runs = static_cast<int64_t>(result->runs.size() / 2);
  }
  if (chaos.drop_chaos &&
      ShouldInjectFailure(faults, faults.channel_drop_rate, chaos.job_name,
                          chaos.phase + 12, t, attempt)) {
    result->drop_after_runs = static_cast<int64_t>(result->runs.size() / 2);
  }
  BufferWriter w(&result->payload);
  serialize(&w, out);
  return Status::OK();
}

/// Executes one map task over its input slice — the body RunJob schedules
/// and a remote ddp_worker replays from a kTaskAssign frame. `task` is the
/// job-wide task id (poison placement hashes it, so a remote slice
/// reproduces the exact corruption an in-process run injects); the
/// cancel-poll cadence is slice-relative either way. With `sorted_shuffle`,
/// output is sorted runs + tails via a SpillingBuffer (never touching disk
/// under a 0 budget); otherwise unsorted per-partition buffers.
template <typename In, typename MidK, typename MidV, typename Out>
Status ExecuteMapTask(const JobSpec<In, MidK, MidV, Out>& spec,
                      std::span<const In> slice, size_t task,
                      size_t num_partitions, const FaultInjection& faults,
                      bool sorted_shuffle, uint64_t memory_budget_bytes,
                      const std::string& spill_dir, CancelToken* cancel,
                      MapTaskOutput* out) {
  // A failed attempt's partial output is discarded, exactly like a lost
  // Hadoop task: the emitter is attempt-local and only committed by the
  // scheduler on success. Spill files are attempt-local too — names carry a
  // process-unique id, and a failed or abandoned attempt's RAII handles
  // unlink its files on the way out.
  PartitionedEmitter<MidK, MidV> emitter(num_partitions);
  std::unique_ptr<SpillingEmitter<MidK, MidV>> spiller;
  Emitter<MidK, MidV>* sink = &emitter;
  if (sorted_shuffle) {
    spiller = std::make_unique<SpillingEmitter<MidK, MidV>>(
        num_partitions, memory_budget_bytes, spill_dir,
        spec.name + "-m" + std::to_string(task));
    sink = spiller.get();
  }
  if (spec.combiner) {
    CombiningEmitter<MidK, MidV> combining;
    for (size_t i = 0; i < slice.size(); ++i) {
      if ((i & 1023u) == 0 && cancel->cancelled()) {
        return Status::Cancelled("map attempt abandoned");
      }
      spec.map(slice[i], &combining);
    }
    out->combine_in = combining.records();
    combining.Flush(spec.combiner, sink);
  } else {
    for (size_t i = 0; i < slice.size(); ++i) {
      if ((i & 1023u) == 0 && cancel->cancelled()) {
        return Status::Cancelled("map attempt abandoned");
      }
      spec.map(slice[i], sink);
    }
  }
  if (faults.corruption_rate > 0.0) {
    // Poison placement is a function of (task, partition), never the
    // attempt: recovery paths rebuild bit-identical buffers.
    for (size_t p = 0; p < num_partitions; ++p) {
      if (ShouldInjectFailure(faults, faults.corruption_rate, spec.name,
                              /*phase=*/2, task, p)) {
        if (spiller != nullptr) {
          spiller->AppendPoisonFrame(p);
        } else {
          emitter.AppendPoisonFrame(p);
        }
      }
    }
  }
  if (spiller != nullptr) {
    auto& buffer = spiller->buffer();
    DDP_RETURN_NOT_OK(buffer.Finish());
    out->records = buffer.records();
    out->payload_bytes = buffer.payload_bytes();
    out->buffers = std::move(buffer.tails());
    out->runs = std::move(buffer.runs());
    out->spilled_bytes = buffer.spilled_bytes();
    out->spill_files = buffer.spill_files();
    out->spill_seconds = buffer.spill_seconds();
  } else {
    out->records = emitter.records();
    out->payload_bytes = emitter.payload_bytes();
    out->buffers = std::move(emitter.buffers());
  }
  return Status::OK();
}

/// Executes one sorted-shuffle reduce task: a k-way merge over `sources`
/// (this partition's runs and tails, in (map task id, spill index, tail)
/// source order so key ties reproduce the stable-sorted order of the
/// in-memory path), grouping and reducing each key. `any_run` counts one
/// merge pass when a spilled run actually fed the merge — remote callers
/// pass the flag computed supervisor-side, keeping merge_passes identical
/// to a local run even though shipped runs arrive as in-memory bytes.
template <typename In, typename MidK, typename MidV, typename Out>
Status ExecuteSortedReduceTask(const JobSpec<In, MidK, MidV, Out>& spec,
                               size_t p,
                               std::vector<std::unique_ptr<FrameStream>>
                                   sources,
                               bool any_run, bool skip_bad,
                               CancelToken* cancel,
                               ReduceTaskOutput<Out>* out) {
  DDP_TRACE_SPAN(merge_span, obs::kCatMr, obs::kSpanMergeStream);
  if (merge_span.active()) {
    merge_span.AddArg("partition", static_cast<uint64_t>(p));
    merge_span.AddArg("sources", static_cast<uint64_t>(sources.size()));
  }
  MergingGroupReader<MidK, MidV, KeyTraits<MidK>> merger(std::move(sources),
                                                         skip_bad, cancel);
  Status st = merger.Init();
  MidK key;
  std::vector<MidV> values;
  while (st.ok()) {
    bool has = false;
    st = merger.NextGroup(&key, &values, &has);
    if (!st.ok() || !has) break;
    spec.reduce(key, values, &out->out);
    ++out->groups;
    const size_t bucket =
        static_cast<size_t>(std::bit_width(values.size())) - 1;
    if (out->group_size_log2.size() <= bucket) {
      out->group_size_log2.resize(bucket + 1, 0);
    }
    ++out->group_size_log2[bucket];
  }
  if (!st.ok()) {
    merge_span.MarkCancelled();
    if (st.IsCancelled()) return st;
    return Status::IoError("reduce partition " + std::to_string(p) + ": " +
                           st.message());
  }
  out->skipped = merger.skipped();
  // One streaming pass merges every run of this partition; counted only
  // when a spilled run actually fed the merge.
  out->merge_passes = any_run ? 1 : 0;
  return Status::OK();
}

/// Everything RunForkedPhase needs to run a phase on a remote crew: the
/// borrowed pool, the encoded JobSetupMsg installed on each admitted
/// worker, the per-task input codec (dispatched lazily, only for tasks that
/// actually land on a remote worker), and how many local fork workers to
/// run alongside. Local forks under a remote phase always use the pipe
/// transport — the pool owns the job's TCP listener.
struct RemotePhaseSpec {
  RemoteWorkerPool* pool = nullptr;
  std::string setup;  // JobSetupMsg::Encode()
  std::function<Result<std::string>(size_t task)> task_input;
  size_t local_workers = 0;
};

/// The per-phase task scheduler — the "job tracker" of this runtime. Runs
/// `num_tasks` tasks on `pool`, each via `body(task, cancel, &out)`:
///
///  * A failed attempt (injected fault, thrown exception, missed deadline)
///    is retried until `max_task_attempts` is exhausted, then fails the job.
///  * An IoError from `body` (corrupt shuffle data) is not retryable — the
///    data would be equally corrupt on retry — and aborts the job, with all
///    in-flight attempts cancelled so other partitions stop wasting work.
///  * With speculative execution on, a task whose sole attempt runs long
///    relative to the committed median gets one backup attempt; the first
///    success commits (in this scheduler thread, so there is no commit
///    race), the sibling is cancelled and its result discarded.
///
/// `body` must be a pure function of `task` and should poll `cancel`
/// periodically so abandoned attempts release their worker promptly.
template <typename Output, typename Body>
Status RunRobustPhase(ThreadPool* pool, size_t num_tasks, int phase,
                      const std::string& job_name, const Options& options,
                      double failure_rate, PhaseStats* pstats,
                      std::vector<Output>* outputs, const Body& body) {
  outputs->clear();
  outputs->resize(num_tasks);
  if (num_tasks == 0) return Status::OK();

  using Clock = std::chrono::steady_clock;
  struct Event {
    size_t task = 0;
    size_t attempt = 0;
    bool speculative = false;
    bool exception = false;
    Status status;
    double seconds = 0.0;
    Output out{};
  };
  struct Running {
    size_t attempt;
    /// Nanoseconds-since-steady-epoch when the attempt actually began
    /// executing; 0 while it is still queued behind other work. Deadlines
    /// and the speculative threshold measure execution time, not queue
    /// wait — on a small pool every queued attempt would otherwise look
    /// like a straggler.
    std::shared_ptr<std::atomic<int64_t>> started_ns;
    std::shared_ptr<CancelToken> cancel;
  };
  struct TaskState {
    size_t failed_attempts = 0;
    size_t next_attempt = 0;
    bool done = false;
    bool backup_launched = false;
    std::vector<Running> running;
  };

  const FaultInjection& faults = options.faults;
  const double deadline = options.task_deadline_seconds;
  const char* phase_name = phase == 0 ? "map" : "reduce";

  // Observability: one histogram of committed-attempt latencies per phase
  // kind (a single registry lookup per phase), a per-attempt trace span
  // created inside the worker closure (so it lands on the executing
  // thread), and an optional progress heartbeat.
  obs::Histogram* attempt_hist = obs::MetricsRegistry::Global().GetHistogram(
      phase == 0 ? obs::kMetricMrMapAttemptSeconds : obs::kMetricMrReduceAttemptSeconds);
  std::atomic<size_t> completed_for_heartbeat{0};
  Stopwatch phase_timer;
  std::optional<obs::ProgressHeartbeat> heartbeat;
  if (options.heartbeat_seconds > 0.0) {
    heartbeat.emplace(
        options.heartbeat_seconds,
        [&completed_for_heartbeat, &phase_timer, num_tasks, phase_name,
         job_name] {
          const size_t done =
              completed_for_heartbeat.load(std::memory_order_relaxed);
          const double elapsed = phase_timer.ElapsedSeconds();
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "%s %s: %zu/%zu tasks done (%.1f tasks/s)",
                        job_name.c_str(), phase_name, done, num_tasks,
                        elapsed > 0.0 ? static_cast<double>(done) / elapsed
                                      : 0.0);
          return std::string(buf);
        });
  }

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Event> events;  // guarded by mu

  // Everything below is touched only by this (scheduler) thread.
  std::vector<TaskState> tasks(num_tasks);
  size_t outstanding = 0;  // launched attempts whose events are unconsumed
  size_t completed = 0;
  Status job_error;

  auto launch = [&](size_t t, bool speculative) {
    TaskState& ts = tasks[t];
    const size_t attempt = ts.next_attempt++;
    auto cancel = std::make_shared<CancelToken>();
    auto started_ns = std::make_shared<std::atomic<int64_t>>(0);
    ts.running.push_back({attempt, started_ns, cancel});
    ++outstanding;
    pool->Submit([&, t, attempt, speculative, cancel, started_ns] {
      Event ev;
      ev.task = t;
      ev.attempt = attempt;
      ev.speculative = speculative;
      // The attempt span lives on the worker thread so it nests under
      // whatever else that worker traces (spill writes, kernel groups).
      // Spans from attempts that never commit — cancelled speculative
      // losers, deadline kills, abandoned retries — are still flushed,
      // marked cancelled below.
      DDP_TRACE_SPAN(span, obs::kCatMr, phase == 0 ? obs::kSpanMapAttempt
                                            : "reduce_attempt");
      if (span.active()) {
        span.AddArg("job", job_name);
        span.AddArg("task", static_cast<uint64_t>(t));
        span.AddArg("attempt", static_cast<uint64_t>(attempt));
        if (speculative) span.AddArg("speculative", "true");
      }
      started_ns->store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count(),
                        std::memory_order_release);
      if (cancel->cancelled()) {
        ev.status = Status::Cancelled("attempt cancelled before start");
      } else {
        Stopwatch watch;
        try {
          ev.status = body(t, cancel.get(), &ev.out);
        } catch (const std::exception& e) {
          ev.status = Status::Internal(std::string(phase_name) +
                                       " function threw: " + e.what());
          ev.exception = true;
        } catch (...) {
          ev.status = Status::Internal(std::string(phase_name) +
                                       " function threw a non-std exception");
          ev.exception = true;
        }
        if (ev.status.ok() &&
            ShouldInjectFailure(faults, failure_rate, job_name, phase, t,
                                attempt)) {
          ev.status = Status::Internal("injected task failure");
        }
        if (ev.status.ok() &&
            ShouldInjectFailure(faults, faults.straggler_rate, job_name,
                                phase + 4, t, attempt)) {
          const double dawdle =
              std::max(faults.straggler_min_seconds,
                       watch.ElapsedSeconds() *
                           std::max(0.0, faults.straggler_slowdown - 1.0));
          cancel->WaitFor(dawdle);
        }
        ev.seconds = watch.ElapsedSeconds();
        // An overdue attempt reports DeadlineExceeded whether it noticed by
        // itself or was woken by the monitor's Cancel (which would otherwise
        // read as an abandoned attempt and orphan the task).
        if (deadline > 0.0 && ev.seconds > deadline &&
            (ev.status.ok() || ev.status.IsCancelled())) {
          ev.status = Status::DeadlineExceeded(
              std::string(phase_name) + " attempt overran the " +
              std::to_string(deadline) + "s task deadline");
        }
      }
      if (span.active() && !ev.status.ok()) {
        // A cancelled or deadline-killed attempt's span is flushed, not
        // dropped: it renders greyed-out-style in Perfetto via the
        // cancelled arg, which is how speculative losers stay visible.
        if (ev.status.IsCancelled() || ev.status.IsDeadlineExceeded()) {
          span.MarkCancelled();
        }
        span.AddArg("status", ev.status.ToString());
      }
      // Notify under the lock: once the scheduler consumes the last event it
      // may destroy mu/cv (they live on its stack), and holding mu here
      // keeps it parked in wait() until the notification is fully issued.
      std::lock_guard<std::mutex> lock(mu);
      events.push_back(std::move(ev));
      cv.notify_all();
    });
  };

  auto cancel_all = [&] {
    for (TaskState& ts : tasks) {
      for (Running& r : ts.running) r.cancel->Cancel();
    }
  };

  std::vector<double> scratch;  // median computation
  auto monitor_scan = [&] {
    const auto now = Clock::now();
    double median = 0.0;
    const bool can_speculate =
        options.speculative_execution && num_tasks > 1 &&
        pstats->durations.size() >=
            std::max<size_t>(1, options.speculative_min_completed);
    if (can_speculate) {
      scratch = pstats->durations;
      auto mid =
          scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() / 2);
      std::nth_element(scratch.begin(), mid, scratch.end());
      median = *mid;
    }
    const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               now.time_since_epoch())
                               .count();
    // Elapsed execution time; negative while the attempt is still queued.
    auto exec_seconds = [now_ns](const Running& r) {
      const int64_t s = r.started_ns->load(std::memory_order_acquire);
      return s == 0 ? -1.0 : static_cast<double>(now_ns - s) * 1e-9;
    };
    for (size_t t = 0; t < num_tasks; ++t) {
      TaskState& ts = tasks[t];
      if (ts.done) continue;
      if (deadline > 0.0) {
        for (Running& r : ts.running) {
          // Wake dawdling attempts; they self-report DeadlineExceeded.
          if (exec_seconds(r) > deadline) r.cancel->Cancel();
        }
      }
      if (can_speculate && !ts.backup_launched && ts.running.size() == 1) {
        const double elapsed = exec_seconds(ts.running[0]);
        if (elapsed > options.speculative_multiplier * median &&
            elapsed > 1e-3) {
          ts.backup_launched = true;
          ++pstats->speculative_launches;
          launch(t, /*speculative=*/true);
        }
      }
    }
  };

  for (size_t t = 0; t < num_tasks; ++t) launch(t, /*speculative=*/false);

  const bool needs_monitor = deadline > 0.0 || options.speculative_execution;
  std::unique_lock<std::mutex> lock(mu);
  while (completed < num_tasks && job_error.ok()) {
    if (events.empty()) {
      if (needs_monitor) {
        cv.wait_for(lock, std::chrono::milliseconds(1),
                    [&] { return !events.empty(); });
      } else {
        cv.wait(lock, [&] { return !events.empty(); });
      }
    }
    while (!events.empty() && job_error.ok()) {
      Event ev = std::move(events.front());
      events.pop_front();
      lock.unlock();
      --outstanding;
      TaskState& ts = tasks[ev.task];
      for (size_t r = 0; r < ts.running.size(); ++r) {
        if (ts.running[r].attempt == ev.attempt) {
          ts.running.erase(ts.running.begin() +
                           static_cast<std::ptrdiff_t>(r));
          break;
        }
      }
      if (!ts.done) {
        if (ev.status.ok()) {
          // First finisher commits; commits happen only on this thread, so
          // "first" is well-defined and race-free.
          ts.done = true;
          ++completed;
          completed_for_heartbeat.store(completed, std::memory_order_relaxed);
          (*outputs)[ev.task] = std::move(ev.out);
          pstats->durations.push_back(ev.seconds);
          attempt_hist->RecordSeconds(ev.seconds);
          if (ev.speculative) ++pstats->speculative_wins;
          for (Running& r : ts.running) r.cancel->Cancel();
        } else if (ev.status.IsCancelled()) {
          // Legitimate cancellations come from a sibling's commit (task
          // done, filtered above) or a job abort (drained below). Reaching
          // here means a monitor Cancel raced an attempt that had not
          // produced work yet: relaunch so the task is not orphaned. Not a
          // failure, so it does not consume the attempt budget.
          launch(ev.task, /*speculative=*/false);
        } else {
          if (ev.exception) ++pstats->exceptions;
          if (ev.status.IsDeadlineExceeded()) ++pstats->deadline_kills;
          ++ts.failed_attempts;
          if (ev.status.IsIoError()) {
            // Corrupt shuffle data is deterministic: retrying would re-read
            // the same bytes. Fail fast and stop sibling partitions early.
            job_error = ev.status;
          } else if (ts.failed_attempts >= options.max_task_attempts) {
            job_error = Status::Internal(
                std::string(phase_name) + " task " +
                std::to_string(ev.task) + " failed after " +
                std::to_string(options.max_task_attempts) +
                " attempts; last error: " + ev.status.ToString());
          } else {
            ++pstats->retries;
            launch(ev.task, /*speculative=*/false);
          }
          if (!job_error.ok()) cancel_all();
        }
      }
      lock.lock();
    }
    if (job_error.ok() && needs_monitor && completed < num_tasks) {
      lock.unlock();
      monitor_scan();
      lock.lock();
    }
  }
  // Drain abandoned attempts before returning: submitted closures reference
  // this stack frame.
  while (outstanding > 0) {
    cv.wait(lock, [&] { return !events.empty(); });
    while (!events.empty()) {
      events.pop_front();
      --outstanding;
    }
  }
  return job_error;
}

/// ExecMode::kFork counterpart of RunRobustPhase: runs `body` inside forked
/// worker processes under a WorkerSupervisor. The unit of transfer back to
/// the parent is the spill run, not the task result: `extract_runs(output)`
/// runs in the worker and lists the sorted runs/tails the attempt produced
/// (the worker streams them over the channel before its slim counter-only
/// result), and `inject_runs(runs, &output)` runs in the parent's commit
/// callback to graft the committed runs back into the decoded output.
/// `serialize`/`deserialize` carry only what is left — counters and stats.
/// Chaos parity: the per-(task, attempt) failure/straggler injections of the
/// in-process scheduler run inside the worker, plus the fork-only
/// worker_crash_rate / poison_task_rate injections via CrashSelf (mid-shuffle
/// crashes land mid-stream, at a run boundary) and channel_drop_rate via a
/// deliberate mid-run disconnect. Returns NotImplemented when fork execution
/// is unavailable — no task has run, fall back to RunRobustPhase.
///
/// With `remote` set (ExecMode::kRemote), the supervisor additionally admits
/// exec'd ddp_worker processes from the pool's listener: they receive the
/// phase's JobSetupMsg once and then per-task kTaskAssign frames whose input
/// `remote->task_input` serializes, while `remote->local_workers` forked
/// locals (0 for a pure-remote crew) run `body` as usual. NotImplemented
/// then means no worker — forked or remote — ever joined.
template <typename Output, typename Body, typename SerFn, typename DeFn,
          typename ExtractFn, typename InjectFn>
Status RunForkedPhase(size_t num_tasks, int phase, const std::string& job_name,
                      const Options& options, double failure_rate,
                      const std::string& spill_dir, PhaseStats* pstats,
                      JobCounters* counters, std::vector<Output>* outputs,
                      const Body& body, const SerFn& serialize,
                      const DeFn& deserialize, const ExtractFn& extract_runs,
                      const InjectFn& inject_runs,
                      const RemotePhaseSpec* remote = nullptr) {
  outputs->clear();
  outputs->resize(num_tasks);
  if (num_tasks == 0) return Status::OK();
  const FaultInjection& faults = options.faults;

  SupervisorConfig cfg;
  cfg.job_name = job_name;
  cfg.phase = phase;
  cfg.num_workers = options.ResolvedWorkers();
  cfg.num_tasks = num_tasks;
  cfg.max_task_attempts = options.max_task_attempts;
  cfg.max_worker_restarts = options.max_worker_restarts;
  cfg.quarantine_after_crashes = options.quarantine_after_crashes;
  cfg.skip_bad_records = options.skip_bad_records;
  cfg.task_deadline_seconds = options.task_deadline_seconds;
  cfg.child_heartbeat_seconds = options.worker_heartbeat_seconds;
  cfg.backoff_seed = faults.seed;
  cfg.spill_dir = spill_dir;
  cfg.progress_heartbeat_seconds = options.heartbeat_seconds;
  cfg.transport = options.transport;
  cfg.tcp_host = options.tcp_host;
  cfg.tcp_port = options.tcp_port;
  // The shuffle backpressure window tracks the job's memory budget: a
  // budgeted job bounds its shipped-but-uncommitted bytes the same way it
  // bounds its map buffers (floored at 4 KiB so tiny test budgets still
  // make progress one frame at a time). 0 lets the supervisor default.
  cfg.stream_window_bytes =
      options.memory_budget_bytes > 0
          ? std::max<uint64_t>(options.memory_budget_bytes, 4096)
          : 0;
  if (remote != nullptr) {
    cfg.remote_pool = remote->pool;
    cfg.remote_setup_payload = remote->setup;
    cfg.remote_task_input = remote->task_input;
    // Local forks ride socketpairs; the pool owns the job's TCP listener.
    cfg.num_workers = remote->local_workers;
    cfg.transport = Transport::kPipe;
  }

  // Runs in the worker process: the shared chaos-order attempt wrapper
  // around `body`. Remote workers run the same wrapper rebuilt from the
  // JobSetupMsg (remote_job.h), so every substrate rolls identical hashes.
  WorkerChaosParams chaos;
  chaos.faults = faults;
  chaos.failure_rate = failure_rate;
  chaos.job_name = job_name;
  chaos.phase = phase;
  chaos.drop_chaos =
      remote == nullptr && options.transport == Transport::kTcp;
  WorkerTaskFn fn = [&](size_t t, size_t attempt, bool quarantined,
                        TaskResult* result) -> Status {
    return RunWorkerAttempt<Output>(chaos, t, attempt, quarantined, body,
                                    extract_runs, serialize, result);
  };

  obs::Histogram* attempt_hist = obs::MetricsRegistry::Global().GetHistogram(
      phase == 0 ? obs::kMetricMrMapAttemptSeconds : obs::kMetricMrReduceAttemptSeconds);

  // Runs in the supervising parent, in result-frame order.
  CommitFn commit = [&](size_t t, bool quarantined, double seconds,
                        std::string payload,
                        std::vector<CommittedRun> runs) -> Status {
    BufferReader r(payload);
    Output out{};
    Status st = deserialize(&r, &out);
    if (st.ok() && !r.exhausted()) {
      st = Status::IoError("task result decoded short of its payload");
    }
    if (!st.ok()) {
      return Status::IoError("task " + std::to_string(t) +
                             " result payload: " + st.message());
    }
    DDP_RETURN_NOT_OK(inject_runs(std::move(runs), &out));
    (*outputs)[t] = std::move(out);
    pstats->durations.push_back(seconds);
    attempt_hist->RecordSeconds(seconds);
    // A quarantined task is one suppressed poisonous record, routed through
    // the same skip accounting as corrupt-record skips.
    if (quarantined) ++counters->skipped_records;
    return Status::OK();
  };

  SupervisorStats sstats;
  Status st = WorkerSupervisor::RunPhase(cfg, fn, commit, &sstats);
  if (st.IsNotImplemented()) return st;  // nothing ran; caller falls back
  pstats->retries += sstats.retries;
  pstats->deadline_kills += sstats.deadline_kills;
  counters->worker_crashes += sstats.worker_crashes;
  counters->worker_hangs += sstats.worker_hangs;
  counters->worker_kills += sstats.worker_kills;
  counters->worker_restarts += sstats.worker_restarts;
  counters->quarantined_tasks += sstats.quarantined_tasks;
  counters->spill_files_reaped += sstats.spill_files_reaped;
  counters->shuffle_streamed_bytes += sstats.shuffle_streamed_bytes;
  counters->shuffle_resent_runs += sstats.shuffle_resent_runs;
  counters->channel_reconnects += sstats.channel_reconnects;
  counters->workers_registered += sstats.workers_registered;
  counters->workers_evicted += sstats.workers_evicted;
  counters->tasks_reassigned += sstats.tasks_reassigned;
  return st;
}

}  // namespace internal

/// Executes `spec` over `input` and returns all reduce outputs
/// (deterministic order). Counter accumulation is optional.
template <typename In, typename MidK, typename MidV, typename Out>
Result<std::vector<Out>> RunJob(const JobSpec<In, MidK, MidV, Out>& spec,
                                std::span<const In> input,
                                const Options& options = {},
                                JobCounters* counters_out = nullptr) {
  if (!spec.map) return Status::InvalidArgument("JobSpec.map is not set");
  if (!spec.reduce) return Status::InvalidArgument("JobSpec.reduce is not set");

  // Cooperative cancellation checks run at job boundaries: here (before any
  // work, including checkpoint replay) and again between map and reduce.
  auto cancelled = [&options]() {
    return options.cancel_flag != nullptr &&
           options.cancel_flag->load(std::memory_order_relaxed);
  };
  if (cancelled()) {
    return Status::Cancelled("job " + spec.name + " cancelled before start");
  }

  const size_t workers = options.ResolvedWorkers();
  const size_t num_partitions = options.ResolvedPartitions();

  JobCounters counters;
  counters.job_name = spec.name;
  counters.map_input_records = input.size();

  // One span per MR job, named after it; phase spans and worker-side
  // attempt spans nest inside (the latter by thread, not containment).
  DDP_TRACE_SPAN(job_span, obs::kCatJob, spec.name);
  if (job_span.active()) {
    job_span.AddArg("input_records", static_cast<uint64_t>(input.size()));
  }
  DDP_METRIC_COUNTER_ADD(obs::kMetricMrJobs, 1);

  // ---- Checkpoint replay: a completed job's output is served from the
  // store, bit-identical, without re-running anything. The key sequence
  // advances even for non-replayable jobs so pipelines keep stable keys.
  std::string checkpoint_key;
  if (options.checkpoint != nullptr) {
    checkpoint_key = options.checkpoint->NextKey(spec.name);
    if constexpr (has_serde_v<Out>) {
      Result<std::string> bytes =
          options.checkpoint->LoadBytes(checkpoint_key);
      if (bytes.ok()) {
        BufferReader reader(*bytes);
        std::vector<Out> output;
        Status st = Serde<std::vector<Out>>::Read(&reader, &output);
        if (st.ok() && reader.exhausted()) {
          counters.loaded_from_checkpoint = true;
          counters.reduce_output_records = output.size();
          job_span.AddArg("replayed_from_checkpoint", "true");
          if (counters_out != nullptr) *counters_out = counters;
          return output;
        }
        // Unreadable entry: treat as absent and recompute.
        DDP_LOG(Warning) << "checkpoint " << checkpoint_key
                         << " unreadable; re-running job";
      }
    }
  }

  Stopwatch job_timer;
  // The in-process phase pool is created lazily: in fork mode no worker
  // threads should exist in the supervising parent (forked children inherit
  // only this thread), so a pure-fork job never constructs it.
  std::unique_ptr<ThreadPool> pool;
  auto get_pool = [&pool, workers]() -> ThreadPool* {
    if (pool == nullptr) pool = std::make_unique<ThreadPool>(workers);
    return pool.get();
  };

  // Multi-process resolution. `remote_phases` requires a pool, a registered
  // task id, and a Serde-crossable input type; anything less degrades to
  // fork semantics. `fork_phases`/`remote_phases` flip off permanently once
  // a supervisor reports NotImplemented (unsupported platform, no worker
  // spawned, no remote worker joined) — each degradation is counted in
  // exec_fallbacks.
  bool remote_phases = false;
  if constexpr (has_serde_v<In>) {
    remote_phases = options.exec_mode == ExecMode::kRemote &&
                    options.remote_pool != nullptr &&
                    !spec.remote_task_id.empty();
  }
  const bool want_fork =
      options.exec_mode == ExecMode::kFork ||
      (options.exec_mode == ExecMode::kRemote && !remote_phases);
  if (options.exec_mode == ExecMode::kRemote && !remote_phases) {
    ++counters.exec_fallbacks;  // remote requested, job cannot go remote
  }
  bool fork_phases = (want_fork && ForkExecutionSupported()) || remote_phases;
  if (want_fork && !fork_phases) ++counters.exec_fallbacks;
  if (job_span.active() && (want_fork || remote_phases)) {
    job_span.AddArg("exec_mode", remote_phases  ? "remote"
                                 : fork_phases ? "fork"
                                               : "fork->inproc");
  }

  // ---- Map phase: split input into tasks, emit into per-partition buffers.
  // With a memory budget, `buffers` holds only the sorted in-memory tails
  // and `runs` references the sorted runs spilled to disk; the RAII file
  // handles inside the runs unlink the spill files when map_outputs dies.
  using MapOutput = internal::MapTaskOutput;
  const bool spilling = options.memory_budget_bytes > 0;
  // Fork-mode map output is always sorted runs and tails, budget or not:
  // the spill segment is the unit of shuffle transfer, so workers emit
  // through the spilling buffer (which, under no budget, never touches disk
  // — it just key-sorts each partition into an in-memory tail) and the
  // reduce side merge-streams. Bit-identical to the concat+stable_sort path
  // by the determinism contract in spill.h. Reset alongside fork_phases if
  // the supervisor reports fork execution unavailable (no task has run).
  bool sorted_shuffle = spilling || fork_phases;
  const std::string spill_dir =
      spilling ? internal::ResolveSpillDir(options.spill_dir) : std::string();
  if (spilling) {
    // Startup reap: spill files stamped with the pid of a process that no
    // longer exists are leftovers of a crashed run; delete them before this
    // job adds its own.
    counters.spill_files_reaped += ReapOrphanSpillFiles(spill_dir);
  }
  Stopwatch map_timer;
  const size_t num_map_tasks =
      std::max<size_t>(1, std::min(input.size(), workers * 4));
  const size_t chunk = (input.size() + num_map_tasks - 1) / num_map_tasks;
  DDP_TRACE_SPAN(map_span, obs::kCatMr, obs::kSpanMapPhase);
  if (map_span.active()) {
    map_span.AddArg("job", spec.name);
    map_span.AddArg("tasks", static_cast<uint64_t>(num_map_tasks));
  }

  internal::PhaseStats map_stats;
  std::vector<MapOutput> map_outputs;
  auto map_body =
      [&](size_t t, CancelToken* cancel, MapOutput* out) -> Status {
        const size_t begin = t * chunk;
        const size_t end = std::min(input.size(), begin + chunk);
        return internal::ExecuteMapTask(
            spec, input.subspan(begin, end - begin), t, num_partitions,
            options.faults, sorted_shuffle, options.memory_budget_bytes,
            spill_dir, cancel, out);
      };

  auto inject_map_runs = [num_partitions](std::vector<CommittedRun> runs,
                                          MapOutput* mo) -> Status {
    return internal::InjectMapRuns(num_partitions, std::move(runs), mo);
  };

  // Remote phase setup (kRemote): the JobSetupMsg every admitted ddp_worker
  // installs — naming the registered job and carrying everything a closure
  // would have captured — plus the per-task input codec. Map task input is
  // the task's input slice by value. Guarded by the same Serde<In>
  // constexpr that gates remote_phases, so non-Serde jobs still compile.
  internal::RemotePhaseSpec map_remote;
  if constexpr (has_serde_v<In>) {
    if (remote_phases) {
      JobSetupMsg setup;
      setup.job_id = spec.remote_task_id;
      setup.job_name = spec.name;
      setup.phase = 0;
      if (spec.remote_ctx) {
        BufferWriter cw(&setup.ctx);
        spec.remote_ctx(&cw);
      }
      setup.num_partitions = num_partitions;
      setup.memory_budget_bytes = options.memory_budget_bytes;
      setup.spill_dir = options.spill_dir;  // resolved on the worker's host
      setup.skip_bad_records = options.skip_bad_records;
      setup.fault_seed = options.faults.seed;
      setup.map_failure_rate = options.faults.map_failure_rate;
      setup.reduce_failure_rate = options.faults.reduce_failure_rate;
      setup.straggler_rate = options.faults.straggler_rate;
      setup.straggler_slowdown = options.faults.straggler_slowdown;
      setup.straggler_min_seconds = options.faults.straggler_min_seconds;
      setup.corruption_rate = options.faults.corruption_rate;
      setup.worker_crash_rate = options.faults.worker_crash_rate;
      setup.poison_task_rate = options.faults.poison_task_rate;
      setup.channel_drop_rate = options.faults.channel_drop_rate;
      map_remote.pool = options.remote_pool;
      map_remote.setup = setup.Encode();
      map_remote.local_workers = options.remote_local_workers;
      map_remote.task_input = [&input, chunk](size_t t)
          -> Result<std::string> {
        const size_t begin = t * chunk;
        const size_t end = std::min(input.size(), begin + chunk);
        std::string bytes;
        BufferWriter w(&bytes);
        w.PutVarint64(end - begin);
        for (size_t i = begin; i < end; ++i) {
          Serde<In>::Write(&w, input[i]);
        }
        return bytes;
      };
    }
  }

  Status map_status;
  bool map_forked = false;
  if (fork_phases) {
    map_status = internal::RunForkedPhase<MapOutput>(
        num_map_tasks, /*phase=*/0, spec.name, options,
        options.faults.map_failure_rate, spill_dir, &map_stats, &counters,
        &map_outputs, map_body, internal::SerializeMapCounters,
        internal::DeserializeMapCounters, internal::ExtractMapRuns,
        inject_map_runs, remote_phases ? &map_remote : nullptr);
    if (map_status.IsNotImplemented()) {
      ++counters.exec_fallbacks;
      fork_phases = false;
      remote_phases = false;
      sorted_shuffle = spilling;  // no task ran; back to the in-proc shape
    } else {
      map_forked = true;
    }
  }
  if (!map_forked) {
    map_status = internal::RunRobustPhase<MapOutput>(
        get_pool(), num_map_tasks, /*phase=*/0, spec.name, options,
        options.faults.map_failure_rate, &map_stats, &map_outputs, map_body);
  }
  if (!map_status.ok()) {
    map_span.MarkCancelled();
    job_span.MarkCancelled();
    return map_status;
  }
  counters.map_seconds = map_timer.ElapsedSeconds();
  map_span.End();
  for (const MapOutput& mo : map_outputs) {
    counters.map_output_records += mo.records;
    counters.combine_input_records += mo.combine_in;
    counters.spilled_bytes += mo.spilled_bytes;
    counters.spill_files += mo.spill_files;
    counters.spill_seconds += mo.spill_seconds;
  }
  counters.map_task_retries = map_stats.retries;

  // ---- Shuffle. Byte counters report payload (key/value encodings),
  // excluding frame headers and injected poison, so they stay comparable to
  // the paper's figures. On the in-memory path, task buffers are
  // concatenated per partition; a partition with a single non-empty source
  // steals that buffer instead of copying it. On the spill path there is
  // nothing to concatenate: reduce merge-streams straight out of the map
  // outputs' runs and tails.
  Stopwatch shuffle_timer;
  DDP_TRACE_SPAN(shuffle_span, obs::kCatMr, obs::kSpanShufflePhase);
  if (shuffle_span.active()) shuffle_span.AddArg("job", spec.name);
  std::vector<std::string> partitions(sorted_shuffle ? 0 : num_partitions);
  {
    std::vector<uint64_t> payload_sizes(num_partitions, 0);
    for (const MapOutput& mo : map_outputs) {
      for (size_t p = 0; p < num_partitions; ++p) {
        payload_sizes[p] += mo.payload_bytes[p];
      }
    }
    for (size_t p = 0; p < num_partitions; ++p) {
      counters.shuffle_bytes += payload_sizes[p];
      counters.max_partition_bytes =
          std::max<uint64_t>(counters.max_partition_bytes, payload_sizes[p]);
    }
    if (!sorted_shuffle) {
      for (size_t p = 0; p < num_partitions; ++p) {
        size_t sources = 0;
        size_t raw = 0;
        std::string* only = nullptr;
        for (MapOutput& mo : map_outputs) {
          if (!mo.buffers[p].empty()) {
            ++sources;
            raw += mo.buffers[p].size();
            only = &mo.buffers[p];
          }
        }
        if (sources == 1) {
          counters.shuffle_moved_bytes += raw;
          partitions[p] = std::move(*only);
        } else if (sources > 1) {
          counters.shuffle_copied_bytes += raw;
          partitions[p].reserve(raw);
          for (const MapOutput& mo : map_outputs) {
            partitions[p] += mo.buffers[p];
          }
        }
        for (MapOutput& mo : map_outputs) {
          mo.buffers[p].clear();
          mo.buffers[p].shrink_to_fit();
        }
      }
    }
  }
  counters.shuffle_records = counters.map_output_records;
  counters.shuffle_seconds = shuffle_timer.ElapsedSeconds();
  if (shuffle_span.active()) {
    shuffle_span.AddArg("bytes", counters.shuffle_bytes);
    shuffle_span.AddArg("records", counters.shuffle_records);
  }
  shuffle_span.End();

  if (cancelled()) {
    job_span.MarkCancelled();
    return Status::Cancelled("job " + spec.name +
                             " cancelled at the map/reduce boundary");
  }

  // ---- Reduce phase: per partition, deserialize, sort-group, reduce.
  // Deserialization lives inside the attempt (a lost Hadoop reduce task
  // re-fetches its shuffle input too), so retries and speculative attempts
  // are self-contained.
  using ReduceOutput = internal::ReduceTaskOutput<Out>;
  Stopwatch reduce_timer;
  DDP_TRACE_SPAN(reduce_span, obs::kCatMr, obs::kSpanReducePhase);
  if (reduce_span.active()) {
    reduce_span.AddArg("job", spec.name);
    reduce_span.AddArg("partitions", static_cast<uint64_t>(num_partitions));
    if (spilling) reduce_span.AddArg("spilling", "true");
  }
  internal::PhaseStats reduce_stats;
  std::vector<ReduceOutput> reduce_outputs;
  const bool skip_bad = options.skip_bad_records;
  auto reduce_body =
      [&](size_t p, CancelToken* cancel, ReduceOutput* out) -> Status {
        if (sorted_shuffle) {
          // Out-of-core path: stream a k-way merge over this partition's
          // sorted runs and in-memory tails, in (map task id, spill index,
          // tail) source order so key ties reproduce the stable-sorted
          // (map task id, emission index) order of the in-memory path.
          // map_outputs is read-only here, so concurrent reduce attempts
          // (retries, speculation) can share it safely.
          std::vector<std::unique_ptr<FrameStream>> sources;
          bool any_run = false;
          for (const MapOutput& mo : map_outputs) {
            for (const SpillRun& run : mo.runs) {
              if (run.partition == p) {
                sources.push_back(std::make_unique<SpillSegmentReader>(
                    run.file, run.offset, run.length));
                any_run = true;
              }
            }
            if (!mo.buffers[p].empty()) {
              sources.push_back(
                  std::make_unique<MemoryFrameReader>(mo.buffers[p]));
            }
          }
          return internal::ExecuteSortedReduceTask(
              spec, p, std::move(sources), any_run, skip_bad, cancel, out);
        }
        BufferReader reader(partitions[p]);
        std::vector<std::pair<MidK, MidV>> pairs;
        size_t frame = 0;
        while (!reader.exhausted()) {
          if ((frame++ & 1023u) == 0 && cancel->cancelled()) {
            return Status::Cancelled("reduce attempt abandoned");
          }
          uint64_t len = 0;
          Status st = reader.GetVarint64(&len);
          BufferReader rec(nullptr, size_t{0});
          if (st.ok()) st = reader.Slice(len, &rec);
          if (!st.ok()) {
            // A broken frame header loses record boundaries; even
            // skip_bad_records cannot re-sync past it.
            return Status::IoError("reduce partition " + std::to_string(p) +
                                   ": corrupt shuffle framing: " +
                                   st.message());
          }
          std::pair<MidK, MidV> kv;
          st = Serde<MidK>::Read(&rec, &kv.first);
          if (st.ok()) st = Serde<MidV>::Read(&rec, &kv.second);
          if (st.ok() && !rec.exhausted()) {
            st = Status::IoError("record decoded short of its frame");
          }
          if (!st.ok()) {
            if (skip_bad) {
              ++out->skipped;
              continue;
            }
            return Status::IoError("reduce partition " + std::to_string(p) +
                                   ": bad record: " + st.message());
          }
          pairs.push_back(std::move(kv));
        }
        std::stable_sort(pairs.begin(), pairs.end(),
                         [](const auto& a, const auto& b) {
                           return KeyTraits<MidK>::Less(a.first, b.first);
                         });
        size_t i = 0;
        std::vector<MidV> values;
        while (i < pairs.size()) {
          if (cancel->cancelled()) {
            return Status::Cancelled("reduce attempt abandoned");
          }
          size_t j = i + 1;
          while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
          values.clear();
          values.reserve(j - i);
          for (size_t k = i; k < j; ++k) values.push_back(pairs[k].second);
          spec.reduce(pairs[i].first, values, &out->out);
          ++out->groups;
          const size_t bucket =
              static_cast<size_t>(std::bit_width(j - i)) - 1;
          if (out->group_size_log2.size() <= bucket) {
            out->group_size_log2.resize(bucket + 1, 0);
          }
          ++out->group_size_log2[bucket];
          i = j;
        }
        return Status::OK();
      };

  Status reduce_status;
  bool reduce_forked = false;
  if (fork_phases) {
    if constexpr (has_serde_v<Out>) {
      // Reduce outputs are final results, not shuffle data: nothing to
      // stream as runs, so the extract/inject hooks are no-ops.
      auto extract_none = [](ReduceOutput&) {
        return std::vector<OutboundRun>();
      };
      auto inject_none = [](std::vector<CommittedRun> runs,
                            ReduceOutput*) -> Status {
        if (!runs.empty()) {
          return Status::IoError("unexpected streamed runs in reduce result");
        }
        return Status::OK();
      };
      // Remote reduce input: this partition's sources by value, in the
      // exact (map task id, spill index, tail) order the local merge uses —
      // each as (is_run, frame bytes), runs read back off the supervisor's
      // spill files and CRC-stripped. The worker merges MemoryFrameReaders
      // over the shipped bytes; source order and the any_run flag riding
      // along keep tie-breaks and merge_passes bit-identical to a local
      // reduce.
      internal::RemotePhaseSpec reduce_remote;
      if (remote_phases) {
        JobSetupMsg setup;
        setup.job_id = spec.remote_task_id;
        setup.job_name = spec.name;
        setup.phase = 1;
        if (spec.remote_ctx) {
          BufferWriter cw(&setup.ctx);
          spec.remote_ctx(&cw);
        }
        setup.num_partitions = num_partitions;
        setup.memory_budget_bytes = options.memory_budget_bytes;
        setup.spill_dir = options.spill_dir;
        setup.skip_bad_records = options.skip_bad_records;
        setup.fault_seed = options.faults.seed;
        setup.map_failure_rate = options.faults.map_failure_rate;
        setup.reduce_failure_rate = options.faults.reduce_failure_rate;
        setup.straggler_rate = options.faults.straggler_rate;
        setup.straggler_slowdown = options.faults.straggler_slowdown;
        setup.straggler_min_seconds = options.faults.straggler_min_seconds;
        setup.corruption_rate = options.faults.corruption_rate;
        setup.worker_crash_rate = options.faults.worker_crash_rate;
        setup.poison_task_rate = options.faults.poison_task_rate;
        setup.channel_drop_rate = options.faults.channel_drop_rate;
        reduce_remote.pool = options.remote_pool;
        reduce_remote.setup = setup.Encode();
        reduce_remote.local_workers = options.remote_local_workers;
        reduce_remote.task_input = [&map_outputs](size_t p)
            -> Result<std::string> {
          std::string bytes;
          BufferWriter w(&bytes);
          uint64_t count = 0;
          for (const MapOutput& mo : map_outputs) {
            for (const SpillRun& run : mo.runs) {
              if (run.partition == p) ++count;
            }
            if (!mo.buffers[p].empty()) ++count;
          }
          w.PutVarint64(count);
          for (const MapOutput& mo : map_outputs) {
            for (const SpillRun& run : mo.runs) {
              if (run.partition != p) continue;
              DDP_ASSIGN_OR_RETURN(
                  std::string seg,
                  ReadFileExtent(run.file->path(), run.offset, run.length));
              DDP_RETURN_NOT_OK(VerifyAndStripRunTrailer(&seg));
              w.PutByte(1);
              w.PutString(seg);
            }
            if (!mo.buffers[p].empty()) {
              w.PutByte(0);
              w.PutString(mo.buffers[p]);
            }
          }
          return bytes;
        };
      }
      auto serialize_reduce = [](BufferWriter* w, ReduceOutput& ro) {
        internal::SerializeReduceOutput<Out>(w, ro);
      };
      auto deserialize_reduce = [](BufferReader* r,
                                   ReduceOutput* ro) -> Status {
        return internal::DeserializeReduceOutput<Out>(r, ro);
      };
      reduce_status = internal::RunForkedPhase<ReduceOutput>(
          num_partitions, /*phase=*/1, spec.name, options,
          options.faults.reduce_failure_rate, spill_dir, &reduce_stats,
          &counters, &reduce_outputs, reduce_body, serialize_reduce,
          deserialize_reduce, extract_none, inject_none,
          remote_phases ? &reduce_remote : nullptr);
      if (reduce_status.IsNotImplemented()) {
        ++counters.exec_fallbacks;
        fork_phases = false;
      } else {
        reduce_forked = true;
      }
    } else {
      // The reduce output type cannot cross the process boundary; run this
      // phase in-process. Counted like any other degradation.
      ++counters.exec_fallbacks;
    }
  }
  if (!reduce_forked) {
    reduce_status = internal::RunRobustPhase<ReduceOutput>(
        get_pool(), num_partitions, /*phase=*/1, spec.name, options,
        options.faults.reduce_failure_rate, &reduce_stats, &reduce_outputs,
        reduce_body);
  }
  if (!reduce_status.ok()) {
    reduce_span.MarkCancelled();
    job_span.MarkCancelled();
    return reduce_status;
  }
  partitions.clear();
  partitions.shrink_to_fit();
  // Dropping the map outputs releases the spill-run handles: the last
  // reference to each spill file unlinks it, so the spill dir is empty again
  // once the job's reduce phase is done.
  map_outputs.clear();
  map_outputs.shrink_to_fit();
  counters.reduce_seconds = reduce_timer.ElapsedSeconds();
  reduce_span.End();
  counters.reduce_task_retries = reduce_stats.retries;
  for (const ReduceOutput& ro : reduce_outputs) {
    counters.reduce_input_groups += ro.groups;
    counters.skipped_records += ro.skipped;
    counters.merge_passes += ro.merge_passes;
    if (counters.group_size_log2_histogram.size() < ro.group_size_log2.size()) {
      counters.group_size_log2_histogram.resize(ro.group_size_log2.size(), 0);
    }
    for (size_t b = 0; b < ro.group_size_log2.size(); ++b) {
      counters.group_size_log2_histogram[b] += ro.group_size_log2[b];
    }
  }

  // ---- Robustness accounting across both phases.
  counters.speculative_launches =
      map_stats.speculative_launches + reduce_stats.speculative_launches;
  counters.speculative_wins =
      map_stats.speculative_wins + reduce_stats.speculative_wins;
  counters.deadline_kills =
      map_stats.deadline_kills + reduce_stats.deadline_kills;
  counters.task_exceptions = map_stats.exceptions + reduce_stats.exceptions;
  {
    std::vector<double> durations = map_stats.durations;
    durations.insert(durations.end(), reduce_stats.durations.begin(),
                     reduce_stats.durations.end());
    if (!durations.empty()) {
      std::sort(durations.begin(), durations.end());
      const size_t n = durations.size();
      counters.median_attempt_seconds = durations[n / 2];
      counters.p99_attempt_seconds = durations[(n - 1) * 99 / 100];
      counters.max_attempt_seconds = durations.back();
      counters.straggler_ratio =
          counters.median_attempt_seconds > 0.0
              ? counters.max_attempt_seconds / counters.median_attempt_seconds
              : 1.0;
    }
  }

  // ---- Collect outputs (partition-major deterministic order).
  std::vector<Out> output;
  {
    size_t total = 0;
    for (const ReduceOutput& ro : reduce_outputs) total += ro.out.size();
    output.reserve(total);
    for (ReduceOutput& ro : reduce_outputs) {
      std::move(ro.out.begin(), ro.out.end(), std::back_inserter(output));
    }
  }
  counters.reduce_output_records = output.size();
  counters.total_seconds = job_timer.ElapsedSeconds();
  DDP_METRIC_HISTOGRAM_SECONDS(obs::kMetricMrJobSeconds, counters.total_seconds);
  DDP_METRIC_COUNTER_ADD(obs::kMetricMrShuffleBytes, counters.shuffle_bytes);
  DDP_METRIC_COUNTER_ADD(obs::kMetricMrShuffleRecords, counters.shuffle_records);
  DDP_METRIC_COUNTER_ADD(obs::kMetricMrSpilledBytes, counters.spilled_bytes);
  if (job_span.active()) {
    job_span.AddArg("shuffle_bytes", counters.shuffle_bytes);
    job_span.AddArg("output_records", counters.reduce_output_records);
  }
  counters.modeled_seconds = counters.total_seconds;
  if (options.modeled_shuffle_bandwidth > 0.0) {
    counters.modeled_seconds += static_cast<double>(counters.shuffle_bytes) /
                                options.modeled_shuffle_bandwidth;
  }

  // ---- Persist for job-boundary recovery. A Cancelled save is the
  // simulated driver kill and aborts the pipeline; any other save error is
  // best-effort (the job merely re-runs on resume).
  if (options.checkpoint != nullptr) {
    if constexpr (has_serde_v<Out>) {
      BufferWriter w;
      Serde<std::vector<Out>>::Write(&w, output);
      Status saved = options.checkpoint->SaveBytes(checkpoint_key, w.data());
      if (saved.IsCancelled()) return saved;
      if (!saved.ok()) {
        DDP_LOG(Warning) << "checkpoint save failed for " << checkpoint_key
                         << ": " << saved.ToString();
      }
    }
  }

  // Per-submission progress feed: dynamic names cannot use the
  // static-caching DDP_METRIC_COUNTER_ADD macro, so look the counter up.
  if (!options.metrics_prefix.empty()) {
    obs::MetricsRegistry::Global()
        .GetCounter(options.metrics_prefix + ".mr_jobs")
        ->Add(1);
  }

  if (counters_out != nullptr) *counters_out = counters;
  return output;
}

}  // namespace mr
}  // namespace ddp


#ifndef DDP_MAPREDUCE_MAPREDUCE_H_
#define DDP_MAPREDUCE_MAPREDUCE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mapreduce/counters.h"

/// \file mapreduce.h
/// A typed, in-process MapReduce runtime. This is the paper's execution
/// substrate: every distributed DP variant (Basic-DDP, LSH-DDP, EDDPC,
/// MR K-means) is written as genuine map()/reduce() functions against this
/// API and executed here.
///
/// Faithfulness to a Hadoop-style system:
///  * Map tasks run in parallel over input splits.
///  * Every intermediate (key, value) pair is SERIALIZED into a
///    per-reduce-partition byte buffer — `JobCounters::shuffle_bytes` is the
///    size of real encoded data, the quantity a cluster would move over the
///    network.
///  * Reduce partitions deserialize, sort by key, group, and run reduce tasks
///    in parallel. Output order is deterministic (partition-major, key-sorted
///    within a partition).
///  * An optional combiner folds map-side values per key before
///    serialization, shrinking shuffle volume exactly as Hadoop combiners do.
///
/// Type requirements:
///  * `MidK`: Serde<MidK>, `KeyTraits<MidK>::Hash`, operator== and
///    `KeyTraits<MidK>::Less` (defaults use std::hash / operator<).
///  * `MidV`, and nothing else: Serde<MidV>.

namespace ddp {
namespace mr {

/// Hash/order customization point for intermediate keys.
template <typename K, typename Enable = void>
struct KeyTraits {
  static size_t Hash(const K& k) { return std::hash<K>{}(k); }
  static bool Less(const K& a, const K& b) { return a < b; }
};

/// Keys that are vectors of integers (LSH bucket signatures).
template <typename T>
struct KeyTraits<std::vector<T>, std::enable_if_t<std::is_integral_v<T>>> {
  static size_t Hash(const std::vector<T>& k) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (T v : k) {
      h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
  static bool Less(const std::vector<T>& a, const std::vector<T>& b) {
    return a < b;
  }
};

/// Pair keys (e.g. (layout m, bucket id)).
template <typename A, typename B>
struct KeyTraits<std::pair<A, B>> {
  static size_t Hash(const std::pair<A, B>& k) {
    size_t h1 = KeyTraits<A>::Hash(k.first);
    size_t h2 = KeyTraits<B>::Hash(k.second);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
  static bool Less(const std::pair<A, B>& a, const std::pair<A, B>& b) {
    if (KeyTraits<A>::Less(a.first, b.first)) return true;
    if (KeyTraits<A>::Less(b.first, a.first)) return false;
    return KeyTraits<B>::Less(a.second, b.second);
  }
};

/// Receives intermediate pairs from map functions.
template <typename MidK, typename MidV>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const MidK& key, const MidV& value) = 0;
};

/// Runtime options for one job.
/// Deterministic task-failure injection, for exercising the retry path the
/// way a Hadoop cluster loses tasks. Whether attempt `a` of task `t` fails
/// is a pure function of (seed, job name, phase, t, a), so runs remain
/// reproducible and retried tasks produce identical output.
struct FaultInjection {
  double map_failure_rate = 0.0;     // probability a map attempt fails
  double reduce_failure_rate = 0.0;  // probability a reduce attempt fails
  uint64_t seed = 1;
};

struct Options {
  /// Number of worker threads for the map and reduce phases.
  size_t num_workers = 0;  // 0 => DefaultParallelism()
  /// Number of reduce partitions (0 => 4 * workers, Hadoop-style default).
  size_t num_partitions = 0;
  /// Attempts per task before the whole job fails (Hadoop default: 4).
  size_t max_task_attempts = 4;
  FaultInjection faults;
  /// Cluster cost model (paper Eq. (9)): when > 0, JobCounters reports
  /// modeled_seconds = total_seconds + shuffle_bytes / this bandwidth,
  /// charging every shuffled byte the network/disk cost an in-process run
  /// does not pay. 0 disables (modeled_seconds == total_seconds).
  double modeled_shuffle_bandwidth = 0.0;  // bytes per second

  size_t ResolvedWorkers() const {
    return num_workers == 0 ? DefaultParallelism() : num_workers;
  }
  size_t ResolvedPartitions() const {
    return num_partitions == 0 ? 4 * ResolvedWorkers() : num_partitions;
  }
};

/// A MapReduce job specification.
///
/// `map` is invoked once per input record; `reduce` once per distinct key
/// with all values for that key. `combiner`, when set, is applied map-side to
/// the value list of each key within one map task and must return the
/// combined value list (commonly a single element for sum/min/max).
template <typename In, typename MidK, typename MidV, typename Out>
struct JobSpec {
  std::string name = "job";
  std::function<void(const In&, Emitter<MidK, MidV>*)> map;
  std::function<void(const MidK&, std::span<const MidV>, std::vector<Out>*)>
      reduce;
  std::function<std::vector<MidV>(const MidK&, std::vector<MidV>)> combiner;
};

namespace internal {

/// Pure decision: does attempt `attempt` of task `task` in `phase` fail?
inline bool ShouldInjectFailure(const FaultInjection& faults, double rate,
                                const std::string& job_name, int phase,
                                size_t task, size_t attempt) {
  if (rate <= 0.0) return false;
  uint64_t h = faults.seed ^ (0x9e3779b97f4a7c15ULL * (task + 1)) ^
               (0xc2b2ae3d27d4eb4fULL * (attempt + 1)) ^
               (0x165667b19e3779f9ULL * static_cast<uint64_t>(phase + 1));
  for (char c : job_name) h = h * 0x100000001b3ULL ^ static_cast<uint8_t>(c);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Map-side emitter that serializes each pair into the buffer of the
/// partition its key hashes to.
template <typename MidK, typename MidV>
class PartitionedEmitter : public Emitter<MidK, MidV> {
 public:
  PartitionedEmitter(size_t num_partitions)
      : buffers_(num_partitions), records_(0) {}

  void Emit(const MidK& key, const MidV& value) override {
    size_t p = KeyTraits<MidK>::Hash(key) % buffers_.size();
    BufferWriter w(&buffers_[p]);
    Serde<MidK>::Write(&w, key);
    Serde<MidV>::Write(&w, value);
    ++records_;
  }

  std::vector<std::string>& buffers() { return buffers_; }
  uint64_t records() const { return records_; }

 private:
  std::vector<std::string> buffers_;
  uint64_t records_;
};

/// Map-side emitter that holds pairs in memory for combining.
template <typename MidK, typename MidV>
class CombiningEmitter : public Emitter<MidK, MidV> {
 public:
  void Emit(const MidK& key, const MidV& value) override {
    groups_[key].push_back(value);
    ++records_;
  }

  /// Applies `combiner` per key and forwards results to `sink`.
  void Flush(
      const std::function<std::vector<MidV>(const MidK&, std::vector<MidV>)>&
          combiner,
      Emitter<MidK, MidV>* sink) {
    for (auto& [key, values] : groups_) {
      std::vector<MidV> combined = combiner(key, std::move(values));
      for (MidV& v : combined) sink->Emit(key, v);
    }
    groups_.clear();
  }

  uint64_t records() const { return records_; }

 private:
  struct HashFn {
    size_t operator()(const MidK& k) const { return KeyTraits<MidK>::Hash(k); }
  };
  std::unordered_map<MidK, std::vector<MidV>, HashFn> groups_;
  uint64_t records_ = 0;
};

}  // namespace internal

/// Executes `spec` over `input` and returns all reduce outputs
/// (deterministic order). Counter accumulation is optional.
template <typename In, typename MidK, typename MidV, typename Out>
Result<std::vector<Out>> RunJob(const JobSpec<In, MidK, MidV, Out>& spec,
                                std::span<const In> input,
                                const Options& options = {},
                                JobCounters* counters_out = nullptr) {
  if (!spec.map) return Status::InvalidArgument("JobSpec.map is not set");
  if (!spec.reduce) return Status::InvalidArgument("JobSpec.reduce is not set");

  const size_t workers = options.ResolvedWorkers();
  const size_t num_partitions = options.ResolvedPartitions();

  JobCounters counters;
  counters.job_name = spec.name;
  counters.map_input_records = input.size();
  Stopwatch job_timer;

  ThreadPool pool(workers);

  // ---- Map phase: split input into tasks, emit into per-partition buffers.
  Stopwatch map_timer;
  const size_t num_map_tasks =
      std::max<size_t>(1, std::min(input.size(), workers * 4));
  const size_t chunk = (input.size() + num_map_tasks - 1) / num_map_tasks;

  // buffers[task][partition] — concatenated per partition afterwards.
  std::vector<std::vector<std::string>> task_buffers(num_map_tasks);
  std::atomic<uint64_t> map_output_records{0};
  std::atomic<uint64_t> combine_input_records{0};

  std::atomic<uint64_t> map_task_retries{0};
  std::atomic<bool> map_task_exhausted{false};
  pool.ParallelFor(num_map_tasks, [&](size_t t) {
    size_t begin = t * chunk;
    size_t end = std::min(input.size(), begin + chunk);
    for (size_t attempt = 0;; ++attempt) {
      if (attempt >= options.max_task_attempts) {
        map_task_exhausted.store(true, std::memory_order_relaxed);
        return;
      }
      // A failed attempt's partial output is discarded, exactly like a lost
      // Hadoop task: the emitter below is attempt-local and only committed
      // into task_buffers on success.
      internal::PartitionedEmitter<MidK, MidV> emitter(num_partitions);
      uint64_t combined_in = 0;
      if (spec.combiner) {
        internal::CombiningEmitter<MidK, MidV> combining;
        for (size_t i = begin; i < end; ++i) spec.map(input[i], &combining);
        combined_in = combining.records();
        combining.Flush(spec.combiner, &emitter);
      } else {
        for (size_t i = begin; i < end; ++i) spec.map(input[i], &emitter);
      }
      if (internal::ShouldInjectFailure(options.faults,
                                        options.faults.map_failure_rate,
                                        spec.name, /*phase=*/0, t, attempt)) {
        map_task_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      combine_input_records.fetch_add(combined_in, std::memory_order_relaxed);
      map_output_records.fetch_add(emitter.records(),
                                   std::memory_order_relaxed);
      task_buffers[t] = std::move(emitter.buffers());
      return;
    }
  });
  if (map_task_exhausted.load()) {
    return Status::Internal("map task failed after " +
                            std::to_string(options.max_task_attempts) +
                            " attempts");
  }
  counters.map_seconds = map_timer.ElapsedSeconds();
  counters.map_output_records = map_output_records.load();
  counters.combine_input_records = combine_input_records.load();
  counters.map_task_retries = map_task_retries.load();

  // ---- Shuffle: concatenate task buffers per partition; measure bytes.
  Stopwatch shuffle_timer;
  std::vector<std::string> partitions(num_partitions);
  {
    std::vector<size_t> sizes(num_partitions, 0);
    for (const auto& bufs : task_buffers) {
      for (size_t p = 0; p < num_partitions; ++p) sizes[p] += bufs[p].size();
    }
    for (size_t p = 0; p < num_partitions; ++p) {
      partitions[p].reserve(sizes[p]);
      counters.shuffle_bytes += sizes[p];
      counters.max_partition_bytes =
          std::max<uint64_t>(counters.max_partition_bytes, sizes[p]);
    }
    for (auto& bufs : task_buffers) {
      for (size_t p = 0; p < num_partitions; ++p) {
        partitions[p] += bufs[p];
        bufs[p].clear();
        bufs[p].shrink_to_fit();
      }
    }
  }
  counters.shuffle_records = counters.map_output_records;
  counters.shuffle_seconds = shuffle_timer.ElapsedSeconds();

  // ---- Reduce phase: per partition, deserialize, sort-group, reduce.
  Stopwatch reduce_timer;
  std::vector<std::vector<Out>> partition_outputs(num_partitions);
  std::atomic<uint64_t> reduce_groups{0};
  std::mutex error_mu;
  Status first_error;

  std::atomic<uint64_t> reduce_task_retries{0};
  std::atomic<bool> reduce_task_exhausted{false};
  pool.ParallelFor(num_partitions, [&](size_t p) {
    BufferReader reader(partitions[p]);
    std::vector<std::pair<MidK, MidV>> pairs;
    while (!reader.exhausted()) {
      std::pair<MidK, MidV> kv;
      Status st = Serde<MidK>::Read(&reader, &kv.first);
      if (st.ok()) st = Serde<MidV>::Read(&reader, &kv.second);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      pairs.push_back(std::move(kv));
    }
    partitions[p].clear();
    partitions[p].shrink_to_fit();
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) {
                       return KeyTraits<MidK>::Less(a.first, b.first);
                     });
    for (size_t attempt = 0;; ++attempt) {
      if (attempt >= options.max_task_attempts) {
        reduce_task_exhausted.store(true, std::memory_order_relaxed);
        return;
      }
      std::vector<Out> out;  // attempt-local; committed on success
      size_t i = 0;
      uint64_t groups = 0;
      std::vector<MidV> values;
      while (i < pairs.size()) {
        size_t j = i + 1;
        while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
        values.clear();
        values.reserve(j - i);
        for (size_t k = i; k < j; ++k) values.push_back(pairs[k].second);
        spec.reduce(pairs[i].first, values, &out);
        ++groups;
        i = j;
      }
      if (internal::ShouldInjectFailure(options.faults,
                                        options.faults.reduce_failure_rate,
                                        spec.name, /*phase=*/1, p, attempt)) {
        reduce_task_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      partition_outputs[p] = std::move(out);
      reduce_groups.fetch_add(groups, std::memory_order_relaxed);
      return;
    }
  });
  if (!first_error.ok()) return first_error;
  if (reduce_task_exhausted.load()) {
    return Status::Internal("reduce task failed after " +
                            std::to_string(options.max_task_attempts) +
                            " attempts");
  }
  counters.reduce_seconds = reduce_timer.ElapsedSeconds();
  counters.reduce_input_groups = reduce_groups.load();
  counters.reduce_task_retries = reduce_task_retries.load();

  // ---- Collect outputs (partition-major deterministic order).
  std::vector<Out> output;
  {
    size_t total = 0;
    for (const auto& po : partition_outputs) total += po.size();
    output.reserve(total);
    for (auto& po : partition_outputs) {
      std::move(po.begin(), po.end(), std::back_inserter(output));
    }
  }
  counters.reduce_output_records = output.size();
  counters.total_seconds = job_timer.ElapsedSeconds();
  counters.modeled_seconds = counters.total_seconds;
  if (options.modeled_shuffle_bandwidth > 0.0) {
    counters.modeled_seconds += static_cast<double>(counters.shuffle_bytes) /
                                options.modeled_shuffle_bandwidth;
  }

  if (counters_out != nullptr) *counters_out = counters;
  return output;
}

}  // namespace mr
}  // namespace ddp

#endif  // DDP_MAPREDUCE_MAPREDUCE_H_

#include "mapreduce/counters.h"

#include <cstdio>

namespace ddp {
namespace mr {

std::string JobCounters::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s: map_in=%llu map_out=%llu shuffle=%llu B (%llu rec) groups=%llu "
      "out=%llu | map=%.3fs shuffle=%.3fs reduce=%.3fs total=%.3fs",
      job_name.c_str(), static_cast<unsigned long long>(map_input_records),
      static_cast<unsigned long long>(map_output_records),
      static_cast<unsigned long long>(shuffle_bytes),
      static_cast<unsigned long long>(shuffle_records),
      static_cast<unsigned long long>(reduce_input_groups),
      static_cast<unsigned long long>(reduce_output_records), map_seconds,
      shuffle_seconds, reduce_seconds, total_seconds);
  return buf;
}

uint64_t RunStats::TotalShuffleBytes() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.shuffle_bytes;
  return total;
}

uint64_t RunStats::TotalShuffleRecords() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.shuffle_records;
  return total;
}

double RunStats::TotalSeconds() const {
  double total = 0.0;
  for (const JobCounters& j : jobs) total += j.total_seconds;
  return total;
}

double RunStats::TotalModeledSeconds() const {
  double total = 0.0;
  for (const JobCounters& j : jobs) total += j.modeled_seconds;
  return total;
}

std::string RunStats::ToString() const {
  std::string out;
  for (const JobCounters& j : jobs) {
    out += j.ToString();
    out += '\n';
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "TOTAL: shuffle=%llu B (%llu rec) time=%.3fs",
                static_cast<unsigned long long>(TotalShuffleBytes()),
                static_cast<unsigned long long>(TotalShuffleRecords()),
                TotalSeconds());
  out += buf;
  return out;
}

}  // namespace mr
}  // namespace ddp

#include "mapreduce/counters.h"

#include <cstdio>

#include "obs/json.h"

namespace ddp {
namespace mr {

namespace {

void WriteJobObject(obs::JsonWriter* w, const JobCounters& j) {
  w->BeginObject();
  w->Field("job_name", std::string_view(j.job_name));
  w->Field("loaded_from_checkpoint", j.loaded_from_checkpoint);
  w->Field("map_input_records", j.map_input_records);
  w->Field("map_output_records", j.map_output_records);
  w->Field("combine_input_records", j.combine_input_records);
  w->Field("shuffle_bytes", j.shuffle_bytes);
  w->Field("shuffle_records", j.shuffle_records);
  w->Field("shuffle_moved_bytes", j.shuffle_moved_bytes);
  w->Field("shuffle_copied_bytes", j.shuffle_copied_bytes);
  w->Field("reduce_input_groups", j.reduce_input_groups);
  w->Field("reduce_output_records", j.reduce_output_records);
  w->Field("max_partition_bytes", j.max_partition_bytes);
  w->Field("spilled_bytes", j.spilled_bytes);
  w->Field("spill_files", j.spill_files);
  w->Field("merge_passes", j.merge_passes);
  w->Field("spill_seconds", j.spill_seconds);
  w->Key("group_size_log2_histogram");
  w->BeginArray();
  for (uint64_t count : j.group_size_log2_histogram) w->Uint(count);
  w->EndArray();
  w->Field("map_task_retries", j.map_task_retries);
  w->Field("reduce_task_retries", j.reduce_task_retries);
  w->Field("speculative_launches", j.speculative_launches);
  w->Field("speculative_wins", j.speculative_wins);
  w->Field("deadline_kills", j.deadline_kills);
  w->Field("skipped_records", j.skipped_records);
  w->Field("task_exceptions", j.task_exceptions);
  w->Field("worker_crashes", j.worker_crashes);
  w->Field("worker_hangs", j.worker_hangs);
  w->Field("worker_kills", j.worker_kills);
  w->Field("worker_restarts", j.worker_restarts);
  w->Field("quarantined_tasks", j.quarantined_tasks);
  w->Field("spill_files_reaped", j.spill_files_reaped);
  w->Field("exec_fallbacks", j.exec_fallbacks);
  w->Field("shuffle_streamed_bytes", j.shuffle_streamed_bytes);
  w->Field("shuffle_resent_runs", j.shuffle_resent_runs);
  w->Field("channel_reconnects", j.channel_reconnects);
  w->Field("workers_registered", j.workers_registered);
  w->Field("workers_evicted", j.workers_evicted);
  w->Field("tasks_reassigned", j.tasks_reassigned);
  w->Field("median_attempt_seconds", j.median_attempt_seconds);
  w->Field("p99_attempt_seconds", j.p99_attempt_seconds);
  w->Field("max_attempt_seconds", j.max_attempt_seconds);
  w->Field("straggler_ratio", j.straggler_ratio);
  w->Field("map_seconds", j.map_seconds);
  w->Field("shuffle_seconds", j.shuffle_seconds);
  w->Field("reduce_seconds", j.reduce_seconds);
  w->Field("total_seconds", j.total_seconds);
  w->Field("modeled_seconds", j.modeled_seconds);
  w->EndObject();
}

}  // namespace

std::string JobCounters::ToString() const {
  char buf[512];
  if (loaded_from_checkpoint) {
    std::snprintf(buf, sizeof(buf), "%s: replayed from checkpoint (out=%llu)",
                  job_name.c_str(),
                  static_cast<unsigned long long>(reduce_output_records));
    return buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "%s: map_in=%llu map_out=%llu shuffle=%llu B (%llu rec) groups=%llu "
      "out=%llu | map=%.3fs shuffle=%.3fs reduce=%.3fs total=%.3fs",
      job_name.c_str(), static_cast<unsigned long long>(map_input_records),
      static_cast<unsigned long long>(map_output_records),
      static_cast<unsigned long long>(shuffle_bytes),
      static_cast<unsigned long long>(shuffle_records),
      static_cast<unsigned long long>(reduce_input_groups),
      static_cast<unsigned long long>(reduce_output_records), map_seconds,
      shuffle_seconds, reduce_seconds, total_seconds);
  std::string out = buf;
  const uint64_t retries = map_task_retries + reduce_task_retries;
  if (retries + speculative_launches + deadline_kills + skipped_records +
          task_exceptions >
      0) {
    std::snprintf(buf, sizeof(buf),
                  " | retries=%llu spec=%llu/%llu deadline_kills=%llu "
                  "skipped=%llu exceptions=%llu",
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(speculative_wins),
                  static_cast<unsigned long long>(speculative_launches),
                  static_cast<unsigned long long>(deadline_kills),
                  static_cast<unsigned long long>(skipped_records),
                  static_cast<unsigned long long>(task_exceptions));
    out += buf;
  }
  if (spilled_bytes + spill_files + merge_passes > 0 || spill_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  " | spilled_bytes=%llu spill_files=%llu merge_passes=%llu "
                  "spill=%.3fs",
                  static_cast<unsigned long long>(spilled_bytes),
                  static_cast<unsigned long long>(spill_files),
                  static_cast<unsigned long long>(merge_passes),
                  spill_seconds);
    out += buf;
  }
  if (worker_crashes + worker_hangs + worker_kills + worker_restarts +
          quarantined_tasks + spill_files_reaped + exec_fallbacks >
      0) {
    std::snprintf(buf, sizeof(buf),
                  " | workers: crashes=%llu hangs=%llu kills=%llu "
                  "restarts=%llu quarantined=%llu reaped=%llu fallbacks=%llu",
                  static_cast<unsigned long long>(worker_crashes),
                  static_cast<unsigned long long>(worker_hangs),
                  static_cast<unsigned long long>(worker_kills),
                  static_cast<unsigned long long>(worker_restarts),
                  static_cast<unsigned long long>(quarantined_tasks),
                  static_cast<unsigned long long>(spill_files_reaped),
                  static_cast<unsigned long long>(exec_fallbacks));
    out += buf;
  }
  if (shuffle_streamed_bytes + shuffle_resent_runs + channel_reconnects > 0) {
    std::snprintf(buf, sizeof(buf),
                  " | streamed=%llu B resent_runs=%llu reconnects=%llu",
                  static_cast<unsigned long long>(shuffle_streamed_bytes),
                  static_cast<unsigned long long>(shuffle_resent_runs),
                  static_cast<unsigned long long>(channel_reconnects));
    out += buf;
  }
  if (workers_registered + workers_evicted + tasks_reassigned > 0) {
    std::snprintf(buf, sizeof(buf),
                  " | remote: registered=%llu evicted=%llu reassigned=%llu",
                  static_cast<unsigned long long>(workers_registered),
                  static_cast<unsigned long long>(workers_evicted),
                  static_cast<unsigned long long>(tasks_reassigned));
    out += buf;
  }
  if (straggler_ratio > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  " | attempts: median=%.4fs p99=%.4fs slowest/median=%.2f",
                  median_attempt_seconds, p99_attempt_seconds,
                  straggler_ratio);
    out += buf;
  }
  if (!group_size_log2_histogram.empty()) {
    out += " | group_sizes:";
    for (size_t b = 0; b < group_size_log2_histogram.size(); ++b) {
      if (group_size_log2_histogram[b] == 0) continue;
      std::snprintf(
          buf, sizeof(buf), " [%llu,%llu)=%llu",
          static_cast<unsigned long long>(uint64_t{1} << b),
          static_cast<unsigned long long>(uint64_t{1} << (b + 1)),
          static_cast<unsigned long long>(group_size_log2_histogram[b]));
      out += buf;
    }
  }
  return out;
}

uint64_t RunStats::TotalShuffleBytes() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.shuffle_bytes;
  return total;
}

uint64_t RunStats::TotalShuffleRecords() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.shuffle_records;
  return total;
}

double RunStats::TotalSeconds() const {
  double total = 0.0;
  for (const JobCounters& j : jobs) total += j.total_seconds;
  return total;
}

double RunStats::TotalModeledSeconds() const {
  double total = 0.0;
  for (const JobCounters& j : jobs) total += j.modeled_seconds;
  return total;
}

uint64_t RunStats::TotalTaskRetries() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) {
    total += j.map_task_retries + j.reduce_task_retries;
  }
  return total;
}

uint64_t RunStats::TotalSpeculativeLaunches() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.speculative_launches;
  return total;
}

uint64_t RunStats::TotalSpeculativeWins() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.speculative_wins;
  return total;
}

uint64_t RunStats::TotalDeadlineKills() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.deadline_kills;
  return total;
}

uint64_t RunStats::TotalSkippedRecords() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.skipped_records;
  return total;
}

uint64_t RunStats::TotalTaskExceptions() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.task_exceptions;
  return total;
}

uint64_t RunStats::TotalSpilledBytes() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.spilled_bytes;
  return total;
}

uint64_t RunStats::TotalSpillFiles() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.spill_files;
  return total;
}

uint64_t RunStats::TotalMergePasses() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.merge_passes;
  return total;
}

uint64_t RunStats::JobsLoadedFromCheckpoint() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.loaded_from_checkpoint ? 1 : 0;
  return total;
}

uint64_t RunStats::TotalWorkerCrashes() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.worker_crashes;
  return total;
}

uint64_t RunStats::TotalWorkerHangs() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.worker_hangs;
  return total;
}

uint64_t RunStats::TotalWorkerKills() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.worker_kills;
  return total;
}

uint64_t RunStats::TotalWorkerRestarts() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.worker_restarts;
  return total;
}

uint64_t RunStats::TotalQuarantinedTasks() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.quarantined_tasks;
  return total;
}

uint64_t RunStats::TotalSpillFilesReaped() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.spill_files_reaped;
  return total;
}

uint64_t RunStats::TotalExecFallbacks() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.exec_fallbacks;
  return total;
}

uint64_t RunStats::TotalShuffleStreamedBytes() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.shuffle_streamed_bytes;
  return total;
}

uint64_t RunStats::TotalShuffleResentRuns() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.shuffle_resent_runs;
  return total;
}

uint64_t RunStats::TotalChannelReconnects() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.channel_reconnects;
  return total;
}

uint64_t RunStats::TotalWorkersRegistered() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.workers_registered;
  return total;
}

uint64_t RunStats::TotalWorkersEvicted() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.workers_evicted;
  return total;
}

uint64_t RunStats::TotalTasksReassigned() const {
  uint64_t total = 0;
  for (const JobCounters& j : jobs) total += j.tasks_reassigned;
  return total;
}

std::string JobCounters::ToJson() const {
  obs::JsonWriter w;
  WriteJobObject(&w, *this);
  return w.Take();
}

std::string RunStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("jobs");
  w.BeginArray();
  for (const JobCounters& j : jobs) WriteJobObject(&w, j);
  w.EndArray();
  w.Key("totals");
  w.BeginObject();
  w.Field("jobs", static_cast<uint64_t>(jobs.size()));
  w.Field("shuffle_bytes", TotalShuffleBytes());
  w.Field("shuffle_records", TotalShuffleRecords());
  w.Field("total_seconds", TotalSeconds());
  w.Field("modeled_seconds", TotalModeledSeconds());
  w.Field("task_retries", TotalTaskRetries());
  w.Field("speculative_launches", TotalSpeculativeLaunches());
  w.Field("speculative_wins", TotalSpeculativeWins());
  w.Field("deadline_kills", TotalDeadlineKills());
  w.Field("skipped_records", TotalSkippedRecords());
  w.Field("task_exceptions", TotalTaskExceptions());
  w.Field("spilled_bytes", TotalSpilledBytes());
  w.Field("spill_files", TotalSpillFiles());
  w.Field("merge_passes", TotalMergePasses());
  w.Field("jobs_loaded_from_checkpoint", JobsLoadedFromCheckpoint());
  w.Field("worker_crashes", TotalWorkerCrashes());
  w.Field("worker_hangs", TotalWorkerHangs());
  w.Field("worker_kills", TotalWorkerKills());
  w.Field("worker_restarts", TotalWorkerRestarts());
  w.Field("quarantined_tasks", TotalQuarantinedTasks());
  w.Field("spill_files_reaped", TotalSpillFilesReaped());
  w.Field("exec_fallbacks", TotalExecFallbacks());
  w.Field("shuffle_streamed_bytes", TotalShuffleStreamedBytes());
  w.Field("shuffle_resent_runs", TotalShuffleResentRuns());
  w.Field("channel_reconnects", TotalChannelReconnects());
  w.Field("workers_registered", TotalWorkersRegistered());
  w.Field("workers_evicted", TotalWorkersEvicted());
  w.Field("tasks_reassigned", TotalTasksReassigned());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string RunStats::ToString() const {
  std::string out;
  for (const JobCounters& j : jobs) {
    out += j.ToString();
    out += '\n';
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "TOTAL: shuffle=%llu B (%llu rec) time=%.3fs",
                static_cast<unsigned long long>(TotalShuffleBytes()),
                static_cast<unsigned long long>(TotalShuffleRecords()),
                TotalSeconds());
  out += buf;
  if (TotalSpilledBytes() + TotalSpillFiles() + TotalMergePasses() > 0) {
    std::snprintf(buf, sizeof(buf),
                  " spilled=%llu B (%llu files, %llu merges)",
                  static_cast<unsigned long long>(TotalSpilledBytes()),
                  static_cast<unsigned long long>(TotalSpillFiles()),
                  static_cast<unsigned long long>(TotalMergePasses()));
    out += buf;
  }
  return out;
}

}  // namespace mr
}  // namespace ddp

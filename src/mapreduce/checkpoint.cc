#include "mapreduce/checkpoint.h"

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ddp {
namespace mr {

namespace {

constexpr char kMagic[4] = {'D', 'P', 'C', 'K'};

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A failure here surfaces as NotFound/IoError on first use.
}

std::string CheckpointStore::NextKey(const std::string& job_name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = std::to_string(seq_++) + "-" + job_name;
  // Job names come from user code; keep keys filesystem-safe.
  for (char& c : key) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      c = '_';
    }
  }
  return key;
}

void CheckpointStore::ResetSequence() {
  std::lock_guard<std::mutex> lock(mu_);
  seq_ = 0;
}

void CheckpointStore::SetKillAfter(int64_t saves) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_after_ = saves;
  saves_ = 0;
}

std::string CheckpointStore::PathFor(const std::string& key) const {
  return (std::filesystem::path(dir_) / (key + ".ckpt")).string();
}

bool CheckpointStore::Has(const std::string& key) const {
  return LoadBytes(key).ok();
}

Result<std::string> CheckpointStore::LoadBytes(const std::string& key) const {
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) return Status::NotFound("no checkpoint entry for " + key);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string file = std::move(ss).str();

  BufferReader reader(file);
  char magic[4];
  DDP_RETURN_NOT_OK(reader.GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("checkpoint " + key + ": bad magic");
  }
  uint64_t size = 0;
  DDP_RETURN_NOT_OK(reader.GetVarint64(&size));
  std::string payload;
  if (reader.remaining() < size + sizeof(uint64_t)) {
    return Status::IoError("checkpoint " + key + ": truncated");
  }
  payload.resize(size);
  DDP_RETURN_NOT_OK(reader.GetRaw(payload.data(), size));
  uint64_t checksum = 0;
  DDP_RETURN_NOT_OK(reader.GetRaw(&checksum, sizeof(checksum)));
  if (checksum != Fnv1a(payload)) {
    return Status::IoError("checkpoint " + key + ": checksum mismatch");
  }
  return payload;
}

Status CheckpointStore::SaveBytes(const std::string& key,
                                  const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (kill_after_ >= 0 && saves_ >= kill_after_) {
      return Status::Cancelled("simulated driver kill after " +
                               std::to_string(saves_) + " checkpointed jobs");
    }
    ++saves_;
  }
  BufferWriter w;
  w.PutRaw(kMagic, sizeof(kMagic));
  w.PutVarint64(payload.size());
  w.PutRaw(payload.data(), payload.size());
  uint64_t checksum = Fnv1a(payload);
  w.PutRaw(&checksum, sizeof(checksum));

  const std::string path = PathFor(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write checkpoint " + tmp);
    out.write(w.data().data(), static_cast<std::streamsize>(w.size()));
    if (!out) return Status::IoError("short write to checkpoint " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot commit checkpoint " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace mr
}  // namespace ddp

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "mapreduce/channel.h"
#include "mapreduce/supervisor.h"

/// \file remote_worker.h
/// The multi-host worker subsystem: exec'd `ddp_worker` processes executing
/// tasks by *name* instead of forked children executing captured closures.
///
/// Fork workers inherit the job's typed map/reduce lambdas (and its input)
/// copy-on-write, which pins every worker to the supervisor's host. A
/// remote worker is a separate binary on any host: it dials the
/// supervisor's `TcpListener`, identifies itself with a kHello whose flags
/// carry `kWorkerHelloRemote`, receives a kJobSetup frame naming the
/// registered job to run, and then answers kTaskAssign frames — each one a
/// (task, attempt, serialized input) triple — with the same streamed-run +
/// kResult protocol fork workers speak. Everything a closure would have
/// captured crosses the wire exactly once, in the kJobSetup context blob.
///
/// Three pieces:
///  * `JobRegistry` — process-global map from stable string ids ("lsh-
///    rho-local", "choose-dc", ...) to factories that decode a JobSetupMsg
///    into a runnable task body. Both ends must register the same jobs;
///    src/ddp/remote_jobs.h's RegisterAllRemoteJobs() covers every DDP
///    driver job.
///  * `RemoteWorkerPool` — supervisor-side: one phase-outliving TcpListener
///    plus the parked channels of idle workers between phases. A
///    `WorkerSupervisor` with `SupervisorConfig::remote_pool` set admits
///    workers from it and parks healthy ones back at phase teardown. One
///    job at a time may use a pool.
///  * `RunRemoteWorker` — worker-side: dial, register, serve. The loop is
///    WorkerLoop, so heartbeat, streamed shuffle, backpressure, reconnect-
///    resume, and chaos crash semantics are byte-identical to fork workers.
///
/// Raw process-control calls (fork/execv/kill/waitpid — used by
/// SpawnWorkerProcess for tests and tools that launch worker processes)
/// stay inside src/mapreduce/ per ddp_lint R7.

namespace ddp {
namespace mr {

/// Process-global registry of named task bodies. A registered factory takes
/// the phase's JobSetupMsg (registry id, driver context blob, partition
/// count, chaos knobs...) and returns the function that runs one task
/// attempt from its serialized input. Registration happens once at process
/// start (RegisterAllRemoteJobs); lookups are concurrent-safe after that.
class JobRegistry {
 public:
  /// Runs one task attempt: decode `input`, execute, fill `result` with the
  /// payload and outbound runs exactly like a fork worker's WorkerTaskFn.
  using TaskRunner =
      std::function<Status(uint64_t task, uint64_t attempt, bool quarantined,
                           const std::string& input, TaskResult* result)>;
  using Factory = std::function<Result<TaskRunner>(const JobSetupMsg& setup)>;

  static JobRegistry& Global();

  /// Registers `factory` under `id`; re-registering an id replaces it (the
  /// last writer wins, so tests can stub jobs).
  void Register(const std::string& id, Factory factory);

  /// Instantiates the runner for `setup.job_id`. NotFound for ids this
  /// binary never registered.
  Result<TaskRunner> Create(const JobSetupMsg& setup) const;

  std::vector<std::string> RegisteredIds() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Factory>> entries_;
};

/// Supervisor-side pool of remote workers: the stable listening endpoint
/// workers dial, plus the parked channels of idle workers handed back by a
/// finished phase. The pool itself never speaks the protocol — it only
/// owns descriptors between phases. One RunPhase may borrow the pool at a
/// time (phases of one job run strictly in sequence, and DdpServer
/// serializes remote jobs on a shared pool).
class RemoteWorkerPool {
 public:
  /// Binds the pool's listener (port 0 picks an ephemeral port).
  static Result<std::unique_ptr<RemoteWorkerPool>> Listen(
      const std::string& host, uint16_t port);

  ~RemoteWorkerPool();

  const std::string& host() const { return host_; }
  uint16_t port() const;
  TcpListener* listener() { return listener_.get(); }

  struct Parked {
    uint64_t id = 0;
    std::unique_ptr<CommChannel> channel;
  };

  /// Hands every parked worker to the caller (the next phase adopts them).
  std::vector<Parked> TakeParked();

  /// Parks an idle worker's channel for the next phase.
  void Park(uint64_t id, std::unique_ptr<CommChannel> channel);

  /// Sends kShutdown to every parked worker and closes the listener; call
  /// when no more phases will run. The destructor does the same.
  void Shutdown();

 private:
  RemoteWorkerPool(std::string host, std::unique_ptr<TcpListener> listener)
      : host_(std::move(host)), listener_(std::move(listener)) {}

  std::string host_;
  std::unique_ptr<TcpListener> listener_;
  std::mutex mu_;
  std::vector<Parked> parked_;
};

/// Knobs for one remote worker process (the ddp_worker binary).
struct RemoteWorkerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// 0 derives (1 << 63) | pid — bit 63 keeps remote ids disjoint from the
  /// supervisor's fork-worker ids on any host.
  uint64_t worker_id = 0;
  double heartbeat_seconds = 0.25;
  uint64_t stream_window_bytes = 4u << 20;
  /// How long one dial (initial or reconnect) keeps retrying with the
  /// seeded backoff before giving up.
  double dial_deadline_seconds = 5.0;
  uint64_t backoff_seed = 1;
  /// >= 0: deterministic chaos — on the Kth kTaskAssign served (0-based),
  /// crash mid-shuffle after shipping half the attempt's runs, exactly like
  /// FaultInjection::worker_crash_rate's mid-shuffle coin.
  int64_t chaos_crash_task = -1;
};

/// Dials the supervisor and serves registered jobs until kShutdown or an
/// unrecoverable channel error. Returns the process exit code.
int RunRemoteWorker(const RemoteWorkerOptions& options);

/// fork+execv of a worker (or any) binary, for tools and tests that launch
/// ddp_worker processes; lives here so raw fork/execv stay in
/// src/mapreduce/. `args` excludes argv[0].
Result<int64_t> SpawnWorkerProcess(const std::string& binary,
                                   const std::vector<std::string>& args);

/// SIGKILLs a process spawned with SpawnWorkerProcess.
void KillWorkerProcess(int64_t pid);

/// waitpid(pid) — reaps a spawned worker; returns its exit code (or -1 for
/// abnormal termination).
int WaitWorkerProcess(int64_t pid);

}  // namespace mr
}  // namespace ddp

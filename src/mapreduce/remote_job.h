#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mapreduce/mapreduce.h"
#include "mapreduce/remote_worker.h"

/// \file remote_job.h
/// Bridges a typed JobSpec to the JobRegistry a ddp_worker serves from:
/// `MakeRegisteredRunner` wraps the spec's map/reduce in the same
/// worker-attempt chaos order a forked worker runs
/// (internal::RunWorkerAttempt), decoding each kTaskAssign input into the
/// shape internal::ExecuteMapTask / ExecuteSortedReduceTask expect.
/// `RegisterRemoteJob` is the one-liner drivers use: register a factory
/// that decodes the JobSetupMsg's context blob back into a JobSpec and
/// hands it here. Bit-identity with local execution follows from the task
/// bodies being the exact same hoisted functions RunJob schedules.

namespace ddp {
namespace mr {

/// Builds the TaskRunner serving one installed job: phase 0 decodes a
/// by-value input slice and runs the map body (always sorted-shuffle — the
/// spill run is the unit of transfer back to the supervisor); phase 1
/// decodes the partition's (is_run, frame bytes) sources and merge-reduces
/// them. The spec is shared, not copied, into the per-task closures.
template <typename In, typename MidK, typename MidV, typename Out>
JobRegistry::TaskRunner MakeRegisteredRunner(
    std::shared_ptr<const JobSpec<In, MidK, MidV, Out>> spec,
    const JobSetupMsg& setup) {
  internal::WorkerChaosParams chaos;
  chaos.faults.seed = setup.fault_seed;
  chaos.faults.map_failure_rate = setup.map_failure_rate;
  chaos.faults.reduce_failure_rate = setup.reduce_failure_rate;
  chaos.faults.straggler_rate = setup.straggler_rate;
  chaos.faults.straggler_slowdown = setup.straggler_slowdown;
  chaos.faults.straggler_min_seconds = setup.straggler_min_seconds;
  chaos.faults.corruption_rate = setup.corruption_rate;
  chaos.faults.worker_crash_rate = setup.worker_crash_rate;
  chaos.faults.poison_task_rate = setup.poison_task_rate;
  chaos.faults.channel_drop_rate = setup.channel_drop_rate;
  chaos.failure_rate =
      setup.phase == 0 ? setup.map_failure_rate : setup.reduce_failure_rate;
  chaos.job_name = setup.job_name;
  chaos.phase = static_cast<int>(setup.phase);
  chaos.drop_chaos = true;  // remote workers always ride a TCP channel

  const size_t num_partitions = static_cast<size_t>(setup.num_partitions);
  const uint64_t budget = setup.memory_budget_bytes;
  const bool skip_bad = setup.skip_bad_records;

  if (setup.phase == 0) {
    // Map: the spill dir is interpreted on THIS host (the worker spills
    // locally, then streams run bytes back over the channel).
    const std::string spill_dir = internal::ResolveSpillDir(setup.spill_dir);
    return [spec, chaos, num_partitions, budget, spill_dir](
               uint64_t task, uint64_t attempt, bool quarantined,
               const std::string& input, TaskResult* result) -> Status {
      std::vector<In> slice;
      {
        BufferReader r(input);
        uint64_t count = 0;
        DDP_RETURN_NOT_OK(r.GetVarint64(&count));
        slice.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          In v{};
          DDP_RETURN_NOT_OK(Serde<In>::Read(&r, &v));
          slice.push_back(std::move(v));
        }
        if (!r.exhausted()) {
          return Status::IoError("map task input has trailing bytes");
        }
      }
      auto body = [&](size_t t, CancelToken* cancel,
                      internal::MapTaskOutput* out) -> Status {
        return internal::ExecuteMapTask(
            *spec, std::span<const In>(slice), t, num_partitions,
            chaos.faults, /*sorted_shuffle=*/true, budget, spill_dir, cancel,
            out);
      };
      return internal::RunWorkerAttempt<internal::MapTaskOutput>(
          chaos, static_cast<size_t>(task), static_cast<size_t>(attempt),
          quarantined, body, internal::ExtractMapRuns,
          internal::SerializeMapCounters, result);
    };
  }

  // Reduce: only reachable for Serde-crossable outputs (RunJob gates remote
  // reduce the same way it gates fork reduce), but the runner must compile
  // for every registered job, so the body is constexpr-guarded.
  return [spec, chaos, skip_bad](uint64_t task, uint64_t attempt,
                                 bool quarantined, const std::string& input,
                                 TaskResult* result) -> Status {
    if constexpr (has_serde_v<Out>) {
      // Decode this partition's sources fully before wiring readers over
      // them: MemoryFrameReader borrows the blob strings, so the vector
      // must not reallocate afterwards.
      std::vector<std::string> blobs;
      bool any_run = false;
      {
        BufferReader r(input);
        uint64_t count = 0;
        DDP_RETURN_NOT_OK(r.GetVarint64(&count));
        blobs.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          uint8_t is_run = 0;
          DDP_RETURN_NOT_OK(r.GetByte(&is_run));
          if (is_run != 0) any_run = true;
          std::string bytes;
          DDP_RETURN_NOT_OK(r.GetString(&bytes));
          blobs.push_back(std::move(bytes));
        }
        if (!r.exhausted()) {
          return Status::IoError("reduce task input has trailing bytes");
        }
      }
      auto body = [&](size_t p, CancelToken* cancel,
                      internal::ReduceTaskOutput<Out>* out) -> Status {
        std::vector<std::unique_ptr<FrameStream>> sources;
        sources.reserve(blobs.size());
        for (const std::string& b : blobs) {
          sources.push_back(std::make_unique<MemoryFrameReader>(b));
        }
        return internal::ExecuteSortedReduceTask(
            *spec, p, std::move(sources), any_run, skip_bad, cancel, out);
      };
      auto extract_none = [](internal::ReduceTaskOutput<Out>&) {
        return std::vector<OutboundRun>();
      };
      auto serialize = [](BufferWriter* w,
                          internal::ReduceTaskOutput<Out>& ro) {
        internal::SerializeReduceOutput<Out>(w, ro);
      };
      return internal::RunWorkerAttempt<internal::ReduceTaskOutput<Out>>(
          chaos, static_cast<size_t>(task), static_cast<size_t>(attempt),
          quarantined, body, extract_none, serialize, result);
    } else {
      (void)spec;
      (void)skip_bad;
      (void)task;
      (void)attempt;
      (void)quarantined;
      (void)input;
      (void)result;
      return Status::Internal(
          "reduce phase assigned for a job whose output type has no serde");
    }
  };
}

/// Registers `make_spec` — a `Result<JobSpec<...>>(const JobSetupMsg&)`
/// that decodes the setup's context blob — under `id` in the global
/// JobRegistry. The id must match the JobSpec::remote_task_id the
/// supervisor side sets (stable across rounds: round-suffixed job *names*
/// ride JobSetupMsg::job_name, not the registry id).
template <typename MakeSpec>
void RegisterRemoteJob(const std::string& id, MakeSpec make_spec) {
  JobRegistry::Global().Register(
      id,
      [make_spec](const JobSetupMsg& setup)
          -> Result<JobRegistry::TaskRunner> {
        DDP_ASSIGN_OR_RETURN(auto built, make_spec(setup));
        auto spec = std::make_shared<std::add_const_t<decltype(built)>>(
            std::move(built));
        return MakeRegisteredRunner(std::move(spec), setup);
      });
}

}  // namespace mr
}  // namespace ddp

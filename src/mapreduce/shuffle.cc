#include "mapreduce/mapreduce.h"

// The MapReduce runtime is fully templated (mapreduce.h); this translation
// unit exists so the build verifies the header is self-contained.

namespace ddp {
namespace mr {}  // namespace mr
}  // namespace ddp

#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file spill.h
/// The out-of-core execution subsystem of the MapReduce runtime, modeled on
/// Hadoop's IFile/merge machinery. With a memory budget configured
/// (`mr::Options::memory_budget_bytes > 0`), a map task no longer holds its
/// whole intermediate output in RAM:
///
///  * `SpillingBuffer` accumulates serialized (key, value) frames per reduce
///    partition; when the buffered payload bytes exceed the budget it
///    key-sorts each partition's in-memory segment (stably, preserving
///    emission order within equal keys) and flushes it to a spill file as a
///    sorted run. One spill writes one file holding one CRC32-trailed run
///    per non-empty partition, exactly like Hadoop's spill files + index.
///  * The reduce side replaces "decode everything, then stable_sort" with
///    `MergingGroupReader`: a streaming k-way merge over that partition's
///    sorted runs plus each task's in-memory tail segment, feeding reduce
///    one key-group at a time without ever materializing the partition.
///
/// Determinism contract: the merged stream is bit-identical to the
/// in-memory path. Sources are ordered (map task id, spill index, tail) and
/// the merge breaks key ties by source ordinal, which reproduces exactly
/// the (map task id, emission index) order a stable sort over the
/// concatenated partition yields — spills within a task always hold earlier
/// emissions than later spills and the tail.
///
/// Spill files are owned by RAII handles: a failed, cancelled, or
/// speculative-loser attempt unlinks its files when its emitter is
/// destroyed, and committed files are unlinked when the job's map outputs
/// are dropped, so no run of `RunJob` leaks spill files.
///
/// Multi-process execution adds cross-process ownership: spill file names
/// carry the creating process id (`...-p<pid>-u<id>-s<n>.spill`), handles
/// unlink only in the process that created them, a supervising parent
/// *adopts* a committed worker file by renaming it under its own pid
/// (`AdoptSpillFile`), and `ReapOrphanSpillFiles` deletes files whose
/// stamped owner process no longer exists — the cleanup path for attempts
/// that died with SIGKILL and never ran their destructors.

namespace ddp {
namespace mr {

/// Owns one spill file on disk; unlinks it on destruction. Shared by every
/// run reference into the file. Ownership is process-local: a handle
/// inherited by a forked child never unlinks, and `Disown()` releases
/// ownership explicitly (a worker disowns the files of a committed task
/// once the supervisor is responsible for them).
class SpillFileHandle {
 public:
  explicit SpillFileHandle(std::string path);
  ~SpillFileHandle();

  SpillFileHandle(const SpillFileHandle&) = delete;
  SpillFileHandle& operator=(const SpillFileHandle&) = delete;

  const std::string& path() const { return path_; }

  /// Keeps the file on disk past this handle's death (another process has
  /// taken ownership).
  void Disown() { owned_ = false; }
  bool owned() const { return owned_; }

 private:
  std::string path_;
  bool owned_ = true;
  long owner_pid_ = 0;
};

/// Takes ownership of another process's committed spill file: renames it
/// (atomically, same directory) to a fresh name stamped with THIS process's
/// pid and returns an owning handle. Run extents are unaffected — rename
/// preserves content. After adoption the file survives the original owner's
/// death and the orphan reaper alike.
Result<std::shared_ptr<SpillFileHandle>> AdoptSpillFile(
    const std::string& path);

/// Deletes every `*.spill` file in `dir` whose stamped owner pid (the last
/// `-p<pid>-` tag in the name) is no longer a live process, and returns how
/// many were removed. Files of live processes, files owned by the calling
/// process, and files without a pid tag are left alone. Missing `dir` is a
/// no-op. Called at job start on the out-of-core path and by the worker
/// supervisor after each worker death.
uint64_t ReapOrphanSpillFiles(const std::string& dir);

/// One sorted run inside a spill file: the frames of one reduce partition
/// from one map-side spill, followed by a 4-byte CRC32 trailer.
struct SpillRun {
  std::shared_ptr<SpillFileHandle> file;
  uint32_t partition = 0;
  uint32_t spill_index = 0;  // order of the spill within its map task
  uint64_t offset = 0;       // byte offset of the run inside the file
  uint64_t length = 0;       // bytes including the 4-byte CRC trailer
};

/// Byte extent of a finished run inside its spill file.
struct SpillExtent {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Appends the 4-byte little-endian CRC32 trailer of `segment`'s current
/// contents to it — turning a bare frame sequence (an in-memory tail) into
/// the exact byte shape of an on-disk run, ready to ship over a channel.
void AppendRunTrailer(std::string* segment);

/// Verifies that `segment` ends with a CRC32 trailer matching the bytes
/// before it and strips the trailer in place. IoError on a short segment or
/// a mismatch — the receiving side's integrity gate for a shipped run.
Status VerifyAndStripRunTrailer(std::string* segment);

/// Reads `length` bytes at `offset` from `path` — the byte-faithful lift of
/// one run extent out of a spill file, used when a committed run must be
/// re-serialized into a remote task's input instead of being read in place.
Result<std::string> ReadFileExtent(const std::string& path, uint64_t offset,
                                   uint64_t length);

/// Sequential writer for one spill file: any number of CRC-trailed runs.
/// Create -> (BeginRun, Append*, EndRun)* -> Close. Write errors surface as
/// retryable Internal statuses (a retried attempt writes fresh files).
class SpillFileWriter {
 public:
  /// Opens `<dir>/<basename>` for writing, creating `dir` (and parents) if
  /// missing. `basename` is sanitized ('/' becomes '_').
  static Result<std::unique_ptr<SpillFileWriter>> Create(
      const std::string& dir, const std::string& basename);

  const std::shared_ptr<SpillFileHandle>& handle() const { return handle_; }
  uint64_t bytes_written() const { return offset_; }

  void BeginRun();
  /// Appends raw bytes to the current run and folds them into its CRC.
  void Append(const void* data, size_t n);
  /// Writes the run's CRC32 trailer and returns its extent.
  Result<SpillExtent> EndRun();
  Status Close();

 private:
  SpillFileWriter(std::shared_ptr<SpillFileHandle> handle, std::ofstream out)
      : handle_(std::move(handle)), out_(std::move(out)) {}

  std::shared_ptr<SpillFileHandle> handle_;
  std::ofstream out_;
  uint64_t offset_ = 0;
  uint64_t run_start_ = 0;
  uint32_t crc_ = 0;
};

/// A stream of length-framed records — the common shape of a spill run on
/// disk and an in-memory tail segment. Framing errors (a broken varint
/// header, a truncated frame, a CRC trailer mismatch) are IoError: they
/// lose record boundaries, so even skip_bad_records cannot step past them.
class FrameStream {
 public:
  virtual ~FrameStream() = default;

  /// Yields the next frame payload (borrowed; valid until the next call) or
  /// sets `*eof` at a clean end of the stream.
  virtual Status NextFrame(std::string_view* payload, bool* eof) = 0;
};

/// Streams frames from one CRC-trailed run of a spill file. The file is
/// opened lazily on first read; each reader owns its own stream position,
/// so concurrent reduce attempts can read the same file independently. The
/// CRC32 of everything read is verified against the trailer at end of run.
class SpillSegmentReader : public FrameStream {
 public:
  SpillSegmentReader(std::shared_ptr<SpillFileHandle> file, uint64_t offset,
                     uint64_t length)
      : file_(std::move(file)),
        offset_(offset),
        remaining_(length >= 4 ? length - 4 : 0),
        bad_extent_(length < 4) {}

  Status NextFrame(std::string_view* payload, bool* eof) override;

 private:
  Status OpenIfNeeded();
  Status Ensure(size_t n);  // buffers at least n unconsumed bytes

  std::shared_ptr<SpillFileHandle> file_;
  std::ifstream in_;
  bool opened_ = false;
  uint64_t offset_;      // file offset of the next unread byte
  uint64_t remaining_;   // frame-data bytes not yet read from disk
  bool bad_extent_;
  uint32_t crc_ = 0;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
};

/// Streams frames from a borrowed in-memory segment (a map task's tail).
class MemoryFrameReader : public FrameStream {
 public:
  explicit MemoryFrameReader(const std::string& buffer) : buf_(&buffer) {}

  Status NextFrame(std::string_view* payload, bool* eof) override;

 private:
  const std::string* buf_;
  size_t pos_ = 0;
};

namespace internal {

/// Resolves the configured spill directory; empty means a "ddp-spill"
/// subdirectory of the system temp directory.
std::string ResolveSpillDir(const std::string& configured);

/// Process-wide unique id for spill file names, so retried and speculative
/// attempts of the same task never collide on disk. Forked children inherit
/// the counter value, which is why spill names also carry the pid tag
/// (`SpillOwnerTag`) — (pid, id) is unique even across workers forked from
/// the same snapshot.
uint64_t NextSpillFileId();

/// The calling process's ownership tag for spill file names: "p<pid>".
std::string SpillOwnerTag();

/// Map-side memory-budgeted buffer. Serializes every (key, value) into a
/// length-framed payload, keeps (decoded key, payload) pairs per partition,
/// and spills sorted runs whenever the buffered payload bytes reach the
/// budget. A task that never hit the budget keeps its output in sorted
/// in-memory segments (`tails()`) and never touches disk; a task that
/// spilled flushes its remainder as a final run at Finish(). `Traits`
/// supplies Hash/Less for the key (mr::KeyTraits in practice).
template <typename MidK, typename MidV, typename Traits>
class SpillingBuffer {
 public:
  SpillingBuffer(size_t num_partitions, uint64_t budget_bytes,
                 std::string spill_dir, std::string file_prefix)
      : budget_bytes_(budget_bytes),
        dir_(std::move(spill_dir)),
        prefix_(std::move(file_prefix)),
        pending_(num_partitions),
        poison_(num_partitions, 0),
        payload_bytes_(num_partitions, 0),
        tails_(num_partitions) {}

  void Add(const MidK& key, const MidV& value) {
    if (!status_.ok()) return;
    scratch_.clear();
    BufferWriter rec(&scratch_);
    Serde<MidK>::Write(&rec, key);
    Serde<MidV>::Write(&rec, value);
    const size_t p = Traits::Hash(key) % pending_.size();
    payload_bytes_[p] += scratch_.size();
    buffered_bytes_ += scratch_.size();
    pending_[p].push_back({key, scratch_});
    ++records_;
    if (budget_bytes_ > 0 && buffered_bytes_ >= budget_bytes_) {
      status_ = Spill();
    }
  }

  /// Queues an undecodable frame for partition `p` (shuffle-corruption
  /// injection). Poison carries no key, so it rides at the end of the next
  /// run (or the tail) and does not count against the budget.
  void AddPoisonFrame(size_t p) { ++poison_[p]; }

  /// Seals the buffer; call once, after the last Add/AddPoisonFrame.
  /// A task that never hit the budget sorts and encodes its output into
  /// in-memory tail segments; a task that spilled flushes the remainder as
  /// a final spill (Hadoop's close-time flush), so its entire output —
  /// poison frames included — lives in sorted runs on disk. Returns the
  /// first deferred spill error.
  Status Finish() {
    if (!status_.ok()) return status_;
    if (spill_count_ > 0) return Spill();
    for (size_t p = 0; p < pending_.size(); ++p) {
      SortPartition(p);
      BufferWriter out(&tails_[p]);
      for (const Pending& rec : pending_[p]) {
        out.PutVarint64(rec.payload.size());
        out.PutRaw(rec.payload.data(), rec.payload.size());
      }
      AppendPoison(&out, p);
      pending_[p].clear();
      pending_[p].shrink_to_fit();
    }
    return Status::OK();
  }

  const Status& status() const { return status_; }
  uint64_t records() const { return records_; }
  const std::vector<uint64_t>& payload_bytes() const { return payload_bytes_; }
  std::vector<std::string>& tails() { return tails_; }
  std::vector<SpillRun>& runs() { return runs_; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  uint64_t spill_files() const { return spill_file_count_; }
  double spill_seconds() const { return spill_seconds_; }

 private:
  struct Pending {
    MidK key;
    std::string payload;
  };

  void SortPartition(size_t p) {
    std::stable_sort(pending_[p].begin(), pending_[p].end(),
                     [](const Pending& a, const Pending& b) {
                       return Traits::Less(a.key, b.key);
                     });
  }

  void AppendPoison(BufferWriter* out, size_t p) {
    for (uint64_t i = 0; i < poison_[p]; ++i) {
      out->PutVarint64(1);
      out->PutByte(0xff);
    }
    poison_[p] = 0;
  }

  Status Spill() {
    bool any = false;
    for (size_t p = 0; p < pending_.size(); ++p) {
      if (!pending_[p].empty() || poison_[p] > 0) any = true;
    }
    if (!any) return Status::OK();
    Stopwatch watch;
    DDP_TRACE_SPAN(spill_span, obs::kCatSpill, obs::kSpanSpillWrite);
    DDP_ASSIGN_OR_RETURN(
        std::unique_ptr<SpillFileWriter> writer,
        SpillFileWriter::Create(
            dir_, prefix_ + "-" + SpillOwnerTag() + "-u" +
                      std::to_string(NextSpillFileId()) + "-s" +
                      std::to_string(spill_count_) + ".spill"));
    std::string frame;
    for (size_t p = 0; p < pending_.size(); ++p) {
      if (pending_[p].empty() && poison_[p] == 0) continue;
      SortPartition(p);
      writer->BeginRun();
      for (const Pending& rec : pending_[p]) {
        frame.clear();
        BufferWriter hdr(&frame);
        hdr.PutVarint64(rec.payload.size());
        writer->Append(frame.data(), frame.size());
        writer->Append(rec.payload.data(), rec.payload.size());
      }
      if (poison_[p] > 0) {
        frame.clear();
        BufferWriter poison(&frame);
        AppendPoison(&poison, p);
        writer->Append(frame.data(), frame.size());
      }
      DDP_ASSIGN_OR_RETURN(SpillExtent extent, writer->EndRun());
      runs_.push_back(SpillRun{writer->handle(), static_cast<uint32_t>(p),
                               spill_count_, extent.offset, extent.length});
      pending_[p].clear();
    }
    const uint64_t written = writer->bytes_written();
    spilled_bytes_ += written;
    DDP_RETURN_NOT_OK(writer->Close());
    ++spill_count_;
    ++spill_file_count_;
    buffered_bytes_ = 0;
    const double seconds = watch.ElapsedSeconds();
    spill_seconds_ += seconds;
    if (spill_span.active()) {
      spill_span.AddArg("bytes", written);
      spill_span.AddArg("runs", static_cast<uint64_t>(runs_.size()));
    }
    DDP_METRIC_HISTOGRAM_SECONDS(obs::kMetricMrSpillWriteSeconds, seconds);
    DDP_METRIC_COUNTER_ADD(obs::kMetricMrSpillWriteBytes, written);
    return Status::OK();
  }

  const uint64_t budget_bytes_;
  const std::string dir_;
  const std::string prefix_;
  std::vector<std::vector<Pending>> pending_;
  std::vector<uint64_t> poison_;
  std::vector<uint64_t> payload_bytes_;
  std::vector<std::string> tails_;
  std::vector<SpillRun> runs_;
  std::string scratch_;
  Status status_;
  uint64_t buffered_bytes_ = 0;
  uint64_t records_ = 0;
  uint32_t spill_count_ = 0;
  uint64_t spill_file_count_ = 0;
  uint64_t spilled_bytes_ = 0;
  double spill_seconds_ = 0.0;
};

/// Streaming k-way merge over key-sorted frame streams, yielding one key
/// group at a time. Sources must be passed in (map task id, spill index,
/// tail) order; key ties break by source ordinal, which together with each
/// source's internal stability reproduces the in-memory path's
/// stable-sorted order exactly. Undecodable frames are skipped and counted
/// when `skip_bad_records` is set, otherwise they abort with IoError —
/// identical semantics to the in-memory decode loop.
template <typename MidK, typename MidV, typename Traits>
class MergingGroupReader {
 public:
  MergingGroupReader(std::vector<std::unique_ptr<FrameStream>> sources,
                     bool skip_bad_records, CancelToken* cancel)
      : skip_bad_(skip_bad_records), cancel_(cancel) {
    cursors_.reserve(sources.size());
    for (auto& s : sources) cursors_.push_back(Cursor{std::move(s), {}, {}});
  }

  /// Primes every source; call once before NextGroup.
  Status Init() {
    heap_.reserve(cursors_.size());
    for (size_t i = 0; i < cursors_.size(); ++i) {
      bool alive = false;
      DDP_RETURN_NOT_OK(Advance(i, &alive));
      if (alive) Push(i);
    }
    return Status::OK();
  }

  /// Reads the next key group into (*key, *values); `*has` is false at the
  /// end of the merged stream.
  Status NextGroup(MidK* key, std::vector<MidV>* values, bool* has) {
    *has = false;
    if (heap_.empty()) return Status::OK();
    values->clear();
    size_t i = Pop();
    *key = cursors_[i].key;
    values->push_back(std::move(cursors_[i].value));
    bool alive = false;
    DDP_RETURN_NOT_OK(Advance(i, &alive));
    if (alive) Push(i);
    while (!heap_.empty() && cursors_[heap_.front()].key == *key) {
      size_t j = Pop();
      values->push_back(std::move(cursors_[j].value));
      DDP_RETURN_NOT_OK(Advance(j, &alive));
      if (alive) Push(j);
    }
    *has = true;
    return Status::OK();
  }

  uint64_t skipped() const { return skipped_; }

 private:
  struct Cursor {
    std::unique_ptr<FrameStream> stream;
    MidK key;
    MidV value;
  };

  /// Decodes the next record of source `i`; `*alive` is false at stream
  /// end. Skips (or rejects) undecodable frames.
  Status Advance(size_t i, bool* alive) {
    Cursor& c = cursors_[i];
    while (true) {
      if ((frames_++ & 1023u) == 0 && cancel_ != nullptr &&
          cancel_->cancelled()) {
        return Status::Cancelled("reduce attempt abandoned");
      }
      std::string_view payload;
      bool eof = false;
      DDP_RETURN_NOT_OK(c.stream->NextFrame(&payload, &eof));
      if (eof) {
        *alive = false;
        return Status::OK();
      }
      BufferReader rec(payload.data(), payload.size());
      Status st = Serde<MidK>::Read(&rec, &c.key);
      if (st.ok()) st = Serde<MidV>::Read(&rec, &c.value);
      if (st.ok() && !rec.exhausted()) {
        st = Status::IoError("record decoded short of its frame");
      }
      if (!st.ok()) {
        if (skip_bad_) {
          ++skipped_;
          continue;
        }
        return Status::IoError("bad record: " + st.message());
      }
      *alive = true;
      return Status::OK();
    }
  }

  // Min-heap over source indices ordered by (key, source ordinal). `After`
  // is the max-heap comparator std::push_heap expects: true when a sits
  // below b, i.e. a's record comes after b's in merge order.
  bool After(size_t a, size_t b) const {
    if (Traits::Less(cursors_[a].key, cursors_[b].key)) return false;
    if (Traits::Less(cursors_[b].key, cursors_[a].key)) return true;
    return a > b;
  }
  void Push(size_t i) {
    heap_.push_back(i);
    std::push_heap(heap_.begin(), heap_.end(),
                   [this](size_t a, size_t b) { return After(a, b); });
  }
  size_t Pop() {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [this](size_t a, size_t b) { return After(a, b); });
    size_t i = heap_.back();
    heap_.pop_back();
    return i;
  }

  std::vector<Cursor> cursors_;
  std::vector<size_t> heap_;
  const bool skip_bad_;
  CancelToken* cancel_;
  uint64_t skipped_ = 0;
  uint64_t frames_ = 0;
};

}  // namespace internal
}  // namespace mr
}  // namespace ddp


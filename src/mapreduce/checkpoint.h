#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/serde.h"

/// \file checkpoint.h
/// Driver recovery for multi-job pipelines. A `CheckpointStore` persists each
/// completed job's output (serialized with `common/serde.h`) under a
/// directory; when a pipeline is killed between jobs and re-run against the
/// same directory, `mr::RunJob` replays completed jobs from disk instead of
/// executing them, so the resumed pipeline produces bit-identical results —
/// the job-boundary restart semantics a Hadoop driver gets from HDFS output
/// committers.
///
/// Keys are sequence-scoped: the k-th job of a pipeline gets key
/// "<k>-<job name>". A deterministic pipeline requests the same jobs in the
/// same order on every run, so keys line up across kill/resume. The driver
/// (`RunDistributedDp`) resets the sequence at pipeline start.
///
/// On-disk format per entry: magic "DPCK", varint payload size, payload,
/// 8-byte FNV-1a checksum of the payload. Files are written to a .tmp path
/// and renamed, so a kill mid-write never leaves a readable-but-partial
/// checkpoint; a corrupt or truncated entry is treated as absent and the job
/// simply re-runs.

namespace ddp {
namespace mr {

class CheckpointStore {
 public:
  /// Creates the directory (and parents) if missing.
  explicit CheckpointStore(std::string dir);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  const std::string& dir() const { return dir_; }

  /// Returns the key for the next job in the pipeline and advances the
  /// sequence. Called once per RunJob invocation.
  std::string NextKey(const std::string& job_name);

  /// Rewinds the sequence to 0 — call at the start of a (re-)run so resumed
  /// pipelines regenerate the same keys.
  void ResetSequence();

  /// True when a valid (checksummed) entry exists for `key`.
  bool Has(const std::string& key) const;

  /// Loads an entry's payload. NotFound when absent, IoError when the entry
  /// exists but fails the checksum or framing check.
  Result<std::string> LoadBytes(const std::string& key) const;

  /// Persists `payload` atomically. Returns Cancelled when a simulated
  /// driver kill (SetKillAfter) triggers instead of writing.
  Status SaveBytes(const std::string& key, const std::string& payload);

  /// Test/demo hook simulating a driver crash: after `saves` successful
  /// SaveBytes calls, the next one returns Cancelled without persisting
  /// (the job's output is lost, exactly like a kill between jobs).
  /// Negative disables (default).
  void SetKillAfter(int64_t saves);

 private:
  std::string PathFor(const std::string& key) const;

  std::string dir_;
  mutable std::mutex mu_;
  uint64_t seq_ = 0;
  int64_t kill_after_ = -1;
  int64_t saves_ = 0;
};

}  // namespace mr
}  // namespace ddp


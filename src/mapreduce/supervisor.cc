#include "mapreduce/supervisor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/random.h"
#include "common/serde.h"
#include "mapreduce/spill.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddp {
namespace mr {

bool ForkExecutionSupported() {
#ifdef _WIN32
  return false;
#else
  bool supported = true;
  // TSan cannot instrument threads created in a forked child (the worker's
  // heartbeat thread), so fork mode degrades to the in-process executor
  // under it rather than producing false positives or aborts.
#if defined(__SANITIZE_THREAD__)
  supported = false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  supported = false;
#endif
#endif
  return supported;
#endif
}

std::string TaskMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutByte(quarantined ? 1 : 0);
  return bytes;
}

Status TaskMsg::Decode(const std::string& bytes, TaskMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  uint8_t q = 0;
  DDP_RETURN_NOT_OK(r.GetByte(&q));
  out->quarantined = q != 0;
  return Status::OK();
}

std::string ResultMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutSignedVarint64(status_code);
  w.PutString(status_message);
  w.PutDouble(seconds);
  w.PutString(payload);
  return bytes;
}

Status ResultMsg::Decode(const std::string& bytes, ResultMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  int64_t code = 0;
  DDP_RETURN_NOT_OK(r.GetSignedVarint64(&code));
  out->status_code = static_cast<int32_t>(code);
  DDP_RETURN_NOT_OK(r.GetString(&out->status_message));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->seconds));
  DDP_RETURN_NOT_OK(r.GetString(&out->payload));
  if (!r.exhausted()) return Status::IoError("trailing bytes in ResultMsg");
  return Status::OK();
}

#ifndef _WIN32

void CrashSelf() {
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();  // unreachable; satisfies [[noreturn]]
}

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

Clock::duration FromSeconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(s, 0.0)));
}

Status StatusFromWire(int32_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(message));
}

struct Worker {
  pid_t pid = -1;
  std::unique_ptr<PipeChannel> ch;
  bool busy = false;
  size_t task = 0;
  size_t attempt = 0;
  Clock::time_point dispatched{};
  Clock::time_point last_beat{};
  std::unique_ptr<obs::Span> span;
};

struct TaskState {
  size_t failed_attempts = 0;
  size_t next_attempt = 0;
  bool done = false;
  bool in_flight = false;
  bool quarantined = false;
  size_t consecutive_crashes = 0;
  Clock::time_point not_before{};  // backoff gate for the next attempt
};

void ReapPid(pid_t pid) {
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace

Status WorkerSupervisor::RunPhase(const SupervisorConfig& cfg,
                                  const WorkerTaskFn& fn, const CommitFn& commit,
                                  SupervisorStats* stats) {
  if (!ForkExecutionSupported()) {
    return Status::NotImplemented("fork execution unsupported in this build");
  }
  if (cfg.num_tasks == 0) return Status::OK();
  const char* phase_name = cfg.phase == 0 ? "map" : "reduce";

  DDP_TRACE_SPAN(phase_span, "mr", "supervised_phase");
  if (phase_span.active()) {
    phase_span.AddArg("job", cfg.job_name);
    phase_span.AddArg("phase", std::string_view(phase_name));
    phase_span.AddArg("tasks", static_cast<uint64_t>(cfg.num_tasks));
  }
  obs::Histogram* crash_hist = obs::MetricsRegistry::Global().GetHistogram(
      "mr.worker_crash_latency_seconds");

  std::vector<Worker> workers;
  std::vector<TaskState> tasks(cfg.num_tasks);
  std::atomic<size_t> completed{0};
  size_t restarts_used = 0;
  Status job_error;

  const size_t target_workers =
      std::max<size_t>(1, std::min(cfg.num_workers, cfg.num_tasks));
  const ExponentialBackoff respawn_backoff(
      cfg.respawn_backoff, SplitSeed(cfg.backoff_seed, 0x5e5u));
  auto task_backoff = [&cfg](size_t t) {
    return ExponentialBackoff(cfg.retry_backoff,
                              SplitSeed(cfg.backoff_seed, t));
  };

  auto spawn_worker = [&]() -> Status {
    DDP_ASSIGN_OR_RETURN(auto ends, PipeChannel::CreatePair());
    const pid_t pid = ::fork();
    if (pid < 0) {
      return Status::Internal(std::string("cannot fork worker: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Worker process. Drop every supervisor-side descriptor we inherited
      // (ours, and those of workers forked before us) so a sibling's EOF is
      // seen the moment that sibling dies.
      ends.first->Close();
      for (Worker& w : workers) {
        if (w.ch != nullptr) w.ch->Close();
      }
      WorkerMain(ends.second.get(), fn, cfg.child_heartbeat_seconds);
    }
    ends.second->Close();
    Worker w;
    w.pid = pid;
    w.ch = std::move(ends.first);
    w.last_beat = Clock::now();
    w.span = std::make_unique<obs::Span>("mr", "worker");
    if (w.span->active()) {
      w.span->AddArg("job", cfg.job_name);
      w.span->AddArg("phase", std::string_view(phase_name));
      w.span->AddArg("pid", static_cast<uint64_t>(pid));
    }
    workers.push_back(std::move(w));
    return Status::OK();
  };

  // Charges a failed attempt of `t` and decides retry / quarantine / abort.
  // `crashed` marks worker-killing failures (they feed the poison counter).
  auto charge_failure = [&](size_t t, bool crashed, const Status& why) {
    TaskState& ts = tasks[t];
    ts.in_flight = false;
    if (ts.done) return;
    if (crashed) {
      ++ts.consecutive_crashes;
    } else {
      ts.consecutive_crashes = 0;
    }
    ++ts.failed_attempts;
    if (!ts.quarantined &&
        ts.consecutive_crashes >= cfg.quarantine_after_crashes) {
      if (cfg.skip_bad_records) {
        // Poisonous record: re-run the task in quarantine with a fresh
        // attempt budget — Hadoop's skip-mode re-execution.
        ts.quarantined = true;
        ts.failed_attempts = 0;
        ts.consecutive_crashes = 0;
        ++stats->quarantined_tasks;
        DDP_METRIC_COUNTER_ADD("mr.quarantined_tasks", 1);
        DDP_LOG(Warning) << cfg.job_name << " " << phase_name << " task " << t
                         << " crashed " << cfg.quarantine_after_crashes
                         << " consecutive workers; quarantining";
      } else {
        job_error = Status::Internal(
            std::string(phase_name) + " task " + std::to_string(t) +
            " crashed " + std::to_string(ts.consecutive_crashes) +
            " consecutive workers (poisonous record; enable "
            "skip_bad_records to quarantine): " +
            why.ToString());
        return;
      }
    } else if (ts.failed_attempts >= cfg.max_task_attempts) {
      job_error = Status::Internal(
          std::string(phase_name) + " task " + std::to_string(t) +
          " failed after " + std::to_string(cfg.max_task_attempts) +
          " attempts; last error: " + why.ToString());
      return;
    }
    ++stats->retries;
    ts.not_before =
        Clock::now() +
        FromSeconds(task_backoff(t).DelaySeconds(
            ts.failed_attempts == 0 ? 0 : ts.failed_attempts - 1));
  };

  // Tears down worker `wi` after its death or kill. `hang` marks workers we
  // SIGKILLed for deadline/heartbeat silence; everything else is a crash.
  auto handle_worker_death = [&](size_t wi, bool hang, bool deadline_hit) {
    Worker w = std::move(workers[wi]);
    workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(wi));
    w.ch->Close();
    ReapPid(w.pid);
    if (hang) {
      ++stats->worker_hangs;
      if (deadline_hit) ++stats->deadline_kills;
    } else {
      ++stats->worker_crashes;
      DDP_METRIC_COUNTER_ADD("mr.worker_crashes", 1);
    }
    if (w.span != nullptr) {
      if (w.span->active()) {
        w.span->AddArg("exit", hang ? "hang" : "crash");
        w.span->MarkCancelled();
      }
      w.span.reset();
    }
    if (w.busy) {
      crash_hist->RecordSeconds(SecondsSince(w.dispatched, Clock::now()));
      charge_failure(w.task, /*crashed=*/!hang,
                     hang ? Status::DeadlineExceeded("worker hang")
                          : Status::Internal("worker crashed"));
    }
    // The dead worker's uncommitted spill files are orphans now; committed
    // files were adopted (renamed to a live owner) as their results were
    // committed, so the reaper cannot touch them.
    if (!cfg.spill_dir.empty()) {
      stats->spill_files_reaped += ReapOrphanSpillFiles(cfg.spill_dir);
    }
  };

  auto kill_worker = [&](size_t wi, bool hang, bool deadline_hit) {
    ::kill(workers[wi].pid, SIGKILL);
    ++stats->worker_kills;
    DDP_METRIC_COUNTER_ADD("mr.worker_kills", 1);
    handle_worker_death(wi, hang, deadline_hit);
  };

  // ---- Initial crew. Total spawn failure aborts before any task ran, so
  // RunJob can fall back to the in-process executor.
  for (size_t i = 0; i < target_workers; ++i) {
    Status st = spawn_worker();
    if (!st.ok()) {
      if (workers.empty()) {
        // NotImplemented is the caller's single "fork execution is not
        // available here" signal — same as the unsupported-platform path.
        return Status::NotImplemented("cannot spawn workers: " +
                                      st.ToString());
      }
      DDP_LOG(Warning) << cfg.job_name << ": spawned only " << workers.size()
                       << "/" << target_workers
                       << " workers: " << st.ToString();
      break;
    }
  }

  std::optional<obs::ProgressHeartbeat> progress;
  if (cfg.progress_heartbeat_seconds > 0.0) {
    progress.emplace(cfg.progress_heartbeat_seconds, [&completed, &cfg,
                                                      phase_name] {
      return cfg.job_name + " " + phase_name + " (fork): " +
             std::to_string(completed.load(std::memory_order_relaxed)) + "/" +
             std::to_string(cfg.num_tasks) + " tasks done";
    });
  }

  Clock::time_point next_respawn = Clock::now();

  // ---- Event loop: dispatch, poll, classify, repeat.
  while (completed.load(std::memory_order_relaxed) < cfg.num_tasks &&
         job_error.ok()) {
    const Clock::time_point now = Clock::now();

    // Respawn toward the target crew while the restart budget lasts.
    if (workers.size() < target_workers && now >= next_respawn) {
      if (restarts_used < cfg.max_worker_restarts) {
        Status st = spawn_worker();
        if (st.ok()) {
          ++restarts_used;
          ++stats->worker_restarts;
          DDP_METRIC_COUNTER_ADD("mr.worker_restarts", 1);
        } else if (workers.empty()) {
          job_error = Status::Internal("cannot respawn any worker: " +
                                       st.ToString());
          break;
        }
        next_respawn =
            now + FromSeconds(respawn_backoff.DelaySeconds(restarts_used));
      } else if (workers.empty()) {
        job_error = Status::Internal(
            "all workers dead and the restart budget (" +
            std::to_string(cfg.max_worker_restarts) + ") is exhausted");
        break;
      }
    }

    // Dispatch ready tasks to idle workers (lowest task id first, so runs
    // are easy to reason about; commit order is by task id regardless).
    for (Worker& w : workers) {
      if (w.busy) continue;
      for (size_t t = 0; t < cfg.num_tasks; ++t) {
        TaskState& ts = tasks[t];
        if (ts.done || ts.in_flight || now < ts.not_before) continue;
        TaskMsg msg{t, ts.next_attempt++, ts.quarantined};
        Status sent = w.ch->Send(Frame{MessageType::kTask, msg.Encode()});
        if (sent.ok()) {
          w.busy = true;
          w.task = t;
          w.attempt = msg.attempt;
          w.dispatched = now;
          w.last_beat = now;
          ts.in_flight = true;
        } else {
          // A dead socket shows up as a failed send; the poll pass below
          // will see the EOF and run the death path. Re-arm the attempt.
          --ts.next_attempt;
        }
        break;
      }
    }

    // Wait for worker traffic; the 10ms cap bounds backoff-gate, respawn,
    // and hang-scan latency.
    std::vector<struct pollfd> pfds;
    std::vector<pid_t> pfd_pids;
    pfds.reserve(workers.size());
    for (const Worker& w : workers) {
      pfds.push_back({w.ch->fd(), POLLIN, 0});
      pfd_pids.push_back(w.pid);
    }
    if (!pfds.empty()) {
      const int rc = ::poll(pfds.data(),
                            static_cast<nfds_t>(pfds.size()), /*timeout=*/10);
      if (rc < 0 && errno != EINTR) {
        job_error = Status::Internal(std::string("supervisor poll failed: ") +
                                     std::strerror(errno));
        break;
      }
    }

    for (size_t i = 0; i < pfds.size() && job_error.ok(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      // Re-find the worker: earlier death handling may have reshuffled.
      size_t wi = workers.size();
      for (size_t j = 0; j < workers.size(); ++j) {
        if (workers[j].pid == pfd_pids[i]) {
          wi = j;
          break;
        }
      }
      if (wi == workers.size()) continue;
      Worker& w = workers[wi];
      Frame frame;
      Status received = w.ch->Recv(&frame, /*timeout_seconds=*/30.0);
      if (!received.ok()) {
        // EOF or a corrupt frame: either way record boundaries are gone and
        // the worker is unusable. Make sure it is dead, then classify.
        ::kill(w.pid, SIGKILL);
        handle_worker_death(wi, /*hang=*/false, /*deadline_hit=*/false);
        continue;
      }
      w.last_beat = Clock::now();
      if (frame.type == MessageType::kResult) {
        ResultMsg msg;
        Status decoded = ResultMsg::Decode(frame.payload, &msg);
        if (!decoded.ok() || msg.task >= cfg.num_tasks) {
          ::kill(w.pid, SIGKILL);
          ++stats->worker_kills;
          handle_worker_death(wi, /*hang=*/false, /*deadline_hit=*/false);
          continue;
        }
        w.busy = false;
        TaskState& ts = tasks[msg.task];
        // The worker survived the attempt, whatever its verdict: the
        // poison counter tracks worker-killing records only.
        ts.consecutive_crashes = 0;
        Status attempt_status =
            StatusFromWire(msg.status_code, msg.status_message);
        if (ts.done) continue;  // defensive: no duplicate commits
        if (attempt_status.ok()) {
          ts.done = true;
          ts.in_flight = false;
          completed.fetch_add(1, std::memory_order_relaxed);
          stats->durations.push_back(msg.seconds);
          Status committed = commit(msg.task, ts.quarantined, msg.seconds,
                                    std::move(msg.payload));
          if (!committed.ok()) job_error = committed;
        } else if (attempt_status.IsIoError()) {
          // Deterministically corrupt input: retrying re-reads the same
          // bytes. Fail fast, matching the in-process scheduler.
          job_error = attempt_status;
        } else {
          charge_failure(msg.task, /*crashed=*/false, attempt_status);
        }
      }
      // kHello and kHeartbeat only refresh last_beat, done above.
    }
    if (!job_error.ok()) break;

    // Hang scan: deadline overruns and heartbeat silence get a SIGKILL and
    // are charged like an in-process deadline kill.
    const Clock::time_point scan_now = Clock::now();
    for (size_t wi = workers.size(); wi-- > 0;) {
      Worker& w = workers[wi];
      if (!w.busy) continue;
      const bool deadline_hit =
          cfg.task_deadline_seconds > 0.0 &&
          SecondsSince(w.dispatched, scan_now) > cfg.task_deadline_seconds;
      const bool silent =
          cfg.child_heartbeat_seconds > 0.0 &&
          SecondsSince(w.last_beat, scan_now) >
              cfg.heartbeat_grace * cfg.child_heartbeat_seconds;
      if (deadline_hit || silent) {
        kill_worker(wi, /*hang=*/true, deadline_hit);
      }
    }
  }

  // ---- Teardown: polite shutdown, bounded wait, then force.
  for (Worker& w : workers) {
    (void)w.ch->Send(Frame{MessageType::kShutdown, ""});
  }
  for (Worker& w : workers) w.ch->Close();
  for (Worker& w : workers) {
    const Clock::time_point give_up = Clock::now() + FromSeconds(2.0);
    bool reaped = false;
    while (Clock::now() < give_up) {
      int wstatus = 0;
      const pid_t got = ::waitpid(w.pid, &wstatus, WNOHANG);
      if (got == w.pid || (got < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::poll(nullptr, 0, 5);  // 5ms nap between reap polls
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ++stats->worker_kills;
      ReapPid(w.pid);
    }
    if (w.span != nullptr) w.span.reset();
  }
  workers.clear();
  if (!job_error.ok() && !cfg.spill_dir.empty()) {
    stats->spill_files_reaped += ReapOrphanSpillFiles(cfg.spill_dir);
  }
  if (!job_error.ok() && phase_span.active()) phase_span.MarkCancelled();
  if (phase_span.active()) {
    phase_span.AddArg("worker_crashes", stats->worker_crashes);
    phase_span.AddArg("worker_restarts", stats->worker_restarts);
  }
  return job_error;
}

#else  // _WIN32

void CrashSelf() { std::abort(); }

Status WorkerSupervisor::RunPhase(const SupervisorConfig&, const WorkerTaskFn&,
                                  const CommitFn&, SupervisorStats*) {
  return Status::NotImplemented("fork execution requires POSIX");
}

#endif

}  // namespace mr
}  // namespace ddp

#include "mapreduce/supervisor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/random.h"
#include "common/serde.h"
#include "mapreduce/remote_worker.h"
#include "mapreduce/spill.h"
#include "obs/heartbeat.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddp {
namespace mr {

bool ForkExecutionSupported() {
#ifdef _WIN32
  return false;
#else
  bool supported = true;
  // TSan cannot instrument threads created in a forked child (the worker's
  // heartbeat thread), so fork mode degrades to the in-process executor
  // under it rather than producing false positives or aborts.
#if defined(__SANITIZE_THREAD__)
  supported = false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  supported = false;
#endif
#endif
  return supported;
#endif
}

std::string TaskMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutByte(quarantined ? 1 : 0);
  return bytes;
}

Status TaskMsg::Decode(const std::string& bytes, TaskMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  uint8_t q = 0;
  DDP_RETURN_NOT_OK(r.GetByte(&q));
  out->quarantined = q != 0;
  return Status::OK();
}

std::string ResultMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutSignedVarint64(status_code);
  w.PutString(status_message);
  w.PutDouble(seconds);
  w.PutString(payload);
  return bytes;
}

Status ResultMsg::Decode(const std::string& bytes, ResultMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  int64_t code = 0;
  DDP_RETURN_NOT_OK(r.GetSignedVarint64(&code));
  out->status_code = static_cast<int32_t>(code);
  DDP_RETURN_NOT_OK(r.GetString(&out->status_message));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->seconds));
  DDP_RETURN_NOT_OK(r.GetString(&out->payload));
  if (!r.exhausted()) return Status::IoError("trailing bytes in ResultMsg");
  return Status::OK();
}

std::string HelloMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(worker_id);
  w.PutVarint64(generation);
  // Optional trailing field: forked workers (flags == 0) keep the original
  // two-field wire bytes, so old and new hellos interoperate.
  if (flags != 0) w.PutVarint64(flags);
  return bytes;
}

Status HelloMsg::Decode(const std::string& bytes, HelloMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->worker_id));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->generation));
  out->flags = 0;
  if (!r.exhausted()) {
    uint64_t flags64 = 0;
    DDP_RETURN_NOT_OK(r.GetVarint64(&flags64));
    out->flags = static_cast<uint32_t>(flags64);
  }
  if (!r.exhausted()) return Status::IoError("trailing bytes in HelloMsg");
  return Status::OK();
}

std::string JobSetupMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutString(job_id);
  w.PutString(job_name);
  w.PutVarint64(phase);
  w.PutString(ctx);
  w.PutVarint64(num_partitions);
  w.PutVarint64(memory_budget_bytes);
  w.PutString(spill_dir);
  w.PutByte(skip_bad_records ? 1 : 0);
  w.PutVarint64(fault_seed);
  w.PutDouble(map_failure_rate);
  w.PutDouble(reduce_failure_rate);
  w.PutDouble(straggler_rate);
  w.PutDouble(straggler_slowdown);
  w.PutDouble(straggler_min_seconds);
  w.PutDouble(corruption_rate);
  w.PutDouble(worker_crash_rate);
  w.PutDouble(poison_task_rate);
  w.PutDouble(channel_drop_rate);
  return bytes;
}

Status JobSetupMsg::Decode(const std::string& bytes, JobSetupMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetString(&out->job_id));
  DDP_RETURN_NOT_OK(r.GetString(&out->job_name));
  uint64_t phase64 = 0;
  DDP_RETURN_NOT_OK(r.GetVarint64(&phase64));
  out->phase = static_cast<uint32_t>(phase64);
  DDP_RETURN_NOT_OK(r.GetString(&out->ctx));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->num_partitions));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->memory_budget_bytes));
  DDP_RETURN_NOT_OK(r.GetString(&out->spill_dir));
  uint8_t skip = 0;
  DDP_RETURN_NOT_OK(r.GetByte(&skip));
  out->skip_bad_records = skip != 0;
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->fault_seed));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->map_failure_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->reduce_failure_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->straggler_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->straggler_slowdown));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->straggler_min_seconds));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->corruption_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->worker_crash_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->poison_task_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->channel_drop_rate));
  if (!r.exhausted()) return Status::IoError("trailing bytes in JobSetupMsg");
  return Status::OK();
}

std::string TaskAssignMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutByte(quarantined ? 1 : 0);
  w.PutString(input);
  return bytes;
}

Status TaskAssignMsg::Decode(const std::string& bytes, TaskAssignMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  uint8_t q = 0;
  DDP_RETURN_NOT_OK(r.GetByte(&q));
  out->quarantined = q != 0;
  DDP_RETURN_NOT_OK(r.GetString(&out->input));
  if (!r.exhausted()) return Status::IoError("trailing bytes in TaskAssignMsg");
  return Status::OK();
}

std::string RunBeginMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutVarint64(seq);
  w.PutVarint64(partition);
  w.PutVarint64(spill_index);
  w.PutVarint64(length);
  return bytes;
}

Status RunBeginMsg::Decode(const std::string& bytes, RunBeginMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->seq));
  uint64_t partition64 = 0;
  uint64_t spill64 = 0;
  DDP_RETURN_NOT_OK(r.GetVarint64(&partition64));
  DDP_RETURN_NOT_OK(r.GetVarint64(&spill64));
  out->partition = static_cast<uint32_t>(partition64);
  out->spill_index = static_cast<uint32_t>(spill64);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->length));
  if (!r.exhausted()) return Status::IoError("trailing bytes in RunBeginMsg");
  return Status::OK();
}

std::string RunEndMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutVarint64(seq);
  return bytes;
}

Status RunEndMsg::Decode(const std::string& bytes, RunEndMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->seq));
  if (!r.exhausted()) return Status::IoError("trailing bytes in RunEndMsg");
  return Status::OK();
}

std::string RunAckMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(task);
  w.PutVarint64(attempt);
  w.PutVarint64(acked_runs);
  w.PutVarint64(acked_bytes);
  return bytes;
}

Status RunAckMsg::Decode(const std::string& bytes, RunAckMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->task));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->attempt));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->acked_runs));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->acked_bytes));
  if (!r.exhausted()) return Status::IoError("trailing bytes in RunAckMsg");
  return Status::OK();
}

#ifndef _WIN32

void CrashSelf() {
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();  // unreachable; satisfies [[noreturn]]
}

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

Clock::duration FromSeconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(s, 0.0)));
}

Status StatusFromWire(int32_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(message));
}

/// A run currently arriving over the channel.
struct OpenRun {
  RunBeginMsg begin;
  std::string buf;  // accumulated run bytes, trailer included
  Clock::time_point started{};
};

/// Per-attempt commit state on the supervisor side: runs committed so far
/// (disk-backed ones in a supervisor-owned spill file), ack bookkeeping,
/// and the run in flight. Discarded wholesale when the attempt fails —
/// dropping `writer`'s last handle reference unlinks the file.
struct AttemptStream {
  std::vector<CommittedRun> committed;
  uint64_t committed_bytes = 0;
  uint64_t last_acked_bytes = 0;
  std::unique_ptr<SpillFileWriter> writer;
  std::optional<OpenRun> open;
};

struct Worker {
  pid_t pid = -1;  // -1 for remote workers: their process is not our child
  uint64_t id = 0;
  /// Remote workers run a registered job in an exec'd ddp_worker process;
  /// they are fed kTaskAssign frames and evicted (never killed or reaped)
  /// when they disappear.
  bool remote = false;
  /// Null while a TCP worker is connecting (or reconnecting after a drop).
  std::unique_ptr<CommChannel> ch;
  bool busy = false;
  size_t task = 0;
  size_t attempt = 0;
  Clock::time_point dispatched{};
  Clock::time_point last_beat{};
  AttemptStream stream;
  std::unique_ptr<obs::Span> span;
};

struct TaskState {
  size_t failed_attempts = 0;
  size_t next_attempt = 0;
  bool done = false;
  bool in_flight = false;
  bool quarantined = false;
  size_t consecutive_crashes = 0;
  Clock::time_point not_before{};  // backoff gate for the next attempt
};

void ReapPid(pid_t pid) {
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace

Status WorkerSupervisor::RunPhase(const SupervisorConfig& cfg,
                                  const WorkerTaskFn& fn, const CommitFn& commit,
                                  SupervisorStats* stats) {
  if (!ForkExecutionSupported() && cfg.remote_pool == nullptr) {
    return Status::NotImplemented("fork execution unsupported in this build");
  }
  if (cfg.num_tasks == 0) return Status::OK();
  const char* phase_name = cfg.phase == 0 ? "map" : "reduce";

  DDP_TRACE_SPAN(phase_span, obs::kCatMr, obs::kSpanSupervisedPhase);
  if (phase_span.active()) {
    phase_span.AddArg("job", cfg.job_name);
    phase_span.AddArg("phase", std::string_view(phase_name));
    phase_span.AddArg("tasks", static_cast<uint64_t>(cfg.num_tasks));
    phase_span.AddArg("transport", std::string_view(
        cfg.transport == Transport::kTcp ? "tcp" : "pipe"));
  }
  obs::Histogram* crash_hist = obs::MetricsRegistry::Global().GetHistogram(
      obs::kMetricMrWorkerCrashLatencySeconds);
  obs::Histogram* ship_hist =
      obs::MetricsRegistry::Global().GetHistogram(obs::kMetricMrRunShipSeconds);

  // TCP: listen before the first fork so children know where to connect.
  // A bind failure is a fallback signal, not a job error — nothing ran yet.
  // With a remote pool the pool's own (phase-outliving) listener is used
  // instead, so remote workers keep one stable endpoint across phases.
  std::unique_ptr<TcpListener> own_listener;
  TcpListener* listener = nullptr;
  if (cfg.remote_pool != nullptr) {
    listener = cfg.remote_pool->listener();
  } else if (cfg.transport == Transport::kTcp) {
    auto listening = TcpListener::Listen(cfg.tcp_host, cfg.tcp_port);
    if (!listening.ok()) {
      return Status::NotImplemented("cannot listen for workers: " +
                                    listening.status().ToString());
    }
    own_listener = std::move(listening).value();
    listener = own_listener.get();
  }

  const uint64_t window = cfg.stream_window_bytes > 0
                              ? cfg.stream_window_bytes
                              : (uint64_t{4} << 20);
  const uint64_t ack_threshold = std::max<uint64_t>(1, window / 2);
  // Workers give up connecting after reconnect_grace_seconds; the
  // supervisor waits one extra second so the worker's own exit wins.
  const double connect_grace = std::max(2.0, cfg.reconnect_grace_seconds) + 1.0;

  std::vector<Worker> workers;
  std::vector<TaskState> tasks(cfg.num_tasks);
  std::atomic<size_t> completed{0};
  size_t restarts_used = 0;
  uint64_t next_worker_id = 1;
  Status job_error;

  // With a remote pool the forked crew may be empty (num_workers == 0 means
  // pure-remote execution); without one at least one fork worker is needed.
  const size_t fork_target =
      cfg.remote_pool != nullptr
          ? (ForkExecutionSupported()
                 ? std::min(cfg.num_workers, cfg.num_tasks)
                 : 0)
          : std::max<size_t>(1, std::min(cfg.num_workers, cfg.num_tasks));
  const ExponentialBackoff respawn_backoff(
      cfg.respawn_backoff, SplitSeed(cfg.backoff_seed, 0x5e5u));
  auto task_backoff = [&cfg](size_t t) {
    return ExponentialBackoff(cfg.retry_backoff,
                              SplitSeed(cfg.backoff_seed, t));
  };

  auto spawn_worker = [&]() -> Status {
    const uint64_t id = next_worker_id++;
    WorkerMainConfig wc;
    wc.heartbeat_seconds = cfg.child_heartbeat_seconds;
    wc.worker_id = id;
    wc.stream_window_bytes = window;

    if (cfg.transport == Transport::kTcp) {
      const uint16_t port = listener->port();
      const pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal(std::string("cannot fork worker: ") +
                                std::strerror(errno));
      }
      if (pid == 0) {
        // Worker process: drop every supervisor-side descriptor we
        // inherited, then dial in. The connect lambda doubles as the
        // reconnect factory after mid-stream drops.
        listener->Close();
        for (Worker& w : workers) {
          if (w.ch != nullptr) w.ch->Close();
        }
        const std::string host = cfg.tcp_host;
        const ExponentialBackoff::Params connect_backoff = cfg.respawn_backoff;
        const uint64_t connect_seed =
            SplitSeed(cfg.backoff_seed, 0x7c90u + id);
        const double deadline = std::max(2.0, cfg.reconnect_grace_seconds);
        auto dial = [host, port, connect_backoff, connect_seed,
                     deadline]() -> Result<std::unique_ptr<CommChannel>> {
          DDP_ASSIGN_OR_RETURN(
              auto ch, TcpChannel::Connect(host, port, connect_backoff,
                                           connect_seed, deadline));
          return std::unique_ptr<CommChannel>(std::move(ch));
        };
        auto first = dial();
        if (!first.ok()) ::_exit(1);
        wc.reconnect = dial;
        WorkerMain(std::move(first).value(), fn, wc);
      }
      Worker w;
      w.pid = pid;
      w.id = id;
      w.last_beat = Clock::now();  // connect-grace timer until hello
      w.span = std::make_unique<obs::Span>(obs::kCatMr, obs::kSpanWorker);
      if (w.span->active()) {
        w.span->AddArg("job", cfg.job_name);
        w.span->AddArg("phase", std::string_view(phase_name));
        w.span->AddArg("pid", static_cast<uint64_t>(pid));
      }
      workers.push_back(std::move(w));
      return Status::OK();
    }

    DDP_ASSIGN_OR_RETURN(auto ends, PipeChannel::CreatePair());
    const pid_t pid = ::fork();
    if (pid < 0) {
      return Status::Internal(std::string("cannot fork worker: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Worker process. Drop every supervisor-side descriptor we inherited
      // (ours, those of workers forked before us, and any remote-pool
      // listener) so a sibling's EOF is seen the moment that sibling dies.
      ends.first->Close();
      if (listener != nullptr) listener->Close();
      for (Worker& w : workers) {
        if (w.ch != nullptr) w.ch->Close();
      }
      WorkerMain(std::move(ends.second), fn, wc);
    }
    ends.second->Close();
    Worker w;
    w.pid = pid;
    w.id = id;
    w.ch = std::move(ends.first);
    w.last_beat = Clock::now();
    w.span = std::make_unique<obs::Span>(obs::kCatMr, obs::kSpanWorker);
    if (w.span->active()) {
      w.span->AddArg("job", cfg.job_name);
      w.span->AddArg("phase", std::string_view(phase_name));
      w.span->AddArg("pid", static_cast<uint64_t>(pid));
    }
    workers.push_back(std::move(w));
    return Status::OK();
  };

  // Charges a failed attempt of `t` and decides retry / quarantine / abort.
  // `crashed` marks worker-killing failures (they feed the poison counter).
  auto charge_failure = [&](size_t t, bool crashed, const Status& why) {
    TaskState& ts = tasks[t];
    ts.in_flight = false;
    if (ts.done) return;
    if (crashed) {
      ++ts.consecutive_crashes;
    } else {
      ts.consecutive_crashes = 0;
    }
    ++ts.failed_attempts;
    if (!ts.quarantined &&
        ts.consecutive_crashes >= cfg.quarantine_after_crashes) {
      if (cfg.skip_bad_records) {
        // Poisonous record: re-run the task in quarantine with a fresh
        // attempt budget — Hadoop's skip-mode re-execution.
        ts.quarantined = true;
        ts.failed_attempts = 0;
        ts.consecutive_crashes = 0;
        ++stats->quarantined_tasks;
        DDP_METRIC_COUNTER_ADD(obs::kMetricMrQuarantinedTasks, 1);
        DDP_LOG(Warning) << cfg.job_name << " " << phase_name << " task " << t
                         << " crashed " << cfg.quarantine_after_crashes
                         << " consecutive workers; quarantining";
      } else {
        job_error = Status::Internal(
            std::string(phase_name) + " task " + std::to_string(t) +
            " crashed " + std::to_string(ts.consecutive_crashes) +
            " consecutive workers (poisonous record; enable "
            "skip_bad_records to quarantine): " +
            why.ToString());
        return;
      }
    } else if (ts.failed_attempts >= cfg.max_task_attempts) {
      job_error = Status::Internal(
          std::string(phase_name) + " task " + std::to_string(t) +
          " failed after " + std::to_string(cfg.max_task_attempts) +
          " attempts; last error: " + why.ToString());
      return;
    }
    ++stats->retries;
    ts.not_before =
        Clock::now() +
        FromSeconds(task_backoff(t).DelaySeconds(
            ts.failed_attempts == 0 ? 0 : ts.failed_attempts - 1));
  };

  // Tears down worker `wi` after its death or kill. `hang` marks workers we
  // SIGKILLed for deadline/heartbeat silence; everything else is a crash.
  auto handle_worker_death = [&](size_t wi, bool hang, bool deadline_hit) {
    Worker w = std::move(workers[wi]);
    workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(wi));
    if (w.ch != nullptr) w.ch->Close();
    ReapPid(w.pid);
    if (hang) {
      ++stats->worker_hangs;
      if (deadline_hit) ++stats->deadline_kills;
    } else {
      ++stats->worker_crashes;
      DDP_METRIC_COUNTER_ADD(obs::kMetricMrWorkerCrashes, 1);
    }
    if (w.span != nullptr) {
      if (w.span->active()) {
        w.span->AddArg("exit", hang ? "hang" : "crash");
        w.span->MarkCancelled();
      }
      w.span.reset();
    }
    if (w.busy) {
      crash_hist->RecordSeconds(SecondsSince(w.dispatched, Clock::now()));
      charge_failure(w.task, /*crashed=*/!hang,
                     hang ? Status::DeadlineExceeded("worker hang")
                          : Status::Internal("worker crashed"));
    }
    // `w.stream` dies with the worker: its partially-streamed runs and the
    // supervisor-side spill file of this attempt are dropped (the writer
    // handle unlinks on destruction), and the dead worker's own files are
    // orphans the reaper collects.
    if (!cfg.spill_dir.empty()) {
      stats->spill_files_reaped += ReapOrphanSpillFiles(cfg.spill_dir);
    }
  };

  // Drops remote worker `wi` from the phase. Its process is not our child —
  // no SIGKILL, no waitpid, no local spill orphans — so "death" is an
  // eviction: the worker is forgotten and its in-flight task (if any) is
  // reassigned to a surviving worker through the normal retry path.
  auto evict_remote = [&](size_t wi, bool deadline_hit) {
    Worker w = std::move(workers[wi]);
    workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(wi));
    if (w.ch != nullptr) w.ch->Close();
    ++stats->workers_evicted;
    DDP_METRIC_COUNTER_ADD(obs::kMetricMrWorkersEvicted, 1);
    if (deadline_hit) ++stats->deadline_kills;
    if (w.span != nullptr) {
      if (w.span->active()) {
        w.span->AddArg("exit", "evicted");
        w.span->MarkCancelled();
      }
      w.span.reset();
    }
    if (w.busy) {
      crash_hist->RecordSeconds(SecondsSince(w.dispatched, Clock::now()));
      ++stats->tasks_reassigned;
      DDP_METRIC_COUNTER_ADD(obs::kMetricMrTasksReassigned, 1);
      charge_failure(w.task, /*crashed=*/true,
                     deadline_hit
                         ? Status::DeadlineExceeded("remote worker deadline")
                         : Status::Internal("remote worker lost"));
    }
  };

  auto kill_worker = [&](size_t wi, bool hang, bool deadline_hit) {
    if (workers[wi].remote) {
      evict_remote(wi, deadline_hit);
      return;
    }
    ::kill(workers[wi].pid, SIGKILL);
    ++stats->worker_kills;
    DDP_METRIC_COUNTER_ADD(obs::kMetricMrWorkerKills, 1);
    handle_worker_death(wi, hang, deadline_hit);
  };

  // Discards the run that was arriving when a connection dropped; the
  // worker re-ships it from the committed boundary after reconnecting.
  auto discard_open_run = [&](Worker& w) {
    if (!w.stream.open.has_value()) return;
    w.stream.open.reset();
    ++stats->shuffle_resent_runs;
    DDP_METRIC_COUNTER_ADD(obs::kMetricMrShuffleResentRuns, 1);
  };

  // Admits a remote worker: install the phase's registered job over
  // kJobSetup, then schedule it like any other crew member. A worker whose
  // prior registration was evicted redials with generation > 0 and gets a
  // kNoTask resume ack first, telling it to drop any pending attempt.
  auto admit_remote = [&](uint64_t id, std::unique_ptr<CommChannel> ch,
                          bool resumed) {
    if (cfg.remote_setup_payload.empty()) {
      ch->Close();  // phase has no registered job; remote workers unusable
      return;
    }
    if (resumed) {
      RunAckMsg ack;
      ack.task = RunAckMsg::kNoTask;
      if (!ch->Send(Frame{MessageType::kRunAck, ack.Encode()}).ok()) {
        ch->Close();
        return;
      }
    }
    if (!ch->Send(Frame{MessageType::kJobSetup, cfg.remote_setup_payload})
             .ok()) {
      ch->Close();
      return;
    }
    Worker w;
    w.remote = true;
    w.id = id;
    w.ch = std::move(ch);
    w.last_beat = Clock::now();
    w.span = std::make_unique<obs::Span>(obs::kCatMr, obs::kSpanRemoteWorker);
    if (w.span->active()) {
      w.span->AddArg("job", cfg.job_name);
      w.span->AddArg("phase", std::string_view(phase_name));
      w.span->AddArg("worker_id", id);
    }
    workers.push_back(std::move(w));
    ++stats->workers_registered;
    DDP_METRIC_COUNTER_ADD(obs::kMetricMrWorkersRegistered, 1);
  };

  // Accepts one pending TCP connection and attaches it to its worker by
  // hello worker id. Reconnects (generation > 0) get a resume kRunAck.
  auto accept_connection = [&]() {
    auto accepted = listener->Accept(/*timeout_seconds=*/0.25);
    if (!accepted.ok()) return;
    std::unique_ptr<TcpChannel> ch = std::move(accepted).value();
    Frame hello_frame;
    HelloMsg hello;
    if (!ch->Recv(&hello_frame, /*timeout_seconds=*/2.0).ok() ||
        hello_frame.type != MessageType::kHello ||
        !HelloMsg::Decode(hello_frame.payload, &hello).ok()) {
      ch->Close();  // not one of ours (or it died mid-handshake)
      return;
    }
    Worker* w = nullptr;
    for (Worker& cand : workers) {
      if (cand.id == hello.worker_id) {
        w = &cand;
        break;
      }
    }
    if (w == nullptr) {
      if ((hello.flags & kWorkerHelloRemote) != 0 &&
          cfg.remote_pool != nullptr) {
        admit_remote(hello.worker_id, std::move(ch), hello.generation > 0);
      } else {
        ch->Close();  // a worker we already declared dead
      }
      return;
    }
    if (w->ch != nullptr) w->ch->Close();
    w->ch = std::move(ch);
    w->last_beat = Clock::now();
    if (hello.generation > 0) {
      ++stats->channel_reconnects;
      DDP_METRIC_COUNTER_ADD(obs::kMetricMrChannelReconnects, 1);
      discard_open_run(*w);
      RunAckMsg ack;
      if (w->busy) {
        ack.task = w->task;
        ack.attempt = w->attempt;
        ack.acked_runs = w->stream.committed.size();
        ack.acked_bytes = w->stream.committed_bytes;
        w->stream.last_acked_bytes = w->stream.committed_bytes;
      } else {
        ack.task = RunAckMsg::kNoTask;
      }
      (void)w->ch->Send(Frame{MessageType::kRunAck, ack.Encode()});
    }
  };

  // ---- Streamed-shuffle frame handlers. A protocol violation (bad seq,
  // size overrun, CRC mismatch) means record boundaries are unreliable:
  // kill the worker and retry its attempt from scratch.

  auto handle_run_begin = [&](Worker& w, const std::string& payload) -> bool {
    RunBeginMsg msg;
    if (!RunBeginMsg::Decode(payload, &msg).ok() || !w.busy ||
        msg.task != w.task || msg.attempt != w.attempt ||
        msg.seq != w.stream.committed.size() || w.stream.open.has_value()) {
      return false;
    }
    OpenRun open;
    open.begin = msg;
    open.buf.reserve(static_cast<size_t>(msg.length));
    open.started = Clock::now();
    w.stream.open.emplace(std::move(open));
    return true;
  };

  auto handle_run_data = [&](Worker& w, std::string& payload) -> bool {
    if (!w.stream.open.has_value()) return false;
    OpenRun& open = *w.stream.open;
    if (open.buf.size() + payload.size() > open.begin.length) return false;
    open.buf.append(payload);
    return true;
  };

  auto handle_run_end = [&](Worker& w, const std::string& payload) -> bool {
    RunEndMsg msg;
    if (!RunEndMsg::Decode(payload, &msg).ok() || !w.stream.open.has_value()) {
      return false;
    }
    OpenRun open = std::move(*w.stream.open);
    w.stream.open.reset();
    if (msg.task != open.begin.task || msg.attempt != open.begin.attempt ||
        msg.seq != open.begin.seq || open.buf.size() != open.begin.length) {
      return false;
    }
    std::string run = std::move(open.buf);
    if (!VerifyAndStripRunTrailer(&run).ok()) return false;
    CommittedRun cr;
    cr.partition = open.begin.partition;
    cr.spill_index = open.begin.spill_index;
    if (open.begin.spill_index == kTailRunIndex) {
      // In-memory tail: kept as bare frames, same as the relay used to.
      cr.bytes = std::move(run);
      cr.length = open.begin.length;
    } else {
      // Disk-backed run: append to this attempt's supervisor-owned spill
      // file. Its EndRun writes a fresh trailer, so the committed extent
      // is a byte-faithful SpillRun.
      if (w.stream.writer == nullptr) {
        const std::string dir = internal::ResolveSpillDir(cfg.spill_dir);
        const std::string basename =
            cfg.job_name + "-" + phase_name + "-shuffle-" +
            internal::SpillOwnerTag() + "-u" +
            std::to_string(internal::NextSpillFileId()) + ".spill";
        auto created = SpillFileWriter::Create(dir, basename);
        if (!created.ok()) {
          job_error = created.status();
          return true;  // job fails; no point killing the worker over it
        }
        w.stream.writer = std::move(created).value();
      }
      w.stream.writer->BeginRun();
      w.stream.writer->Append(run.data(), run.size());
      auto extent = w.stream.writer->EndRun();
      if (!extent.ok()) {
        job_error = extent.status();
        return true;
      }
      cr.file = w.stream.writer->handle();
      cr.offset = extent.value().offset;
      cr.length = extent.value().length;
    }
    w.stream.committed.push_back(std::move(cr));
    w.stream.committed_bytes += open.begin.length;
    stats->shuffle_streamed_bytes += open.begin.length;
    DDP_METRIC_COUNTER_ADD(obs::kMetricMrShuffleStreamedBytes, open.begin.length);
    ship_hist->RecordSeconds(SecondsSince(open.started, Clock::now()));
    // Credit-based backpressure: ack at least every half window so a
    // blocked worker always has a credit frame coming.
    if (w.stream.committed_bytes - w.stream.last_acked_bytes >=
        ack_threshold) {
      RunAckMsg ack;
      ack.task = w.task;
      ack.attempt = w.attempt;
      ack.acked_runs = w.stream.committed.size();
      ack.acked_bytes = w.stream.committed_bytes;
      w.stream.last_acked_bytes = w.stream.committed_bytes;
      (void)w.ch->Send(Frame{MessageType::kRunAck, ack.Encode()});
    }
    return true;
  };

  // ---- Initial crew: remote workers parked by an earlier phase first,
  // then the forked complement. Total spawn failure (with no remote pool to
  // wait on) aborts before any task ran, so RunJob can fall back to the
  // in-process executor.
  if (cfg.remote_pool != nullptr) {
    for (RemoteWorkerPool::Parked& parked : cfg.remote_pool->TakeParked()) {
      admit_remote(parked.id, std::move(parked.channel), /*resumed=*/false);
    }
  }
  for (size_t i = 0; i < fork_target; ++i) {
    Status st = spawn_worker();
    if (!st.ok()) {
      if (workers.empty() && cfg.remote_pool == nullptr) {
        // NotImplemented is the caller's single "fork execution is not
        // available here" signal — same as the unsupported-platform path.
        return Status::NotImplemented("cannot spawn workers: " +
                                      st.ToString());
      }
      DDP_LOG(Warning) << cfg.job_name << ": spawned only " << workers.size()
                       << "/" << fork_target
                       << " workers: " << st.ToString();
      break;
    }
  }

  std::optional<obs::ProgressHeartbeat> progress;
  if (cfg.progress_heartbeat_seconds > 0.0) {
    progress.emplace(cfg.progress_heartbeat_seconds, [&completed, &cfg,
                                                      phase_name] {
      return cfg.job_name + " " + phase_name + " (fork): " +
             std::to_string(completed.load(std::memory_order_relaxed)) + "/" +
             std::to_string(cfg.num_tasks) + " tasks done";
    });
  }

  Clock::time_point next_respawn = Clock::now();
  Clock::time_point last_crew = Clock::now();

  // ---- Event loop: dispatch, poll, classify, repeat.
  while (completed.load(std::memory_order_relaxed) < cfg.num_tasks &&
         job_error.ok()) {
    const Clock::time_point now = Clock::now();

    // Respawn toward the forked target crew while the restart budget lasts.
    size_t fork_alive = 0;
    for (const Worker& w : workers) {
      if (!w.remote) ++fork_alive;
    }
    if (fork_alive < fork_target && now >= next_respawn) {
      if (restarts_used < cfg.max_worker_restarts) {
        Status st = spawn_worker();
        if (st.ok()) {
          ++restarts_used;
          ++stats->worker_restarts;
          DDP_METRIC_COUNTER_ADD(obs::kMetricMrWorkerRestarts, 1);
        } else if (workers.empty() && cfg.remote_pool == nullptr) {
          job_error = Status::Internal("cannot respawn any worker: " +
                                       st.ToString());
          break;
        }
        next_respawn =
            now + FromSeconds(respawn_backoff.DelaySeconds(restarts_used));
      } else if (workers.empty() && cfg.remote_pool == nullptr) {
        job_error = Status::Internal(
            "all workers dead and the restart budget (" +
            std::to_string(cfg.max_worker_restarts) + ") is exhausted");
        break;
      }
    }
    // Remote-crew watchdog: with a pool, an empty crew is legitimate while
    // remote workers are still dialing in — but only for the connect grace.
    // An empty crew that never committed anything degrades like a failed
    // fork (the caller falls back in-process); mid-job it is a hard error.
    if (cfg.remote_pool != nullptr) {
      if (!workers.empty()) {
        last_crew = now;
      } else if (SecondsSince(last_crew, now) > connect_grace) {
        job_error =
            completed.load(std::memory_order_relaxed) == 0
                ? Status::NotImplemented(
                      "no workers joined within the connect grace (remote "
                      "pool on port " +
                      std::to_string(listener->port()) + ")")
                : Status::Internal(
                      "all workers lost mid-job and none rejoined within "
                      "the connect grace");
        break;
      }
    }

    // Dispatch ready tasks to idle, connected workers (lowest task id
    // first, so runs are easy to reason about; commit order is by task id
    // regardless).
    for (Worker& w : workers) {
      if (!job_error.ok()) break;
      if (w.busy || w.ch == nullptr) continue;
      for (size_t t = 0; t < cfg.num_tasks; ++t) {
        TaskState& ts = tasks[t];
        if (ts.done || ts.in_flight || now < ts.not_before) continue;
        Frame out;
        if (w.remote) {
          // Remote workers get the task's serialized input by value: they
          // share no address space, so nothing can ride copy-on-write.
          auto input = cfg.remote_task_input(t);
          if (!input.ok()) {
            job_error = input.status();
            break;
          }
          TaskAssignMsg msg{t, ts.next_attempt, ts.quarantined,
                            std::move(input).value()};
          out = Frame{MessageType::kTaskAssign, msg.Encode()};
        } else {
          TaskMsg msg{t, ts.next_attempt, ts.quarantined};
          out = Frame{MessageType::kTask, msg.Encode()};
        }
        const size_t attempt = ts.next_attempt++;
        Status sent = w.ch->Send(std::move(out));
        if (sent.ok()) {
          w.busy = true;
          w.task = t;
          w.attempt = attempt;
          w.dispatched = now;
          w.last_beat = now;
          w.stream = AttemptStream{};
          ts.in_flight = true;
        } else {
          // A dead socket shows up as a failed send; the poll pass below
          // will see the EOF and run the death path. Re-arm the attempt.
          --ts.next_attempt;
        }
        break;
      }
    }

    // Wait for worker traffic; the 10ms cap bounds backoff-gate, respawn,
    // and hang-scan latency. The TCP listener polls alongside the workers.
    std::vector<struct pollfd> pfds;
    std::vector<uint64_t> pfd_ids;  // worker ids; remote workers have no pid
    pfds.reserve(workers.size() + 1);
    for (const Worker& w : workers) {
      if (w.ch == nullptr) continue;
      pfds.push_back({w.ch->fd(), POLLIN, 0});
      pfd_ids.push_back(w.id);
    }
    size_t listener_slot = pfds.size();
    if (listener != nullptr) {
      pfds.push_back({listener->fd(), POLLIN, 0});
      pfd_ids.push_back(0);  // worker ids start at 1; 0 is the listener
    }
    if (!pfds.empty()) {
      const int rc = ::poll(pfds.data(),
                            static_cast<nfds_t>(pfds.size()), /*timeout=*/10);
      if (rc < 0 && errno != EINTR) {
        job_error = Status::Internal(std::string("supervisor poll failed: ") +
                                     std::strerror(errno));
        break;
      }
    }

    // Attach fresh connections first, so a reconnecting worker's frames
    // are read from its new channel this very iteration.
    if (listener != nullptr && listener_slot < pfds.size() &&
        (pfds[listener_slot].revents & POLLIN) != 0) {
      accept_connection();
    }

    for (size_t i = 0; i < pfds.size() && job_error.ok(); ++i) {
      if (i == listener_slot) continue;
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      // Re-find the worker: earlier death handling may have reshuffled.
      size_t wi = workers.size();
      for (size_t j = 0; j < workers.size(); ++j) {
        if (workers[j].id == pfd_ids[i]) {
          wi = j;
          break;
        }
      }
      if (wi == workers.size()) continue;
      Worker& w = workers[wi];
      // Stale-descriptor guard: a reconnect may have replaced the channel
      // after this poll set was built.
      if (w.ch == nullptr || w.ch->fd() != pfds[i].fd) continue;
      Frame frame;
      Status received = w.ch->Recv(&frame, /*timeout_seconds=*/30.0);
      if (!received.ok()) {
        if (w.remote) {
          // No waitpid can tell a remote crash from a network drop: hold
          // the attempt and committed runs for the reconnect grace; the
          // hang scan evicts (and reassigns) if no redial arrives.
          w.ch->Close();
          w.ch.reset();
          w.last_beat = Clock::now();
          discard_open_run(w);
          continue;
        }
        if (cfg.transport == Transport::kTcp) {
          int wstatus = 0;
          const pid_t got = ::waitpid(w.pid, &wstatus, WNOHANG);
          if (got == 0) {
            // The connection dropped but the worker lives: hold its
            // attempt and committed runs, wait out the reconnect grace.
            w.ch->Close();
            w.ch.reset();
            w.last_beat = Clock::now();
            discard_open_run(w);
            continue;
          }
        }
        // EOF or a corrupt frame from a dead (or pipe-mode) worker: record
        // boundaries are gone and the worker is unusable. Make sure it is
        // dead, then classify.
        ::kill(w.pid, SIGKILL);
        handle_worker_death(wi, /*hang=*/false, /*deadline_hit=*/false);
        continue;
      }
      w.last_beat = Clock::now();
      if (frame.type == MessageType::kRunBegin ||
          frame.type == MessageType::kRunData ||
          frame.type == MessageType::kRunEnd) {
        bool protocol_ok = false;
        if (frame.type == MessageType::kRunBegin) {
          protocol_ok = handle_run_begin(w, frame.payload);
        } else if (frame.type == MessageType::kRunData) {
          protocol_ok = handle_run_data(w, frame.payload);
        } else {
          protocol_ok = handle_run_end(w, frame.payload);
        }
        if (!protocol_ok) {
          if (w.remote) {
            evict_remote(wi, /*deadline_hit=*/false);
          } else {
            ::kill(w.pid, SIGKILL);
            ++stats->worker_kills;
            handle_worker_death(wi, /*hang=*/false, /*deadline_hit=*/false);
          }
        }
        continue;
      }
      if (frame.type == MessageType::kResult) {
        ResultMsg msg;
        Status decoded = ResultMsg::Decode(frame.payload, &msg);
        if (!decoded.ok() || msg.task >= cfg.num_tasks ||
            w.stream.open.has_value()) {
          if (w.remote) {
            evict_remote(wi, /*deadline_hit=*/false);
          } else {
            ::kill(w.pid, SIGKILL);
            ++stats->worker_kills;
            handle_worker_death(wi, /*hang=*/false, /*deadline_hit=*/false);
          }
          continue;
        }
        w.busy = false;
        AttemptStream stream = std::move(w.stream);
        w.stream = AttemptStream{};
        TaskState& ts = tasks[msg.task];
        // The worker survived the attempt, whatever its verdict: the
        // poison counter tracks worker-killing records only.
        ts.consecutive_crashes = 0;
        Status attempt_status =
            StatusFromWire(msg.status_code, msg.status_message);
        if (ts.done) continue;  // defensive: no duplicate commits
        if (attempt_status.ok()) {
          if (stream.writer != nullptr) {
            Status closed = stream.writer->Close();
            if (!closed.ok()) {
              job_error = closed;
              continue;
            }
          }
          ts.done = true;
          ts.in_flight = false;
          completed.fetch_add(1, std::memory_order_relaxed);
          stats->durations.push_back(msg.seconds);
          Status committed =
              commit(msg.task, ts.quarantined, msg.seconds,
                     std::move(msg.payload), std::move(stream.committed));
          if (!committed.ok()) job_error = committed;
        } else if (attempt_status.IsIoError()) {
          // Deterministically corrupt input: retrying re-reads the same
          // bytes. Fail fast, matching the in-process scheduler.
          job_error = attempt_status;
        } else {
          charge_failure(msg.task, /*crashed=*/false, attempt_status);
        }
      }
      // kHello and kHeartbeat only refresh last_beat, done above.
    }
    if (!job_error.ok()) break;

    // Hang scan: deadline overruns, heartbeat silence, and workers that
    // out-stayed the reconnect grace get a SIGKILL and are charged like an
    // in-process deadline kill.
    const Clock::time_point scan_now = Clock::now();
    for (size_t wi = workers.size(); wi-- > 0;) {
      Worker& w = workers[wi];
      if (w.ch == nullptr) {
        if (SecondsSince(w.last_beat, scan_now) > connect_grace) {
          kill_worker(wi, /*hang=*/true, /*deadline_hit=*/false);
        }
        continue;
      }
      if (!w.busy) continue;
      const bool deadline_hit =
          cfg.task_deadline_seconds > 0.0 &&
          SecondsSince(w.dispatched, scan_now) > cfg.task_deadline_seconds;
      const bool silent =
          cfg.child_heartbeat_seconds > 0.0 &&
          SecondsSince(w.last_beat, scan_now) >
              cfg.heartbeat_grace * cfg.child_heartbeat_seconds;
      if (deadline_hit || silent) {
        kill_worker(wi, /*hang=*/true, deadline_hit);
      }
    }
  }

  // ---- Teardown: polite shutdown, bounded wait, then force. The pool's
  // listener is left open — it outlives the phase.
  if (own_listener != nullptr) own_listener->Close();
  // Remote workers outlive the phase: park healthy idle ones back into the
  // pool for the next phase; anything mid-attempt or disconnected is told
  // to shut down instead (its process is not our child — nothing to reap).
  for (Worker& w : workers) {
    if (!w.remote) continue;
    if (w.ch != nullptr && !w.busy) {
      cfg.remote_pool->Park(w.id, std::move(w.ch));
    } else if (w.ch != nullptr) {
      (void)w.ch->Send(Frame{MessageType::kShutdown, ""});
      w.ch->Close();
    }
    if (w.span != nullptr) w.span.reset();
  }
  workers.erase(std::remove_if(workers.begin(), workers.end(),
                               [](const Worker& w) { return w.remote; }),
                workers.end());
  for (Worker& w : workers) {
    if (w.ch != nullptr) (void)w.ch->Send(Frame{MessageType::kShutdown, ""});
  }
  for (Worker& w : workers) {
    if (w.ch != nullptr) w.ch->Close();
  }
  for (Worker& w : workers) {
    const Clock::time_point give_up = Clock::now() + FromSeconds(2.0);
    bool reaped = false;
    while (Clock::now() < give_up) {
      int wstatus = 0;
      const pid_t got = ::waitpid(w.pid, &wstatus, WNOHANG);
      if (got == w.pid || (got < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::poll(nullptr, 0, 5);  // 5ms nap between reap polls
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ++stats->worker_kills;
      ReapPid(w.pid);
    }
    if (w.span != nullptr) w.span.reset();
  }
  workers.clear();
  if (!job_error.ok() && !cfg.spill_dir.empty()) {
    stats->spill_files_reaped += ReapOrphanSpillFiles(cfg.spill_dir);
  }
  if (!job_error.ok() && phase_span.active()) phase_span.MarkCancelled();
  if (phase_span.active()) {
    phase_span.AddArg("worker_crashes", stats->worker_crashes);
    phase_span.AddArg("worker_restarts", stats->worker_restarts);
    phase_span.AddArg("streamed_bytes", stats->shuffle_streamed_bytes);
    phase_span.AddArg("reconnects", stats->channel_reconnects);
    phase_span.AddArg("workers_registered", stats->workers_registered);
    phase_span.AddArg("tasks_reassigned", stats->tasks_reassigned);
  }
  return job_error;
}

#else  // _WIN32

void CrashSelf() { std::abort(); }

Status WorkerSupervisor::RunPhase(const SupervisorConfig&, const WorkerTaskFn&,
                                  const CommitFn&, SupervisorStats*) {
  return Status::NotImplemented("fork execution requires POSIX");
}

#endif

}  // namespace mr
}  // namespace ddp

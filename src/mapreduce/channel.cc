#include "mapreduce/channel.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/serde.h"

namespace ddp {
namespace mr {

namespace {

uint32_t LoadCrcTrailer(const uint8_t t[4]) {
  return static_cast<uint32_t>(t[0]) | (static_cast<uint32_t>(t[1]) << 8) |
         (static_cast<uint32_t>(t[2]) << 16) |
         (static_cast<uint32_t>(t[3]) << 24);
}

void AppendCrcTrailer(uint32_t crc, std::string* out) {
  out->push_back(static_cast<char>(crc & 0xFF));
  out->push_back(static_cast<char>((crc >> 8) & 0xFF));
  out->push_back(static_cast<char>((crc >> 16) & 0xFF));
  out->push_back(static_cast<char>((crc >> 24) & 0xFF));
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutByte(static_cast<uint8_t>(frame.type));
  w.PutVarint64(frame.payload.size());
  w.PutRaw(frame.payload.data(), frame.payload.size());
  AppendCrcTrailer(Crc32(frame.payload.data(), frame.payload.size()), &bytes);
  return bytes;
}

Status DecodeFrame(const std::string& bytes, Frame* frame) {
  BufferReader r(bytes);
  uint8_t type = 0;
  DDP_RETURN_NOT_OK(r.GetByte(&type));
  uint64_t len = 0;
  DDP_RETURN_NOT_OK(r.GetVarint64(&len));
  if (r.remaining() < len + 4) {
    return Status::IoError("truncated channel frame");
  }
  frame->type = static_cast<MessageType>(type);
  frame->payload.clear();
  frame->payload.reserve(static_cast<size_t>(len));
  BufferReader payload(nullptr, size_t{0});
  DDP_RETURN_NOT_OK(r.Slice(static_cast<size_t>(len), &payload));
  frame->payload.resize(static_cast<size_t>(len));
  DDP_RETURN_NOT_OK(
      payload.GetRaw(frame->payload.data(), frame->payload.size()));
  uint8_t trailer[4];
  DDP_RETURN_NOT_OK(r.GetRaw(trailer, sizeof(trailer)));
  if (!r.exhausted()) return Status::IoError("trailing bytes after frame");
  if (LoadCrcTrailer(trailer) !=
      Crc32(frame->payload.data(), frame->payload.size())) {
    return Status::IoError("channel frame CRC mismatch");
  }
  return Status::OK();
}

#ifndef _WIN32

FdChannel::~FdChannel() { Close(); }

void FdChannel::Close() {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FdChannel::ShutdownWrite() {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status FdChannel::Send(const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return Status::IoError("channel closed");
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer that died mid-phase must surface as EPIPE, not
    // kill the supervisor with SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("channel send failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FdChannel::ReadExact(void* out, size_t n, double deadline_seconds) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_seconds));
  size_t off = 0;
  while (off < n) {
    if (deadline_seconds > 0.0) {
      const auto now = Clock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("channel read timed out");
      }
      struct pollfd pfd {fd_, POLLIN, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      const int rc =
          ::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(
                              1, static_cast<int64_t>(left.count()))));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("channel poll failed: ") +
                               std::strerror(errno));
      }
      if (rc == 0) continue;  // loop re-checks the deadline
    }
    const ssize_t got =
        ::read(fd_, static_cast<char*>(out) + off, n - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("channel read failed: ") +
                             std::strerror(errno));
    }
    if (got == 0) return Status::IoError("channel closed");
    off += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status FdChannel::Recv(Frame* frame, double timeout_seconds) {
  if (fd_ < 0) return Status::IoError("channel closed");
  uint8_t type = 0;
  DDP_RETURN_NOT_OK(ReadExact(&type, 1, timeout_seconds));
  // Once a frame has started, the rest must follow promptly: a peer that
  // dies mid-frame hits EOF; a wedged peer hits the inner deadline and is
  // treated as a hang by the supervisor.
  const double body_deadline = timeout_seconds > 0.0 ? timeout_seconds : 30.0;
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    uint8_t b = 0;
    DDP_RETURN_NOT_OK(ReadExact(&b, 1, body_deadline));
    if (shift >= 64) return Status::IoError("corrupt frame length");
    len |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  frame->type = static_cast<MessageType>(type);
  frame->payload.resize(static_cast<size_t>(len));
  if (len > 0) {
    DDP_RETURN_NOT_OK(
        ReadExact(frame->payload.data(), frame->payload.size(),
                  body_deadline));
  }
  uint8_t trailer[4];
  DDP_RETURN_NOT_OK(ReadExact(trailer, sizeof(trailer), body_deadline));
  if (LoadCrcTrailer(trailer) !=
      Crc32(frame->payload.data(), frame->payload.size())) {
    return Status::IoError("channel frame CRC mismatch");
  }
  return Status::OK();
}

Result<std::pair<std::unique_ptr<PipeChannel>, std::unique_ptr<PipeChannel>>>
PipeChannel::CreatePair() {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal(std::string("socketpair failed: ") +
                            std::strerror(errno));
  }
  return std::make_pair(std::make_unique<PipeChannel>(fds[0]),
                        std::make_unique<PipeChannel>(fds[1]));
}

namespace {

/// Parses a numeric IPv4 host:port into a sockaddr; names are rejected so
/// connect/accept behavior never depends on resolver state.
Status MakeSockAddr(const std::string& host, uint16_t port,
                    struct sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: a transport that ignores TCP_NODELAY is slower, not wrong.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Deterministic nap without pulling in <thread>; EINTR shortens the nap,
/// which only makes the retry loop re-check its deadline sooner.
void NapMillis(int ms) { (void)::poll(nullptr, 0, ms); }

}  // namespace

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  DDP_RETURN_NOT_OK(MakeSockAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::Internal(std::string("bind failed: ") +
                                       std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status st = Status::Internal(std::string("listen failed: ") +
                                       std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Recover the kernel-assigned port when the caller asked for an ephemeral
  // one — the supervisor hands this number to its forked workers.
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    const Status st = Status::Internal(std::string("getsockname failed: ") +
                                       std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::make_unique<TcpListener>(fd, ntohs(bound.sin_port));
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<TcpChannel>> TcpListener::Accept(
    double timeout_seconds) {
  if (fd_ < 0) return Status::IoError("listener closed");
  struct pollfd pfd {fd_, POLLIN, 0};
  const int ms = timeout_seconds > 0.0
                     ? static_cast<int>(std::max(1.0, timeout_seconds * 1e3))
                     : -1;
  while (true) {
    const int rc = ::poll(&pfd, 1, ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("listener poll failed: ") +
                             std::strerror(errno));
    }
    if (rc == 0) return Status::DeadlineExceeded("accept timed out");
    break;
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    return Status::IoError(std::string("accept failed: ") +
                           std::strerror(errno));
  }
  SetNoDelay(conn);
  return std::make_unique<TcpChannel>(conn);
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    const std::string& host, uint16_t port,
    const ExponentialBackoff::Params& backoff, uint64_t seed,
    double deadline_seconds) {
  struct sockaddr_in addr;
  DDP_RETURN_NOT_OK(MakeSockAddr(host, port, &addr));
  const ExponentialBackoff schedule(backoff, seed);
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_seconds));
  std::string last_error = "connect never attempted";
  for (uint64_t attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket failed: ") +
                              std::strerror(errno));
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      SetNoDelay(fd);
      return std::make_unique<TcpChannel>(fd);
    }
    last_error = std::strerror(errno);
    ::close(fd);
    if (Clock::now() >= deadline) break;
    // Seeded backoff keeps reconnect storms (many workers, one restarted
    // supervisor) decorrelated yet reproducible in tests.
    NapMillis(static_cast<int>(
        std::max(1.0, schedule.DelaySeconds(attempt) * 1e3)));
  }
  return Status::IoError("tcp connect to " + host + " failed: " + last_error);
}

#else  // _WIN32: no POSIX sockets; fork execution is unsupported there anyway.

FdChannel::~FdChannel() = default;
void FdChannel::Close() {}
void FdChannel::ShutdownWrite() {}
Status FdChannel::Send(const Frame&) {
  return Status::NotImplemented("FdChannel requires POSIX sockets");
}
Status FdChannel::ReadExact(void*, size_t, double) {
  return Status::NotImplemented("FdChannel requires POSIX sockets");
}
Status FdChannel::Recv(Frame*, double) {
  return Status::NotImplemented("FdChannel requires POSIX sockets");
}
Result<std::pair<std::unique_ptr<PipeChannel>, std::unique_ptr<PipeChannel>>>
PipeChannel::CreatePair() {
  return Status::NotImplemented("PipeChannel requires POSIX sockets");
}
Result<std::unique_ptr<TcpListener>> TcpListener::Listen(const std::string&,
                                                         uint16_t) {
  return Status::NotImplemented("TcpListener requires POSIX sockets");
}
TcpListener::~TcpListener() = default;
void TcpListener::Close() {}
Result<std::unique_ptr<TcpChannel>> TcpListener::Accept(double) {
  return Status::NotImplemented("TcpListener requires POSIX sockets");
}
Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    const std::string&, uint16_t, const ExponentialBackoff::Params&, uint64_t,
    double) {
  return Status::NotImplemented("TcpChannel requires POSIX sockets");
}

#endif

std::pair<std::unique_ptr<LoopbackChannel>, std::unique_ptr<LoopbackChannel>>
LoopbackChannel::MakePair() {
  auto a = std::make_shared<Queue>();
  auto b = std::make_shared<Queue>();
  auto left = std::make_unique<LoopbackChannel>();
  auto right = std::make_unique<LoopbackChannel>();
  left->incoming_ = a;
  left->outgoing_ = b;
  right->incoming_ = b;
  right->outgoing_ = a;
  return {std::move(left), std::move(right)};
}

Status LoopbackChannel::Send(const Frame& frame) {
  std::string bytes = EncodeFrame(frame);
  std::lock_guard<std::mutex> lock(outgoing_->mu);
  if (outgoing_->closed) return Status::IoError("channel closed");
  outgoing_->frames.push_back(std::move(bytes));
  outgoing_->cv.notify_all();
  return Status::OK();
}

Status LoopbackChannel::Recv(Frame* frame, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(incoming_->mu);
  const auto ready = [this] {
    return !incoming_->frames.empty() || incoming_->closed;
  };
  if (timeout_seconds > 0.0) {
    if (!incoming_->cv.wait_for(
            lock, std::chrono::duration<double>(timeout_seconds), ready)) {
      return Status::DeadlineExceeded("channel read timed out");
    }
  } else {
    incoming_->cv.wait(lock, ready);
  }
  if (incoming_->frames.empty()) return Status::IoError("channel closed");
  std::string bytes = std::move(incoming_->frames.front());
  incoming_->frames.pop_front();
  lock.unlock();
  return DecodeFrame(bytes, frame);
}

void LoopbackChannel::Close() {
  for (auto& q : {incoming_, outgoing_}) {
    if (q == nullptr) continue;
    std::lock_guard<std::mutex> lock(q->mu);
    q->closed = true;
    q->cv.notify_all();
  }
}

void LoopbackChannel::InjectRaw(std::string bytes) {
  std::lock_guard<std::mutex> lock(incoming_->mu);
  incoming_->frames.push_back(std::move(bytes));
  incoming_->cv.notify_all();
}

}  // namespace mr
}  // namespace ddp

#include "mapreduce/remote_worker.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/random.h"

namespace ddp {
namespace mr {

JobRegistry& JobRegistry::Global() {
  static JobRegistry* registry = new JobRegistry();
  return *registry;
}

void JobRegistry::Register(const std::string& id, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry.first == id) {
      entry.second = std::move(factory);
      return;
    }
  }
  entries_.emplace_back(id, std::move(factory));
}

Result<JobRegistry::TaskRunner> JobRegistry::Create(
    const JobSetupMsg& setup) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : entries_) {
      if (entry.first == setup.job_id) {
        factory = entry.second;
        break;
      }
    }
  }
  if (factory == nullptr) {
    return Status::NotFound("no registered job '" + setup.job_id +
                            "' in this worker binary");
  }
  return factory(setup);
}

std::vector<std::string> JobRegistry::RegisteredIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& entry : entries_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<std::unique_ptr<RemoteWorkerPool>> RemoteWorkerPool::Listen(
    const std::string& host, uint16_t port) {
  DDP_ASSIGN_OR_RETURN(auto listener, TcpListener::Listen(host, port));
  return std::unique_ptr<RemoteWorkerPool>(
      new RemoteWorkerPool(host, std::move(listener)));
}

RemoteWorkerPool::~RemoteWorkerPool() { Shutdown(); }

uint16_t RemoteWorkerPool::port() const { return listener_->port(); }

std::vector<RemoteWorkerPool::Parked> RemoteWorkerPool::TakeParked() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Parked> taken = std::move(parked_);
  parked_.clear();
  return taken;
}

void RemoteWorkerPool::Park(uint64_t id, std::unique_ptr<CommChannel> channel) {
  std::lock_guard<std::mutex> lock(mu_);
  parked_.push_back(Parked{id, std::move(channel)});
}

void RemoteWorkerPool::Shutdown() {
  std::vector<Parked> parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    parked = std::move(parked_);
    parked_.clear();
  }
  for (Parked& p : parked) {
    if (p.channel == nullptr) continue;
    (void)p.channel->Send(Frame{MessageType::kShutdown, std::string()});
    p.channel->Close();
  }
  if (listener_ != nullptr) listener_->Close();
}

#ifndef _WIN32

int RunRemoteWorker(const RemoteWorkerOptions& options) {
  const uint64_t worker_id =
      options.worker_id != 0
          ? options.worker_id
          : ((uint64_t{1} << 63) | static_cast<uint64_t>(::getpid()));

  const ExponentialBackoff::Params connect_backoff{0.002, 2.0, 0.25, 0.25};
  const uint64_t connect_seed = SplitSeed(options.backoff_seed, worker_id);
  const std::string host = options.host;
  const uint16_t port = options.port;
  const double deadline = std::max(2.0, options.dial_deadline_seconds);
  auto dial = [host, port, connect_backoff, connect_seed,
               deadline]() -> Result<std::unique_ptr<CommChannel>> {
    DDP_ASSIGN_OR_RETURN(auto ch,
                         TcpChannel::Connect(host, port, connect_backoff,
                                             connect_seed, deadline));
    return std::unique_ptr<CommChannel>(std::move(ch));
  };

  auto first = dial();
  if (!first.ok()) {
    DDP_LOG(Error) << "ddp_worker: cannot reach supervisor at " << host << ":"
                   << port << ": " << first.status().ToString();
    return 1;
  }

  // The installed job, swapped atomically under the loop's single thread
  // (kJobSetup and kTaskAssign frames arrive in stream order).
  auto runner = std::make_shared<JobRegistry::TaskRunner>();
  auto assigns_served = std::make_shared<int64_t>(0);
  const int64_t crash_task = options.chaos_crash_task;

  WorkerMainConfig wc;
  wc.heartbeat_seconds = options.heartbeat_seconds;
  wc.worker_id = worker_id;
  wc.stream_window_bytes = options.stream_window_bytes;
  wc.reconnect = dial;
  wc.check_parent = false;
  wc.hello_flags = kWorkerHelloRemote;
  wc.on_job_setup = [runner](const JobSetupMsg& setup) -> Status {
    DDP_ASSIGN_OR_RETURN(*runner, JobRegistry::Global().Create(setup));
    return Status::OK();
  };
  wc.on_task_assign = [runner, assigns_served, crash_task](
                          uint64_t task, uint64_t attempt, bool quarantined,
                          const std::string& input,
                          TaskResult* result) -> Status {
    if (*runner == nullptr) {
      return Status::Internal("task assigned before any job was installed");
    }
    const int64_t served = (*assigns_served)++;
    Status st = (*runner)(task, attempt, quarantined, input, result);
    if (st.ok() && crash_task >= 0 && served == crash_task) {
      // Deterministic chaos: die mid-shuffle on this assignment, exactly
      // like FaultInjection::worker_crash_rate's mid-shuffle coin.
      result->crash_after_runs =
          static_cast<int64_t>(result->runs.size() / 2);
    }
    return st;
  };

  // Remote workers never receive closure-based kTask frames; answering one
  // with Internal (rather than crashing) keeps a confused supervisor's
  // retry accounting sane.
  WorkerTaskFn reject = [](size_t, size_t, bool, TaskResult*) -> Status {
    return Status::Internal("remote worker cannot run closure-based tasks");
  };

  return WorkerLoop(std::move(first).value(), reject, wc);
}

Result<int64_t> SpawnWorkerProcess(const std::string& binary,
                                   const std::vector<std::string>& args) {
  std::vector<std::string> argv_store;
  argv_store.reserve(args.size() + 1);
  argv_store.push_back(binary);
  for (const std::string& a : args) argv_store.push_back(a);
  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("cannot fork worker process: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; nothing else is safe in the forked image
  }
  return static_cast<int64_t>(pid);
}

void KillWorkerProcess(int64_t pid) {
  if (pid <= 0) return;
  ::kill(static_cast<pid_t>(pid), SIGKILL);
}

int WaitWorkerProcess(int64_t pid) {
  if (pid <= 0) return -1;
  int wstatus = 0;
  while (::waitpid(static_cast<pid_t>(pid), &wstatus, 0) < 0 &&
         errno == EINTR) {
  }
  if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
  return -1;
}

#else  // _WIN32

int RunRemoteWorker(const RemoteWorkerOptions&) { return 1; }

Result<int64_t> SpawnWorkerProcess(const std::string&,
                                   const std::vector<std::string>&) {
  return Status::NotImplemented("worker processes require POSIX");
}

void KillWorkerProcess(int64_t) {}

int WaitWorkerProcess(int64_t) { return -1; }

#endif

}  // namespace mr
}  // namespace ddp

#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file counters.h
/// Per-job and per-run cost accounting. `shuffle_bytes` counts real
/// serialized intermediate data (key + value encodings), which is the
/// quantity Fig. 10(b) and Table IV report as "shuffled data".

namespace ddp {
namespace mr {

struct JobCounters {
  std::string job_name;

  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;   // after the combiner, if any
  uint64_t combine_input_records = 0;  // records seen by the combiner
  uint64_t shuffle_bytes = 0;        // serialized intermediate bytes
  uint64_t shuffle_records = 0;      // key/value pairs shuffled
  uint64_t reduce_input_groups = 0;  // distinct keys
  uint64_t reduce_output_records = 0;
  /// Largest single reduce partition's serialized input — the skew signal
  /// behind Fig. 12(a)'s small-M/large-pi slowdown.
  uint64_t max_partition_bytes = 0;
  /// Out-of-core execution (Options::memory_budget_bytes > 0): bytes of
  /// sorted runs written to spill files (frame headers + CRC trailers
  /// included — real disk traffic), spill files created, reduce partitions
  /// whose merge consumed at least one spilled run (one streaming pass
  /// each), and map-side wall time spent sorting + writing spills.
  uint64_t spilled_bytes = 0;
  uint64_t spill_files = 0;
  uint64_t merge_passes = 0;
  double spill_seconds = 0.0;
  /// Shuffle-concat accounting: bytes a partition stole from its single
  /// non-empty source buffer (move) vs bytes concatenated from several
  /// sources (copy). Zero on the spill path, which never concatenates.
  uint64_t shuffle_moved_bytes = 0;
  uint64_t shuffle_copied_bytes = 0;
  /// Histogram of reduce group sizes: bucket b counts groups with
  /// floor(log2(size)) == b (bucket 0 = singleton groups). For the bucketed
  /// DDP jobs this is the bucket/cell/block population skew picture behind
  /// Fig. 12(a) — a heavy tail here means straggling quadratic kernels.
  std::vector<uint64_t> group_size_log2_histogram;
  uint64_t map_task_retries = 0;     // failed-attempt retries (map side)
  uint64_t reduce_task_retries = 0;  // failed-attempt retries (reduce side)
  /// Backup attempts launched because a task ran past the speculative
  /// threshold, and how many of those backups committed before the original.
  uint64_t speculative_launches = 0;
  uint64_t speculative_wins = 0;
  /// Attempts that exceeded Options::task_deadline_seconds and were counted
  /// as failed (feeding the max_task_attempts budget).
  uint64_t deadline_kills = 0;
  /// Corrupt shuffle records skipped under Options::skip_bad_records.
  uint64_t skipped_records = 0;
  /// User map/reduce/combiner exceptions converted into failed attempts.
  uint64_t task_exceptions = 0;
  /// Multi-process execution (Options::exec_mode == ExecMode::kFork):
  /// unexpected worker deaths, workers SIGKILLed for deadline overrun or
  /// heartbeat silence, SIGKILLs issued, replacement workers forked, tasks
  /// quarantined after crashing consecutive workers, orphan spill files of
  /// dead processes deleted, and phases that fell back to the in-process
  /// executor (fork unsupported or spawn failed).
  uint64_t worker_crashes = 0;
  uint64_t worker_hangs = 0;
  uint64_t worker_kills = 0;
  uint64_t worker_restarts = 0;
  uint64_t quarantined_tasks = 0;
  uint64_t spill_files_reaped = 0;
  uint64_t exec_fallbacks = 0;
  /// Streamed shuffle (fork mode): run bytes the supervisor committed off
  /// worker channels (CRC trailers included — real wire traffic), runs
  /// re-shipped because a connection dropped mid-run, and TCP connections
  /// re-established after a drop. All zero in-process and in relay-free
  /// phases that shuffled nothing.
  uint64_t shuffle_streamed_bytes = 0;
  uint64_t shuffle_resent_runs = 0;
  uint64_t channel_reconnects = 0;
  /// Remote execution (Options::exec_mode == ExecMode::kRemote): exec'd
  /// ddp_worker processes admitted to a phase, remote workers dropped for
  /// disconnect/deadline/protocol violations, and in-flight tasks moved off
  /// evicted workers onto surviving ones. All zero in fork and in-process
  /// modes.
  uint64_t workers_registered = 0;
  uint64_t workers_evicted = 0;
  uint64_t tasks_reassigned = 0;
  /// True when the job's output was replayed from a CheckpointStore instead
  /// of being executed; all other counters are zero in that case.
  bool loaded_from_checkpoint = false;

  /// Committed-attempt duration distribution across both phases — the
  /// straggler signal speculation acts on. straggler_ratio is
  /// slowest/median (1.0 when fewer than two attempts committed).
  double median_attempt_seconds = 0.0;
  double p99_attempt_seconds = 0.0;
  double max_attempt_seconds = 0.0;
  double straggler_ratio = 0.0;

  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;
  /// total_seconds plus shuffle_bytes / Options::modeled_shuffle_bandwidth —
  /// the Eq. (9)-style unification of compute and network cost that lets an
  /// in-process run estimate cluster behaviour. Equals total_seconds when
  /// modeling is off.
  double modeled_seconds = 0.0;

  std::string ToString() const;
  /// One JSON object per job, field names matching the struct members —
  /// the same conventions (and writer) as the obs metrics snapshot, so
  /// `--stats-out` files parse with the same tooling.
  std::string ToJson() const;
};

/// Accumulated counters over the jobs of one algorithm run.
struct RunStats {
  std::vector<JobCounters> jobs;

  void Add(JobCounters counters) { jobs.push_back(std::move(counters)); }

  uint64_t TotalShuffleBytes() const;
  uint64_t TotalShuffleRecords() const;
  double TotalSeconds() const;
  double TotalModeledSeconds() const;
  uint64_t TotalTaskRetries() const;
  uint64_t TotalSpeculativeLaunches() const;
  uint64_t TotalSpeculativeWins() const;
  uint64_t TotalDeadlineKills() const;
  uint64_t TotalSkippedRecords() const;
  uint64_t TotalTaskExceptions() const;
  uint64_t TotalSpilledBytes() const;
  uint64_t TotalSpillFiles() const;
  uint64_t TotalMergePasses() const;
  /// Jobs whose output came from a checkpoint rather than execution.
  uint64_t JobsLoadedFromCheckpoint() const;
  /// Multi-process execution totals.
  uint64_t TotalWorkerCrashes() const;
  uint64_t TotalWorkerHangs() const;
  uint64_t TotalWorkerKills() const;
  uint64_t TotalWorkerRestarts() const;
  uint64_t TotalQuarantinedTasks() const;
  uint64_t TotalSpillFilesReaped() const;
  uint64_t TotalExecFallbacks() const;
  uint64_t TotalShuffleStreamedBytes() const;
  uint64_t TotalShuffleResentRuns() const;
  uint64_t TotalChannelReconnects() const;
  uint64_t TotalWorkersRegistered() const;
  uint64_t TotalWorkersEvicted() const;
  uint64_t TotalTasksReassigned() const;

  std::string ToString() const;
  /// {"jobs": [JobCounters::ToJson()...], "totals": {...}}.
  std::string ToJson() const;
};

}  // namespace mr
}  // namespace ddp


#include "mapreduce/spill.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <filesystem>
#include <system_error>

#ifndef _WIN32
#include <signal.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace ddp {
namespace mr {

namespace fs = std::filesystem;

namespace {

long CurrentPid() {
#ifndef _WIN32
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

/// True when `pid` names a live process (or liveness cannot be probed, in
/// which case the reaper stays conservative and keeps the file).
bool ProcessAlive(long pid) {
#ifndef _WIN32
  if (pid <= 0) return true;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
#else
  (void)pid;
  return true;
#endif
}

/// Parses the LAST "-p<digits>-" ownership tag in a spill file name (the
/// last one wins: adoption appends a fresh tag without rewriting history).
/// Returns false when the name carries no tag.
bool ParseOwnerPid(const std::string& name, long* pid) {
  bool found = false;
  size_t pos = 0;
  while ((pos = name.find("-p", pos)) != std::string::npos) {
    size_t digits = pos + 2;
    size_t end = digits;
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end]))) {
      ++end;
    }
    if (end > digits && end < name.size() && name[end] == '-') {
      *pid = std::stol(name.substr(digits, end - digits));
      found = true;
    }
    pos += 2;
  }
  return found;
}

}  // namespace

SpillFileHandle::SpillFileHandle(std::string path)
    : path_(std::move(path)), owner_pid_(CurrentPid()) {}

SpillFileHandle::~SpillFileHandle() {
  // Unlink only in the owning process: a forked worker inherits the
  // parent's handles (and vice versa after an adoption hand-off), and the
  // copy that merely inherited the handle must not destroy the file.
  if (!owned_ || owner_pid_ != CurrentPid()) return;
  std::error_code ec;
  fs::remove(path_, ec);  // best effort; a vanished file is fine
}

Result<std::shared_ptr<SpillFileHandle>> AdoptSpillFile(
    const std::string& path) {
  fs::path old_path(path);
  std::string stem = old_path.stem().string();  // drops ".spill"
  const std::string new_name = stem + "-" + internal::SpillOwnerTag() + "-a" +
                               std::to_string(internal::NextSpillFileId()) +
                               ".spill";
  fs::path new_path = old_path.parent_path() / new_name;
  std::error_code ec;
  fs::rename(old_path, new_path, ec);
  if (ec) {
    return Status::IoError("cannot adopt spill file " + path + ": " +
                           ec.message());
  }
  return std::make_shared<SpillFileHandle>(new_path.string());
}

uint64_t ReapOrphanSpillFiles(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;  // missing or unreadable dir: nothing to reap
  const long self = CurrentPid();
  uint64_t reaped = 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".spill") continue;
    long owner = 0;
    if (!ParseOwnerPid(p.filename().string(), &owner)) continue;
    if (owner == self || ProcessAlive(owner)) continue;
    std::error_code rm_ec;
    if (fs::remove(p, rm_ec) && !rm_ec) ++reaped;
  }
  return reaped;
}

void AppendRunTrailer(std::string* segment) {
  const uint32_t crc = Crc32(segment->data(), segment->size());
  segment->push_back(static_cast<char>(crc & 0xFF));
  segment->push_back(static_cast<char>((crc >> 8) & 0xFF));
  segment->push_back(static_cast<char>((crc >> 16) & 0xFF));
  segment->push_back(static_cast<char>((crc >> 24) & 0xFF));
}

Status VerifyAndStripRunTrailer(std::string* segment) {
  if (segment->size() < 4) {
    return Status::IoError("run shorter than its CRC trailer");
  }
  const size_t body = segment->size() - 4;
  const auto* t = reinterpret_cast<const uint8_t*>(segment->data() + body);
  const uint32_t stored = static_cast<uint32_t>(t[0]) |
                          (static_cast<uint32_t>(t[1]) << 8) |
                          (static_cast<uint32_t>(t[2]) << 16) |
                          (static_cast<uint32_t>(t[3]) << 24);
  if (stored != Crc32(segment->data(), body)) {
    return Status::IoError("run CRC mismatch");
  }
  segment->resize(body);
  return Status::OK();
}

Result<std::string> ReadFileExtent(const std::string& path, uint64_t offset,
                                   uint64_t length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open spill file " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  std::string out;
  out.resize(static_cast<size_t>(length));
  in.read(out.data(), static_cast<std::streamsize>(length));
  if (static_cast<uint64_t>(in.gcount()) != length) {
    return Status::IoError("short read from spill file " + path);
  }
  return out;
}

Result<std::unique_ptr<SpillFileWriter>> SpillFileWriter::Create(
    const std::string& dir, const std::string& basename) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create spill dir " + dir + ": " +
                            ec.message());
  }
  std::string name = basename;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  std::string path = (fs::path(dir) / name).string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open spill file " + path);
  }
  auto handle = std::make_shared<SpillFileHandle>(path);
  return std::unique_ptr<SpillFileWriter>(
      new SpillFileWriter(std::move(handle), std::move(out)));
}

void SpillFileWriter::BeginRun() {
  run_start_ = offset_;
  crc_ = 0;
}

void SpillFileWriter::Append(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  crc_ = Crc32(data, n, crc_);
  offset_ += n;
}

Result<SpillExtent> SpillFileWriter::EndRun() {
  char trailer[4];
  trailer[0] = static_cast<char>(crc_ & 0xFF);
  trailer[1] = static_cast<char>((crc_ >> 8) & 0xFF);
  trailer[2] = static_cast<char>((crc_ >> 16) & 0xFF);
  trailer[3] = static_cast<char>((crc_ >> 24) & 0xFF);
  out_.write(trailer, sizeof(trailer));
  offset_ += sizeof(trailer);
  if (!out_) {
    return Status::Internal("write failed on spill file " + handle_->path());
  }
  return SpillExtent{run_start_, offset_ - run_start_};
}

Status SpillFileWriter::Close() {
  out_.flush();
  if (!out_) {
    return Status::Internal("flush failed on spill file " + handle_->path());
  }
  out_.close();
  return Status::OK();
}

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

Status SpillSegmentReader::OpenIfNeeded() {
  if (opened_) return Status::OK();
  in_.open(file_->path(), std::ios::binary);
  if (!in_) {
    return Status::IoError("cannot open spill file " + file_->path());
  }
  in_.seekg(static_cast<std::streamoff>(offset_));
  opened_ = true;
  return Status::OK();
}

Status SpillSegmentReader::Ensure(size_t n) {
  if (buf_.size() - pos_ >= n) return Status::OK();
  // Compact the consumed prefix, then top up from disk.
  buf_.erase(0, pos_);
  pos_ = 0;
  DDP_RETURN_NOT_OK(OpenIfNeeded());
  while (buf_.size() < n && remaining_ > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(remaining_, kReadChunk));
    const size_t old = buf_.size();
    buf_.resize(old + want);
    in_.read(&buf_[old], static_cast<std::streamsize>(want));
    if (static_cast<size_t>(in_.gcount()) != want) {
      return Status::IoError("short read from spill file " + file_->path());
    }
    crc_ = Crc32(buf_.data() + old, want, crc_);
    offset_ += want;
    remaining_ -= want;
  }
  if (buf_.size() - pos_ < n) {
    return Status::IoError("spill run truncated in " + file_->path());
  }
  return Status::OK();
}

Status SpillSegmentReader::NextFrame(std::string_view* payload, bool* eof) {
  *eof = false;
  if (bad_extent_) {
    return Status::IoError("spill run shorter than its CRC trailer");
  }
  if (remaining_ == 0 && pos_ == buf_.size()) {
    // Clean end of run: verify the accumulated CRC against the trailer.
    DDP_RETURN_NOT_OK(OpenIfNeeded());
    char trailer[4];
    in_.read(trailer, sizeof(trailer));
    if (static_cast<size_t>(in_.gcount()) != sizeof(trailer)) {
      return Status::IoError("missing CRC trailer in " + file_->path());
    }
    const uint32_t stored =
        static_cast<uint32_t>(static_cast<uint8_t>(trailer[0])) |
        (static_cast<uint32_t>(static_cast<uint8_t>(trailer[1])) << 8) |
        (static_cast<uint32_t>(static_cast<uint8_t>(trailer[2])) << 16) |
        (static_cast<uint32_t>(static_cast<uint8_t>(trailer[3])) << 24);
    if (stored != crc_) {
      return Status::IoError("spill run CRC mismatch in " + file_->path());
    }
    *eof = true;
    return Status::OK();
  }
  // Decode the varint frame length byte by byte (spans at most 10 bytes).
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    DDP_RETURN_NOT_OK(Ensure(1));
    const uint8_t b = static_cast<uint8_t>(buf_[pos_++]);
    if (shift >= 64) {
      return Status::IoError("corrupt frame length in " + file_->path());
    }
    len |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  DDP_RETURN_NOT_OK(Ensure(static_cast<size_t>(len)));
  *payload = std::string_view(buf_.data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status MemoryFrameReader::NextFrame(std::string_view* payload, bool* eof) {
  *eof = false;
  if (pos_ == buf_->size()) {
    *eof = true;
    return Status::OK();
  }
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    if (pos_ == buf_->size()) {
      return Status::IoError("truncated frame header in map output");
    }
    const uint8_t b = static_cast<uint8_t>((*buf_)[pos_++]);
    if (shift >= 64) {
      return Status::IoError("corrupt frame length in map output");
    }
    len |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  if (buf_->size() - pos_ < len) {
    return Status::IoError("truncated frame in map output");
  }
  *payload = std::string_view(buf_->data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

namespace internal {

std::string ResolveSpillDir(const std::string& configured) {
  if (!configured.empty()) return configured;
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  return (tmp / "ddp-spill").string();
}

uint64_t NextSpillFileId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string SpillOwnerTag() { return "p" + std::to_string(CurrentPid()); }

}  // namespace internal
}  // namespace mr
}  // namespace ddp

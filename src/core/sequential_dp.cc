#include "core/sequential_dp.h"

#include "dataset/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ddp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pivot projections for the triangle-inequality filter: distances from every
// point to the dataset centroid. |proj_i - proj_j| <= d_ij for any metric
// pivot, so pairs with a large projection gap can be skipped.
std::vector<double> CentroidProjections(const Dataset& dataset,
                                        const CountingMetric& metric) {
  std::vector<double> centroid(dataset.dim(), 0.0);
  for (size_t i = 0; i < dataset.size(); ++i) {
    std::span<const double> p = dataset.point(static_cast<PointId>(i));
    for (size_t d = 0; d < dataset.dim(); ++d) centroid[d] += p[d];
  }
  for (double& c : centroid) c /= static_cast<double>(dataset.size());
  std::vector<double> proj(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    proj[i] = metric.Distance(dataset.point(static_cast<PointId>(i)), centroid);
  }
  return proj;
}

}  // namespace

Result<std::vector<uint32_t>> ComputeExactRho(
    const Dataset& dataset, double dc, const CountingMetric& metric,
    const SequentialDpOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  const size_t n = dataset.size();
  const bool gaussian = options.kernel == DensityKernel::kGaussian;
  // The filter bound is the radius beyond which a pair cannot contribute:
  // d_c for the cutoff kernel, the truncation radius for the gaussian one.
  const double reach = gaussian ? kGaussianKernelCut * dc : dc;
  if (options.use_kdtree_rho) {
    DDP_ASSIGN_OR_RETURN(KdTree tree, KdTree::Build(dataset));
    std::vector<uint32_t> rho(n, 0);
    for (size_t i = 0; i < n; ++i) {
      PointId id = static_cast<PointId>(i);
      std::span<const double> p = dataset.point(id);
      if (gaussian) {
        double soft = 0.0;
        for (PointId j : tree.FindWithin(p, reach, id, metric)) {
          soft += GaussianKernelContribution(
              Euclidean(p, dataset.point(j)), dc);
          metric.AddEvaluations(1);
        }
        rho[i] = QuantizeDensity(soft);
      } else {
        rho[i] = static_cast<uint32_t>(tree.CountWithin(p, dc, id, metric));
      }
    }
    return rho;
  }
  std::vector<uint32_t> rho(n, 0);
  std::vector<double> soft;
  if (gaussian) soft.assign(n, 0.0);
  std::vector<double> proj;
  if (options.use_triangle_filter) proj = CentroidProjections(dataset, metric);
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> pi = dataset.point(static_cast<PointId>(i));
    for (size_t j = i + 1; j < n; ++j) {
      if (options.use_triangle_filter &&
          std::abs(proj[i] - proj[j]) >= reach) {
        continue;  // lower bound proves the pair contributes nothing
      }
      double d = metric.Distance(pi, dataset.point(static_cast<PointId>(j)));
      if (gaussian) {
        double w = GaussianKernelContribution(d, dc);
        soft[i] += w;
        soft[j] += w;
      } else if (d < dc) {
        ++rho[i];
        ++rho[j];
      }
    }
  }
  if (gaussian) {
    for (size_t i = 0; i < n; ++i) rho[i] = QuantizeDensity(soft[i]);
  }
  return rho;
}

Result<DpScores> ComputeDeltaGivenRho(const Dataset& dataset,
                                      std::vector<uint32_t> rho,
                                      const CountingMetric& metric,
                                      const SequentialDpOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (rho.size() != dataset.size()) {
    return Status::InvalidArgument("rho size mismatch");
  }
  const size_t n = dataset.size();
  DpScores scores;
  scores.Resize(n);
  scores.rho = std::move(rho);

  // Sort ids by the density total order (descending rho, ascending id): the
  // candidates denser than the point at rank r are exactly ranks [0, r).
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return DenserThan(scores.rho[a], a, scores.rho[b], b);
  });

  std::vector<double> proj;
  if (options.use_triangle_filter) proj = CentroidProjections(dataset, metric);

  for (size_t r = 1; r < n; ++r) {
    PointId i = order[r];
    std::span<const double> pi = dataset.point(i);
    double best = kInf;
    PointId best_id = kInvalidPointId;
    for (size_t s = 0; s < r; ++s) {
      PointId j = order[s];
      if (options.use_triangle_filter &&
          std::abs(proj[i] - proj[j]) > best) {
        continue;  // cannot improve on the current minimum
      }
      double d = metric.Distance(pi, dataset.point(j));
      if (d < best || (d == best && j < best_id)) {
        best = d;
        best_id = j;
      }
    }
    scores.delta[i] = best;
    scores.upslope[i] = best_id;
  }
  // order[0] is the absolute density peak: delta stays +inf (rectified to
  // max_j d_ij by DecisionGraph), upslope stays invalid.
  return scores;
}

Result<DpScores> ComputeExactDp(const Dataset& dataset, double dc,
                                const CountingMetric& metric,
                                const SequentialDpOptions& options) {
  DDP_ASSIGN_OR_RETURN(std::vector<uint32_t> rho,
                       ComputeExactRho(dataset, dc, metric, options));
  return ComputeDeltaGivenRho(dataset, std::move(rho), metric, options);
}

LocalDpResult ComputeLocalRho(const Dataset& dataset,
                              std::span<const PointId> ids, double dc,
                              const CountingMetric& metric,
                              DensityKernel kernel) {
  const size_t n = ids.size();
  const bool gaussian = kernel == DensityKernel::kGaussian;
  LocalDpResult out;
  out.rho.assign(n, 0);
  std::vector<double> soft;
  if (gaussian) soft.assign(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    std::span<const double> pk = dataset.point(ids[k]);
    for (size_t l = k + 1; l < n; ++l) {
      double d = metric.Distance(pk, dataset.point(ids[l]));
      if (gaussian) {
        double w = GaussianKernelContribution(d, dc);
        soft[k] += w;
        soft[l] += w;
      } else if (d < dc) {
        ++out.rho[k];
        ++out.rho[l];
      }
    }
  }
  if (gaussian) {
    for (size_t k = 0; k < n; ++k) out.rho[k] = QuantizeDensity(soft[k]);
  }
  return out;
}

LocalDpResult ComputeLocalDelta(const Dataset& dataset,
                                std::span<const PointId> ids,
                                std::span<const uint32_t> rho,
                                const CountingMetric& metric) {
  const size_t n = ids.size();
  LocalDpResult out;
  out.delta.assign(n, kInf);
  out.upslope.assign(n, kInvalidPointId);

  // Rank subset positions by the density total order; scan denser prefixes.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return DenserThan(rho[a], ids[a], rho[b], ids[b]);
  });

  for (size_t r = 1; r < n; ++r) {
    size_t k = order[r];
    std::span<const double> pk = dataset.point(ids[k]);
    double best = kInf;
    PointId best_id = kInvalidPointId;
    for (size_t s = 0; s < r; ++s) {
      size_t l = order[s];
      double d = metric.Distance(pk, dataset.point(ids[l]));
      if (d < best || (d == best && ids[l] < best_id)) {
        best = d;
        best_id = ids[l];
      }
    }
    out.delta[k] = best;
    out.upslope[k] = best_id;
  }
  return out;
}

}  // namespace ddp

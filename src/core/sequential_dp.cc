#include "core/sequential_dp.h"

#include <limits>
#include <utility>

#include "core/local_dp.h"

namespace ddp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Maps the sequential options onto an engine configuration. The legacy
// boolean accelerators take precedence over `backend` so existing call
// sites keep their exact behavior; with no accelerator requested the
// default stays brute force, preserving the pinned evaluation counts of
// the oracle (e.g. exactly n(n-1)/2 rho evaluations).
LocalDpEngine RhoEngine(const SequentialDpOptions& options) {
  LocalDpEngineOptions engine_options;
  engine_options.backend = options.use_kdtree_rho
                               ? LocalDpBackend::kKdTree
                               : (options.use_triangle_filter
                                      ? LocalDpBackend::kTriangleFilter
                                      : options.backend);
  return LocalDpEngine(engine_options);
}

LocalDpEngine DeltaEngine(const SequentialDpOptions& options) {
  LocalDpEngineOptions engine_options;
  // use_kdtree_rho historically accelerates only the rho pass.
  engine_options.backend = options.use_triangle_filter
                               ? LocalDpBackend::kTriangleFilter
                               : options.backend;
  return LocalDpEngine(engine_options);
}

}  // namespace

Result<std::vector<uint32_t>> ComputeExactRho(
    const Dataset& dataset, double dc, const CountingMetric& metric,
    const SequentialDpOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  return RhoEngine(options).Rho(LocalPointView::AllOf(dataset), dc,
                                options.kernel, metric);
}

Result<DpScores> ComputeDeltaGivenRho(const Dataset& dataset,
                                      std::vector<uint32_t> rho,
                                      const CountingMetric& metric,
                                      const SequentialDpOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (rho.size() != dataset.size()) {
    return Status::InvalidArgument("rho size mismatch");
  }
  DpScores scores;
  scores.rho = std::move(rho);
  LocalDeltaScores local = DeltaEngine(options).Delta(
      LocalPointView::AllOf(dataset), scores.rho, metric);
  scores.delta = std::move(local.delta);
  scores.upslope = std::move(local.upslope);
  // The density-order-first point is the absolute peak: delta stays +inf
  // (rectified to max_j d_ij by DecisionGraph), upslope stays invalid.
  return scores;
}

Result<DpScores> ComputeExactDp(const Dataset& dataset, double dc,
                                const CountingMetric& metric,
                                const SequentialDpOptions& options) {
  DDP_ASSIGN_OR_RETURN(std::vector<uint32_t> rho,
                       ComputeExactRho(dataset, dc, metric, options));
  return ComputeDeltaGivenRho(dataset, std::move(rho), metric, options);
}

LocalDpResult ComputeLocalRho(const Dataset& dataset,
                              std::span<const PointId> ids, double dc,
                              const CountingMetric& metric,
                              DensityKernel kernel) {
  LocalDpResult out;
  out.rho = LocalDpEngine().Rho(LocalPointView::SubsetOf(dataset, ids), dc,
                                kernel, metric);
  return out;
}

LocalDpResult ComputeLocalDelta(const Dataset& dataset,
                                std::span<const PointId> ids,
                                std::span<const uint32_t> rho,
                                const CountingMetric& metric) {
  LocalDeltaScores local = LocalDpEngine().Delta(
      LocalPointView::SubsetOf(dataset, ids), rho, metric);
  LocalDpResult out;
  out.delta = std::move(local.delta);
  out.upslope = std::move(local.upslope);
  return out;
}

}  // namespace ddp

#pragma once

#include "common/result.h"
#include "core/dp_types.h"
#include "core/kernel.h"
#include "core/local_dp.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file sequential_dp.h
/// The exact O(N^2) Density Peaks computation (Rodriguez & Laio, paper
/// Sec. II-A), with the two sequential optimizations the paper mentions:
/// sorted-rho delta scanning and triangle-inequality filtering via a pivot
/// projection. This is the ground-truth oracle for all distributed variants
/// and the local kernel run inside LSH buckets.

namespace ddp {

struct SequentialDpOptions {
  /// Filter rho/delta distance computations with a pivot-based triangle
  /// inequality bound (saves counted evaluations, identical results).
  /// Takes precedence over `backend`.
  bool use_triangle_filter = false;
  /// Answer the rho range counts with a k-d tree (dataset/kdtree.h) instead
  /// of the pairwise scan. Identical results; large savings in low
  /// dimensions, no benefit in very high dimensions. Takes precedence over
  /// `backend` (and over use_triangle_filter) for the rho pass.
  bool use_kdtree_rho = false;
  /// LocalDpEngine backend for both passes when neither legacy flag above is
  /// set. Defaults to brute force — the oracle keeps its pinned evaluation
  /// counts (exactly n(n-1)/2 per pass) unless acceleration is asked for.
  LocalDpBackend backend = LocalDpBackend::kBruteForce;
  /// Density kernel (core/kernel.h). kGaussian yields quantized soft
  /// densities in the same uint32 domain.
  DensityKernel kernel = DensityKernel::kCutoff;
};

/// Exact rho for every point: the count of points j != i with d_ij < d_c
/// (cutoff kernel), or the quantized soft density (gaussian kernel).
Result<std::vector<uint32_t>> ComputeExactRho(
    const Dataset& dataset, double dc, const CountingMetric& metric,
    const SequentialDpOptions& options = {});

/// Exact delta and upslope given (exact or approximate) rho values, over the
/// density total order of dp_types.h. The order-first point gets
/// delta = +infinity and no upslope (rectified later, Sec. III Step 2 sets it
/// to max_j d_ij — DecisionGraph applies that rectification).
Result<DpScores> ComputeDeltaGivenRho(const Dataset& dataset,
                                      std::vector<uint32_t> rho,
                                      const CountingMetric& metric,
                                      const SequentialDpOptions& options = {});

/// Full exact DP: rho then delta.
Result<DpScores> ComputeExactDp(const Dataset& dataset, double dc,
                                const CountingMetric& metric,
                                const SequentialDpOptions& options = {});

/// Exact DP restricted to a subset of points, writing into caller-indexed
/// arrays. `ids` are indices into `dataset`; scores are produced for the
/// subset only, in subset order. This is the local kernel used by LSH-DDP
/// reducers (rho within a bucket) — exposed here for reuse and testing.
struct LocalDpResult {
  std::vector<uint32_t> rho;      // local rho per subset position
  std::vector<double> delta;     // +inf when no denser point in subset
  std::vector<PointId> upslope;  // global point ids; kInvalidPointId if none
};

/// Local rho within the subset: counts only subset neighbors.
LocalDpResult ComputeLocalRho(const Dataset& dataset,
                              std::span<const PointId> ids, double dc,
                              const CountingMetric& metric,
                              DensityKernel kernel = DensityKernel::kCutoff);

/// Local delta within the subset given rho values aligned with `ids`
/// (`rho[k]` belongs to point `ids[k]`). Ties broken by global point id.
LocalDpResult ComputeLocalDelta(const Dataset& dataset,
                                std::span<const PointId> ids,
                                std::span<const uint32_t> rho,
                                const CountingMetric& metric);

}  // namespace ddp


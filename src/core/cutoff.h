#pragma once

#include <cstdint>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file cutoff.h
/// Cutoff distance (d_c) selection — the preprocessing step of Sec. III-A.
/// As in the original DP paper, d_c is chosen so that the average neighbor
/// count is ~1-2% of N: the `percentile` position of the ascending pairwise
/// distance multiset. Computing all N(N-1)/2 distances is avoided by
/// sampling random pairs (the paper's preprocessing MapReduce job samples
/// and sends pairs to a single reducer; ddp::DistributedDriver wires this
/// same routine as that job).

namespace ddp {

struct CutoffOptions {
  /// Percentile of the ascending pairwise distance distribution (paper uses
  /// 1%-2%; default 2% matching Sec. VI-B).
  double percentile = 0.02;
  /// Number of random pairs to sample; clamped to the number of available
  /// distinct pairs for small data sets.
  size_t sample_pairs = 100000;
  uint64_t seed = 42;
};

/// The sampled d_c estimate. Errors on datasets with < 2 points or a
/// percentile outside (0, 1).
Result<double> ChooseCutoff(const Dataset& dataset,
                            const CountingMetric& metric,
                            const CutoffOptions& options = {});

}  // namespace ddp


#pragma once

#include <vector>

#include "common/result.h"
#include "core/dp_types.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file halo.h
/// Cluster halo detection from the original DP paper (Rodriguez & Laio):
/// after assignment, each cluster gets a border density
///
///   rho_b(c) = max over points i in c that have a neighbor j of another
///              cluster with d_ij < d_c of (rho_i + rho_j) / 2
///
/// and every point of c with rho below rho_b(c) is flagged as halo (possible
/// noise). The ICDE paper omits halos for brevity; they are cheap to add on
/// top of any (exact or approximate) scores and complete the original
/// algorithm's output.

namespace ddp {

struct HaloResult {
  /// halo[i] is true when point i is in its cluster's halo region.
  std::vector<bool> halo;
  /// Border density per cluster (0 for clusters with no foreign neighbors).
  std::vector<double> border_density;
};

/// Computes halo flags for a completed clustering. O(N^2) distance work
/// (counted through `metric`), independent of which algorithm produced the
/// scores. Unassigned points (cluster -1) are always halo.
Result<HaloResult> ComputeHalo(const Dataset& dataset, const DpScores& scores,
                               const ClusterResult& clusters, double dc,
                               const CountingMetric& metric);

}  // namespace ddp


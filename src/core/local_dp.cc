#include "core/local_dp.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/thread_pool.h"
#include "dataset/kdtree.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Observability for one kernel invocation. Counters are always recorded;
// a trace span (timing + per-group distance-eval count) is created only
// for groups of at least this many members, so the millions of tiny LSH
// buckets a large run produces never flood the trace buffer or pay clock
// reads.
constexpr size_t kKernelSpanMinGroup = 16;

class KernelScope {
 public:
  KernelScope(const char* name, size_t group_size, LocalDpBackend backend,
              const CountingMetric& metric)
      : outer_(metric.counter()), local_metric_(&local_counter_) {
    DDP_METRIC_COUNTER_ADD(obs::kMetricLocalDpGroups, 1);
    DDP_METRIC_HISTOGRAM_RECORD(obs::kMetricLocalDpGroupSize, group_size);
#ifndef DDP_OBS_NO_TRACING
    if (group_size >= kKernelSpanMinGroup &&
        obs::TraceRecorder::Global().enabled()) {
      span_.emplace(obs::kCatLocalDp, name);
      span_->AddArg("group_size", static_cast<uint64_t>(group_size));
      span_->AddArg("backend", LocalDpBackendName(backend));
    }
#endif
  }

  ~KernelScope() {
    const uint64_t evals = local_counter_.value();
    DDP_METRIC_COUNTER_ADD(obs::kMetricLocalDpDistanceEvals, evals);
    if (outer_ != nullptr) outer_->Add(evals);
#ifndef DDP_OBS_NO_TRACING
    if (span_.has_value()) span_->AddArg("distance_evals", evals);
#endif
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  /// Metric the kernel body must use: evaluations land in this scope's
  /// local counter (so the per-group count is exact even when other groups
  /// run concurrently) and are forwarded to the caller's counter by the
  /// destructor.
  const CountingMetric& metric() const { return local_metric_; }

 private:
  DistanceCounter* outer_;
  DistanceCounter local_counter_;
  CountingMetric local_metric_;
#ifndef DDP_OBS_NO_TRACING
  std::optional<obs::Span> span_;
#endif
};

long KernelPoolPid() {
#ifndef _WIN32
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

// Process-wide pool for within-group kernel parallelism. Deliberately
// separate from the per-job MapReduce pools: engine calls originate on MR
// workers, and blocking one pool's worker while waiting on a *different*
// pool cannot deadlock. The pool is pid-stamped: a forked MR worker
// (ExecMode::kFork) inherits this static but none of its threads, so the
// child must rebuild it — the inherited object is released unjoined (joining
// threads that do not exist in this image would hang; the child exits via
// _exit, so no destructors or leak checks run there). The supervising parent
// keeps the original pool, whose static unique_ptr still joins cleanly at
// exit. The rebuild branch only ever runs on a freshly forked,
// single-threaded child, so the unsynchronized statics are safe.
ThreadPool* SharedKernelPool() {
  static long owner_pid = KernelPoolPid();
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(DefaultParallelism());
  if (owner_pid != KernelPoolPid()) {
    (void)pool.release();
    pool = std::make_unique<ThreadPool>(DefaultParallelism());
    owner_pid = KernelPoolPid();
  }
  return pool.get();
}

// Runs body(k) for k in [0, n), on the shared pool when asked. Concurrent
// calls from different reducer threads are safe (each ParallelFor has its
// own cursor; Wait over-waits at worst).
void ForEachIndex(size_t n, bool parallel,
                  const std::function<void(size_t)>& body) {
  if (parallel && n > 1) {
    SharedKernelPool()->ParallelFor(n, body);
  } else {
    for (size_t k = 0; k < n; ++k) body(k);
  }
}

// Pivot projections for the triangle-inequality filter: distances from every
// group member to the group centroid. |proj_i - proj_j| <= d_ij for any
// metric pivot, so pairs with a large projection gap can be skipped. The
// projections are counted evaluations (one per member).
std::vector<double> CentroidProjections(const LocalPointView& view,
                                        const CountingMetric& metric) {
  const size_t n = view.size();
  std::vector<double> centroid(view.dim(), 0.0);
  for (size_t k = 0; k < n; ++k) {
    std::span<const double> p = view.point(k);
    for (size_t d = 0; d < view.dim(); ++d) centroid[d] += p[d];
  }
  for (double& c : centroid) c /= static_cast<double>(n);
  std::vector<double> proj(n);
  for (size_t k = 0; k < n; ++k) {
    proj[k] = metric.Distance(view.point(k), centroid);
  }
  return proj;
}

}  // namespace

const char* LocalDpBackendName(LocalDpBackend backend) {
  switch (backend) {
    case LocalDpBackend::kAuto:
      return "auto";
    case LocalDpBackend::kBruteForce:
      return "brute";
    case LocalDpBackend::kKdTree:
      return "kdtree";
    case LocalDpBackend::kTriangleFilter:
      return "triangle";
  }
  return "unknown";
}

Result<LocalDpBackend> ParseLocalDpBackend(std::string_view name) {
  if (name == "auto") return LocalDpBackend::kAuto;
  if (name == "brute") return LocalDpBackend::kBruteForce;
  if (name == "kdtree") return LocalDpBackend::kKdTree;
  if (name == "triangle") return LocalDpBackend::kTriangleFilter;
  return Status::InvalidArgument("unknown local backend '" +
                                 std::string(name) +
                                 "' (want auto|brute|kdtree|triangle)");
}

LocalPointView LocalPointView::AllOf(const Dataset& dataset) {
  LocalPointView view(dataset.dim());
  view.Reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    PointId id = static_cast<PointId>(i);
    view.Add(id, dataset.point(id));
  }
  return view;
}

LocalPointView LocalPointView::SubsetOf(const Dataset& dataset,
                                        std::span<const PointId> ids) {
  LocalPointView view(dataset.dim());
  view.Reserve(ids.size());
  for (PointId id : ids) view.Add(id, dataset.point(id));
  return view;
}

LocalDpBackend LocalDpEngine::Resolve(size_t group_size, size_t dim) const {
  if (options_.backend != LocalDpBackend::kAuto) return options_.backend;
  if (group_size >= options_.kd_min_group && dim <= options_.kd_max_dim) {
    return LocalDpBackend::kKdTree;
  }
  if (group_size >= options_.triangle_min_group) {
    return LocalDpBackend::kTriangleFilter;
  }
  return LocalDpBackend::kBruteForce;
}

std::vector<uint32_t> LocalDpEngine::Rho(const LocalPointView& view, double dc,
                                         DensityKernel kernel,
                                         const CountingMetric& outer_metric)
    const {
  const size_t n = view.size();
  std::vector<uint32_t> rho(n, 0);
  if (n == 0) return rho;
  const LocalDpBackend backend = Resolve(n, view.dim());
  KernelScope scope(obs::kSpanRho, n, backend, outer_metric);
  const CountingMetric& metric = scope.metric();
  const bool gaussian = kernel == DensityKernel::kGaussian;
  const double dc_sq = dc * dc;
  // Radius beyond which a pair cannot contribute: d_c for the cutoff
  // kernel, the truncation radius for the gaussian one. reach * reach is
  // the same expression GaussianKernelContributionSq truncates against.
  const double reach = gaussian ? kGaussianKernelCut * dc : dc;
  const double reach_sq = reach * reach;
  const bool parallel = options_.parallel_min_group > 0 &&
                        n >= options_.parallel_min_group;
  std::vector<double> soft;
  if (gaussian) soft.assign(n, 0.0);

  switch (backend) {
    case LocalDpBackend::kKdTree: {
      Result<KdTree> tree =
          KdTree::BuildFromRows(view.rows(), view.dim(), options_.kd_leaf_size);
      const KdTree& t = *tree;  // cannot fail: view non-empty, leaf_size >= 1
      ForEachIndex(n, parallel, [&](size_t k) {
        if (gaussian) {
          std::vector<std::pair<PointId, double>> hits;
          t.FindWithinSq(view.point(k), reach_sq, static_cast<PointId>(k),
                         metric, &hits);
          // Accumulate in ascending group-position order, the engine-wide
          // summation order, so the result matches the pairwise scans
          // bit-for-bit.
          std::sort(hits.begin(), hits.end());
          double s = 0.0;
          for (const auto& [pos, d_sq] : hits) {
            s += GaussianKernelContributionSq(d_sq, dc);
          }
          soft[k] = s;
        } else {
          rho[k] = static_cast<uint32_t>(
              t.CountWithin(view.point(k), dc, static_cast<PointId>(k),
                            metric));
        }
      });
      break;
    }
    case LocalDpBackend::kTriangleFilter: {
      std::vector<double> proj = CentroidProjections(view, metric);
      if (parallel) {
        // Full-row scans: each point accumulates its own row (ascending
        // position order), so rows are independent and bit-identical to the
        // sequential half-loop. Each surviving pair is evaluated from both
        // sides.
        ForEachIndex(n, true, [&](size_t k) {
          std::span<const double> pk = view.point(k);
          double s = 0.0;
          uint32_t count = 0;
          for (size_t j = 0; j < n; ++j) {
            if (j == k || std::abs(proj[k] - proj[j]) >= reach) continue;
            double d_sq = metric.SquaredDistance(pk, view.point(j));
            if (gaussian) {
              s += GaussianKernelContributionSq(d_sq, dc);
            } else if (d_sq < dc_sq) {
              ++count;
            }
          }
          if (gaussian) {
            soft[k] = s;
          } else {
            rho[k] = count;
          }
        });
      } else {
        for (size_t i = 0; i < n; ++i) {
          std::span<const double> pi = view.point(i);
          for (size_t j = i + 1; j < n; ++j) {
            if (std::abs(proj[i] - proj[j]) >= reach) {
              continue;  // lower bound proves the pair contributes nothing
            }
            double d_sq = metric.SquaredDistance(pi, view.point(j));
            if (gaussian) {
              double w = GaussianKernelContributionSq(d_sq, dc);
              soft[i] += w;
              soft[j] += w;
            } else if (d_sq < dc_sq) {
              ++rho[i];
              ++rho[j];
            }
          }
        }
      }
      break;
    }
    case LocalDpBackend::kAuto:  // Resolve never returns kAuto
    case LocalDpBackend::kBruteForce: {
      if (parallel) {
        ForEachIndex(n, true, [&](size_t k) {
          std::span<const double> pk = view.point(k);
          double s = 0.0;
          uint32_t count = 0;
          for (size_t j = 0; j < n; ++j) {
            if (j == k) continue;
            double d_sq = metric.SquaredDistance(pk, view.point(j));
            if (gaussian) {
              s += GaussianKernelContributionSq(d_sq, dc);
            } else if (d_sq < dc_sq) {
              ++count;
            }
          }
          if (gaussian) {
            soft[k] = s;
          } else {
            rho[k] = count;
          }
        });
      } else {
        for (size_t i = 0; i < n; ++i) {
          std::span<const double> pi = view.point(i);
          for (size_t j = i + 1; j < n; ++j) {
            double d_sq = metric.SquaredDistance(pi, view.point(j));
            if (gaussian) {
              double w = GaussianKernelContributionSq(d_sq, dc);
              soft[i] += w;
              soft[j] += w;
            } else if (d_sq < dc_sq) {
              ++rho[i];
              ++rho[j];
            }
          }
        }
      }
      break;
    }
  }
  if (gaussian) {
    for (size_t k = 0; k < n; ++k) rho[k] = QuantizeDensity(soft[k]);
  }
  return rho;
}

LocalDeltaScores LocalDpEngine::Delta(const LocalPointView& view,
                                      std::span<const uint32_t> rho,
                                      const CountingMetric& outer_metric)
    const {
  const size_t n = view.size();
  LocalDeltaScores out;
  out.delta.assign(n, kInf);
  out.delta_sq.assign(n, kInf);
  out.upslope.assign(n, kInvalidPointId);
  if (n <= 1) return out;
  const LocalDpBackend backend = Resolve(n, view.dim());
  KernelScope scope(obs::kSpanDelta, n, backend, outer_metric);
  const CountingMetric& metric = scope.metric();

  // Rank positions by the density total order: the candidates denser than
  // the point at rank r are exactly ranks [0, r). Rank 0 is the group's
  // densest point and keeps delta = +inf (the local-max rule).
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return DenserThan(rho[a], view.id(a), rho[b], view.id(b));
  });

  const bool parallel = options_.parallel_min_group > 0 &&
                        n >= options_.parallel_min_group;
  auto commit = [&](size_t k, const LocalDeltaBest& best) {
    if (best.upslope == kInvalidPointId) return;
    out.delta_sq[k] = best.d_sq;
    out.delta[k] = best.Delta();
    out.upslope[k] = best.upslope;
  };

  switch (backend) {
    case LocalDpBackend::kKdTree: {
      Result<KdTree> tree =
          KdTree::BuildFromRows(view.rows(), view.dim(), options_.kd_leaf_size);
      const KdTree& t = *tree;
      ForEachIndex(n - 1, parallel, [&](size_t r1) {
        const size_t k = order[r1 + 1];
        const uint32_t rho_k = rho[k];
        const PointId id_k = view.id(k);
        KdTree::Nearest res = t.FindNearestAccepted(
            view.point(k), metric, view.ids(),
            [&](PointId pos) {
              return DenserThan(rho[pos], view.id(pos), rho_k, id_k);
            });
        LocalDeltaBest best;
        if (res.index != kInvalidPointId) {
          best.d_sq = res.distance_sq;
          best.upslope = res.tie_id;
        }
        commit(k, best);
      });
      break;
    }
    case LocalDpBackend::kTriangleFilter: {
      std::vector<double> proj = CentroidProjections(view, metric);
      ForEachIndex(n - 1, parallel, [&](size_t r1) {
        const size_t r = r1 + 1;
        const size_t k = order[r];
        std::span<const double> pk = view.point(k);
        LocalDeltaBest best;
        for (size_t s = 0; s < r; ++s) {
          size_t l = order[s];
          double gap = std::abs(proj[k] - proj[l]);
          if (gap * gap > best.d_sq) {
            continue;  // cannot improve on the current minimum
          }
          best.Improve(metric.SquaredDistance(pk, view.point(l)), view.id(l));
        }
        commit(k, best);
      });
      break;
    }
    case LocalDpBackend::kAuto:  // Resolve never returns kAuto
    case LocalDpBackend::kBruteForce: {
      ForEachIndex(n - 1, parallel, [&](size_t r1) {
        const size_t r = r1 + 1;
        const size_t k = order[r];
        std::span<const double> pk = view.point(k);
        LocalDeltaBest best;
        for (size_t s = 0; s < r; ++s) {
          size_t l = order[s];
          best.Improve(metric.SquaredDistance(pk, view.point(l)), view.id(l));
        }
        commit(k, best);
      });
      break;
    }
  }
  return out;
}

void LocalDpEngine::RhoCross(const LocalPointView& left,
                             const LocalPointView& right, double dc,
                             const CountingMetric& outer_metric,
                             std::span<uint32_t> counts_left,
                             std::span<uint32_t> counts_right) const {
  const size_t nl = left.size();
  const size_t nr = right.size();
  if (nl == 0 || nr == 0) return;
  KernelScope scope(obs::kSpanRhoCross, nl + nr, options_.backend,
                    outer_metric);
  const CountingMetric& metric = scope.metric();
  const double dc_sq = dc * dc;
  const bool both = !counts_right.empty();
  const bool kd = [&] {
    switch (options_.backend) {
      case LocalDpBackend::kKdTree:
        return true;
      case LocalDpBackend::kAuto:
        return nr >= options_.kd_min_group && left.dim() <= options_.kd_max_dim;
      default:
        return false;  // triangle has no cross-group pivot; use brute
    }
  }();
  // Parallelizing the both-sided pass would race on counts_right; the
  // one-sided pass shards cleanly over left rows.
  const bool parallel = !both && options_.parallel_min_group > 0 &&
                        nl * nr >= options_.parallel_min_group *
                                       options_.parallel_min_group;

  if (kd) {
    Result<KdTree> tree =
        KdTree::BuildFromRows(right.rows(), right.dim(), options_.kd_leaf_size);
    const KdTree& t = *tree;
    if (both) {
      std::vector<std::pair<PointId, double>> hits;
      for (size_t i = 0; i < nl; ++i) {
        hits.clear();
        t.FindWithinSq(left.point(i), dc_sq, kInvalidPointId, metric, &hits);
        counts_left[i] += static_cast<uint32_t>(hits.size());
        for (const auto& [pos, d_sq] : hits) ++counts_right[pos];
      }
    } else {
      ForEachIndex(nl, parallel, [&](size_t i) {
        counts_left[i] += static_cast<uint32_t>(
            t.CountWithin(left.point(i), dc, kInvalidPointId, metric));
      });
    }
    return;
  }
  if (both) {
    for (size_t i = 0; i < nl; ++i) {
      std::span<const double> pi = left.point(i);
      for (size_t j = 0; j < nr; ++j) {
        if (metric.SquaredDistance(pi, right.point(j)) < dc_sq) {
          ++counts_left[i];
          ++counts_right[j];
        }
      }
    }
  } else {
    ForEachIndex(nl, parallel, [&](size_t i) {
      std::span<const double> pi = left.point(i);
      uint32_t count = 0;
      for (size_t j = 0; j < nr; ++j) {
        if (metric.SquaredDistance(pi, right.point(j)) < dc_sq) ++count;
      }
      counts_left[i] += count;
    });
  }
}

void LocalDpEngine::DeltaCross(const LocalPointView& queries,
                               std::span<const uint32_t> query_rho,
                               const LocalPointView& candidates,
                               std::span<const uint32_t> candidate_rho,
                               const CountingMetric& outer_metric,
                               std::span<LocalDeltaBest> best) const {
  const size_t nq = queries.size();
  const size_t nc = candidates.size();
  if (nq == 0 || nc == 0) return;
  KernelScope scope(obs::kSpanDeltaCross, nq + nc, options_.backend,
                    outer_metric);
  const CountingMetric& metric = scope.metric();
  const bool kd = [&] {
    switch (options_.backend) {
      case LocalDpBackend::kKdTree:
        return true;
      case LocalDpBackend::kAuto:
        return nc >= options_.kd_min_group &&
               queries.dim() <= options_.kd_max_dim;
      default:
        return false;
    }
  }();
  const bool parallel = options_.parallel_min_group > 0 &&
                        nq * nc >= options_.parallel_min_group *
                                       options_.parallel_min_group;

  if (kd) {
    Result<KdTree> tree = KdTree::BuildFromRows(
        candidates.rows(), candidates.dim(), options_.kd_leaf_size);
    const KdTree& t = *tree;
    ForEachIndex(nq, parallel, [&](size_t k) {
      const uint32_t rho_k = query_rho[k];
      const PointId id_k = queries.id(k);
      KdTree::Nearest seed;
      seed.distance_sq = best[k].d_sq;
      seed.tie_id = best[k].upslope;
      KdTree::Nearest res = t.FindNearestAccepted(
          queries.point(k), metric, candidates.ids(),
          [&](PointId pos) {
            return DenserThan(candidate_rho[pos], candidates.id(pos), rho_k,
                              id_k);
          },
          seed);
      if (res.index != kInvalidPointId) {
        best[k].d_sq = res.distance_sq;
        best[k].upslope = res.tie_id;
      }
    });
    return;
  }
  ForEachIndex(nq, parallel, [&](size_t k) {
    std::span<const double> pk = queries.point(k);
    const uint32_t rho_k = query_rho[k];
    const PointId id_k = queries.id(k);
    LocalDeltaBest b = best[k];
    for (size_t l = 0; l < nc; ++l) {
      if (!DenserThan(candidate_rho[l], candidates.id(l), rho_k, id_k)) {
        continue;
      }
      b.Improve(metric.SquaredDistance(pk, candidates.point(l)),
                candidates.id(l));
    }
    best[k] = b;
  });
}

void LocalDpEngine::DeltaCrossSymmetric(
    const LocalPointView& left, std::span<const uint32_t> rho_left,
    const LocalPointView& right, std::span<const uint32_t> rho_right,
    const CountingMetric& outer_metric, std::span<LocalDeltaBest> best_left,
    std::span<LocalDeltaBest> best_right) const {
  const size_t nl = left.size();
  const size_t nr = right.size();
  if (nl == 0 || nr == 0) return;
  const bool kd = [&] {
    switch (options_.backend) {
      case LocalDpBackend::kKdTree:
        return true;
      case LocalDpBackend::kAuto:
        // Two one-sided tree passes re-evaluate shared pairs, so they must
        // both be large enough for pruning to beat the brute half price.
        return std::min(nl, nr) >= options_.kd_min_group &&
               left.dim() <= options_.kd_max_dim;
      default:
        return false;
    }
  }();
  if (kd) {
    // The two one-sided passes carry their own kernel scopes.
    DeltaCross(left, rho_left, right, rho_right, outer_metric, best_left);
    DeltaCross(right, rho_right, left, rho_left, outer_metric, best_right);
    return;
  }
  KernelScope scope(obs::kSpanDeltaCrossSym, nl + nr, options_.backend,
                    outer_metric);
  const CountingMetric& metric = scope.metric();
  // Brute: each cross pair's distance is evaluated exactly once and feeds
  // both sides — the Basic-DDP block-pair cost model.
  for (size_t i = 0; i < nl; ++i) {
    std::span<const double> pi = left.point(i);
    const uint32_t rho_i = rho_left[i];
    const PointId id_i = left.id(i);
    for (size_t j = 0; j < nr; ++j) {
      double d_sq = metric.SquaredDistance(pi, right.point(j));
      if (DenserThan(rho_right[j], right.id(j), rho_i, id_i)) {
        best_left[i].Improve(d_sq, right.id(j));
      }
      if (DenserThan(rho_i, id_i, rho_right[j], right.id(j))) {
        best_right[j].Improve(d_sq, id_i);
      }
    }
  }
}

}  // namespace ddp

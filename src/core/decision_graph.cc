#include "core/decision_graph.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace ddp {

DecisionGraph DecisionGraph::FromScores(const DpScores& scores) {
  DecisionGraph graph;
  const size_t n = scores.size();
  graph.rho_.resize(n);
  graph.delta_.resize(n);
  double max_finite = 0.0;
  for (size_t i = 0; i < n; ++i) {
    graph.rho_[i] = static_cast<double>(scores.rho[i]);
    if (std::isfinite(scores.delta[i])) {
      max_finite = std::max(max_finite, scores.delta[i]);
    }
  }
  if (max_finite <= 0.0) max_finite = 1.0;
  for (size_t i = 0; i < n; ++i) {
    graph.delta_[i] =
        std::isfinite(scores.delta[i]) ? scores.delta[i] : max_finite;
  }
  graph.max_finite_delta_ = max_finite;
  return graph;
}

std::vector<PointId> DecisionGraph::SelectByThreshold(double rho_min,
                                                      double delta_min) const {
  std::vector<PointId> peaks;
  for (size_t i = 0; i < size(); ++i) {
    if (rho_[i] > rho_min && delta_[i] > delta_min) {
      peaks.push_back(static_cast<PointId>(i));
    }
  }
  return peaks;
}

std::vector<PointId> DecisionGraph::SelectTopK(size_t k) const {
  std::vector<PointId> ids(size());
  std::iota(ids.begin(), ids.end(), 0);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(k), ids.end(),
                    [&](PointId a, PointId b) {
                      double ga = gamma(a), gb = gamma(b);
                      if (ga != gb) return ga > gb;
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

std::vector<PointId> DecisionGraph::SelectByGammaGap(size_t max_peaks) const {
  if (size() == 0) return {};
  max_peaks = std::max<size_t>(1, std::min(max_peaks, size()));
  // Candidates: the top max_peaks+1 gammas (we need one value past the cut).
  std::vector<PointId> top = SelectTopK(std::min(size(), max_peaks + 1));
  if (top.size() == 1) return top;
  // Find the largest multiplicative gap gamma[r] / gamma[r+1]; the peak set
  // is everything before the gap. Skip zero gammas.
  size_t best_cut = 1;
  double best_ratio = 0.0;
  for (size_t r = 0; r + 1 < top.size(); ++r) {
    double hi = gamma(top[r]);
    double lo = gamma(top[r + 1]);
    if (lo <= 0.0) {
      // Everything after is zero; cutting here separates all mass.
      if (hi > 0.0 && best_ratio < std::numeric_limits<double>::infinity()) {
        best_cut = r + 1;
        best_ratio = std::numeric_limits<double>::infinity();
      }
      break;
    }
    double ratio = hi / lo;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_cut = r + 1;
    }
  }
  top.resize(std::min(best_cut, max_peaks));
  return top;
}

std::string DecisionGraph::ToTsv() const {
  std::string out = "id\trho\tdelta\tgamma\n";
  char buf[128];
  for (size_t i = 0; i < size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu\t%.17g\t%.17g\t%.17g\n", i, rho_[i],
                  delta_[i], gamma(static_cast<PointId>(i)));
    out += buf;
  }
  return out;
}

}  // namespace ddp

#include "core/dp_types.h"

#include <cstdio>
#include <unordered_map>

namespace ddp {

std::string ClusterResult::Summary() const {
  std::unordered_map<int, size_t> sizes;
  size_t unassigned = 0;
  for (int c : assignment) {
    if (c < 0) {
      ++unassigned;
    } else {
      ++sizes[c];
    }
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu clusters over %zu points",
                peaks.size(), assignment.size());
  std::string out = buf;
  for (size_t c = 0; c < peaks.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "; c%zu=%zu", c,
                  sizes.count(static_cast<int>(c)) ? sizes[static_cast<int>(c)]
                                                   : 0);
    out += buf;
  }
  if (unassigned > 0) {
    std::snprintf(buf, sizeof(buf), "; unassigned=%zu", unassigned);
    out += buf;
  }
  return out;
}

}  // namespace ddp

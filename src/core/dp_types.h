#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dataset/dataset.h"

/// \file dp_types.h
/// Result types shared by every DP implementation (sequential, Basic-DDP,
/// LSH-DDP, EDDPC).
///
/// Density ordering. The paper defines delta_i over points with *higher*
/// density. Because rho is an integer count, ties are common; to keep delta
/// well-defined and guarantee a single absolute peak, the whole library uses
/// one total order: point j is "denser" than point i iff
///   rho_j > rho_i, or (rho_j == rho_i and j < i).
/// Every implementation (exact and distributed) applies the same rule, so
/// exact variants agree bit-for-bit and approximate variants are comparable.

namespace ddp {

/// Per-point DP quantities: the (rho, delta) pair plus the upslope point id.
struct DpScores {
  std::vector<uint32_t> rho;
  /// delta_i; +infinity marks a point whose partition saw no denser point
  /// (the absolute peak in exact computation; possibly several points in
  /// LSH-DDP — see Sec. IV-C). Rectified only when building a DecisionGraph.
  std::vector<double> delta;
  /// Upslope point u_i (nearest denser point); kInvalidPointId when none.
  std::vector<PointId> upslope;

  size_t size() const { return rho.size(); }

  void Resize(size_t n) {
    rho.assign(n, 0);
    delta.assign(n, std::numeric_limits<double>::infinity());
    upslope.assign(n, kInvalidPointId);
  }
};

/// Returns true iff point j precedes point i in the density total order
/// ("j is denser than i").
inline bool DenserThan(uint32_t rho_j, PointId j, uint32_t rho_i, PointId i) {
  return rho_j > rho_i || (rho_j == rho_i && j < i);
}

/// A completed clustering: cluster id per point (-1 = unassigned) plus the
/// chosen density peaks (cluster c's center is peaks[c]).
struct ClusterResult {
  std::vector<int> assignment;
  std::vector<PointId> peaks;

  size_t num_clusters() const { return peaks.size(); }
  std::string Summary() const;
};

}  // namespace ddp


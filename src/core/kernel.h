#pragma once

#include <cmath>
#include <cstdint>

/// \file kernel.h
/// Density kernels for the rho computation. The ICDE paper uses the original
/// cutoff kernel chi(d - d_c); many DP follow-ups (which the paper's Sec. VII
/// says the solution can support) use a gaussian kernel
///
///   rho_i = sum_j exp(-(d_ij / d_c)^2)
///
/// which removes integer ties. To keep every distributed code path (integer
/// rho in records, max-aggregation, the density total order) unchanged,
/// gaussian densities are quantized to fixed point with kDensityQuantScale
/// fractional steps. Contributions beyond 3 * d_c (< 1.24e-4 each) are
/// truncated BY DEFINITION, so filtered and unfiltered computations agree
/// exactly and locality-based algorithms stay comparable.

namespace ddp {

enum class DensityKernel {
  kCutoff,    // rho = |{j : d_ij < d_c}| (paper Eq. (1))
  kGaussian,  // rho = round(QuantScale * sum_j exp(-(d_ij/d_c)^2)), d <= 3 d_c
};

/// Fixed-point resolution of quantized gaussian densities.
inline constexpr double kDensityQuantScale = 256.0;

/// Truncation radius of the gaussian kernel, as a multiple of d_c.
inline constexpr double kGaussianKernelCut = 3.0;

/// One pair's contribution to a gaussian-kernel density (unquantized).
inline double GaussianKernelContribution(double d, double dc) {
  if (d >= kGaussianKernelCut * dc) return 0.0;
  double r = d / dc;
  return std::exp(-r * r);
}

/// Same contribution computed from the squared distance, so hot loops can
/// skip the per-pair sqrt. The truncation test compares d^2 against
/// (kGaussianKernelCut * dc)^2 — the exact floating-point expression every
/// LocalDpEngine backend uses as its search radius — so filtered and
/// unfiltered accumulations agree bit-for-bit.
inline double GaussianKernelContributionSq(double d_sq, double dc) {
  double cut = kGaussianKernelCut * dc;
  if (d_sq >= cut * cut) return 0.0;
  return std::exp(-d_sq / (dc * dc));
}

/// Quantizes an accumulated gaussian density to the shared uint32 domain.
inline uint32_t QuantizeDensity(double rho) {
  double q = rho * kDensityQuantScale + 0.5;
  if (q >= 4294967295.0) return 4294967295u;
  if (q < 0.0) return 0;
  return static_cast<uint32_t>(q);
}

}  // namespace ddp


#include "core/cutoff.h"

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace ddp {

Result<double> ChooseCutoff(const Dataset& dataset,
                            const CountingMetric& metric,
                            const CutoffOptions& options) {
  const size_t n = dataset.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 points");
  if (!(options.percentile > 0.0) || !(options.percentile < 1.0)) {
    return Status::InvalidArgument("percentile must be in (0, 1)");
  }
  if (options.sample_pairs == 0) {
    return Status::InvalidArgument("sample_pairs must be > 0");
  }
  const uint64_t max_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  const size_t samples = static_cast<size_t>(
      std::min<uint64_t>(options.sample_pairs, max_pairs));

  Rng rng(options.seed);
  std::vector<double> distances;
  distances.reserve(samples);
  if (samples == max_pairs) {
    // Small data set: use the exact pairwise distance multiset.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        distances.push_back(metric.Distance(dataset.point(static_cast<PointId>(i)),
                                            dataset.point(static_cast<PointId>(j))));
      }
    }
  } else {
    while (distances.size() < samples) {
      PointId i = static_cast<PointId>(rng.UniformInt(n));
      PointId j = static_cast<PointId>(rng.UniformInt(n));
      if (i == j) continue;
      distances.push_back(metric.Distance(dataset.point(i), dataset.point(j)));
    }
  }
  size_t pos = static_cast<size_t>(options.percentile *
                                   static_cast<double>(distances.size()));
  pos = std::min(pos, distances.size() - 1);
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<std::ptrdiff_t>(pos),
                   distances.end());
  double dc = distances[pos];
  if (!(dc > 0.0)) {
    // Degenerate (many duplicate points): fall back to the smallest positive
    // sampled distance, or error when all points coincide.
    std::sort(distances.begin(), distances.end());
    for (double d : distances) {
      if (d > 0.0) return d;
    }
    return Status::OutOfRange("all sampled distances are zero");
  }
  return dc;
}

}  // namespace ddp

#pragma once

#include <span>

#include "common/result.h"
#include "core/dp_types.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file assignment.h
/// The final centralized step (Sec. III Step 3): given chosen peaks, assign
/// every point to the cluster of its upslope chain (Fig. 1d). With
/// approximate scores some points may have no upslope (LSH local peaks that
/// were not selected); those fall back to the cluster of their nearest peak,
/// which requires the dataset and one distance per unresolved point.

namespace ddp {

/// Assigns every point by following upslope pointers from the given peaks.
/// Peaks get cluster ids 0..k-1 in `peaks` order. Errors on empty `peaks`,
/// duplicate peak ids, or ids out of range.
Result<ClusterResult> AssignClusters(const Dataset& dataset,
                                     const DpScores& scores,
                                     std::span<const PointId> peaks,
                                     const CountingMetric& metric);

}  // namespace ddp


#include "core/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

namespace ddp {

Result<ClusterResult> AssignClusters(const Dataset& dataset,
                                     const DpScores& scores,
                                     std::span<const PointId> peaks,
                                     const CountingMetric& metric) {
  const size_t n = scores.size();
  if (n != dataset.size()) {
    return Status::InvalidArgument("scores/dataset size mismatch");
  }
  if (peaks.empty()) return Status::InvalidArgument("no peaks selected");
  std::unordered_set<PointId> seen;
  for (PointId p : peaks) {
    if (p >= n) return Status::OutOfRange("peak id out of range");
    if (!seen.insert(p).second) {
      return Status::InvalidArgument("duplicate peak id");
    }
  }

  ClusterResult result;
  result.peaks.assign(peaks.begin(), peaks.end());
  result.assignment.assign(n, -1);
  for (size_t c = 0; c < peaks.size(); ++c) {
    result.assignment[peaks[c]] = static_cast<int>(c);
  }

  // Visit points in the density total order: each point's upslope is denser,
  // hence already visited, so one pass resolves every chain.
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return DenserThan(scores.rho[a], a, scores.rho[b], b);
  });

  for (PointId i : order) {
    if (result.assignment[i] >= 0) continue;  // a peak
    PointId up = scores.upslope[i];
    if (up != kInvalidPointId && result.assignment[up] >= 0) {
      result.assignment[i] = result.assignment[up];
      continue;
    }
    // No usable upslope (an unselected LSH local peak): nearest chosen peak.
    double best = std::numeric_limits<double>::infinity();
    int best_cluster = -1;
    for (size_t c = 0; c < peaks.size(); ++c) {
      double d = metric.Distance(dataset.point(i), dataset.point(peaks[c]));
      if (d < best) {
        best = d;
        best_cluster = static_cast<int>(c);
      }
    }
    result.assignment[i] = best_cluster;
  }
  return result;
}

}  // namespace ddp

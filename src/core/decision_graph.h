#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "core/dp_types.h"

/// \file decision_graph.h
/// The (rho, delta) decision graph (Fig. 1c / Fig. 7) and peak selectors.
/// Infinite delta values (absolute peaks, plus LSH-DDP local peaks per
/// Sec. IV-C) are rectified to the maximum finite delta when the graph is
/// built, "before drawing them on the decision graph" as the paper puts it.

namespace ddp {

class DecisionGraph {
 public:
  /// Builds the graph from scores; rectifies +inf delta to max finite delta
  /// (or 1.0 when every delta is infinite, e.g. a single-point dataset).
  static DecisionGraph FromScores(const DpScores& scores);

  size_t size() const { return rho_.size(); }
  const std::vector<double>& rho() const { return rho_; }
  const std::vector<double>& delta() const { return delta_; }
  double max_finite_delta() const { return max_finite_delta_; }

  /// gamma_i = rho_i * delta_i, the standard single-score peak criterion.
  double gamma(PointId i) const { return rho_[i] * delta_[i]; }

  /// Points with rho > rho_min and delta > delta_min (the paper's Fig. 7
  /// selection "rho > 14 and delta > 40").
  std::vector<PointId> SelectByThreshold(double rho_min,
                                         double delta_min) const;

  /// The k points with the largest gamma (ties by lower id first).
  std::vector<PointId> SelectTopK(size_t k) const;

  /// Automatic selection: sorts gamma descending and cuts at the largest
  /// multiplicative gap between consecutive values within the first
  /// `max_peaks` candidates. Deterministic; at least one peak is returned
  /// for a non-empty graph.
  std::vector<PointId> SelectByGammaGap(size_t max_peaks = 32) const;

  /// Tab-separated "id\trho\tdelta\tgamma" rows for external plotting.
  std::string ToTsv() const;

 private:
  std::vector<double> rho_;
  std::vector<double> delta_;
  double max_finite_delta_ = 0.0;
};

}  // namespace ddp


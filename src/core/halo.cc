#include "core/halo.h"

#include <algorithm>

namespace ddp {

Result<HaloResult> ComputeHalo(const Dataset& dataset, const DpScores& scores,
                               const ClusterResult& clusters, double dc,
                               const CountingMetric& metric) {
  const size_t n = dataset.size();
  if (scores.size() != n || clusters.assignment.size() != n) {
    return Status::InvalidArgument("scores/clusters/dataset size mismatch");
  }
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  if (clusters.peaks.empty()) {
    return Status::InvalidArgument("clustering has no clusters");
  }

  HaloResult result;
  result.border_density.assign(clusters.num_clusters(), 0.0);
  result.halo.assign(n, false);

  // Border density: for each cross-cluster pair within d_c, both clusters'
  // borders see the average density of the pair.
  for (size_t i = 0; i < n; ++i) {
    int ci = clusters.assignment[i];
    std::span<const double> pi = dataset.point(static_cast<PointId>(i));
    for (size_t j = i + 1; j < n; ++j) {
      int cj = clusters.assignment[j];
      if (ci == cj) continue;
      double d = metric.Distance(pi, dataset.point(static_cast<PointId>(j)));
      if (d >= dc) continue;
      double avg = 0.5 * (static_cast<double>(scores.rho[i]) +
                          static_cast<double>(scores.rho[j]));
      if (ci >= 0) {
        double& bd = result.border_density[static_cast<size_t>(ci)];
        bd = std::max(bd, avg);
      }
      if (cj >= 0) {
        double& bd = result.border_density[static_cast<size_t>(cj)];
        bd = std::max(bd, avg);
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    int c = clusters.assignment[i];
    if (c < 0) {
      result.halo[i] = true;
      continue;
    }
    result.halo[i] = static_cast<double>(scores.rho[i]) <
                     result.border_density[static_cast<size_t>(c)];
  }
  return result;
}

}  // namespace ddp

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/dp_types.h"
#include "core/kernel.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file local_dp.h
/// The local Density Peaks engine: one backend-pluggable kernel computing
/// local rho (cutoff + gaussian) and local delta/upslope over a group of
/// points. Every algorithm layer routes its pairwise work through this
/// engine — the sequential oracle over the whole dataset, LSH-DDP over
/// bucket members, Basic-DDP over block pairs, EDDPC over Voronoi cells —
/// so the hottest loop in the system lives in exactly one place and every
/// acceleration (squared-distance comparisons, k-d tree queries, the
/// centroid-projection triangle filter, thread-pool parallelism for
/// oversized groups) benefits all of them at once.
///
/// Determinism contract (docs/architecture.md "Local DP engine"):
///  * All backends compare in squared-distance space: a cutoff neighbor is
///    d^2 < fl(d_c * d_c); delta minimizes the lexicographic
///    (d^2, candidate id) over denser points and reports sqrt of the best.
///  * Gaussian contributions use GaussianKernelContributionSq and are
///    accumulated per point in ascending group-position order; truncated
///    terms are exact zeros, so range-searched and full scans agree.
///  * Backends therefore return bit-identical rho, delta, and upslope, and
///    backend selection (or the parallel path) can never change results.

namespace ddp {

/// Which local kernel implementation to run.
enum class LocalDpBackend {
  kAuto,            // pick by group size / dimensionality (see options)
  kBruteForce,      // blocked pairwise scan over squared distances
  kKdTree,          // k-d tree range/NN queries (low/moderate dimensions)
  kTriangleFilter,  // centroid-projection triangle-inequality filtering
};

/// Stable lowercase name ("auto", "brute", "kdtree", "triangle").
const char* LocalDpBackendName(LocalDpBackend backend);

/// Parses the names accepted by --local-backend.
Result<LocalDpBackend> ParseLocalDpBackend(std::string_view name);

/// A non-owning view of a point group: borrowed coordinate rows plus the
/// global point id of each row. This is what reducers hand the engine —
/// the rows typically point straight into shuffled records, so no
/// coordinates are copied.
class LocalPointView {
 public:
  explicit LocalPointView(size_t dim) : dim_(dim) {}

  /// View of a whole dataset (ids are the dataset point ids).
  static LocalPointView AllOf(const Dataset& dataset);

  /// View of a dataset subset, in `ids` order.
  static LocalPointView SubsetOf(const Dataset& dataset,
                                 std::span<const PointId> ids);

  void Reserve(size_t n) {
    rows_.reserve(n);
    ids_.reserve(n);
  }

  /// Appends one member. `coords` must stay alive as long as the view and
  /// hold dim() doubles.
  void Add(PointId global_id, std::span<const double> coords) {
    rows_.push_back(coords.data());
    ids_.push_back(global_id);
  }

  size_t size() const { return rows_.size(); }
  size_t dim() const { return dim_; }
  std::span<const double> point(size_t k) const { return {rows_[k], dim_}; }
  PointId id(size_t k) const { return ids_[k]; }
  std::span<const PointId> ids() const { return ids_; }
  std::span<const double* const> rows() const { return rows_; }

 private:
  size_t dim_;
  std::vector<const double*> rows_;
  std::vector<PointId> ids_;
};

struct LocalDpEngineOptions {
  LocalDpBackend backend = LocalDpBackend::kAuto;
  /// kAuto picks the k-d tree for groups of at least this size when the
  /// dimensionality is at most kd_max_dim (space partitioning degrades to a
  /// scan in high dimensions)...
  size_t kd_min_group = 256;
  size_t kd_max_dim = 16;
  /// ...and otherwise the triangle filter for groups of at least this size;
  /// smaller groups use brute force (the index/projection setup would cost
  /// more than it saves).
  size_t triangle_min_group = 512;
  /// Groups of at least this size spread their per-point kernel work over
  /// the process-wide thread pool. 0 disables parallelism. Parallelism never
  /// changes results; the parallel brute/triangle rho path evaluates each
  /// pair from both sides, so its *counted evaluations* (not results) differ
  /// from the sequential half-loop.
  size_t parallel_min_group = 4096;
  size_t kd_leaf_size = 16;
};

/// Delta scores for one group, group-position aligned. The group's densest
/// point keeps delta = +infinity and an invalid upslope (the "+inf local
/// max" rule every aggregation layer relies on).
struct LocalDeltaScores {
  std::vector<double> delta;     // sqrt of delta_sq; +inf for the densest
  std::vector<double> delta_sq;  // squared-space minimum, same minimizer
  std::vector<PointId> upslope;  // global ids; kInvalidPointId if none
};

/// A running (squared distance, upslope) minimum for cross-group delta
/// passes. Improve() applies the engine's lexicographic tie-break.
struct LocalDeltaBest {
  double d_sq = std::numeric_limits<double>::infinity();
  PointId upslope = kInvalidPointId;

  bool Improve(double cand_sq, PointId cand_id) {
    if (cand_sq < d_sq || (cand_sq == d_sq && cand_id < upslope)) {
      d_sq = cand_sq;
      upslope = cand_id;
      return true;
    }
    return false;
  }

  // ddp-lint: allow(no-raw-sqrt) -- the one final-assembly sqrt of the
  // squared-space contract: delta leaves d^2 space only here.
  double Delta() const { return std::sqrt(d_sq); }
};

/// The engine. Stateless apart from options; one instance can be shared by
/// concurrent reducers.
class LocalDpEngine {
 public:
  LocalDpEngine() = default;
  explicit LocalDpEngine(LocalDpEngineOptions options) : options_(options) {}

  const LocalDpEngineOptions& options() const { return options_; }

  /// The backend kAuto resolves to for a group of `group_size` points in
  /// `dim` dimensions (explicit backends resolve to themselves).
  LocalDpBackend Resolve(size_t group_size, size_t dim) const;

  /// Local rho of every view member against the view (self pairs excluded):
  /// the cutoff neighbor count, or the quantized gaussian density.
  std::vector<uint32_t> Rho(const LocalPointView& view, double dc,
                            DensityKernel kernel,
                            const CountingMetric& metric) const;

  /// Local delta/upslope given view-aligned rho values, under the global
  /// (rho, id) density total order.
  LocalDeltaScores Delta(const LocalPointView& view,
                         std::span<const uint32_t> rho,
                         const CountingMetric& metric) const;

  /// Cutoff-kernel neighbor counting across two disjoint groups: bumps
  /// counts_left[i] for every right member within d_c of left i, and (when
  /// counts_right is non-empty) vice versa. Used by Basic-DDP block pairs
  /// and EDDPC home-vs-support counting (one-sided).
  void RhoCross(const LocalPointView& left, const LocalPointView& right,
                double dc, const CountingMetric& metric,
                std::span<uint32_t> counts_left,
                std::span<uint32_t> counts_right) const;

  /// One-sided cross delta: improves best[k] for each query against the
  /// denser candidates, starting from the caller's seed (e.g. EDDPC's
  /// within-cell upper bound). Candidates tie-break by global id.
  void DeltaCross(const LocalPointView& queries,
                  std::span<const uint32_t> query_rho,
                  const LocalPointView& candidates,
                  std::span<const uint32_t> candidate_rho,
                  const CountingMetric& metric,
                  std::span<LocalDeltaBest> best) const;

  /// Two-sided cross delta over disjoint groups: each pair's distance feeds
  /// both sides' minima. The brute path evaluates each pair exactly once —
  /// the Basic-DDP block-pair cost model.
  void DeltaCrossSymmetric(const LocalPointView& left,
                           std::span<const uint32_t> rho_left,
                           const LocalPointView& right,
                           std::span<const uint32_t> rho_right,
                           const CountingMetric& metric,
                           std::span<LocalDeltaBest> best_left,
                           std::span<LocalDeltaBest> best_right) const;

 private:
  LocalDpEngineOptions options_;
};

}  // namespace ddp


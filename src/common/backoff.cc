#include "common/backoff.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace ddp {

double ExponentialBackoff::DelaySeconds(uint64_t attempt) const {
  double d = params_.base_seconds;
  if (params_.multiplier > 1.0 && attempt > 0) {
    // Grow in log space so huge attempt numbers cannot overflow: once the
    // exponent alone exceeds the cap, skip the pow entirely.
    const double log_growth =
        static_cast<double>(attempt) * std::log(params_.multiplier);
    const double log_cap = std::log(
        std::max(params_.max_seconds, params_.base_seconds) /
        std::max(params_.base_seconds, 1e-12));
    d = log_growth >= log_cap ? params_.max_seconds
                              : d * std::exp(log_growth);
  }
  d = std::min(d, params_.max_seconds);
  if (params_.jitter > 0.0) {
    uint64_t s = SplitSeed(seed_, attempt);
    const double u =
        static_cast<double>(SplitMix64(&s) >> 11) * 0x1.0p-53;  // [0, 1)
    d *= 1.0 - params_.jitter * u;
  }
  return std::max(d, 0.0);
}

}  // namespace ddp

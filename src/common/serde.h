#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file serde.h
/// Compact binary serialization used by the MapReduce shuffle. Intermediate
/// key/value pairs are encoded into per-partition byte buffers so that the
/// shuffle volume reported by JobCounters reflects real serialized bytes,
/// mirroring what a Hadoop-style system would move over the network.
///
/// Encoding: unsigned varints (LEB128) for integral types, zig-zag for signed,
/// raw little-endian for floating point, length-prefixed bytes for strings
/// and vectors. User structs participate by specializing `Serde<T>` or by
/// providing members
///   void SerializeTo(BufferWriter* w) const;
///   static Status DeserializeFrom(BufferReader* r, T* out);

namespace ddp {

/// Append-only byte sink.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::string* external) : external_(external) {}

  void PutByte(uint8_t b) { buf().push_back(static_cast<char>(b)); }

  void PutRaw(const void* data, size_t n) {
    buf().append(static_cast<const char*>(data), n);
  }

  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      PutByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutByte(static_cast<uint8_t>(v));
  }

  void PutVarint32(uint32_t v) { PutVarint64(v); }

  /// Zig-zag encodes a signed integer.
  void PutSignedVarint64(int64_t v) {
    PutVarint64((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  void PutDouble(double v) {
    static_assert(sizeof(double) == 8);
    PutRaw(&v, sizeof(v));
  }

  void PutFloat(float v) { PutRaw(&v, sizeof(v)); }

  void PutString(std::string_view s) {
    PutVarint64(s.size());
    PutRaw(s.data(), s.size());
  }

  size_t size() const { return buf().size(); }
  const std::string& data() const { return buf(); }
  std::string Release() { return std::move(buf()); }

 private:
  std::string& buf() { return external_ ? *external_ : owned_; }
  const std::string& buf() const { return external_ ? *external_ : owned_; }

  std::string owned_;
  std::string* external_ = nullptr;
};

/// Sequential byte source over a borrowed buffer.
class BufferReader {
 public:
  BufferReader(const char* data, size_t size)
      : cur_(data), end_(data + size) {}
  explicit BufferReader(const std::string& s) : BufferReader(s.data(), s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - cur_); }
  bool exhausted() const { return cur_ == end_; }

  Status GetByte(uint8_t* out) {
    if (cur_ == end_) return Truncated();
    *out = static_cast<uint8_t>(*cur_++);
    return Status::OK();
  }

  Status GetRaw(void* out, size_t n) {
    if (remaining() < n) return Truncated();
    std::memcpy(out, cur_, n);
    cur_ += n;
    return Status::OK();
  }

  Status GetVarint64(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b = 0;
      DDP_RETURN_NOT_OK(GetByte(&b));
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
    }
    return Status::IoError("varint64 too long");
  }

  Status GetVarint32(uint32_t* out) {
    uint64_t v;
    DDP_RETURN_NOT_OK(GetVarint64(&v));
    if (v > UINT32_MAX) return Status::IoError("varint32 overflow");
    *out = static_cast<uint32_t>(v);
    return Status::OK();
  }

  Status GetSignedVarint64(int64_t* out) {
    uint64_t u;
    DDP_RETURN_NOT_OK(GetVarint64(&u));
    *out = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    return Status::OK();
  }

  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }
  Status GetFloat(float* out) { return GetRaw(out, sizeof(*out)); }

  Status GetString(std::string* out) {
    uint64_t n;
    DDP_RETURN_NOT_OK(GetVarint64(&n));
    if (remaining() < n) return Truncated();
    out->assign(cur_, n);
    cur_ += n;
    return Status::OK();
  }

  /// Carves the next `n` bytes into a sub-reader and advances past them.
  /// The slice borrows this reader's buffer. Used by the MapReduce shuffle's
  /// record framing: a corrupt record can be skipped by advancing to the next
  /// frame without trusting the corrupt payload's own length fields.
  Status Slice(size_t n, BufferReader* out) {
    if (remaining() < n) return Truncated();
    *out = BufferReader(cur_, n);
    cur_ += n;
    return Status::OK();
  }

 private:
  static Status Truncated() { return Status::IoError("truncated buffer"); }

  const char* cur_;
  const char* end_;
};

/// Primary serialization customization point.
template <typename T, typename Enable = void>
struct Serde {
  // Default: dispatch to member functions.
  static void Write(BufferWriter* w, const T& v) { v.SerializeTo(w); }
  static Status Read(BufferReader* r, T* out) {
    return T::DeserializeFrom(r, out);
  }
};

template <typename T>
struct Serde<T, std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>>> {
  static void Write(BufferWriter* w, const T& v) {
    w->PutSignedVarint64(static_cast<int64_t>(v));
  }
  static Status Read(BufferReader* r, T* out) {
    int64_t v;
    DDP_RETURN_NOT_OK(r->GetSignedVarint64(&v));
    *out = static_cast<T>(v);
    return Status::OK();
  }
};

template <typename T>
struct Serde<T,
             std::enable_if_t<std::is_integral_v<T> && std::is_unsigned_v<T>>> {
  static void Write(BufferWriter* w, const T& v) {
    w->PutVarint64(static_cast<uint64_t>(v));
  }
  static Status Read(BufferReader* r, T* out) {
    uint64_t v;
    DDP_RETURN_NOT_OK(r->GetVarint64(&v));
    *out = static_cast<T>(v);
    return Status::OK();
  }
};

template <>
struct Serde<double> {
  static void Write(BufferWriter* w, const double& v) { w->PutDouble(v); }
  static Status Read(BufferReader* r, double* out) { return r->GetDouble(out); }
};

template <>
struct Serde<float> {
  static void Write(BufferWriter* w, const float& v) { w->PutFloat(v); }
  static Status Read(BufferReader* r, float* out) { return r->GetFloat(out); }
};

template <>
struct Serde<std::string> {
  static void Write(BufferWriter* w, const std::string& v) { w->PutString(v); }
  static Status Read(BufferReader* r, std::string* out) {
    return r->GetString(out);
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void Write(BufferWriter* w, const std::vector<T>& v) {
    w->PutVarint64(v.size());
    for (const T& e : v) Serde<T>::Write(w, e);
  }
  static Status Read(BufferReader* r, std::vector<T>* out) {
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      T e;
      DDP_RETURN_NOT_OK(Serde<T>::Read(r, &e));
      out->push_back(std::move(e));
    }
    return Status::OK();
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Write(BufferWriter* w, const std::pair<A, B>& v) {
    Serde<A>::Write(w, v.first);
    Serde<B>::Write(w, v.second);
  }
  static Status Read(BufferReader* r, std::pair<A, B>* out) {
    DDP_RETURN_NOT_OK(Serde<A>::Read(r, &out->first));
    return Serde<B>::Read(r, &out->second);
  }
};

/// Incremental CRC32 (polynomial 0xEDB88320, the zlib/IEEE one). Pass the
/// previous return value as `crc` to checksum data in chunks; start at 0.
/// Used by the spill files of the out-of-core shuffle and by DDPB v2 dataset
/// files to catch on-disk corruption.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// Convenience: serialized byte size of one value.
template <typename T>
size_t SerializedSize(const T& v) {
  BufferWriter w;
  Serde<T>::Write(&w, v);
  return w.size();
}

/// Compile-time "does Serde<T> work?" probe, mirroring the Serde
/// specializations above. The primary Serde template dispatches to member
/// functions, so the member probe covers user structs; the partial
/// specializations cover the built-in encodings. Used by the MapReduce
/// checkpoint layer to persist job outputs only when they are encodable.
template <typename T, typename Enable = void>
struct HasSerde : std::false_type {};

template <typename T>
struct HasSerde<
    T, std::enable_if_t<std::is_same_v<
           decltype(std::declval<const T&>().SerializeTo(
               static_cast<BufferWriter*>(nullptr))),
           void>&& std::is_same_v<decltype(T::DeserializeFrom(
                                      static_cast<BufferReader*>(nullptr),
                                      static_cast<T*>(nullptr))),
                                  Status>>> : std::true_type {};

template <typename T>
struct HasSerde<T, std::enable_if_t<std::is_integral_v<T>>> : std::true_type {};
template <>
struct HasSerde<double> : std::true_type {};
template <>
struct HasSerde<float> : std::true_type {};
template <>
struct HasSerde<std::string> : std::true_type {};
template <typename T>
struct HasSerde<std::vector<T>> : HasSerde<T> {};
template <typename A, typename B>
struct HasSerde<std::pair<A, B>>
    : std::bool_constant<HasSerde<A>::value && HasSerde<B>::value> {};

template <typename T>
inline constexpr bool has_serde_v = HasSerde<T>::value;

}  // namespace ddp


#pragma once

#include <cstdint>
#include <string>

/// \file backoff.h
/// Seeded exponential backoff with jitter, shared by every retry loop that
/// waits before trying again (task reattempts and worker respawns in the
/// multi-process MapReduce runtime). Delays are a pure function of
/// (params, seed, attempt): two runs with the same seed produce the same
/// schedule, keeping chaos tests and recovery paths reproducible — the same
/// discipline as the deterministic fault injection in mapreduce.h.

namespace ddp {

class ExponentialBackoff {
 public:
  struct Params {
    /// Delay before the first retry (attempt 0), pre-jitter.
    double base_seconds = 0.01;
    /// Growth factor per attempt (>= 1).
    double multiplier = 2.0;
    /// Ceiling on the pre-jitter delay.
    double max_seconds = 1.0;
    /// Fraction of the delay randomized: the jittered delay is uniform in
    /// [d * (1 - jitter), d]. 0 disables jitter entirely.
    double jitter = 0.25;
  };

  ExponentialBackoff(const Params& params, uint64_t seed)
      : params_(params), seed_(seed) {}

  /// Delay before retry number `attempt` (0-based). Deterministic: the same
  /// (params, seed, attempt) always yields the same delay.
  double DelaySeconds(uint64_t attempt) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  uint64_t seed_;
};

}  // namespace ddp

#pragma once

#include <chrono>
#include <cstdint>

/// \file stopwatch.h
/// Monotonic wall-clock timer used for job phase accounting.

namespace ddp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ddp


#include "common/serde.h"

// serde.h is header-only aside from this translation unit, which exists so
// that the build catches any missing includes in the header itself.

namespace ddp {}  // namespace ddp

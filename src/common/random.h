#pragma once

#include <cstdint>
#include <random>
#include <vector>

/// \file random.h
/// Deterministic random sources. Every randomized component in the library
/// (data generators, LSH function draws, K-means initialization, sampling)
/// takes an explicit seed so runs are reproducible; `SplitSeed` derives
/// decorrelated child seeds for parallel tasks.

namespace ddp {

/// SplitMix64 step; used both as a simple PRNG and as a seed mixer.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the `index`-th child seed of `seed` (stable across platforms).
inline uint64_t SplitSeed(uint64_t seed, uint64_t index) {
  uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return SplitMix64(&s);
}

/// Convenience wrapper around std::mt19937_64 with typed draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n) — n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// A d-dimensional standard gaussian vector (p-stable projection vector).
  std::vector<double> GaussianVector(size_t d) {
    std::vector<double> v(d);
    for (double& x : v) x = Gaussian();
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

/// Floyd's algorithm: k distinct indices sampled uniformly from [0, n).
/// Returned in unspecified order. Requires k <= n.
std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng* rng);

}  // namespace ddp


#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logging to stderr plus CHECK macros. The log level is a
/// process-wide setting (default kInfo); benchmarks raise it to kWarning to
/// keep output clean.

namespace ddp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ddp

#define DDP_LOG(level)                                                  \
  ::ddp::internal::LogMessage(::ddp::LogLevel::k##level, __FILE__, __LINE__)

/// Always-on invariant check (kept in release builds).
#define DDP_CHECK(cond)                                              \
  if (!(cond))                                                       \
  DDP_LOG(Fatal) << "Check failed: " #cond " "

#define DDP_CHECK_EQ(a, b) DDP_CHECK((a) == (b))
#define DDP_CHECK_NE(a, b) DDP_CHECK((a) != (b))
#define DDP_CHECK_LT(a, b) DDP_CHECK((a) < (b))
#define DDP_CHECK_LE(a, b) DDP_CHECK((a) <= (b))
#define DDP_CHECK_GT(a, b) DDP_CHECK((a) > (b))
#define DDP_CHECK_GE(a, b) DDP_CHECK((a) >= (b))


#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace ddp {

void CancelToken::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

bool CancelToken::WaitFor(double seconds) {
  if (seconds <= 0.0) return cancelled();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(seconds),
               [this] { return cancelled_.load(std::memory_order_acquire); });
  return cancelled();
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // One shared atomic cursor: workers pull the next index until exhausted.
  // This self-balances when per-index cost is skewed (e.g. LSH partitions of
  // very different sizes).
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  size_t shards = std::min(n, num_threads());
  for (size_t s = 0; s < shards; ++s) {
    Submit([cursor, n, &body] {
      // Relaxed: the cursor only hands out indices; the happens-before edge
      // between body(i) effects and the caller is the pool's Wait() mutex.
      for (size_t i = cursor->fetch_add(1, std::memory_order_relaxed); i < n;
           i = cursor->fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t DefaultParallelism() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace ddp

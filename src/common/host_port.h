#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

/// \file host_port.h
/// Parsing for the `host:port` endpoint notation shared by every TCP knob in
/// the tree: `--transport=tcp[:host:port]` on ddp_cli, `--listen` on
/// ddp_server, and `--connect` on ddp_client. The transport layer only
/// speaks numeric IPv4 (channel.h: supervisors and workers exchange
/// addresses, not names), so the parser validates the dotted-quad form
/// rather than deferring to a resolver.

namespace ddp {

struct HostPort {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "a.b.c.d:port" with a numeric IPv4 host (four decimal octets,
/// each 0..255, no leading '+'/whitespace) and a decimal port in 0..65535.
/// Port 0 is accepted: listeners use it to request an ephemeral port.
Result<HostPort> ParseHostPort(const std::string& spec);

}  // namespace ddp

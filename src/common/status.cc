#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ddp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (!context.empty()) {
    std::fprintf(stderr, "%.*s: ", static_cast<int>(context.size()),
                 context.data());
  }
  std::fprintf(stderr, "%s\n", ToString().c_str());
  std::abort();
}

}  // namespace ddp

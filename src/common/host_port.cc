#include "common/host_port.h"

#include <cstddef>

namespace ddp {

namespace {

// Parses a decimal run of `s` starting at `*pos` into `*value`, rejecting
// empty runs and values above `max`. Advances `*pos` past the digits.
bool ParseDecimal(const std::string& s, size_t* pos, uint64_t max,
                  uint64_t* value) {
  size_t start = *pos;
  uint64_t v = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    v = v * 10 + static_cast<uint64_t>(s[*pos] - '0');
    if (v > max) return false;
    ++*pos;
  }
  if (*pos == start) return false;
  *value = v;
  return true;
}

}  // namespace

Result<HostPort> ParseHostPort(const std::string& spec) {
  const Status bad = Status::InvalidArgument(
      "bad endpoint '" + spec + "' (want numeric IPv4 host:port)");
  size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    uint64_t v = 0;
    if (!ParseDecimal(spec, &pos, 255, &v)) return bad;
    const char sep = octet < 3 ? '.' : ':';
    if (pos >= spec.size() || spec[pos] != sep) return bad;
    ++pos;
  }
  const size_t host_len = pos - 1;  // up to, not including, the ':'
  uint64_t port = 0;
  if (!ParseDecimal(spec, &pos, 65535, &port)) return bad;
  if (pos != spec.size()) return bad;
  HostPort hp;
  hp.host = spec.substr(0, host_len);
  hp.port = static_cast<uint16_t>(port);
  return hp;
}

}  // namespace ddp

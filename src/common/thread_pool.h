#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Fixed-size worker pool used by the MapReduce executor to run map and
/// reduce tasks. Tasks are void() closures; `ParallelFor` provides the
/// common index-sharded pattern and blocks until all shards finish.
/// `CancelToken` lets a scheduler abandon an in-flight task cooperatively —
/// the MapReduce runtime uses it to kill speculative losers, wake injected
/// stragglers, and abort doomed jobs early.

namespace ddp {

/// Cooperative cancellation flag shared between a scheduler and a task.
/// Cancellation is one-way and sticky: once cancelled, stays cancelled.
/// All methods are thread-safe.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation and wakes any WaitFor sleepers.
  void Cancel();

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Sleeps up to `seconds` but returns early (true) if cancelled. Used by
  /// the fault injector's straggler dawdle so abandoned attempts release
  /// their worker as soon as the scheduler gives up on them.
  bool WaitFor(double seconds);

 private:
  std::atomic<bool> cancelled_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Runs body(i) for each i in [0, n), distributing indices over the pool,
  /// and blocks until done. Reentrant calls are not supported.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

/// Default parallelism for the process: hardware_concurrency, at least 1.
size_t DefaultParallelism();

}  // namespace ddp


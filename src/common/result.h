#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

/// \file result.h
/// `Result<T>` holds either a value of type T or a non-OK Status.

namespace ddp {

template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so functions can
  /// `return Status::...;`). Constructing from an OK status is a programming
  /// error and is converted to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (this->status().ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or aborts with the status message. For examples.
  T ValueOrDie() && {
    status().Abort("Result::ValueOrDie");
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define DDP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define DDP_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DDP_ASSIGN_OR_RETURN_NAME(a, b) DDP_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DDP_ASSIGN_OR_RETURN(lhs, expr) \
  DDP_ASSIGN_OR_RETURN_IMPL(            \
      DDP_ASSIGN_OR_RETURN_NAME(_ddp_result_, __LINE__), lhs, expr)

}  // namespace ddp


#include "common/random.h"

#include <unordered_set>

#include "common/logging.h"

namespace ddp {

std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng* rng) {
  DDP_CHECK_LE(k, n);
  std::unordered_set<size_t> chosen;
  chosen.reserve(k);
  std::vector<size_t> out;
  out.reserve(k);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; if taken, use j.
  for (size_t j = n - k; j < n; ++j) {
    size_t t = rng->UniformInt(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace ddp

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style error model: `Status` for fallible void operations and
/// `Result<T>` (see result.h) for fallible value-returning operations. The
/// library does not throw exceptions on hot paths; constructing an error
/// Status allocates, but the OK path is a single null pointer.

namespace ddp {

/// Machine-readable category of a failure.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or an error code plus message.
///
/// Cheap to move and to test for OK (null state pointer == OK). Copyable so
/// that statuses can be stored and re-reported.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use in examples
  /// and benchmarks where failure is unrecoverable.
  void Abort(std::string_view context = {}) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null == OK
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Evaluates `expr`; returns the resulting Status from the enclosing function
/// if it is not OK.
#define DDP_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::ddp::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace ddp


#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

/// \file protocol.h
/// Wire messages of the serving layer. ddp_server and ddp_client speak the
/// framed CommChannel format of channel.h with the kJob* frame types:
///
///   client -> server                      server -> client
///   ----------------------------------   -----------------------------------
///   kJobSubmit  JobSubmitMsg              kJobStatus   JobStatusMsg (ack)
///   kJobStatus  JobPollMsg                kJobStatus   JobStatusMsg
///   kJobResult  JobPollMsg                kJobResult   JobResultMsg
///   kJobCancel  JobCancelMsg              kJobStatus   JobStatusMsg (ack)
///                                         kJobProgress JobStatusMsg (pushed)
///
/// Requests on one connection are answered in order; kJobProgress frames may
/// be interleaved before any reply for jobs that asked for streamed progress
/// (JobSubmitMsg::progress_seconds > 0), so clients skip or collect them
/// while waiting for a reply type.
///
/// Like the supervisor messages, every struct encodes with the serde
/// disciplines of common/serde.h and rejects trailing bytes on decode.

namespace ddp {
namespace server {

/// Lifecycle of a submitted job. Values are part of the wire format.
enum class JobState : uint8_t {
  kQueued = 0,     // admitted, waiting for a scheduler slot
  kRunning = 1,    // executing under RunDistributedDp
  kDone = 2,       // result available (possibly straight from the cache)
  kFailed = 3,     // pipeline returned an error (JobStatusMsg::detail)
  kCancelled = 4,  // cancelled while queued or at a phase boundary
  kRejected = 5,   // admission control refused it (detail says why)
};

std::string_view JobStateName(JobState state);

/// Everything that determines a job's output given the dataset bytes — the
/// canonicalized half of the result-cache key. Field semantics mirror the
/// ddp_cli cluster flags.
struct JobParams {
  std::string algo = "lsh";  // lsh | basic | eddpc
  double dc = 0.0;           // explicit cutoff; <= 0 samples percentile
  double percentile = 0.02;
  // Peak selection: k > 0 picks top-k by gamma; else rho_min/delta_min > 0
  // thresholds; else the automatic gamma-gap cut.
  uint64_t k = 0;
  double rho_min = 0.0;
  double delta_min = 0.0;
  // LSH-DDP parameters.
  double accuracy = 0.99;
  uint64_t num_layouts = 10;  // m
  uint64_t pi = 3;
  uint64_t block_size = 500;  // Basic-DDP
  uint64_t num_workers = 0;   // 0 => DefaultParallelism()
  uint64_t memory_budget_bytes = 0;  // per-job budget; also admission weight
  uint8_t exec_mode = 0;             // 0 inproc, 1 fork, 2 remote workers
  uint64_t seed = 1;                 // chaos + backoff seed
  // Seeded chaos applied to the job's MapReduce runtime (tests and drills).
  double map_failure_rate = 0.0;
  double reduce_failure_rate = 0.0;
  double worker_crash_rate = 0.0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobParams* out);

  /// Stable `key=value;` rendering of every field above, in declaration
  /// order with %.17g doubles — combined with the dataset digest this is
  /// the result-cache key, so two params that canonicalize equally MUST
  /// produce bit-identical output.
  std::string CanonicalKey() const;
};

struct JobSubmitMsg {
  JobParams params;
  /// Dataset path as visible to the server: a DDPB/CSV file or a directory
  /// of DDPB shards. The server digests the bytes, so the same data under
  /// two paths still shares cache entries.
  std::string dataset_path;
  /// > 0 subscribes this connection to kJobProgress pushes for the job,
  /// roughly every this many seconds.
  double progress_seconds = 0.0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobSubmitMsg* out);
};

/// Client request payload for kJobStatus and kJobResult frames.
struct JobPollMsg {
  uint64_t job_id = 0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobPollMsg* out);
};

/// `job_id == kShutdownJobId` is the admin drain request: the server stops
/// admitting, finishes queued and running jobs, then exits.
constexpr uint64_t kShutdownJobId = ~uint64_t{0};

struct JobCancelMsg {
  uint64_t job_id = 0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobCancelMsg* out);
};

/// Server reply for submissions, polls, cancels, and progress pushes.
struct JobStatusMsg {
  uint64_t job_id = 0;
  uint8_t state = 0;  // JobState
  /// Rejection reason, failure message, or empty.
  std::string detail;
  uint64_t queue_position = 0;  // 0-based; meaningful while kQueued
  /// MapReduce jobs of the pipeline finished so far (the streamed-progress
  /// feed, read from the server.job.<id>.mr_jobs counter).
  uint64_t mr_jobs_done = 0;
  double running_seconds = 0.0;
  uint8_t from_result_cache = 0;

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobStatusMsg* out);
};

/// The clustering output a finished job serves — the bytes the result cache
/// stores verbatim, so a cache hit is bit-identical to the run that
/// populated it.
struct JobResultPayload {
  double dc = 0.0;
  uint64_t num_clusters = 0;
  std::vector<int32_t> assignment;  // cluster id per point, global id order
  uint64_t distance_evaluations = 0;
  double total_seconds = 0.0;
  uint64_t mr_jobs = 0;  // MapReduce jobs the pipeline ran

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobResultPayload* out);
};

struct JobResultMsg {
  uint64_t job_id = 0;
  uint8_t state = 0;  // JobState; payload present iff kDone
  std::string error;  // failure/cancel detail when not kDone
  uint8_t from_result_cache = 0;
  std::string payload;  // encoded JobResultPayload when kDone

  std::string Encode() const;
  static Status Decode(const std::string& bytes, JobResultMsg* out);
};

}  // namespace server
}  // namespace ddp

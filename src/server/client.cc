#include "server/client.h"

#include <utility>

#include "common/backoff.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace ddp {
namespace server {

Result<std::unique_ptr<DdpClient>> DdpClient::Connect(
    const std::string& host, uint16_t port, double deadline_seconds,
    uint64_t seed) {
  DDP_ASSIGN_OR_RETURN(
      std::unique_ptr<mr::TcpChannel> channel,
      mr::TcpChannel::Connect(host, port, ExponentialBackoff::Params{}, seed,
                              deadline_seconds));
  return std::unique_ptr<DdpClient>(new DdpClient(std::move(channel)));
}

Result<std::string> DdpClient::Call(const mr::Frame& request,
                                    mr::MessageType reply_type) {
  DDP_RETURN_NOT_OK(channel_->Send(request));
  for (;;) {
    mr::Frame reply;
    DDP_RETURN_NOT_OK(channel_->Recv(&reply, /*timeout_seconds=*/0.0));
    if (reply.type == mr::MessageType::kJobProgress) {
      if (progress_) {
        JobStatusMsg push;
        DDP_RETURN_NOT_OK(JobStatusMsg::Decode(reply.payload, &push));
        progress_(push);
      }
      continue;
    }
    if (reply.type != reply_type) {
      return Status::IoError("unexpected reply frame type from server");
    }
    return std::move(reply.payload);
  }
}

Result<JobStatusMsg> DdpClient::Submit(const JobSubmitMsg& msg) {
  DDP_ASSIGN_OR_RETURN(
      std::string payload,
      Call({mr::MessageType::kJobSubmit, msg.Encode()},
           mr::MessageType::kJobStatus));
  JobStatusMsg reply;
  DDP_RETURN_NOT_OK(JobStatusMsg::Decode(payload, &reply));
  return reply;
}

Result<JobStatusMsg> DdpClient::Poll(uint64_t job_id) {
  JobPollMsg msg;
  msg.job_id = job_id;
  DDP_ASSIGN_OR_RETURN(
      std::string payload,
      Call({mr::MessageType::kJobStatus, msg.Encode()},
           mr::MessageType::kJobStatus));
  JobStatusMsg reply;
  DDP_RETURN_NOT_OK(JobStatusMsg::Decode(payload, &reply));
  return reply;
}

Result<JobResultMsg> DdpClient::FetchResult(uint64_t job_id) {
  JobPollMsg msg;
  msg.job_id = job_id;
  DDP_ASSIGN_OR_RETURN(
      std::string payload,
      Call({mr::MessageType::kJobResult, msg.Encode()},
           mr::MessageType::kJobResult));
  JobResultMsg reply;
  DDP_RETURN_NOT_OK(JobResultMsg::Decode(payload, &reply));
  return reply;
}

Result<JobStatusMsg> DdpClient::Cancel(uint64_t job_id) {
  JobCancelMsg msg;
  msg.job_id = job_id;
  DDP_ASSIGN_OR_RETURN(
      std::string payload,
      Call({mr::MessageType::kJobCancel, msg.Encode()},
           mr::MessageType::kJobStatus));
  JobStatusMsg reply;
  DDP_RETURN_NOT_OK(JobStatusMsg::Decode(payload, &reply));
  return reply;
}

Result<JobStatusMsg> DdpClient::RequestServerShutdown() {
  return Cancel(kShutdownJobId);
}

Result<JobStatusMsg> DdpClient::WaitForResult(uint64_t job_id,
                                              double timeout_seconds,
                                              double poll_seconds) {
  Stopwatch timer;
  for (;;) {
    DDP_ASSIGN_OR_RETURN(JobStatusMsg status, Poll(job_id));
    if (status.state != static_cast<uint8_t>(JobState::kQueued) &&
        status.state != static_cast<uint8_t>(JobState::kRunning)) {
      return status;
    }
    if (timer.ElapsedSeconds() > timeout_seconds) {
      return Status::DeadlineExceeded("job " + std::to_string(job_id) +
                                      " still " +
                                      std::string(JobStateName(static_cast<JobState>(
                                          status.state))) +
                                      " after " +
                                      std::to_string(timeout_seconds) + "s");
    }
    CancelToken sleeper;  // plain interruptible sleep, never cancelled here
    sleeper.WaitFor(poll_seconds);
  }
}

}  // namespace server
}  // namespace ddp

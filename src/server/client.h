#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "mapreduce/channel.h"
#include "server/protocol.h"

/// \file client.h
/// DdpClient — the synchronous request/reply half of the serving protocol.
/// One client owns one TCP connection; every call sends a request frame and
/// blocks for the matching reply type. kJobProgress frames the server
/// interleaves are forwarded to the progress callback (when set) and never
/// consumed as replies, per the protocol.h framing rules.
///
/// The client is deliberately single-threaded: callers that want concurrent
/// jobs open one DdpClient per thread (connections are cheap; the server
/// multiplexes).

namespace ddp {
namespace server {

class DdpClient {
 public:
  using ProgressFn = std::function<void(const JobStatusMsg&)>;

  /// Connects to a running ddp_server at numeric-IPv4 `host`:`port`,
  /// retrying with seeded backoff until `deadline_seconds` elapses.
  static Result<std::unique_ptr<DdpClient>> Connect(
      const std::string& host, uint16_t port, double deadline_seconds = 10.0,
      uint64_t seed = 1);

  /// Invoked for every kJobProgress push received while a call waits for
  /// its reply.
  void set_progress_handler(ProgressFn fn) { progress_ = std::move(fn); }

  /// Submits a job; the returned status is the admission verdict (kQueued,
  /// kDone on a result-cache hit, or kRejected with the reason in detail).
  Result<JobStatusMsg> Submit(const JobSubmitMsg& msg);

  Result<JobStatusMsg> Poll(uint64_t job_id);

  /// Fetches the result record; `payload` is decodable iff state == kDone.
  Result<JobResultMsg> FetchResult(uint64_t job_id);

  Result<JobStatusMsg> Cancel(uint64_t job_id);

  /// Asks the server to drain and exit (kJobCancel with kShutdownJobId).
  Result<JobStatusMsg> RequestServerShutdown();

  /// Polls every `poll_seconds` until the job leaves kQueued/kRunning or
  /// `timeout_seconds` elapses; returns the terminal status.
  Result<JobStatusMsg> WaitForResult(uint64_t job_id, double timeout_seconds,
                                     double poll_seconds = 0.1);

 private:
  explicit DdpClient(std::unique_ptr<mr::CommChannel> channel)
      : channel_(std::move(channel)) {}

  /// Sends `request` and blocks for a frame of `reply_type`, dispatching
  /// interleaved kJobProgress frames to the handler.
  Result<std::string> Call(const mr::Frame& request,
                           mr::MessageType reply_type);

  std::unique_ptr<mr::CommChannel> channel_;
  ProgressFn progress_;
};

}  // namespace server
}  // namespace ddp

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "mapreduce/channel.h"
#include "obs/metrics.h"
#include "server/cache.h"
#include "server/protocol.h"

/// \file server.h
/// DdpServer — the clustering-as-a-service daemon. One instance owns:
///
///  * an accept loop on a TcpListener plus one handler thread per client
///    connection, speaking the kJob* frames of protocol.h;
///  * a bounded job queue behind admission control: a submission is
///    rejected (with the reason on the wire) when the queue is full or when
///    the sum of admitted jobs' effective memory budgets would exceed the
///    server budget;
///  * scheduler threads that run admitted jobs through RunDistributedDp —
///    inproc or forked workers per the job's params — with a per-job spill
///    dir, a per-cache-key checkpoint dir, and seeded determinism;
///  * the dataset cache (content digest -> loaded Dataset) and the result
///    cache ((digest, canonical params) -> encoded JobResultPayload) of
///    cache.h. A result-cache hit completes at submit time without
///    touching the MapReduce runtime.
///
/// Graceful shutdown (RequestShutdown, or a kJobCancel frame with
/// kShutdownJobId) stops admission and drains: queued and running jobs run
/// to completion within `drain_timeout_seconds`; past the deadline their
/// cancel flags fire and each pipeline stops at its next job boundary —
/// checkpoints already saved stay valid, so a resubmission resumes instead
/// of recomputing.
///
/// Progress, queue depth, cache traffic, and job latency are all exported
/// through MetricsRegistry under `server.*` (docs/observability.md).

namespace ddp {
namespace mr {
class RemoteWorkerPool;  // mapreduce/remote_worker.h
}  // namespace mr
namespace server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 picks an ephemeral port (see DdpServer::port())

  /// Jobs allowed to wait in the queue (running jobs do not count).
  size_t max_queued_jobs = 16;
  /// Admission budget: the sum of queued+running jobs' effective per-job
  /// memory budgets may not exceed this.
  uint64_t admission_budget_bytes = uint64_t{1} << 30;
  /// Effective budget of a job that submits memory_budget_bytes == 0 (jobs
  /// running fully in memory still occupy admission weight).
  uint64_t default_job_budget_bytes = uint64_t{64} << 20;

  uint64_t dataset_cache_bytes = uint64_t{1} << 30;
  size_t result_cache_entries = 64;

  /// Concurrent running jobs.
  size_t scheduler_threads = 2;

  /// Root for per-job spill dirs and per-cache-key checkpoint dirs; empty
  /// means "<system temp>/ddp-server-<port>".
  std::string work_dir;

  /// Grace period for queued+running jobs after shutdown is requested;
  /// past it, job cancel flags fire (pipelines stop at the next MapReduce
  /// job boundary, keeping their checkpoints).
  double drain_timeout_seconds = 60.0;

  /// Recv/accept poll granularity of the connection and accept loops; also
  /// bounds how stale a kJobProgress push can be.
  double poll_interval_seconds = 0.05;

  /// Remote worker pool (exec_mode 2 jobs): when enabled the server binds a
  /// second listener for exec'd ddp_worker processes to dial, and jobs
  /// submitted with exec_mode 2 run their MapReduce phases on whichever
  /// workers have registered. Disabled by default; exec_mode 2 without a
  /// pool degrades to fork semantics (counted in exec_fallbacks).
  bool enable_remote_workers = false;
  std::string remote_listen_host = "127.0.0.1";
  uint16_t remote_listen_port = 0;  // 0 picks an ephemeral port
};

class DdpServer {
 public:
  /// Binds, spawns the accept loop and scheduler threads, and returns a
  /// serving instance.
  static Result<std::unique_ptr<DdpServer>> Start(const ServerConfig& config);

  ~DdpServer();
  DdpServer(const DdpServer&) = delete;
  DdpServer& operator=(const DdpServer&) = delete;

  uint16_t port() const { return listener_->port(); }
  const std::string& work_dir() const { return work_dir_; }

  /// Bound port of the remote-worker listener, or 0 when
  /// ServerConfig::enable_remote_workers is off.
  uint16_t remote_port() const;

  /// Stops admission and begins the drain. Non-blocking; safe from
  /// connection handler threads and signal-driven main loops.
  void RequestShutdown();

  /// Blocks until a requested shutdown has drained and every thread is
  /// joined. Idempotent.
  void WaitShutdown();

  /// True once RequestShutdown has been called.
  bool draining() const;

 private:
  struct Job {
    uint64_t id = 0;
    JobParams params;
    std::string dataset_path;
    std::string digest;
    std::string cache_key;
    uint64_t admission_bytes = 0;  // effective budget charged at admit time
    JobState state = JobState::kQueued;
    std::string detail;
    std::string result_payload;  // encoded JobResultPayload once kDone
    bool from_result_cache = false;
    double queued_at = 0.0;   // seconds on the server clock
    double started_at = 0.0;  // valid once kRunning
    double finished_at = 0.0;
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    obs::Counter* mr_jobs = nullptr;  // server.job.<id>.mr_jobs
  };

  struct Connection {
    std::unique_ptr<mr::CommChannel> channel;
    std::thread thread;
  };

  /// Per-connection progress subscription for one job.
  struct ProgressSub {
    double interval = 0.0;
    double last_push = 0.0;
  };

  explicit DdpServer(const ServerConfig& config);

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  Status HandleFrame(Connection* conn, const mr::Frame& frame,
                     std::map<uint64_t, ProgressSub>* subs);
  Status PushProgress(Connection* conn, std::map<uint64_t, ProgressSub>* subs);

  JobStatusMsg HandleSubmit(const JobSubmitMsg& msg);
  JobStatusMsg HandleCancel(uint64_t job_id);
  JobStatusMsg StatusSnapshot(uint64_t job_id);
  JobResultMsg ResultSnapshot(uint64_t job_id);

  void SchedulerLoop();
  void ExecuteJob(const std::shared_ptr<Job>& job);
  /// Runs the job through RunDistributedDp; returns the encoded
  /// JobResultPayload on success.
  Result<std::string> RunJobPipeline(const std::shared_ptr<Job>& job);

  JobStatusMsg SnapshotLocked(const Job& job) const;
  JobStatusMsg RejectLocked(const std::shared_ptr<Job>& job,
                            std::string reason);
  void UpdateGaugesLocked();
  double Now() const { return clock_.ElapsedSeconds(); }

  ServerConfig config_;
  std::string work_dir_;
  Stopwatch clock_;
  std::unique_ptr<mr::TcpListener> listener_;
  /// Set when config_.enable_remote_workers; exec_mode 2 jobs borrow it one
  /// at a time under remote_pool_mu_ (a RunPhase owns the pool exclusively).
  std::unique_ptr<mr::RemoteWorkerPool> remote_pool_;
  std::mutex remote_pool_mu_;
  DatasetCache dataset_cache_;
  ResultCache result_cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // schedulers: work or drain
  std::condition_variable drain_cv_;  // WaitShutdown: queue empty + idle
  bool draining_ = false;
  uint64_t next_job_id_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  std::map<std::string, uint64_t> inflight_by_key_;  // coalescing
  uint64_t admitted_bytes_ = 0;
  size_t running_ = 0;

  std::atomic<bool> conns_stop_{false};
  bool stopped_ = false;  // WaitShutdown completed (guarded by mu_)
  std::thread accept_thread_;
  std::vector<std::thread> schedulers_;
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace server
}  // namespace ddp

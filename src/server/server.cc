#include "server/server.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/serde.h"
#include "dataset/sharded_io.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "mapreduce/remote_worker.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace ddp {
namespace server {

namespace fs = std::filesystem;

namespace {

std::string CacheKeyDirName(const std::string& cache_key) {
  char out[16];
  std::snprintf(out, sizeof(out), "%08x",
                Crc32(cache_key.data(), cache_key.size()));
  return out;
}

}  // namespace

DdpServer::DdpServer(const ServerConfig& config)
    : config_(config),
      dataset_cache_(config.dataset_cache_bytes),
      result_cache_(config.result_cache_entries) {}

Result<std::unique_ptr<DdpServer>> DdpServer::Start(
    const ServerConfig& config) {
  std::unique_ptr<DdpServer> server(new DdpServer(config));
  DDP_ASSIGN_OR_RETURN(server->listener_,
                       mr::TcpListener::Listen(config.host, config.port));
  if (config.enable_remote_workers) {
    DDP_ASSIGN_OR_RETURN(server->remote_pool_,
                         mr::RemoteWorkerPool::Listen(
                             config.remote_listen_host,
                             config.remote_listen_port));
  }
  if (config.work_dir.empty()) {
    server->work_dir_ =
        (fs::temp_directory_path() /
         ("ddp-server-" + std::to_string(server->listener_->port())))
            .string();
  } else {
    server->work_dir_ = config.work_dir;
  }
  std::error_code ec;
  fs::create_directories(server->work_dir_, ec);
  if (ec) {
    return Status::IoError("cannot create work dir " + server->work_dir_ +
                           ": " + ec.message());
  }
  const size_t schedulers = std::max<size_t>(1, config.scheduler_threads);
  server->schedulers_.reserve(schedulers);
  DdpServer* raw = server.get();
  for (size_t i = 0; i < schedulers; ++i) {
    server->schedulers_.emplace_back([raw] { raw->SchedulerLoop(); });
  }
  server->accept_thread_ = std::thread([raw] { raw->AcceptLoop(); });
  return server;
}

DdpServer::~DdpServer() {
  RequestShutdown();
  WaitShutdown();
}

uint16_t DdpServer::remote_port() const {
  return remote_pool_ == nullptr ? 0 : remote_pool_->port();
}

bool DdpServer::draining() const {
  std::unique_lock<std::mutex> lock(mu_);
  return draining_;
}

void DdpServer::RequestShutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_) return;
    draining_ = true;
  }
  queue_cv_.notify_all();
  drain_cv_.notify_all();
}

void DdpServer::WaitShutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) return;
    drain_cv_.wait(lock, [this] { return draining_; });
    // Drain: give queued and running jobs the grace period, then fire the
    // cancel flags — pipelines stop at their next MapReduce job boundary
    // with their checkpoints intact.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config_.drain_timeout_seconds));
    const bool drained = drain_cv_.wait_until(lock, deadline, [this] {
      return queue_.empty() && running_ == 0;
    });
    if (!drained) {
      for (const std::shared_ptr<Job>& job : queue_) {
        if (job->state != JobState::kQueued) continue;
        job->state = JobState::kCancelled;
        job->detail = "cancelled by server shutdown";
        admitted_bytes_ -= job->admission_bytes;
        inflight_by_key_.erase(job->cache_key);
        DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsCancelled, 1);
      }
      queue_.clear();
      for (const auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning && job->cancel_flag != nullptr) {
          job->cancel_flag->store(true, std::memory_order_relaxed);
        }
      }
      UpdateGaugesLocked();
      queue_cv_.notify_all();
      drain_cv_.wait(lock,
                     [this] { return queue_.empty() && running_ == 0; });
    }
    stopped_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : schedulers_) {
    if (t.joinable()) t.join();
  }
  // Connections after the drain, so clients can poll results while the
  // last jobs finish; each handler thread notices the stop flag within one
  // poll interval.
  conns_stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_->Close();
  std::unique_lock<std::mutex> conn_lock(conn_mu_);
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
    conn->channel->Close();
  }
  connections_.clear();
}

void DdpServer::AcceptLoop() {
  while (!conns_stop_.load(std::memory_order_relaxed)) {
    Result<std::unique_ptr<mr::TcpChannel>> accepted =
        listener_->Accept(config_.poll_interval_seconds);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) continue;
      return;  // listener closed under us
    }
    auto conn = std::make_unique<Connection>();
    conn->channel = std::move(*accepted);
    Connection* raw = conn.get();
    std::unique_lock<std::mutex> lock(conn_mu_);
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void DdpServer::ServeConnection(Connection* conn) {
  std::map<uint64_t, ProgressSub> subs;
  while (!conns_stop_.load(std::memory_order_relaxed)) {
    mr::Frame frame;
    Status st = conn->channel->Recv(&frame, config_.poll_interval_seconds);
    if (st.code() == StatusCode::kDeadlineExceeded) {
      if (!PushProgress(conn, &subs).ok()) break;
      continue;
    }
    if (!st.ok()) break;  // client went away (or framing corruption)
    if (!HandleFrame(conn, frame, &subs).ok()) break;
  }
  conn->channel->Close();
}

Status DdpServer::HandleFrame(Connection* conn, const mr::Frame& frame,
                              std::map<uint64_t, ProgressSub>* subs) {
  switch (frame.type) {
    case mr::MessageType::kJobSubmit: {
      JobSubmitMsg msg;
      DDP_RETURN_NOT_OK(JobSubmitMsg::Decode(frame.payload, &msg));
      JobStatusMsg reply = HandleSubmit(msg);
      if (msg.progress_seconds > 0.0 &&
          (reply.state == static_cast<uint8_t>(JobState::kQueued) ||
           reply.state == static_cast<uint8_t>(JobState::kRunning))) {
        (*subs)[reply.job_id] = ProgressSub{msg.progress_seconds, Now()};
      }
      return conn->channel->Send(
          {mr::MessageType::kJobStatus, reply.Encode()});
    }
    case mr::MessageType::kJobStatus: {
      JobPollMsg msg;
      DDP_RETURN_NOT_OK(JobPollMsg::Decode(frame.payload, &msg));
      return conn->channel->Send(
          {mr::MessageType::kJobStatus, StatusSnapshot(msg.job_id).Encode()});
    }
    case mr::MessageType::kJobResult: {
      JobPollMsg msg;
      DDP_RETURN_NOT_OK(JobPollMsg::Decode(frame.payload, &msg));
      return conn->channel->Send(
          {mr::MessageType::kJobResult, ResultSnapshot(msg.job_id).Encode()});
    }
    case mr::MessageType::kJobCancel: {
      JobCancelMsg msg;
      DDP_RETURN_NOT_OK(JobCancelMsg::Decode(frame.payload, &msg));
      if (msg.job_id == kShutdownJobId) {
        RequestShutdown();
        JobStatusMsg reply;
        reply.job_id = kShutdownJobId;
        reply.state = static_cast<uint8_t>(JobState::kCancelled);
        reply.detail = "drain initiated";
        return conn->channel->Send(
            {mr::MessageType::kJobStatus, reply.Encode()});
      }
      return conn->channel->Send(
          {mr::MessageType::kJobStatus, HandleCancel(msg.job_id).Encode()});
    }
    // ddp-lint: allow(frame-exhaustive) -- worker-protocol frames (kTask,
    // kRunData, ...) are invalid on a client connection by design; the
    // default rejects them all with one IoError instead of twelve cases.
    default:
      return Status::IoError("unexpected frame type on a server connection");
  }
}

Status DdpServer::PushProgress(Connection* conn,
                               std::map<uint64_t, ProgressSub>* subs) {
  if (subs->empty()) return Status::OK();
  const double now = Now();
  std::vector<uint64_t> finished;
  for (auto& [job_id, sub] : *subs) {
    if (now - sub.last_push < sub.interval) continue;
    JobStatusMsg snapshot = StatusSnapshot(job_id);
    sub.last_push = now;
    DDP_RETURN_NOT_OK(conn->channel->Send(
        {mr::MessageType::kJobProgress, snapshot.Encode()}));
    if (snapshot.state != static_cast<uint8_t>(JobState::kQueued) &&
        snapshot.state != static_cast<uint8_t>(JobState::kRunning)) {
      finished.push_back(job_id);  // one final push, then unsubscribe
    }
  }
  for (uint64_t job_id : finished) subs->erase(job_id);
  return Status::OK();
}

JobStatusMsg DdpServer::SnapshotLocked(const Job& job) const {
  JobStatusMsg msg;
  msg.job_id = job.id;
  msg.state = static_cast<uint8_t>(job.state);
  msg.detail = job.detail;
  if (job.state == JobState::kQueued) {
    uint64_t position = 0;
    for (const std::shared_ptr<Job>& queued : queue_) {
      if (queued->id == job.id) break;
      ++position;
    }
    msg.queue_position = position;
  }
  if (job.mr_jobs != nullptr) msg.mr_jobs_done = job.mr_jobs->value();
  if (job.state == JobState::kRunning) {
    msg.running_seconds = Now() - job.started_at;
  } else if (job.state == JobState::kDone ||
             job.state == JobState::kFailed ||
             job.state == JobState::kCancelled) {
    msg.running_seconds =
        job.started_at > 0.0 ? job.finished_at - job.started_at : 0.0;
  }
  msg.from_result_cache = job.from_result_cache ? 1 : 0;
  return msg;
}

JobStatusMsg DdpServer::RejectLocked(const std::shared_ptr<Job>& job,
                                     std::string reason) {
  job->state = JobState::kRejected;
  job->detail = std::move(reason);
  job->finished_at = Now();
  DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsRejected, 1);
  return SnapshotLocked(*job);
}

JobStatusMsg DdpServer::HandleSubmit(const JobSubmitMsg& msg) {
  DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsSubmitted, 1);
  auto job = std::make_shared<Job>();
  job->params = msg.params;
  job->dataset_path = msg.dataset_path;

  // Validate and digest before taking the server lock: the digest reads
  // every dataset byte, and rejected jobs should not serialize admissions.
  std::string reject_reason;
  if (msg.params.algo != "lsh" && msg.params.algo != "basic" &&
      msg.params.algo != "eddpc") {
    reject_reason =
        "unknown algo '" + msg.params.algo + "' (lsh|basic|eddpc)";
  }
  std::string digest;
  if (reject_reason.empty()) {
    Result<std::string> digested = DatasetContentDigest(msg.dataset_path);
    if (digested.ok()) {
      digest = std::move(digested).value();
    } else {
      reject_reason = "dataset unreadable: " + digested.status().ToString();
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  job->id = next_job_id_++;
  job->queued_at = Now();
  jobs_[job->id] = job;
  if (!reject_reason.empty()) return RejectLocked(job, reject_reason);
  if (draining_) return RejectLocked(job, "server is draining");
  job->digest = digest;
  job->cache_key = digest + "|" + msg.params.CanonicalKey();

  // Result cache: an identical (dataset digest, params) submission is done
  // the moment it is admitted, served from the stored bytes.
  std::string cached;
  if (result_cache_.Get(job->cache_key, &cached)) {
    job->state = JobState::kDone;
    job->from_result_cache = true;
    job->result_payload = std::move(cached);
    job->finished_at = Now();
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsCompleted, 1);
    return SnapshotLocked(*job);
  }

  // In-flight coalescing: an identical job already queued or running
  // answers this submission too — the reply carries the original job id.
  auto inflight = inflight_by_key_.find(job->cache_key);
  if (inflight != inflight_by_key_.end()) {
    auto original = jobs_.find(inflight->second);
    if (original != jobs_.end()) {
      jobs_.erase(job->id);  // drop the placeholder record
      DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsCoalesced, 1);
      return SnapshotLocked(*original->second);
    }
  }

  // Admission control: bounded queue, then the memory budget.
  if (queue_.size() >= config_.max_queued_jobs) {
    return RejectLocked(
        job, "queue full (" + std::to_string(queue_.size()) + " of " +
                 std::to_string(config_.max_queued_jobs) + " queued jobs)");
  }
  const uint64_t effective = msg.params.memory_budget_bytes > 0
                                 ? msg.params.memory_budget_bytes
                                 : config_.default_job_budget_bytes;
  if (admitted_bytes_ + effective > config_.admission_budget_bytes) {
    return RejectLocked(
        job, "admission budget exceeded: admitted " +
                 std::to_string(admitted_bytes_) + " B + job " +
                 std::to_string(effective) + " B > server budget " +
                 std::to_string(config_.admission_budget_bytes) + " B");
  }
  job->admission_bytes = effective;
  admitted_bytes_ += effective;
  job->cancel_flag = std::make_shared<std::atomic<bool>>(false);
  job->mr_jobs = obs::MetricsRegistry::Global().GetCounter(
      "server.job." + std::to_string(job->id) + ".mr_jobs");
  inflight_by_key_[job->cache_key] = job->id;
  queue_.push_back(job);
  UpdateGaugesLocked();
  queue_cv_.notify_one();
  return SnapshotLocked(*job);
}

JobStatusMsg DdpServer::HandleCancel(uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    JobStatusMsg msg;
    msg.job_id = job_id;
    msg.state = static_cast<uint8_t>(JobState::kFailed);
    msg.detail = "unknown job id";
    return msg;
  }
  const std::shared_ptr<Job>& job = it->second;
  if (job->state == JobState::kQueued) {
    // Left in the deque; schedulers skip non-queued entries on pop.
    job->state = JobState::kCancelled;
    job->detail = "cancelled while queued";
    job->finished_at = Now();
    admitted_bytes_ -= job->admission_bytes;
    inflight_by_key_.erase(job->cache_key);
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsCancelled, 1);
    UpdateGaugesLocked();
    drain_cv_.notify_all();
  } else if (job->state == JobState::kRunning) {
    // Cooperative: the pipeline observes the flag at its next MapReduce
    // job boundary; the state flips when the scheduler commits it.
    job->detail = "cancel requested";
    if (job->cancel_flag != nullptr) {
      job->cancel_flag->store(true, std::memory_order_relaxed);
    }
  }
  return SnapshotLocked(*job);
}

JobStatusMsg DdpServer::StatusSnapshot(uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    JobStatusMsg msg;
    msg.job_id = job_id;
    msg.state = static_cast<uint8_t>(JobState::kFailed);
    msg.detail = "unknown job id";
    return msg;
  }
  return SnapshotLocked(*it->second);
}

JobResultMsg DdpServer::ResultSnapshot(uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  JobResultMsg msg;
  msg.job_id = job_id;
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    msg.state = static_cast<uint8_t>(JobState::kFailed);
    msg.error = "unknown job id";
    return msg;
  }
  const Job& job = *it->second;
  msg.state = static_cast<uint8_t>(job.state);
  msg.from_result_cache = job.from_result_cache ? 1 : 0;
  if (job.state == JobState::kDone) {
    msg.payload = job.result_payload;
  } else {
    msg.error = job.detail.empty()
                    ? std::string(JobStateName(job.state))
                    : job.detail;
  }
  return msg;
}

void DdpServer::UpdateGaugesLocked() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge(obs::kMetricServerQueueDepth)
      ->Set(static_cast<double>(queue_.size()));
  registry.GetGauge(obs::kMetricServerRunningJobs)
      ->Set(static_cast<double>(running_));
  registry.GetGauge(obs::kMetricServerAdmittedBudgetBytes)
      ->Set(static_cast<double>(admitted_bytes_));
}

void DdpServer::SchedulerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left to run
      job = queue_.front();
      queue_.pop_front();
      if (job->state != JobState::kQueued) {  // cancelled while queued
        UpdateGaugesLocked();
        drain_cv_.notify_all();
        continue;
      }
      job->state = JobState::kRunning;
      job->started_at = Now();
      ++running_;
      UpdateGaugesLocked();
      DDP_METRIC_HISTOGRAM_SECONDS(obs::kMetricServerQueueWaitSeconds,
                                   job->started_at - job->queued_at);
    }
    ExecuteJob(job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --running_;
      admitted_bytes_ -= job->admission_bytes;
      inflight_by_key_.erase(job->cache_key);
      UpdateGaugesLocked();
      drain_cv_.notify_all();
    }
  }
}

void DdpServer::ExecuteJob(const std::shared_ptr<Job>& job) {
  DDP_TRACE_SPAN(span, obs::kCatServer, obs::kSpanServerExecuteJob);
  if (span.active()) {
    span.AddArg("job_id", job->id);
    span.AddArg("algo", job->params.algo);
  }
  Stopwatch timer;
  Result<std::string> payload = RunJobPipeline(job);
  const double elapsed = timer.ElapsedSeconds();

  // Per-job spill dir: the spill files themselves are RAII-unlinked by the
  // pipeline; this removes the now-empty directory.
  std::error_code ec;
  fs::remove_all(fs::path(work_dir_) / "spill" /
                     ("job-" + std::to_string(job->id)),
                 ec);

  std::unique_lock<std::mutex> lock(mu_);
  job->finished_at = Now();
  if (payload.ok()) {
    job->state = JobState::kDone;
    job->result_payload = std::move(payload).value();
    result_cache_.Put(job->cache_key, job->result_payload);
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsCompleted, 1);
  } else if (payload.status().code() == StatusCode::kCancelled) {
    job->state = JobState::kCancelled;
    job->detail = payload.status().message();
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsCancelled, 1);
  } else {
    job->state = JobState::kFailed;
    job->detail = payload.status().ToString();
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerJobsFailed, 1);
  }
  DDP_METRIC_HISTOGRAM_SECONDS(obs::kMetricServerJobSeconds, elapsed);
}

Result<std::string> DdpServer::RunJobPipeline(
    const std::shared_ptr<Job>& job) {
  DDP_ASSIGN_OR_RETURN(
      std::shared_ptr<const Dataset> dataset,
      dataset_cache_.Acquire(job->dataset_path, job->digest));

  const JobParams& params = job->params;
  DdpOptions options;
  options.dc = params.dc;
  options.cutoff.percentile = params.percentile;
  if (params.k > 0) {
    options.selector = PeakSelector::TopK(static_cast<size_t>(params.k));
  } else if (params.rho_min > 0.0 || params.delta_min > 0.0) {
    options.selector =
        PeakSelector::Threshold(params.rho_min, params.delta_min);
  } else {
    options.selector = PeakSelector::GammaGap();
  }
  options.mr.num_workers = static_cast<size_t>(params.num_workers);
  options.mr.memory_budget_bytes = params.memory_budget_bytes;
  const fs::path spill_dir =
      fs::path(work_dir_) / "spill" / ("job-" + std::to_string(job->id));
  std::error_code ec;
  fs::create_directories(spill_dir, ec);
  if (ec) {
    return Status::IoError("cannot create spill dir " + spill_dir.string() +
                           ": " + ec.message());
  }
  options.mr.spill_dir = spill_dir.string();
  // Checkpoints are keyed by the cache key, not the job id: a job cancelled
  // mid-drain and resubmitted resumes from its last completed MapReduce
  // job instead of starting over.
  const fs::path ckpt_dir =
      fs::path(work_dir_) / "ckpt" / CacheKeyDirName(job->cache_key);
  fs::create_directories(ckpt_dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " +
                           ckpt_dir.string() + ": " + ec.message());
  }
  options.checkpoint_dir = ckpt_dir.string();
  if (params.exec_mode == 2) {
    // Remote execution: the job's phases run on ddp_worker processes that
    // dialed the server's remote listener. A null pool (remote workers not
    // enabled) degrades to fork semantics, counted in exec_fallbacks.
    options.mr.exec_mode = mr::ExecMode::kRemote;
    options.mr.remote_pool = remote_pool_.get();
  } else {
    options.mr.exec_mode =
        params.exec_mode == 1 ? mr::ExecMode::kFork : mr::ExecMode::kInProc;
  }
  options.mr.faults.seed = params.seed;
  options.mr.faults.map_failure_rate = params.map_failure_rate;
  options.mr.faults.reduce_failure_rate = params.reduce_failure_rate;
  options.mr.faults.worker_crash_rate = params.worker_crash_rate;
  options.mr.cancel_flag = job->cancel_flag;
  options.mr.metrics_prefix = "server.job." + std::to_string(job->id);

  LshDdp::Params lsh_params;
  lsh_params.accuracy = params.accuracy;
  lsh_params.lsh.num_layouts = static_cast<size_t>(params.num_layouts);
  lsh_params.lsh.pi = static_cast<size_t>(params.pi);
  lsh_params.seed = params.seed;
  LshDdp lsh_algo(lsh_params);
  BasicDdp::Params basic_params;
  basic_params.block_size = static_cast<size_t>(params.block_size);
  BasicDdp basic_algo(basic_params);
  Eddpc::Params eddpc_params;
  Eddpc eddpc_algo(eddpc_params);
  DistributedDpAlgorithm* algorithm = nullptr;
  if (params.algo == "lsh") algorithm = &lsh_algo;
  if (params.algo == "basic") algorithm = &basic_algo;
  if (params.algo == "eddpc") algorithm = &eddpc_algo;
  if (algorithm == nullptr) {
    return Status::InvalidArgument("unknown algo " + params.algo);
  }

  // One RunPhase may borrow the remote pool at a time; with several
  // scheduler threads, concurrent exec_mode 2 jobs take turns here.
  std::unique_lock<std::mutex> remote_lock(remote_pool_mu_, std::defer_lock);
  if (options.mr.remote_pool != nullptr) remote_lock.lock();

  DDP_ASSIGN_OR_RETURN(DdpRunResult run,
                       RunDistributedDp(algorithm, *dataset, options));

  JobResultPayload payload;
  payload.dc = run.dc;
  payload.num_clusters = run.clusters.num_clusters();
  payload.assignment.reserve(run.clusters.assignment.size());
  for (int id : run.clusters.assignment) {
    payload.assignment.push_back(static_cast<int32_t>(id));
  }
  payload.distance_evaluations = run.distance_evaluations;
  payload.total_seconds = run.total_seconds;
  payload.mr_jobs = run.stats.jobs.size();
  return payload.Encode();
}

}  // namespace server
}  // namespace ddp

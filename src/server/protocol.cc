#include "server/protocol.h"

#include <cstdio>

#include "common/serde.h"

namespace ddp {
namespace server {

namespace {

Status Trailing(const BufferReader& r, const char* what) {
  if (!r.exhausted()) {
    return Status::IoError(std::string("trailing bytes in ") + what);
  }
  return Status::OK();
}

void AppendDouble(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", key, v);
  out->append(buf);
}

void AppendUint(std::string* out, const char* key, uint64_t v) {
  out->append(key);
  out->push_back('=');
  out->append(std::to_string(v));
  out->push_back(';');
}

}  // namespace

std::string_view JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

std::string JobParams::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutString(algo);
  w.PutDouble(dc);
  w.PutDouble(percentile);
  w.PutVarint64(k);
  w.PutDouble(rho_min);
  w.PutDouble(delta_min);
  w.PutDouble(accuracy);
  w.PutVarint64(num_layouts);
  w.PutVarint64(pi);
  w.PutVarint64(block_size);
  w.PutVarint64(num_workers);
  w.PutVarint64(memory_budget_bytes);
  w.PutByte(exec_mode);
  w.PutVarint64(seed);
  w.PutDouble(map_failure_rate);
  w.PutDouble(reduce_failure_rate);
  w.PutDouble(worker_crash_rate);
  return bytes;
}

Status JobParams::Decode(const std::string& bytes, JobParams* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetString(&out->algo));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->dc));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->percentile));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->k));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->rho_min));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->delta_min));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->accuracy));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->num_layouts));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->pi));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->block_size));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->num_workers));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->memory_budget_bytes));
  DDP_RETURN_NOT_OK(r.GetByte(&out->exec_mode));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->seed));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->map_failure_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->reduce_failure_rate));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->worker_crash_rate));
  return Trailing(r, "JobParams");
}

std::string JobParams::CanonicalKey() const {
  std::string key;
  key.append("algo=").append(algo).push_back(';');
  AppendDouble(&key, "dc", dc);
  AppendDouble(&key, "percentile", percentile);
  AppendUint(&key, "k", k);
  AppendDouble(&key, "rho_min", rho_min);
  AppendDouble(&key, "delta_min", delta_min);
  AppendDouble(&key, "accuracy", accuracy);
  AppendUint(&key, "m", num_layouts);
  AppendUint(&key, "pi", pi);
  AppendUint(&key, "block", block_size);
  AppendUint(&key, "workers", num_workers);
  AppendUint(&key, "budget", memory_budget_bytes);
  AppendUint(&key, "exec", exec_mode);
  AppendUint(&key, "seed", seed);
  AppendDouble(&key, "map_fail", map_failure_rate);
  AppendDouble(&key, "reduce_fail", reduce_failure_rate);
  AppendDouble(&key, "crash", worker_crash_rate);
  return key;
}

std::string JobSubmitMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutString(params.Encode());
  w.PutString(dataset_path);
  w.PutDouble(progress_seconds);
  return bytes;
}

Status JobSubmitMsg::Decode(const std::string& bytes, JobSubmitMsg* out) {
  BufferReader r(bytes);
  std::string params_bytes;
  DDP_RETURN_NOT_OK(r.GetString(&params_bytes));
  DDP_RETURN_NOT_OK(JobParams::Decode(params_bytes, &out->params));
  DDP_RETURN_NOT_OK(r.GetString(&out->dataset_path));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->progress_seconds));
  return Trailing(r, "JobSubmitMsg");
}

std::string JobPollMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(job_id);
  return bytes;
}

Status JobPollMsg::Decode(const std::string& bytes, JobPollMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->job_id));
  return Trailing(r, "JobPollMsg");
}

std::string JobCancelMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(job_id);
  return bytes;
}

Status JobCancelMsg::Decode(const std::string& bytes, JobCancelMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->job_id));
  return Trailing(r, "JobCancelMsg");
}

std::string JobStatusMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(job_id);
  w.PutByte(state);
  w.PutString(detail);
  w.PutVarint64(queue_position);
  w.PutVarint64(mr_jobs_done);
  w.PutDouble(running_seconds);
  w.PutByte(from_result_cache);
  return bytes;
}

Status JobStatusMsg::Decode(const std::string& bytes, JobStatusMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->job_id));
  DDP_RETURN_NOT_OK(r.GetByte(&out->state));
  DDP_RETURN_NOT_OK(r.GetString(&out->detail));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->queue_position));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->mr_jobs_done));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->running_seconds));
  DDP_RETURN_NOT_OK(r.GetByte(&out->from_result_cache));
  return Trailing(r, "JobStatusMsg");
}

std::string JobResultPayload::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutDouble(dc);
  w.PutVarint64(num_clusters);
  w.PutVarint64(assignment.size());
  for (int32_t id : assignment) w.PutSignedVarint64(id);
  w.PutVarint64(distance_evaluations);
  w.PutDouble(total_seconds);
  w.PutVarint64(mr_jobs);
  return bytes;
}

Status JobResultPayload::Decode(const std::string& bytes,
                                JobResultPayload* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetDouble(&out->dc));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->num_clusters));
  uint64_t n = 0;
  DDP_RETURN_NOT_OK(r.GetVarint64(&n));
  if (n > bytes.size()) {  // each id is >= 1 encoded byte
    return Status::IoError("JobResultPayload assignment length implausible");
  }
  out->assignment.clear();
  out->assignment.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t id = 0;
    DDP_RETURN_NOT_OK(r.GetSignedVarint64(&id));
    out->assignment.push_back(static_cast<int32_t>(id));
  }
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->distance_evaluations));
  DDP_RETURN_NOT_OK(r.GetDouble(&out->total_seconds));
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->mr_jobs));
  return Trailing(r, "JobResultPayload");
}

std::string JobResultMsg::Encode() const {
  std::string bytes;
  BufferWriter w(&bytes);
  w.PutVarint64(job_id);
  w.PutByte(state);
  w.PutString(error);
  w.PutByte(from_result_cache);
  w.PutString(payload);
  return bytes;
}

Status JobResultMsg::Decode(const std::string& bytes, JobResultMsg* out) {
  BufferReader r(bytes);
  DDP_RETURN_NOT_OK(r.GetVarint64(&out->job_id));
  DDP_RETURN_NOT_OK(r.GetByte(&out->state));
  DDP_RETURN_NOT_OK(r.GetString(&out->error));
  DDP_RETURN_NOT_OK(r.GetByte(&out->from_result_cache));
  DDP_RETURN_NOT_OK(r.GetString(&out->payload));
  return Trailing(r, "JobResultMsg");
}

}  // namespace server
}  // namespace ddp

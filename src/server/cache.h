#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/result.h"
#include "dataset/dataset.h"

/// \file cache.h
/// The two caches that make a long-lived ddp_server cheaper than one
/// ddp_cli invocation per request:
///
///  * `DatasetCache` keeps loaded datasets resident across jobs, keyed by
///    content digest (sharded_io.h: CRC32 over the shard byte stream), so a
///    parameter sweep over one dataset pays the load once. Entries hand out
///    shared_ptr<const Dataset>; eviction drops the cache's reference and
///    in-flight jobs keep theirs, so eviction never invalidates a running
///    job.
///  * `ResultCache` maps (dataset digest, canonicalized params) to the
///    encoded JobResultPayload bytes of a completed run. A hit is served
///    verbatim — bit-identical to the run that stored it — without touching
///    the MapReduce runtime.
///
/// Both are LRU with a hard bound (bytes for datasets, entries for
/// results) and bump the server.* cache metrics on every lookup.

namespace ddp {
namespace server {

class DatasetCache {
 public:
  /// `max_bytes` bounds resident point data (estimated as
  /// n * dim * sizeof(double) + label storage); at least the most recent
  /// entry is kept even when it alone exceeds the bound.
  explicit DatasetCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns the dataset for `path`, loading it on a miss. `digest` must be
  /// the path's DatasetContentDigest — it is the cache key, so the same
  /// bytes under two paths share one entry.
  Result<std::shared_ptr<const Dataset>> Acquire(const std::string& path,
                                                 const std::string& digest);

  uint64_t resident_bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const Dataset> dataset;
    uint64_t bytes = 0;
    uint64_t last_use = 0;
  };

  void EvictLocked();

  mutable std::mutex mu_;
  uint64_t max_bytes_;
  uint64_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
  std::map<std::string, Entry> entries_;  // digest -> entry
};

class ResultCache {
 public:
  explicit ResultCache(size_t max_entries) : max_entries_(max_entries) {}

  /// Copies the cached payload into `*payload` on a hit.
  bool Get(const std::string& key, std::string* payload);

  void Put(const std::string& key, std::string payload);

  size_t size() const;

 private:
  struct Entry {
    std::string payload;
    uint64_t last_use = 0;
  };

  mutable std::mutex mu_;
  size_t max_entries_;
  uint64_t tick_ = 0;
  std::map<std::string, Entry> entries_;
};

/// Loads a dataset the way the tools do: a directory is read as DDPB
/// shards, a `.ddpb` file via the binary reader, anything else as CSV.
Result<Dataset> LoadDatasetForServing(const std::string& path);

}  // namespace server
}  // namespace ddp

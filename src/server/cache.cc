#include "server/cache.h"

#include <filesystem>

#include "dataset/binary_io.h"
#include "dataset/csv.h"
#include "dataset/sharded_io.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ddp {
namespace server {

namespace {

uint64_t EstimateBytes(const Dataset& ds) {
  uint64_t bytes = static_cast<uint64_t>(ds.size()) *
                   static_cast<uint64_t>(ds.dim()) * sizeof(double);
  if (ds.has_labels()) bytes += static_cast<uint64_t>(ds.size()) * sizeof(int);
  return bytes;
}

void SetDatasetCacheGauge(uint64_t bytes) {
  obs::MetricsRegistry::Global()
      .GetGauge(obs::kMetricServerDatasetCacheBytes)
      ->Set(static_cast<double>(bytes));
}

}  // namespace

Result<Dataset> LoadDatasetForServing(const std::string& path) {
  if (std::filesystem::is_directory(path)) {
    DDP_ASSIGN_OR_RETURN(ShardedDatasetReader reader,
                         ShardedDatasetReader::OpenDirectory(path));
    return reader.ReadAll();
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".ddpb") == 0) {
    return ReadBinaryFile(path);
  }
  return ReadCsvFile(path);
}

Result<std::shared_ptr<const Dataset>> DatasetCache::Acquire(
    const std::string& path, const std::string& digest) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    it->second.last_use = ++tick_;
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerDatasetCacheHits, 1);
    return it->second.dataset;
  }
  DDP_METRIC_COUNTER_ADD(obs::kMetricServerDatasetCacheMisses, 1);
  // Load under the lock: concurrent jobs over the same dataset serialize
  // here instead of loading twice, and hit/miss accounting stays exact.
  DDP_ASSIGN_OR_RETURN(Dataset loaded, LoadDatasetForServing(path));
  Entry entry;
  entry.dataset = std::make_shared<const Dataset>(std::move(loaded));
  entry.bytes = EstimateBytes(*entry.dataset);
  entry.last_use = ++tick_;
  resident_bytes_ += entry.bytes;
  std::shared_ptr<const Dataset> result = entry.dataset;
  entries_[digest] = std::move(entry);
  EvictLocked();
  SetDatasetCacheGauge(resident_bytes_);
  return result;
}

void DatasetCache::EvictLocked() {
  while (resident_bytes_ > max_bytes_ && entries_.size() > 1) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
  }
}

uint64_t DatasetCache::resident_bytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return resident_bytes_;
}

bool ResultCache::Get(const std::string& key, std::string* payload) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    DDP_METRIC_COUNTER_ADD(obs::kMetricServerResultCacheMisses, 1);
    return false;
  }
  it->second.last_use = ++tick_;
  *payload = it->second.payload;
  DDP_METRIC_COUNTER_ADD(obs::kMetricServerResultCacheHits, 1);
  return true;
}

void ResultCache::Put(const std::string& key, std::string payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (max_entries_ == 0) return;  // caching disabled
  Entry& entry = entries_[key];
  entry.payload = std::move(payload);
  entry.last_use = ++tick_;
  while (entries_.size() > max_entries_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
  }
  obs::MetricsRegistry::Global()
      .GetGauge(obs::kMetricServerResultCacheEntries)
      ->Set(static_cast<double>(entries_.size()));
}

size_t ResultCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace server
}  // namespace ddp

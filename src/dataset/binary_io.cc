#include "dataset/binary_io.h"

#include <fstream>
#include <sstream>

#include "common/serde.h"

namespace ddp {

namespace {
constexpr char kMagic[4] = {'D', 'D', 'P', 'B'};
constexpr uint32_t kVersion = 1;
}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  BufferWriter w;
  w.PutRaw(kMagic, sizeof(kMagic));
  w.PutVarint32(kVersion);
  w.PutVarint64(dataset.dim());
  w.PutVarint64(dataset.size());
  w.PutByte(dataset.has_labels() ? 1 : 0);
  w.PutRaw(dataset.values().data(), dataset.values().size() * sizeof(double));
  if (dataset.has_labels()) {
    for (int label : dataset.labels()) w.PutSignedVarint64(label);
  }
  return w.Release();
}

Result<Dataset> DeserializeDataset(const std::string& bytes) {
  BufferReader r(bytes);
  char magic[4];
  DDP_RETURN_NOT_OK(r.GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a DDPB dataset (bad magic)");
  }
  uint32_t version;
  DDP_RETURN_NOT_OK(r.GetVarint32(&version));
  if (version != kVersion) {
    return Status::IoError("unsupported DDPB version " +
                           std::to_string(version));
  }
  uint64_t dim, n;
  DDP_RETURN_NOT_OK(r.GetVarint64(&dim));
  DDP_RETURN_NOT_OK(r.GetVarint64(&n));
  if (dim == 0) return Status::IoError("zero dimension");
  uint8_t labeled;
  DDP_RETURN_NOT_OK(r.GetByte(&labeled));
  if (r.remaining() < n * dim * sizeof(double)) {
    return Status::IoError("truncated value block");
  }
  std::vector<double> values(n * dim);
  DDP_RETURN_NOT_OK(r.GetRaw(values.data(), values.size() * sizeof(double)));
  DDP_ASSIGN_OR_RETURN(Dataset ds, Dataset::FromValues(dim, std::move(values)));
  if (labeled != 0) {
    std::vector<int> labels(n);
    for (uint64_t i = 0; i < n; ++i) {
      int64_t v;
      DDP_RETURN_NOT_OK(r.GetSignedVarint64(&v));
      labels[i] = static_cast<int>(v);
    }
    ds.set_labels(std::move(labels));
  }
  if (!r.exhausted()) return Status::IoError("trailing bytes after dataset");
  return ds;
}

Status WriteBinaryFile(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::string bytes = SerializeDataset(dataset);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Dataset> ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeDataset(buf.str());
}

}  // namespace ddp

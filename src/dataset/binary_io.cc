#include "dataset/binary_io.h"

#include <fstream>
#include <sstream>

#include "common/serde.h"

namespace ddp {

namespace {
constexpr char kMagic[4] = {'D', 'D', 'P', 'B'};
constexpr uint32_t kWriteVersion = 2;  // v2 appends a CRC32 trailer
constexpr uint32_t kMaxVersion = 2;

Status ParseHeader(BufferReader* r, BinaryFileInfo* info) {
  char magic[4];
  DDP_RETURN_NOT_OK(r->GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a DDPB dataset (bad magic)");
  }
  DDP_RETURN_NOT_OK(r->GetVarint32(&info->version));
  if (info->version == 0 || info->version > kMaxVersion) {
    return Status::IoError("unsupported DDPB version " +
                           std::to_string(info->version));
  }
  DDP_RETURN_NOT_OK(r->GetVarint64(&info->dim));
  DDP_RETURN_NOT_OK(r->GetVarint64(&info->num_points));
  if (info->dim == 0) return Status::IoError("zero dimension");
  uint8_t labeled = 0;
  DDP_RETURN_NOT_OK(r->GetByte(&labeled));
  info->has_labels = labeled != 0;
  return Status::OK();
}

}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  BufferWriter w;
  w.PutRaw(kMagic, sizeof(kMagic));
  w.PutVarint32(kWriteVersion);
  w.PutVarint64(dataset.dim());
  w.PutVarint64(dataset.size());
  w.PutByte(dataset.has_labels() ? 1 : 0);
  w.PutRaw(dataset.values().data(), dataset.values().size() * sizeof(double));
  if (dataset.has_labels()) {
    for (int label : dataset.labels()) w.PutSignedVarint64(label);
  }
  std::string bytes = w.Release();
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  BufferWriter trailer(&bytes);
  trailer.PutByte(static_cast<uint8_t>(crc & 0xFF));
  trailer.PutByte(static_cast<uint8_t>((crc >> 8) & 0xFF));
  trailer.PutByte(static_cast<uint8_t>((crc >> 16) & 0xFF));
  trailer.PutByte(static_cast<uint8_t>((crc >> 24) & 0xFF));
  return bytes;
}

Result<Dataset> DeserializeDataset(const std::string& bytes) {
  // v2: the last 4 bytes are a CRC32 of everything before them. Verify
  // before trusting any length field in the content.
  size_t content_size = bytes.size();
  {
    BufferReader peek(bytes);
    BinaryFileInfo info;
    DDP_RETURN_NOT_OK(ParseHeader(&peek, &info));
    if (info.version >= 2) {
      if (bytes.size() < 4) return Status::IoError("truncated DDPB trailer");
      content_size = bytes.size() - 4;
      const uint8_t* t =
          reinterpret_cast<const uint8_t*>(bytes.data()) + content_size;
      const uint32_t stored = static_cast<uint32_t>(t[0]) |
                              (static_cast<uint32_t>(t[1]) << 8) |
                              (static_cast<uint32_t>(t[2]) << 16) |
                              (static_cast<uint32_t>(t[3]) << 24);
      if (stored != Crc32(bytes.data(), content_size)) {
        return Status::IoError("DDPB checksum mismatch (corrupt file)");
      }
    }
  }
  BufferReader r(bytes.data(), content_size);
  BinaryFileInfo info;
  DDP_RETURN_NOT_OK(ParseHeader(&r, &info));
  const uint64_t dim = info.dim;
  const uint64_t n = info.num_points;
  if (r.remaining() < n * dim * sizeof(double)) {
    return Status::IoError("truncated value block");
  }
  std::vector<double> values(n * dim);
  DDP_RETURN_NOT_OK(r.GetRaw(values.data(), values.size() * sizeof(double)));
  DDP_ASSIGN_OR_RETURN(Dataset ds, Dataset::FromValues(dim, std::move(values)));
  if (info.has_labels) {
    std::vector<int> labels(n);
    for (uint64_t i = 0; i < n; ++i) {
      int64_t v;
      DDP_RETURN_NOT_OK(r.GetSignedVarint64(&v));
      labels[i] = static_cast<int>(v);
    }
    ds.set_labels(std::move(labels));
  }
  if (!r.exhausted()) return Status::IoError("trailing bytes after dataset");
  return ds;
}

Status WriteBinaryFile(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::string bytes = SerializeDataset(dataset);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Dataset> ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<Dataset> ds = DeserializeDataset(buf.str());
  if (!ds.ok()) {
    return Status::IoError(path + ": " + ds.status().message());
  }
  return ds;
}

Result<BinaryFileInfo> PeekBinaryFileInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  // The header is 4 magic bytes plus four varints and a flag byte: 64 bytes
  // covers any well-formed header.
  char head[64];
  in.read(head, sizeof(head));
  const size_t got = static_cast<size_t>(in.gcount());
  BufferReader r(head, got);
  BinaryFileInfo info;
  Status st = ParseHeader(&r, &info);
  if (!st.ok()) return Status::IoError(path + ": " + st.message());
  return info;
}

}  // namespace ddp

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/binary_io.h"
#include "dataset/dataset.h"

/// \file sharded_io.h
/// Streaming I/O over multi-file DDPB shards — the on-disk shape of a
/// dataset too large to materialize in one allocation. A sharded dataset is
/// an ordered list of DDPB files with identical dim and label flags; point
/// ids are assigned by global position (shard order, then in-shard order),
/// matching what loading the concatenation into one Dataset would produce.
/// The reader validates shard consistency from headers alone and loads one
/// shard at a time, so the peak resident set is one shard, not the dataset.

namespace ddp {

/// Streams a sharded DDPB dataset shard by shard.
class ShardedDatasetReader {
 public:
  /// Metadata of one shard, read from its header.
  struct Shard {
    std::string path;
    uint64_t num_points = 0;
    uint64_t base_id = 0;  // global id of the shard's first point
  };

  /// Opens an explicit ordered shard list. Fails with a per-file error when
  /// a shard is unreadable, not DDPB, or disagrees with the first shard's
  /// dim / label flag.
  static Result<ShardedDatasetReader> Open(
      const std::vector<std::string>& paths);

  /// Opens every `*.ddpb` file of `dir`, in lexicographic name order (the
  /// order ShardedDatasetWriter's zero-padded names sort into).
  static Result<ShardedDatasetReader> OpenDirectory(const std::string& dir);

  size_t dim() const { return dim_; }
  bool has_labels() const { return has_labels_; }
  uint64_t total_points() const { return total_points_; }
  size_t num_shards() const { return shards_.size(); }
  const std::vector<Shard>& shards() const { return shards_; }

  /// Loads shard `i` (CRC-verified for v2 files).
  Result<Dataset> ReadShard(size_t i) const;

  /// Streams every shard through `fn(shard_data, base_id)` in shard order,
  /// holding one shard in memory at a time.
  Status ForEachShard(
      const std::function<Status(const Dataset&, uint64_t base_id)>& fn) const;

  /// Concatenates all shards into one Dataset (ids == global ids). The
  /// convenience path for data that does fit; ForEachShard is the scalable
  /// one.
  Result<Dataset> ReadAll() const;

  /// Content digest of the dataset: one CRC32 chained over the raw file
  /// bytes of every shard in shard order, rendered as
  /// "crc32:<8 hex digits>.<total bytes>". Because DDPB files already end
  /// in a CRC32 trailer, the digest covers both header and point payload;
  /// two datasets share a digest iff their shard byte streams are
  /// identical. This is the cache key material of the serving layer
  /// (src/server/cache.h). Streams each shard in fixed-size chunks, so the
  /// cost is one read pass and O(1) memory.
  Result<std::string> ContentDigest() const;

 private:
  ShardedDatasetReader() = default;

  size_t dim_ = 0;
  bool has_labels_ = false;
  uint64_t total_points_ = 0;
  std::vector<Shard> shards_;
};

/// Writes a dataset as fixed-size DDPB shards named
/// `<prefix>-00000.ddpb`, `<prefix>-00001.ddpb`, ... Points are flushed
/// every `points_per_shard`, so the writer holds at most one shard.
class ShardedDatasetWriter {
 public:
  ShardedDatasetWriter(std::string prefix, size_t dim, bool labeled,
                       uint64_t points_per_shard);

  /// Appends one point (label ignored unless the writer is labeled).
  Status Add(std::span<const double> coords, int label = -1);

  /// Flushes the final partial shard and returns the shard paths written.
  Result<std::vector<std::string>> Finish();

 private:
  Status FlushShard();

  std::string prefix_;
  size_t dim_;
  bool labeled_;
  uint64_t points_per_shard_;
  Dataset pending_;
  size_t shard_index_ = 0;
  bool finished_ = false;
  std::vector<std::string> paths_;
};

/// Splits `dataset` into `points_per_shard`-sized DDPB shards under
/// `prefix`. Returns the shard paths.
Result<std::vector<std::string>> WriteShardedDataset(
    const std::string& prefix, const Dataset& dataset,
    uint64_t points_per_shard);

/// ContentDigest for any dataset path the tools accept: a directory is
/// digested as its sharded reader would order it; a single file (DDPB or
/// CSV) is digested as a one-shard stream.
Result<std::string> DatasetContentDigest(const std::string& path);

}  // namespace ddp


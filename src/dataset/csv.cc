#include "dataset/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace ddp {

namespace {

// Splits a line on commas/spaces/tabs into double tokens.
// Returns false on a malformed numeric token.
bool ParseRow(const std::string& line, std::vector<double>* out) {
  out->clear();
  const char* p = line.c_str();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ',' || *p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    char* next = nullptr;
    errno = 0;
    double v = std::strtod(p, &next);
    if (next == p || errno == ERANGE) return false;
    out->push_back(v);
    p = next;
  }
  return true;
}

}  // namespace

Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  std::vector<double> row;
  size_t dim = 0;
  std::vector<double> values;
  std::vector<int> labels;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!ParseRow(line, &row)) {
      return Status::IoError("malformed number at line " +
                             std::to_string(line_no));
    }
    if (row.empty()) continue;
    size_t width = row.size();
    size_t coord_width = options.last_column_is_label ? width - 1 : width;
    if (options.last_column_is_label && width < 2) {
      return Status::IoError("label column requested but row has " +
                             std::to_string(width) + " columns at line " +
                             std::to_string(line_no));
    }
    if (dim == 0) {
      dim = coord_width;
    } else if (coord_width != dim) {
      return Status::IoError("inconsistent row width at line " +
                             std::to_string(line_no));
    }
    values.insert(values.end(), row.begin(),
                  row.begin() + static_cast<std::ptrdiff_t>(coord_width));
    if (options.last_column_is_label) {
      labels.push_back(static_cast<int>(row.back()));
    }
  }
  if (dim == 0) return Status::IoError("no data rows");
  DDP_ASSIGN_OR_RETURN(Dataset ds, Dataset::FromValues(dim, std::move(values)));
  if (options.last_column_is_label) ds.set_labels(std::move(labels));
  return ds;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

Status WriteCsvFile(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.precision(17);
  for (size_t i = 0; i < dataset.size(); ++i) {
    std::span<const double> p = dataset.point(static_cast<PointId>(i));
    for (size_t d = 0; d < p.size(); ++d) {
      if (d > 0) out << ',';
      out << p[d];
    }
    if (dataset.has_labels()) out << ',' << dataset.label(static_cast<PointId>(i));
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace ddp

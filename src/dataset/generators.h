#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"

/// \file generators.h
/// Deterministic synthetic stand-ins for the paper's evaluation data sets
/// (Table II). The real sets are not redistributable here, so each generator
/// reproduces the property of its counterpart that matters for DP / LSH-DDP
/// behaviour: cardinality shape, dimensionality, and cluster/density
/// structure. Default sizes are scaled down so benchmarks run on one machine;
/// every generator accepts an explicit `n` to scale up.
///
/// | Paper set     | N (paper)  | d   | Structure mimicked                   |
/// |---------------|------------|-----|--------------------------------------|
/// | Aggregation   | 788        | 2   | 7 irregular clusters, some touching  |
/// | S2            | 5,000      | 2   | 15 overlapping Gaussian blobs        |
/// | Facial        | 27,936     | 300 | high-dim, low intrinsic dimension    |
/// | KDD           | 145,751    | 74  | skewed cluster sizes, heavy tails    |
/// | 3Dspatial     | 434,874    | 4   | points along road-network polylines  |
/// | BigCross500K  | 500,000    | 57  | cross-product cluster structure      |
/// | BigCross      | 11,620,300 | 57  | same, larger                         |

namespace ddp {
namespace gen {

/// Generic isotropic Gaussian mixture with equal-weight components.
/// Centers are drawn uniformly in [0, box]^dim; `spread` is the component
/// standard deviation. Labels are component ids.
Result<Dataset> GaussianMixture(size_t n, size_t dim, size_t num_clusters,
                                double box, double spread, uint64_t seed);

/// Aggregation-like: 7 clusters in 2-D including elongated and crescent
/// shapes that defeat centroid methods (Fig. 8). Ground-truth labeled.
/// `n` defaults to the paper's 788.
Result<Dataset> AggregationLike(uint64_t seed, size_t n = 788);

/// Spiral-like: 3 intertwined spiral arms (the classic Chang & Yeung shape
/// set; one of the paper's "7 other shaped data sets"). Defeats every
/// centroid/distribution method; connectivity/density methods shine.
Result<Dataset> SpiralLike(uint64_t seed, size_t n = 312);

/// Flame-like: two touching irregular shapes (Fu & Medico), one a flattened
/// arc under a round blob. `n` defaults to the original's 240.
Result<Dataset> FlameLike(uint64_t seed, size_t n = 240);

/// R15-like: 15 tight gaussian clusters, 8 arranged in a ring around a
/// center group of 7 (Veenman et al.). `n` defaults to the original's 600.
Result<Dataset> R15Like(uint64_t seed, size_t n = 600);

/// S2-like: 15 Gaussian clusters in 2-D with moderate overlap, coordinates
/// roughly in [0, 1e6] like the original S-sets. Ground-truth labeled.
Result<Dataset> S2Like(uint64_t seed, size_t n = 5000);

/// Facial-like: 300-dimensional points that live near a low-dimensional
/// (10-d) random linear subspace plus small ambient noise, grouped into
/// clusters; mimics pose/expression manifolds in the Facial set.
Result<Dataset> FacialLike(uint64_t seed, size_t n = 4000);

/// KDD-like: 74-dimensional mixture with power-law cluster sizes and
/// per-cluster anisotropic scales; mimics the protein-structure KDD Cup set.
Result<Dataset> KddLike(uint64_t seed, size_t n = 8000);

/// 3Dspatial-like: 4-dimensional points sampled along smooth random
/// polylines (road segments) with jitter; density concentrates along curves.
Result<Dataset> SpatialLike(uint64_t seed, size_t n = 12000);

/// BigCross-like: 57-dimensional cross-product structure — the original
/// BigCross is the Cartesian product of the Tower (3-d) and Covertype (54-d)
/// sets; we sample each factor from its own mixture and concatenate, which
/// yields the product-of-clusters density landscape. Ground-truth labels are
/// the product cluster ids.
Result<Dataset> BigCrossLike(uint64_t seed, size_t n = 20000);

/// Descriptor used by benchmarks to iterate "the four real data sets" of
/// Fig. 10 plus the rest of Table II at configurable scale.
struct NamedDataset {
  const char* name;
  size_t default_n;  // scaled-down default used by benches
  size_t paper_n;    // cardinality of the paper's real data set (Table II)
  size_t dim;
  Result<Dataset> (*make)(uint64_t seed, size_t n);
};

/// Fig. 10's four data sets: Facial, KDD, 3Dspatial, BigCross500K.
std::vector<NamedDataset> PerformanceSuite();

}  // namespace gen
}  // namespace ddp


#include "dataset/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "common/random.h"

namespace ddp {
namespace gen {

namespace {

// Appends `count` samples of an isotropic gaussian blob.
void AddBlob(Dataset* ds, Rng* rng, std::span<const double> center,
             double spread, size_t count, int label) {
  std::vector<double> p(center.size());
  for (size_t i = 0; i < count; ++i) {
    for (size_t d = 0; d < p.size(); ++d) {
      p[d] = center[d] + spread * rng->Gaussian();
    }
    ds->Add(p, label);
  }
}

// Appends points along a circular arc (crescent) with jitter.
void AddArc(Dataset* ds, Rng* rng, double cx, double cy, double radius,
            double angle_lo, double angle_hi, double jitter, size_t count,
            int label) {
  std::vector<double> p(2);
  for (size_t i = 0; i < count; ++i) {
    double a = rng->Uniform(angle_lo, angle_hi);
    p[0] = cx + radius * std::cos(a) + jitter * rng->Gaussian();
    p[1] = cy + radius * std::sin(a) + jitter * rng->Gaussian();
    ds->Add(p, label);
  }
}

// Appends points uniformly inside a rotated ellipse with gaussian falloff.
void AddEllipse(Dataset* ds, Rng* rng, double cx, double cy, double rx,
                double ry, double rotation, size_t count, int label) {
  std::vector<double> p(2);
  double c = std::cos(rotation), s = std::sin(rotation);
  for (size_t i = 0; i < count; ++i) {
    double u = rng->Gaussian() * rx;
    double v = rng->Gaussian() * ry;
    p[0] = cx + u * c - v * s;
    p[1] = cy + u * s + v * c;
    ds->Add(p, label);
  }
}

}  // namespace

Result<Dataset> GaussianMixture(size_t n, size_t dim, size_t num_clusters,
                                double box, double spread, uint64_t seed) {
  if (n == 0 || dim == 0 || num_clusters == 0) {
    return Status::InvalidArgument("n, dim, num_clusters must be positive");
  }
  Rng rng(seed);
  std::vector<std::vector<double>> centers(num_clusters);
  for (auto& c : centers) {
    c.resize(dim);
    for (double& x : c) x = rng.Uniform(0.0, box);
  }
  Dataset ds(dim);
  ds.Reserve(n);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    size_t k = i % num_clusters;  // equal weights, deterministic balance
    for (size_t d = 0; d < dim; ++d) {
      p[d] = centers[k][d] + spread * rng.Gaussian();
    }
    ds.Add(p, static_cast<int>(k));
  }
  return ds;
}

Result<Dataset> AggregationLike(uint64_t seed, size_t n) {
  if (n < 70) return Status::InvalidArgument("AggregationLike needs n >= 70");
  Rng rng(seed);
  Dataset ds(2);
  ds.Reserve(n);
  // Portion the points over 7 clusters with the original set's proportions
  // (Aggregation: 45/170/102/273/34/130/34 of 788).
  const double kShare[7] = {45.0 / 788, 170.0 / 788, 102.0 / 788, 273.0 / 788,
                            34.0 / 788, 130.0 / 788, 34.0 / 788};
  size_t counts[7];
  size_t assigned = 0;
  for (int k = 0; k < 7; ++k) {
    counts[k] = static_cast<size_t>(kShare[k] * static_cast<double>(n));
    assigned += counts[k];
  }
  counts[3] += n - assigned;  // remainder to the big cluster

  // Cluster 0: small tight blob (top-left).
  AddBlob(&ds, &rng, std::vector<double>{5.0, 26.0}, 1.1, counts[0], 0);
  // Cluster 1: big round blob (bottom-left), touches cluster 2.
  AddBlob(&ds, &rng, std::vector<double>{8.0, 9.0}, 2.4, counts[1], 1);
  // Cluster 2: medium blob adjacent to cluster 1 — the "close clusters"
  // case that hierarchical/DBSCAN merge incorrectly.
  AddBlob(&ds, &rng, std::vector<double>{15.5, 8.0}, 1.8, counts[2], 2);
  // Cluster 3: large elongated ellipse (right side) — non-oval methods fail.
  AddEllipse(&ds, &rng, 30.0, 15.0, 5.5, 2.0, 0.5, counts[3], 3);
  // Cluster 4: small blob above the ellipse.
  AddBlob(&ds, &rng, std::vector<double>{33.0, 26.0}, 1.0, counts[4], 4);
  // Cluster 5: crescent wrapping cluster 6 — arbitrary-shape case.
  AddArc(&ds, &rng, 17.0, 22.0, 5.0, 0.3 * std::numbers::pi,
         1.6 * std::numbers::pi, 0.55, counts[5], 5);
  // Cluster 6: blob inside the crescent's mouth.
  AddBlob(&ds, &rng, std::vector<double>{19.5, 24.5}, 0.8, counts[6], 6);
  return ds;
}

Result<Dataset> SpiralLike(uint64_t seed, size_t n) {
  if (n < 30) return Status::InvalidArgument("SpiralLike needs n >= 30");
  Rng rng(seed);
  Dataset ds(2);
  ds.Reserve(n);
  std::vector<double> p(2);
  const size_t kArms = 3;
  for (size_t i = 0; i < n; ++i) {
    size_t arm = i % kArms;
    // Radius grows with angle; arms offset by 120 degrees. The arm-to-arm
    // gap must be several times the along-arm point spacing or the arms'
    // density ridges blur together (for every algorithm).
    // Sampling density increases toward the outer end (t = sqrt(u)), giving
    // each arm a density mode at its well-separated outer tip — the
    // structure DP's (rho, delta) construction keys on.
    double t = 0.3 + 0.7 * std::cbrt(rng.Uniform());
    double angle = t * 1.2 * std::numbers::pi +
                   static_cast<double>(arm) * 2.0 * std::numbers::pi / 3.0;
    double radius = 5.0 + 20.0 * t;
    p[0] = radius * std::cos(angle) + 0.15 * rng.Gaussian();
    p[1] = radius * std::sin(angle) + 0.15 * rng.Gaussian();
    ds.Add(p, static_cast<int>(arm));
  }
  return ds;
}

Result<Dataset> FlameLike(uint64_t seed, size_t n) {
  if (n < 30) return Status::InvalidArgument("FlameLike needs n >= 30");
  Rng rng(seed);
  Dataset ds(2);
  ds.Reserve(n);
  std::vector<double> p(2);
  size_t arc_count = n * 2 / 5;
  // Cluster 0: a flattened arc along the bottom.
  for (size_t i = 0; i < arc_count; ++i) {
    double t = rng.Uniform(-1.0, 1.0);
    p[0] = 7.0 * t;
    p[1] = 2.0 * t * t + 0.45 * rng.Gaussian();
    ds.Add(p, 0);
  }
  // Cluster 1: a round blob hovering above the arc's center.
  for (size_t i = arc_count; i < n; ++i) {
    p[0] = 0.0 + 1.8 * rng.Gaussian();
    p[1] = 6.5 + 1.4 * rng.Gaussian();
    ds.Add(p, 1);
  }
  return ds;
}

Result<Dataset> R15Like(uint64_t seed, size_t n) {
  if (n < 150) return Status::InvalidArgument("R15Like needs n >= 150");
  Rng rng(seed);
  Dataset ds(2);
  ds.Reserve(n);
  std::vector<double> p(2);
  // 7 tight clusters in a small inner ring + center, 8 in an outer ring.
  std::vector<std::array<double, 2>> centers;
  centers.push_back({0.0, 0.0});
  for (int k = 0; k < 6; ++k) {
    double a = k * std::numbers::pi / 3.0;
    centers.push_back({3.2 * std::cos(a), 3.2 * std::sin(a)});
  }
  for (int k = 0; k < 8; ++k) {
    double a = k * std::numbers::pi / 4.0;
    centers.push_back({9.0 * std::cos(a), 9.0 * std::sin(a)});
  }
  for (size_t i = 0; i < n; ++i) {
    size_t k = i % centers.size();
    p[0] = centers[k][0] + 0.35 * rng.Gaussian();
    p[1] = centers[k][1] + 0.35 * rng.Gaussian();
    ds.Add(p, static_cast<int>(k));
  }
  return ds;
}

Result<Dataset> S2Like(uint64_t seed, size_t n) {
  if (n < 150) return Status::InvalidArgument("S2Like needs n >= 150");
  Rng rng(seed);
  const size_t kClusters = 15;
  // Fixed well-spread centers on a jittered grid inside [0, 1e6]^2 so that
  // overlap level resembles the original S2 (moderate).
  std::vector<std::vector<double>> centers;
  centers.reserve(kClusters);
  for (size_t k = 0; k < kClusters; ++k) {
    double gx = static_cast<double>(k % 4);
    double gy = static_cast<double>(k / 4);
    centers.push_back({(gx + 0.5) * 2.4e5 + rng.Uniform(-6e4, 6e4),
                       (gy + 0.5) * 2.4e5 + rng.Uniform(-6e4, 6e4)});
  }
  Dataset ds(2);
  ds.Reserve(n);
  std::vector<double> p(2);
  for (size_t i = 0; i < n; ++i) {
    size_t k = i % kClusters;
    double spread = 3.2e4;  // moderate overlap
    p[0] = centers[k][0] + spread * rng.Gaussian();
    p[1] = centers[k][1] + spread * rng.Gaussian();
    ds.Add(p, static_cast<int>(k));
  }
  return ds;
}

Result<Dataset> FacialLike(uint64_t seed, size_t n) {
  if (n < 100) return Status::InvalidArgument("FacialLike needs n >= 100");
  const size_t kDim = 300;
  const size_t kIntrinsic = 10;
  // Many well-separated subjects: the 2% distance percentile then falls at
  // the within-subject scale and LSH resolves subjects into distinct
  // buckets, as with the real Facial descriptor set.
  const size_t kClusters = 40;
  Rng rng(seed);
  // Random linear embedding of a 10-d latent space into 300-d.
  std::vector<std::vector<double>> basis(kIntrinsic);
  for (auto& b : basis) b = rng.GaussianVector(kDim);
  std::vector<std::vector<double>> latent_centers(kClusters);
  for (auto& c : latent_centers) {
    c.resize(kIntrinsic);
    for (double& x : c) x = rng.Uniform(-25.0, 25.0);
  }
  Dataset ds(kDim);
  ds.Reserve(n);
  std::vector<double> latent(kIntrinsic);
  std::vector<double> p(kDim);
  for (size_t i = 0; i < n; ++i) {
    size_t k = i % kClusters;
    for (size_t d = 0; d < kIntrinsic; ++d) {
      latent[d] = latent_centers[k][d] + rng.Gaussian();
    }
    std::fill(p.begin(), p.end(), 0.0);
    for (size_t d = 0; d < kIntrinsic; ++d) {
      for (size_t j = 0; j < kDim; ++j) p[j] += latent[d] * basis[d][j];
    }
    for (size_t j = 0; j < kDim; ++j) p[j] += 0.3 * rng.Gaussian();  // noise
    ds.Add(p, static_cast<int>(k));
  }
  return ds;
}

Result<Dataset> KddLike(uint64_t seed, size_t n) {
  if (n < 100) return Status::InvalidArgument("KddLike needs n >= 100");
  const size_t kDim = 74;
  const size_t kClusters = 20;
  Rng rng(seed);
  std::vector<std::vector<double>> centers(kClusters);
  std::vector<double> scales(kClusters);
  for (size_t k = 0; k < kClusters; ++k) {
    centers[k].resize(kDim);
    for (double& x : centers[k]) x = rng.Uniform(0.0, 100.0);
    scales[k] = rng.Uniform(0.5, 4.0);  // anisotropy across clusters
  }
  // Power-law cluster sizes: weight ~ 1/(k+1).
  std::vector<double> cum(kClusters);
  double total = 0.0;
  for (size_t k = 0; k < kClusters; ++k) {
    total += 1.0 / static_cast<double>(k + 1);
    cum[k] = total;
  }
  Dataset ds(kDim);
  ds.Reserve(n);
  std::vector<double> p(kDim);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.Uniform() * total;
    size_t k = static_cast<size_t>(
        std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
    k = std::min(k, kClusters - 1);
    // Student-t-flavoured heavy tails: gaussian scaled by inverse-chi draw.
    double tail = 1.0 / std::sqrt(std::max(0.1, std::abs(rng.Gaussian())));
    for (size_t d = 0; d < kDim; ++d) {
      p[d] = centers[k][d] + scales[k] * tail * rng.Gaussian();
    }
    ds.Add(p, static_cast<int>(k));
  }
  return ds;
}

Result<Dataset> SpatialLike(uint64_t seed, size_t n) {
  if (n < 100) return Status::InvalidArgument("SpatialLike needs n >= 100");
  const size_t kDim = 4;
  // Many short road segments: the real North Jutland network is dense, so
  // the 2% percentile (d_c) is a short along-road distance and LSH chops
  // the network into many segment-level buckets.
  const size_t kRoads = 40;
  const size_t kWaypoints = 4;
  Rng rng(seed);
  // Random polylines ("roads") in a 3-d box; 4th dim is a smooth attribute
  // (altitude) along the road.
  struct Road {
    std::vector<std::vector<double>> waypoints;  // kWaypoints x 3
    double altitude0, altitude_slope;
  };
  std::vector<Road> roads(kRoads);
  for (auto& r : roads) {
    r.waypoints.resize(kWaypoints);
    std::vector<double> cur = {rng.Uniform(0, 600), rng.Uniform(0, 600),
                               rng.Uniform(0, 600)};
    for (size_t w = 0; w < kWaypoints; ++w) {
      r.waypoints[w] = cur;
      for (double& c : cur) c += rng.Uniform(-9.0, 9.0);
    }
    r.altitude0 = rng.Uniform(0, 50);
    r.altitude_slope = rng.Uniform(-5, 5);
  }
  Dataset ds(kDim);
  ds.Reserve(n);
  std::vector<double> p(kDim);
  for (size_t i = 0; i < n; ++i) {
    size_t road = i % kRoads;
    const Road& r = roads[road];
    double t = rng.Uniform() * static_cast<double>(kWaypoints - 1);
    size_t seg = std::min(static_cast<size_t>(t), kWaypoints - 2);
    double frac = t - static_cast<double>(seg);
    for (size_t d = 0; d < 3; ++d) {
      double v = (1 - frac) * r.waypoints[seg][d] +
                 frac * r.waypoints[seg + 1][d];
      p[d] = v + 0.7 * rng.Gaussian();  // roadside jitter
    }
    p[3] = r.altitude0 + r.altitude_slope * t + 0.5 * rng.Gaussian();
    ds.Add(p, static_cast<int>(road));
  }
  return ds;
}

Result<Dataset> BigCrossLike(uint64_t seed, size_t n) {
  if (n < 100) return Status::InvalidArgument("BigCrossLike needs n >= 100");
  const size_t kDimA = 3;    // Tower factor
  const size_t kDimB = 54;   // Covertype factor
  // 7 x 7 = 49 product modes: with equal weights ~2% of point pairs are
  // same-mode, so the 2% percentile d_c sits at the within-mode scale and
  // LSH resolves the product structure into ~49 buckets per layout -- the
  // regime that produces the paper's 1.7-6.1x distance savings.
  const size_t kClustersA = 7;
  const size_t kClustersB = 7;
  Rng rng(seed);
  std::vector<std::vector<double>> centers_a(kClustersA), centers_b(kClustersB);
  for (auto& c : centers_a) {
    c.resize(kDimA);
    for (double& x : c) x = rng.Uniform(0.0, 200.0);
  }
  for (auto& c : centers_b) {
    c.resize(kDimB);
    for (double& x : c) x = rng.Uniform(0.0, 120.0);
  }
  Dataset ds(kDimA + kDimB);
  ds.Reserve(n);
  std::vector<double> p(kDimA + kDimB);
  for (size_t i = 0; i < n; ++i) {
    size_t ka = rng.UniformInt(kClustersA);
    size_t kb = rng.UniformInt(kClustersB);
    for (size_t d = 0; d < kDimA; ++d) {
      p[d] = centers_a[ka][d] + 1.2 * rng.Gaussian();
    }
    for (size_t d = 0; d < kDimB; ++d) {
      p[kDimA + d] = centers_b[kb][d] + 1.2 * rng.Gaussian();
    }
    ds.Add(p, static_cast<int>(ka * kClustersB + kb));
  }
  return ds;
}

std::vector<NamedDataset> PerformanceSuite() {
  return {
      {"Facial", 4000, 27936, 300, &FacialLike},
      {"KDD", 8000, 145751, 74, &KddLike},
      {"3Dspatial", 12000, 434874, 4, &SpatialLike},
      {"BigCross500K", 20000, 500000, 57, &BigCrossLike},
  };
}

}  // namespace gen
}  // namespace ddp

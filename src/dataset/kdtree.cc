#include "dataset/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ddp {

Result<KdTree> KdTree::Build(const Dataset& dataset, size_t leaf_size) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  std::vector<const double*> rows(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    rows[i] = dataset.point(static_cast<PointId>(i)).data();
  }
  // The row pointers index into the dataset's contiguous storage, which the
  // caller guarantees outlives the tree; the vector itself is moved into it.
  KdTree tree;
  tree.dim_ = dataset.dim();
  tree.rows_ = std::move(rows);
  return tree.FinishBuild(leaf_size);
}

Result<KdTree> KdTree::BuildFromRows(std::span<const double* const> rows,
                                     size_t dim, size_t leaf_size) {
  if (rows.empty()) return Status::InvalidArgument("empty row set");
  if (dim == 0) return Status::InvalidArgument("dim must be >= 1");
  KdTree tree;
  tree.dim_ = dim;
  tree.rows_.assign(rows.begin(), rows.end());
  return tree.FinishBuild(leaf_size);
}

int32_t KdTree::BuildNode(uint32_t begin, uint32_t end, size_t leaf_size) {
  Node node;
  node.begin = begin;
  node.end = end;
  // Bounding box of the position range.
  node.lo.assign(dim_, std::numeric_limits<double>::infinity());
  node.hi.assign(dim_, -std::numeric_limits<double>::infinity());
  for (uint32_t k = begin; k < end; ++k) {
    std::span<const double> p = row(positions_[k]);
    for (size_t d = 0; d < dim_; ++d) {
      node.lo[d] = std::min(node.lo[d], p[d]);
      node.hi[d] = std::max(node.hi[d], p[d]);
    }
  }
  if (end - begin <= leaf_size) {
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  // Split the widest dimension at the median.
  uint32_t split_dim = 0;
  double widest = -1.0;
  for (size_t d = 0; d < dim_; ++d) {
    double extent = node.hi[d] - node.lo[d];
    if (extent > widest) {
      widest = extent;
      split_dim = static_cast<uint32_t>(d);
    }
  }
  // Degenerate spread (all coordinates equal): keep as a leaf.
  if (widest <= 0.0) {
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(positions_.begin() + begin, positions_.begin() + mid,
                   positions_.begin() + end, [&](PointId a, PointId b) {
                     return row(a)[split_dim] < row(b)[split_dim];
                   });
  int32_t left = BuildNode(begin, mid, leaf_size);
  int32_t right = BuildNode(mid, end, leaf_size);
  node.left = left;
  node.right = right;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

Result<KdTree> KdTree::FinishBuild(size_t leaf_size) {
  if (leaf_size == 0) return Status::InvalidArgument("leaf_size must be >= 1");
  positions_.resize(rows_.size());
  std::iota(positions_.begin(), positions_.end(), 0);
  nodes_.reserve(2 * rows_.size() / leaf_size + 2);
  root_ = BuildNode(0, static_cast<uint32_t>(rows_.size()), leaf_size);
  return std::move(*this);
}

double KdTree::MinSquaredDistanceToBox(std::span<const double> query,
                                       const Node& node) {
  double s = 0.0;
  for (size_t d = 0; d < query.size(); ++d) {
    double v = query[d];
    if (v < node.lo[d]) {
      double diff = node.lo[d] - v;
      s += diff * diff;
    } else if (v > node.hi[d]) {
      double diff = v - node.hi[d];
      s += diff * diff;
    }
  }
  return s;
}

template <typename Visitor>
void KdTree::Visit(std::span<const double> query, double radius_sq,
                   PointId exclude, const CountingMetric& metric,
                   const Visitor& visit) const {
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (MinSquaredDistanceToBox(query, node) >= radius_sq) continue;
    if (node.is_leaf()) {
      for (uint32_t k = node.begin; k < node.end; ++k) {
        PointId position = positions_[k];
        if (position == exclude) continue;
        // Compare in squared space — the LocalDpEngine convention shared by
        // every pairwise-scan code path, so boundary rounding agrees exactly.
        double d_sq = metric.SquaredDistance(query, row(position));
        if (d_sq < radius_sq) visit(position, d_sq);
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

size_t KdTree::CountWithin(std::span<const double> query, double radius,
                           PointId exclude,
                           const CountingMetric& metric) const {
  size_t count = 0;
  Visit(query, radius * radius, exclude, metric,
        [&](PointId, double) { ++count; });
  return count;
}

std::vector<PointId> KdTree::FindWithin(std::span<const double> query,
                                        double radius, PointId exclude,
                                        const CountingMetric& metric) const {
  std::vector<PointId> out;
  Visit(query, radius * radius, exclude, metric,
        [&](PointId position, double) { out.push_back(position); });
  return out;
}

void KdTree::FindWithinSq(std::span<const double> query, double radius_sq,
                          PointId exclude, const CountingMetric& metric,
                          std::vector<std::pair<PointId, double>>* out) const {
  Visit(query, radius_sq, exclude, metric, [&](PointId position, double d_sq) {
    out->push_back({position, d_sq});
  });
}

KdTree::Nearest KdTree::FindNearestAccepted(
    std::span<const double> query, const CountingMetric& metric,
    std::span<const PointId> tie_ids,
    const std::function<bool(PointId)>& accept_fn, Nearest seed) const {
  Nearest best = seed;
  bool improved = false;
  // Depth-first with nearer-child-first ordering; strict pruning
  // (min_box_sq > best_sq) keeps equal-distance boxes alive so the
  // (d^2, tie_id) lexicographic minimum matches a full scan exactly.
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (MinSquaredDistanceToBox(query, node) > best.distance_sq) continue;
    if (node.is_leaf()) {
      for (uint32_t k = node.begin; k < node.end; ++k) {
        PointId position = positions_[k];
        if (!accept_fn(position)) continue;
        double d_sq = metric.SquaredDistance(query, row(position));
        if (d_sq < best.distance_sq ||
            (d_sq == best.distance_sq && tie_ids[position] < best.tie_id)) {
          best.index = position;
          best.distance_sq = d_sq;
          best.tie_id = tie_ids[position];
          improved = true;
        }
      }
      continue;
    }
    // Visit the nearer child first (popped last-in-first-out) to tighten the
    // bound early.
    const Node& left = nodes_[static_cast<size_t>(node.left)];
    const Node& right = nodes_[static_cast<size_t>(node.right)];
    if (MinSquaredDistanceToBox(query, left) <=
        MinSquaredDistanceToBox(query, right)) {
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  if (!improved) best.index = kInvalidPointId;
  return best;
}

}  // namespace ddp

#include "dataset/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ddp {

Result<KdTree> KdTree::Build(const Dataset& dataset, size_t leaf_size) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (leaf_size == 0) return Status::InvalidArgument("leaf_size must be >= 1");
  KdTree tree(&dataset);
  tree.ids_.resize(dataset.size());
  std::iota(tree.ids_.begin(), tree.ids_.end(), 0);
  tree.nodes_.reserve(2 * dataset.size() / leaf_size + 2);
  tree.root_ = tree.BuildNode(0, static_cast<uint32_t>(dataset.size()),
                              leaf_size);
  return tree;
}

int32_t KdTree::BuildNode(uint32_t begin, uint32_t end, size_t leaf_size) {
  const size_t dim = dataset_->dim();
  Node node;
  node.begin = begin;
  node.end = end;
  // Bounding box of the id range.
  node.lo.assign(dim, std::numeric_limits<double>::infinity());
  node.hi.assign(dim, -std::numeric_limits<double>::infinity());
  for (uint32_t k = begin; k < end; ++k) {
    std::span<const double> p = dataset_->point(ids_[k]);
    for (size_t d = 0; d < dim; ++d) {
      node.lo[d] = std::min(node.lo[d], p[d]);
      node.hi[d] = std::max(node.hi[d], p[d]);
    }
  }
  if (end - begin <= leaf_size) {
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  // Split the widest dimension at the median.
  uint32_t split_dim = 0;
  double widest = -1.0;
  for (size_t d = 0; d < dim; ++d) {
    double extent = node.hi[d] - node.lo[d];
    if (extent > widest) {
      widest = extent;
      split_dim = static_cast<uint32_t>(d);
    }
  }
  uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](PointId a, PointId b) {
                     return dataset_->point(a)[split_dim] <
                            dataset_->point(b)[split_dim];
                   });
  // Degenerate spread (all coordinates equal): keep as a leaf.
  if (widest <= 0.0) {
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  node.split_dim = split_dim;
  node.split_value = dataset_->point(ids_[mid])[split_dim];
  int32_t left = BuildNode(begin, mid, leaf_size);
  int32_t right = BuildNode(mid, end, leaf_size);
  node.left = left;
  node.right = right;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

double KdTree::MinSquaredDistanceToBox(std::span<const double> query,
                                       const Node& node) {
  double s = 0.0;
  for (size_t d = 0; d < query.size(); ++d) {
    double v = query[d];
    if (v < node.lo[d]) {
      double diff = node.lo[d] - v;
      s += diff * diff;
    } else if (v > node.hi[d]) {
      double diff = v - node.hi[d];
      s += diff * diff;
    }
  }
  return s;
}

template <typename Visitor>
void KdTree::Visit(std::span<const double> query, double radius,
                   PointId exclude, const CountingMetric& metric,
                   const Visitor& visit) const {
  const double radius_sq = radius * radius;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (MinSquaredDistanceToBox(query, node) >= radius_sq) continue;
    if (node.is_leaf()) {
      for (uint32_t k = node.begin; k < node.end; ++k) {
        PointId id = ids_[k];
        if (id == exclude) continue;
        // Compare in distance space (not squared) so boundary rounding
        // agrees exactly with the pairwise-scan code paths.
        if (metric.Distance(query, dataset_->point(id)) < radius) {
          visit(id);
        }
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

size_t KdTree::CountWithin(std::span<const double> query, double radius,
                           PointId exclude,
                           const CountingMetric& metric) const {
  size_t count = 0;
  Visit(query, radius, exclude, metric, [&](PointId) { ++count; });
  return count;
}

std::vector<PointId> KdTree::FindWithin(std::span<const double> query,
                                        double radius, PointId exclude,
                                        const CountingMetric& metric) const {
  std::vector<PointId> out;
  Visit(query, radius, exclude, metric, [&](PointId id) { out.push_back(id); });
  return out;
}

}  // namespace ddp

#include "dataset/dataset.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace ddp {

Result<Dataset> Dataset::FromValues(size_t dim, std::vector<double> values) {
  if (dim == 0) return Status::InvalidArgument("dimension must be >= 1");
  if (values.size() % dim != 0) {
    return Status::InvalidArgument("value count not a multiple of dimension");
  }
  Dataset ds(dim);
  ds.values_ = std::move(values);
  return ds;
}

PointId Dataset::Add(std::span<const double> coords) {
  DDP_CHECK_EQ(coords.size(), dim_);
  DDP_CHECK(labels_.empty());  // use the labeled overload consistently
  values_.insert(values_.end(), coords.begin(), coords.end());
  return static_cast<PointId>(size() - 1);
}

PointId Dataset::Add(std::span<const double> coords, int label) {
  DDP_CHECK_EQ(coords.size(), dim_);
  DDP_CHECK(labels_.size() == size());  // labeled datasets stay labeled
  values_.insert(values_.end(), coords.begin(), coords.end());
  labels_.push_back(label);
  return static_cast<PointId>(size() - 1);
}

Status Dataset::BoundingBox(std::vector<double>* lo,
                            std::vector<double>* hi) const {
  if (empty()) return Status::InvalidArgument("empty dataset");
  lo->assign(dim_, std::numeric_limits<double>::infinity());
  hi->assign(dim_, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < size(); ++i) {
    std::span<const double> p = point(static_cast<PointId>(i));
    for (size_t d = 0; d < dim_; ++d) {
      (*lo)[d] = std::min((*lo)[d], p[d]);
      (*hi)[d] = std::max((*hi)[d], p[d]);
    }
  }
  return Status::OK();
}

Dataset Dataset::Subset(std::span<const PointId> ids) const {
  Dataset out(dim_);
  out.values_.reserve(ids.size() * dim_);
  if (has_labels()) out.labels_.reserve(ids.size());
  for (PointId id : ids) {
    std::span<const double> p = point(id);
    out.values_.insert(out.values_.end(), p.begin(), p.end());
    if (has_labels()) out.labels_.push_back(labels_[id]);
  }
  return out;
}

}  // namespace ddp

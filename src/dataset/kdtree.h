#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file kdtree.h
/// A k-d tree over a set of point rows for range counting/search and
/// accepted-nearest-neighbor queries — the "recent technology in KNN search"
/// style accelerator the paper's Sec. II-A/III-B mentions for the sequential
/// building blocks. Effective for low to moderate dimensionality (the
/// 3Dspatial regime); for 300-d Facial-style data it degrades to a linear
/// scan, as expected of space-partitioning trees.
///
/// The tree indexes rows by position and splits on the widest dimension at
/// the median; leaves hold up to `leaf_size` points. It can be built over a
/// whole Dataset or over any span of row pointers (e.g. a LocalPointView of
/// shuffled reducer records), which must outlive the tree. Query results are
/// exact; all boundary comparisons happen in squared-distance space, matching
/// the LocalDpEngine convention so tree-accelerated paths agree bit-for-bit
/// with pairwise scans.

namespace ddp {

class KdTree {
 public:
  /// Builds a tree over all points of `dataset`. The dataset must outlive
  /// the tree. `leaf_size` >= 1.
  static Result<KdTree> Build(const Dataset& dataset, size_t leaf_size = 16);

  /// Builds a tree over arbitrary point rows (each `rows[k]` points at `dim`
  /// doubles). The rows must outlive the tree; query results use positions
  /// into `rows`.
  static Result<KdTree> BuildFromRows(std::span<const double* const> rows,
                                      size_t dim, size_t leaf_size = 16);

  /// Number of points with d(query, p) < radius, excluding position
  /// `exclude` (pass kInvalidPointId to count all). This is exactly the rho
  /// kernel. Compares d^2 < radius * radius.
  size_t CountWithin(std::span<const double> query, double radius,
                     PointId exclude, const CountingMetric& metric) const;

  /// Positions with d(query, p) < radius (excluding `exclude`), unsorted.
  std::vector<PointId> FindWithin(std::span<const double> query, double radius,
                                  PointId exclude,
                                  const CountingMetric& metric) const;

  /// Positions and squared distances with d^2 < radius_sq (excluding
  /// `exclude`), appended to `*out` unsorted. The squared-space twin of
  /// FindWithin, used by the gaussian rho kernel so the per-pair distance is
  /// evaluated (and counted) exactly once.
  void FindWithinSq(std::span<const double> query, double radius_sq,
                    PointId exclude, const CountingMetric& metric,
                    std::vector<std::pair<PointId, double>>* out) const;

  /// An accepted-nearest-neighbor result: the minimizing position under the
  /// lexicographic (squared distance, tie_id) order, or index ==
  /// kInvalidPointId when nothing improved on the seed.
  struct Nearest {
    PointId index = kInvalidPointId;
    double distance_sq = std::numeric_limits<double>::infinity();
    /// Tie-break id of the incumbent (a global point id, not a position).
    PointId tie_id = kInvalidPointId;
  };

  /// Finds the accepted point minimizing (d^2, tie_ids[position]) strictly
  /// improving on `seed` (candidates at equal d^2 win only with a smaller
  /// tie id — matching the delta tie-break contract). `tie_ids[k]` is the
  /// global id of the point at position k; `accept` filters candidate
  /// positions (e.g. "denser than the query"). Box pruning is strict
  /// (min_box_sq > best_sq), so equal-distance candidates are always
  /// examined and id ties resolve identically to a full scan.
  Nearest FindNearestAccepted(std::span<const double> query,
                              const CountingMetric& metric,
                              std::span<const PointId> tie_ids,
                              const std::function<bool(PointId)>& accept,
                              Nearest seed) const;
  Nearest FindNearestAccepted(std::span<const double> query,
                              const CountingMetric& metric,
                              std::span<const PointId> tie_ids,
                              const std::function<bool(PointId)>& accept) const {
    return FindNearestAccepted(query, metric, tie_ids, accept, Nearest());
  }

  size_t size() const { return positions_.size(); }

 private:
  struct Node {
    // Internal: children indices. Leaf: [begin, end) range into positions_.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;
    uint32_t end = 0;
    // Bounding box of the subtree, for pruning.
    std::vector<double> lo;
    std::vector<double> hi;

    bool is_leaf() const { return left < 0; }
  };

  KdTree() = default;

  Result<KdTree> FinishBuild(size_t leaf_size);

  int32_t BuildNode(uint32_t begin, uint32_t end, size_t leaf_size);

  std::span<const double> row(PointId position) const {
    return {rows_[position], dim_};
  }

  // Minimum squared distance from query to the node's bounding box.
  static double MinSquaredDistanceToBox(std::span<const double> query,
                                        const Node& node);

  template <typename Visitor>
  void Visit(std::span<const double> query, double radius_sq, PointId exclude,
             const CountingMetric& metric, const Visitor& visit) const;

  size_t dim_ = 0;
  std::vector<const double*> rows_;  // borrowed row pointers, position-indexed
  std::vector<PointId> positions_;   // permuted positions; leaves own subranges
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace ddp


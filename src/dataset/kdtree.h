#ifndef DDP_DATASET_KDTREE_H_
#define DDP_DATASET_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file kdtree.h
/// A k-d tree over a Dataset for range counting/search — the "recent
/// technology in KNN search" style accelerator the paper's Sec. II-A/III-B
/// mentions for the sequential building blocks. Effective for low to
/// moderate dimensionality (the 3Dspatial regime); for 300-d Facial-style
/// data it degrades to a linear scan, as expected of space-partitioning
/// trees.
///
/// The tree stores point ids and splits on the widest dimension at the
/// median; leaves hold up to `leaf_size` points. Query results are exact.

namespace ddp {

class KdTree {
 public:
  /// Builds a tree over all points of `dataset`. The dataset must outlive
  /// the tree. `leaf_size` >= 1.
  static Result<KdTree> Build(const Dataset& dataset, size_t leaf_size = 16);

  /// Number of points with d(query, p) < radius, excluding `exclude`
  /// (pass kInvalidPointId to count all). This is exactly the rho kernel.
  size_t CountWithin(std::span<const double> query, double radius,
                     PointId exclude, const CountingMetric& metric) const;

  /// Ids with d(query, p) < radius (excluding `exclude`), unsorted.
  std::vector<PointId> FindWithin(std::span<const double> query, double radius,
                                  PointId exclude,
                                  const CountingMetric& metric) const;

  size_t size() const { return ids_.size(); }

 private:
  struct Node {
    // Internal: split dimension + threshold; children indices.
    // Leaf: [begin, end) range into ids_.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t split_dim = 0;
    double split_value = 0.0;
    // Bounding box of the subtree, for pruning.
    std::vector<double> lo;
    std::vector<double> hi;

    bool is_leaf() const { return left < 0; }
  };

  explicit KdTree(const Dataset* dataset) : dataset_(dataset) {}

  int32_t BuildNode(uint32_t begin, uint32_t end, size_t leaf_size);

  // Minimum squared distance from query to the node's bounding box.
  static double MinSquaredDistanceToBox(std::span<const double> query,
                                        const Node& node);

  template <typename Visitor>
  void Visit(std::span<const double> query, double radius, PointId exclude,
             const CountingMetric& metric, const Visitor& visit) const;

  const Dataset* dataset_;
  std::vector<PointId> ids_;   // permuted point ids; leaves own subranges
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace ddp

#endif  // DDP_DATASET_KDTREE_H_

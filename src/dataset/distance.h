#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>

/// \file distance.h
/// Euclidean distance plus the process-wide evaluation counter that backs the
/// paper's "# distance measurements" cost axis (Fig. 10(c), Table IV).
///
/// All algorithm code computes distances through `CountingMetric` so that the
/// benchmark harness can report exact evaluation counts. The counter is a
/// relaxed atomic accumulated per call; for tight local loops algorithms may
/// batch-add via `CountingMetric::AddEvaluations`.

namespace ddp {

/// Squared Euclidean distance (no counting).
inline double SquaredEuclidean(std::span<const double> a,
                               std::span<const double> b) {
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

/// Euclidean distance (no counting).
inline double Euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

/// Counter shared by all jobs of one algorithm run.
class DistanceCounter {
 public:
  void Add(uint64_t n = 1) { count_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Euclidean metric that reports every evaluation to a DistanceCounter.
/// The counter must outlive the metric; a null counter disables counting.
class CountingMetric {
 public:
  explicit CountingMetric(DistanceCounter* counter = nullptr)
      : counter_(counter) {}

  double Distance(std::span<const double> a, std::span<const double> b) const {
    if (counter_ != nullptr) counter_->Add();
    return Euclidean(a, b);
  }

  double SquaredDistance(std::span<const double> a,
                         std::span<const double> b) const {
    if (counter_ != nullptr) counter_->Add();
    return SquaredEuclidean(a, b);
  }

  /// Records `n` evaluations done outside Distance() (batched inner loops).
  void AddEvaluations(uint64_t n) const {
    if (counter_ != nullptr) counter_->Add(n);
  }

  DistanceCounter* counter() const { return counter_; }

 private:
  DistanceCounter* counter_;
};

}  // namespace ddp


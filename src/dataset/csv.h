#pragma once

#include <string>

#include "common/result.h"
#include "dataset/dataset.h"

/// \file csv.h
/// Plain-text point IO. Each line is one point: numeric coordinates separated
/// by commas, spaces, or tabs. Blank lines and lines starting with '#' are
/// skipped.

namespace ddp {

struct CsvOptions {
  /// If true, the last column of every row is an integer ground-truth label.
  bool last_column_is_label = false;
};

/// Parses `text` into a Dataset. All rows must have the same width.
Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Reads and parses a file.
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {});

/// Writes a dataset (labels appended as a last column when present).
Status WriteCsvFile(const std::string& path, const Dataset& dataset);

}  // namespace ddp


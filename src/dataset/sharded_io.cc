#include "dataset/sharded_io.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/serde.h"

namespace ddp {

namespace fs = std::filesystem;

namespace {

// Chains `*crc` over the raw bytes of `path`, counting them into `*bytes`.
Status ChainFileCrc32(const std::string& path, uint32_t* crc,
                      uint64_t* bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for digest");
  }
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    *crc = Crc32(buf, n, *crc);
    *bytes += n;
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read failed digesting " + path);
  return Status::OK();
}

std::string FormatDigest(uint32_t crc, uint64_t bytes) {
  char out[64];
  std::snprintf(out, sizeof(out), "crc32:%08x.%llu", crc,
                static_cast<unsigned long long>(bytes));
  return out;
}

}  // namespace

Result<ShardedDatasetReader> ShardedDatasetReader::Open(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("sharded dataset has no shards");
  }
  ShardedDatasetReader reader;
  for (const std::string& path : paths) {
    DDP_ASSIGN_OR_RETURN(BinaryFileInfo info, PeekBinaryFileInfo(path));
    if (reader.shards_.empty()) {
      reader.dim_ = static_cast<size_t>(info.dim);
      reader.has_labels_ = info.has_labels;
    } else if (info.dim != reader.dim_) {
      return Status::InvalidArgument(
          path + ": shard dimension " + std::to_string(info.dim) +
          " does not match " + paths.front() + " (dim " +
          std::to_string(reader.dim_) + ")");
    } else if (info.has_labels != reader.has_labels_) {
      return Status::InvalidArgument(
          path + ": shard is " + (info.has_labels ? "labeled" : "unlabeled") +
          " but " + paths.front() + " is " +
          (reader.has_labels_ ? "labeled" : "unlabeled"));
    }
    reader.shards_.push_back(
        Shard{path, info.num_points, reader.total_points_});
    reader.total_points_ += info.num_points;
  }
  return reader;
}

Result<ShardedDatasetReader> ShardedDatasetReader::OpenDirectory(
    const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() == ".ddpb") {
      paths.push_back(entry.path().string());
    }
  }
  if (paths.empty()) {
    return Status::InvalidArgument("no .ddpb shards in " + dir);
  }
  std::sort(paths.begin(), paths.end());
  return Open(paths);
}

Result<Dataset> ShardedDatasetReader::ReadShard(size_t i) const {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  DDP_ASSIGN_OR_RETURN(Dataset ds, ReadBinaryFile(shards_[i].path));
  if (ds.size() != shards_[i].num_points) {
    return Status::IoError(shards_[i].path +
                           ": header/content point count mismatch");
  }
  return ds;
}

Status ShardedDatasetReader::ForEachShard(
    const std::function<Status(const Dataset&, uint64_t)>& fn) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    DDP_ASSIGN_OR_RETURN(Dataset ds, ReadShard(i));
    DDP_RETURN_NOT_OK(fn(ds, shards_[i].base_id));
  }
  return Status::OK();
}

Result<Dataset> ShardedDatasetReader::ReadAll() const {
  Dataset all(dim_);
  all.Reserve(static_cast<size_t>(total_points_));
  std::vector<int> labels;
  if (has_labels_) labels.reserve(static_cast<size_t>(total_points_));
  Status st = ForEachShard([&](const Dataset& shard, uint64_t) -> Status {
    for (PointId i = 0; i < shard.size(); ++i) {
      all.Add(shard.point(i));
      if (has_labels_) labels.push_back(shard.label(i));
    }
    return Status::OK();
  });
  DDP_RETURN_NOT_OK(st);
  if (has_labels_) all.set_labels(std::move(labels));
  return all;
}

ShardedDatasetWriter::ShardedDatasetWriter(std::string prefix, size_t dim,
                                           bool labeled,
                                           uint64_t points_per_shard)
    : prefix_(std::move(prefix)),
      dim_(dim),
      labeled_(labeled),
      points_per_shard_(points_per_shard == 0 ? 1 : points_per_shard),
      pending_(dim) {}

Status ShardedDatasetWriter::Add(std::span<const double> coords, int label) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  if (coords.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (labeled_) {
    pending_.Add(coords, label);
  } else {
    pending_.Add(coords);
  }
  if (pending_.size() >= points_per_shard_) return FlushShard();
  return Status::OK();
}

Status ShardedDatasetWriter::FlushShard() {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "-%05zu.ddpb", shard_index_);
  std::string path = prefix_ + suffix;
  DDP_RETURN_NOT_OK(WriteBinaryFile(path, pending_));
  paths_.push_back(std::move(path));
  ++shard_index_;
  pending_ = Dataset(dim_);
  return Status::OK();
}

Result<std::vector<std::string>> ShardedDatasetWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  finished_ = true;
  if (!pending_.empty() || paths_.empty()) {
    DDP_RETURN_NOT_OK(FlushShard());
  }
  return std::move(paths_);
}

Result<std::string> ShardedDatasetReader::ContentDigest() const {
  uint32_t crc = 0;
  uint64_t bytes = 0;
  for (const Shard& shard : shards_) {
    DDP_RETURN_NOT_OK(ChainFileCrc32(shard.path, &crc, &bytes));
  }
  return FormatDigest(crc, bytes);
}

Result<std::string> DatasetContentDigest(const std::string& path) {
  if (fs::is_directory(path)) {
    DDP_ASSIGN_OR_RETURN(ShardedDatasetReader reader,
                         ShardedDatasetReader::OpenDirectory(path));
    return reader.ContentDigest();
  }
  uint32_t crc = 0;
  uint64_t bytes = 0;
  DDP_RETURN_NOT_OK(ChainFileCrc32(path, &crc, &bytes));
  return FormatDigest(crc, bytes);
}

Result<std::vector<std::string>> WriteShardedDataset(
    const std::string& prefix, const Dataset& dataset,
    uint64_t points_per_shard) {
  ShardedDatasetWriter writer(prefix, dataset.dim(), dataset.has_labels(),
                              points_per_shard);
  for (PointId i = 0; i < dataset.size(); ++i) {
    DDP_RETURN_NOT_OK(writer.Add(dataset.point(i), dataset.label(i)));
  }
  return writer.Finish();
}

}  // namespace ddp

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file dataset.h
/// In-memory point collection. Points are dense row-major doubles; a point is
/// addressed by its index (the "point id" of the paper). An optional integer
/// label per point carries ground-truth cluster assignments for quality
/// evaluation; label -1 means "unlabeled / noise".

namespace ddp {

/// Point id type used throughout the library (Table I: `i`, `j`).
using PointId = uint32_t;

/// Sentinel for "no point" (e.g. the absolute density peak has no upslope).
inline constexpr PointId kInvalidPointId = static_cast<PointId>(-1);

class Dataset {
 public:
  /// Creates an empty dataset of the given dimensionality (must be >= 1).
  explicit Dataset(size_t dim) : dim_(dim) {}

  /// Creates a dataset adopting `values` (size must be a multiple of dim).
  static Result<Dataset> FromValues(size_t dim, std::vector<double> values);

  size_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : values_.size() / dim_; }
  bool empty() const { return values_.empty(); }

  /// Coordinates of point `i`.
  std::span<const double> point(PointId i) const {
    return {values_.data() + static_cast<size_t>(i) * dim_, dim_};
  }

  std::span<double> mutable_point(PointId i) {
    return {values_.data() + static_cast<size_t>(i) * dim_, dim_};
  }

  /// Appends a point; returns its id. `coords.size()` must equal dim().
  PointId Add(std::span<const double> coords);

  /// Appends a point with a ground-truth label.
  PointId Add(std::span<const double> coords, int label);

  void Reserve(size_t n) {
    values_.reserve(n * dim_);
    if (!labels_.empty()) labels_.reserve(n);
  }

  /// Ground-truth labels; empty when the dataset is unlabeled.
  bool has_labels() const { return !labels_.empty(); }
  const std::vector<int>& labels() const { return labels_; }
  int label(PointId i) const { return labels_.empty() ? -1 : labels_[i]; }
  void set_labels(std::vector<int> labels) { labels_ = std::move(labels); }

  /// Raw row-major storage (size() * dim() doubles).
  const std::vector<double>& values() const { return values_; }

  /// Per-coordinate bounding box; both vectors have dim() entries.
  /// Returns InvalidArgument for an empty dataset.
  Status BoundingBox(std::vector<double>* lo, std::vector<double>* hi) const;

  /// A dataset restricted to the given point ids (labels carried over).
  Dataset Subset(std::span<const PointId> ids) const;

 private:
  size_t dim_;
  std::vector<double> values_;
  std::vector<int> labels_;
};

}  // namespace ddp


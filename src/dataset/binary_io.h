#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "dataset/dataset.h"

/// \file binary_io.h
/// Compact binary dataset format for large point sets where CSV parsing
/// dominates load time. Layout (little endian):
///
///   magic   "DDPB" (4 bytes)
///   version u32 varint (1 or 2)
///   dim     u64 varint
///   n       u64 varint
///   labeled u8 (0 / 1)
///   values  n * dim raw doubles
///   labels  n zig-zag varints (present iff labeled)
///   crc32   u32 little endian over all preceding bytes (version >= 2)
///
/// Writers emit version 2; readers accept both, verifying the CRC trailer
/// when present so on-disk corruption fails loudly instead of producing a
/// silently wrong clustering input.

namespace ddp {

/// Header fields of a DDPB file, readable without loading the point data.
/// This is what sharded readers use to validate shard consistency.
struct BinaryFileInfo {
  uint32_t version = 0;
  uint64_t dim = 0;
  uint64_t num_points = 0;
  bool has_labels = false;
};

/// Serializes a dataset into the binary format (version 2, CRC-trailed).
std::string SerializeDataset(const Dataset& dataset);

/// Parses the binary format; validates magic, version, sizes, and (v2) the
/// CRC32 trailer.
Result<Dataset> DeserializeDataset(const std::string& bytes);

Status WriteBinaryFile(const std::string& path, const Dataset& dataset);
Result<Dataset> ReadBinaryFile(const std::string& path);

/// Reads just the DDPB header of `path` — a few dozen bytes, never the
/// points — so shard metadata scans stay O(files), not O(data).
Result<BinaryFileInfo> PeekBinaryFileInfo(const std::string& path);

}  // namespace ddp


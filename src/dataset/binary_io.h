#ifndef DDP_DATASET_BINARY_IO_H_
#define DDP_DATASET_BINARY_IO_H_

#include <string>

#include "common/result.h"
#include "dataset/dataset.h"

/// \file binary_io.h
/// Compact binary dataset format for large point sets where CSV parsing
/// dominates load time. Layout (little endian):
///
///   magic   "DDPB" (4 bytes)
///   version u32 varint (currently 1)
///   dim     u64 varint
///   n       u64 varint
///   labeled u8 (0 / 1)
///   values  n * dim raw doubles
///   labels  n zig-zag varints (present iff labeled)

namespace ddp {

/// Serializes a dataset into the binary format.
std::string SerializeDataset(const Dataset& dataset);

/// Parses the binary format; validates magic, version, and sizes.
Result<Dataset> DeserializeDataset(const std::string& bytes);

Status WriteBinaryFile(const std::string& path, const Dataset& dataset);
Result<Dataset> ReadBinaryFile(const std::string& path);

}  // namespace ddp

#endif  // DDP_DATASET_BINARY_IO_H_

#include "dataset/distance.h"

// distance.h is header-only; this translation unit exists so the build
// verifies the header is self-contained.

namespace ddp {}  // namespace ddp

#include "eval/contingency.h"

#include <unordered_map>

namespace ddp {
namespace eval {

namespace {

// Densifies labels to 0..k-1; each distinct negative-labeled point becomes
// its own singleton cluster.
std::vector<size_t> Densify(std::span<const int> labels, size_t* num_out) {
  std::unordered_map<int, size_t> ids;
  std::vector<size_t> out(labels.size());
  size_t next = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      out[i] = next++;  // singleton
      continue;
    }
    auto [it, inserted] = ids.try_emplace(labels[i], next);
    if (inserted) ++next;
    out[i] = it->second;
  }
  *num_out = next;
  return out;
}

double Choose2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

Result<ContingencyTable> ContingencyTable::Build(std::span<const int> predicted,
                                                 std::span<const int> truth) {
  if (predicted.size() != truth.size()) {
    return Status::InvalidArgument("label vectors differ in length");
  }
  if (predicted.empty()) return Status::InvalidArgument("empty labelings");
  ContingencyTable table;
  table.n_ = predicted.size();
  size_t num_pred = 0, num_truth = 0;
  std::vector<size_t> p = Densify(predicted, &num_pred);
  std::vector<size_t> t = Densify(truth, &num_truth);
  table.cells_.assign(num_pred * num_truth, 0);
  table.row_sums_.assign(num_pred, 0);
  table.col_sums_.assign(num_truth, 0);
  for (size_t i = 0; i < predicted.size(); ++i) {
    ++table.cells_[p[i] * num_truth + t[i]];
    ++table.row_sums_[p[i]];
    ++table.col_sums_[t[i]];
  }
  return table;
}

double ContingencyTable::SumCellsChoose2() const {
  double s = 0.0;
  for (uint64_t c : cells_) s += Choose2(static_cast<double>(c));
  return s;
}

double ContingencyTable::SumRowsChoose2() const {
  double s = 0.0;
  for (uint64_t c : row_sums_) s += Choose2(static_cast<double>(c));
  return s;
}

double ContingencyTable::SumColsChoose2() const {
  double s = 0.0;
  for (uint64_t c : col_sums_) s += Choose2(static_cast<double>(c));
  return s;
}

}  // namespace eval
}  // namespace ddp

#pragma once

#include <cstdint>
#include <span>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file internal_metrics.h
/// Internal clustering quality metrics — no ground truth required. Used by
/// the CLI and examples to judge clusterings of unlabeled data. Points with
/// assignment < 0 (noise/halo) are excluded from all three metrics.

namespace ddp {
namespace eval {

/// Sum of squared distances from each point to its cluster centroid
/// (K-means' objective; lower is better).
Result<double> SumSquaredError(const Dataset& dataset,
                               std::span<const int> assignment);

struct SilhouetteOptions {
  /// Evaluate at most this many points (uniformly sampled); 0 = all points.
  /// Each evaluated point still measures distances to every other point,
  /// so the cost is O(sample * N).
  size_t sample = 0;
  uint64_t seed = 13;
};

/// Mean silhouette coefficient in [-1, 1] (higher is better). Requires at
/// least 2 non-noise clusters.
Result<double> MeanSilhouette(const Dataset& dataset,
                              std::span<const int> assignment,
                              const CountingMetric& metric,
                              const SilhouetteOptions& options = {});

/// Davies-Bouldin index (lower is better). Requires at least 2 non-noise
/// clusters; clusters with a single member get scatter 0.
Result<double> DaviesBouldin(const Dataset& dataset,
                             std::span<const int> assignment,
                             const CountingMetric& metric);

}  // namespace eval
}  // namespace ddp


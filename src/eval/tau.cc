#include "eval/tau.h"

#include <cmath>
#include <cstdlib>

namespace ddp {
namespace eval {

namespace {
Status CheckSizes(std::span<const uint32_t> approx,
                  std::span<const uint32_t> exact) {
  if (approx.size() != exact.size()) {
    return Status::InvalidArgument("size mismatch");
  }
  if (approx.empty()) return Status::InvalidArgument("empty input");
  return Status::OK();
}
}  // namespace

Result<double> Tau1(std::span<const uint32_t> approx,
                    std::span<const uint32_t> exact) {
  DDP_RETURN_NOT_OK(CheckSizes(approx, exact));
  size_t correct = 0;
  for (size_t i = 0; i < approx.size(); ++i) {
    if (approx[i] == exact[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(approx.size());
}

Result<double> Tau2(std::span<const uint32_t> approx,
                    std::span<const uint32_t> exact) {
  DDP_RETURN_NOT_OK(CheckSizes(approx, exact));
  double error = 0.0;
  for (size_t i = 0; i < approx.size(); ++i) {
    double diff = std::abs(static_cast<double>(approx[i]) -
                           static_cast<double>(exact[i]));
    if (exact[i] > 0) {
      error += diff / static_cast<double>(exact[i]);
    } else if (approx[i] != 0) {
      error += 1.0;
    }
  }
  return 1.0 - error / static_cast<double>(approx.size());
}

}  // namespace eval
}  // namespace ddp

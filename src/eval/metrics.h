#pragma once

#include <span>

#include "common/result.h"

/// \file metrics.h
/// External clustering quality metrics used to compare algorithms against
/// ground truth (Fig. 8) and approximate runs against exact runs.

namespace ddp {
namespace eval {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random.
Result<double> AdjustedRandIndex(std::span<const int> predicted,
                                 std::span<const int> truth);

/// Normalized Mutual Information in [0, 1] (arithmetic-mean normalization).
Result<double> NormalizedMutualInformation(std::span<const int> predicted,
                                           std::span<const int> truth);

/// Purity in (0, 1]: each predicted cluster votes for its dominant truth
/// class.
Result<double> Purity(std::span<const int> predicted,
                      std::span<const int> truth);

/// Plain (unadjusted) Rand Index in [0, 1].
Result<double> RandIndex(std::span<const int> predicted,
                         std::span<const int> truth);

/// Pair-counting precision/recall/F1: a "positive" is a point pair placed in
/// the same predicted cluster; it is correct when the pair shares a truth
/// cluster.
struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
Result<PairwiseScores> PairwiseF1(std::span<const int> predicted,
                                  std::span<const int> truth);

}  // namespace eval
}  // namespace ddp


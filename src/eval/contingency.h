#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"

/// \file contingency.h
/// Contingency table between two flat labelings, the shared substrate of the
/// external clustering quality metrics (ARI, NMI, purity). Negative labels
/// (noise / unassigned) are treated as singleton clusters so that metrics
/// penalize unassigned points rather than silently dropping them.

namespace ddp {
namespace eval {

class ContingencyTable {
 public:
  /// Builds the table from predicted and truth labels of equal length.
  static Result<ContingencyTable> Build(std::span<const int> predicted,
                                        std::span<const int> truth);

  size_t n() const { return n_; }
  size_t num_predicted() const { return row_sums_.size(); }
  size_t num_truth() const { return col_sums_.size(); }

  uint64_t cell(size_t row, size_t col) const {
    return cells_[row * col_sums_.size() + col];
  }
  const std::vector<uint64_t>& row_sums() const { return row_sums_; }
  const std::vector<uint64_t>& col_sums() const { return col_sums_; }

  /// Sum over cells of C(n_ij, 2), and the analogous row/column sums —
  /// the ingredients of the pair-counting metrics.
  double SumCellsChoose2() const;
  double SumRowsChoose2() const;
  double SumColsChoose2() const;

 private:
  size_t n_ = 0;
  std::vector<uint64_t> cells_;     // num_predicted x num_truth
  std::vector<uint64_t> row_sums_;  // per predicted cluster
  std::vector<uint64_t> col_sums_;  // per truth cluster
};

}  // namespace eval
}  // namespace ddp


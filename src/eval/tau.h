#pragma once

#include <cstdint>
#include <span>

#include "common/result.h"

/// \file tau.h
/// The paper's approximation-accuracy metrics (Sec. VI-C):
///   tau1 = |{i : rho_hat_i == rho_i}| / N        (fraction exactly right)
///   tau2 = 1 - (1/N) sum_i |rho_hat_i - rho_i| / rho_i
/// tau2 is 1 minus the mean normalized absolute error; points with rho_i = 0
/// contribute error 0 when rho_hat_i is also 0 and 1 otherwise.

namespace ddp {
namespace eval {

Result<double> Tau1(std::span<const uint32_t> approx,
                    std::span<const uint32_t> exact);

Result<double> Tau2(std::span<const uint32_t> approx,
                    std::span<const uint32_t> exact);

}  // namespace eval
}  // namespace ddp


#include "eval/internal_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace ddp {
namespace eval {

namespace {

// Densifies non-negative labels to 0..k-1; returns k. Negative labels map
// to -1 (excluded).
std::vector<int> DensifyAssignment(std::span<const int> assignment,
                                   size_t* num_clusters) {
  std::unordered_map<int, int> ids;
  std::vector<int> out(assignment.size(), -1);
  int next = 0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0) continue;
    auto [it, inserted] = ids.try_emplace(assignment[i], next);
    if (inserted) ++next;
    out[i] = it->second;
  }
  *num_clusters = static_cast<size_t>(next);
  return out;
}

Status CheckSizes(const Dataset& dataset, std::span<const int> assignment) {
  if (assignment.size() != dataset.size()) {
    return Status::InvalidArgument("assignment/dataset size mismatch");
  }
  if (assignment.empty()) return Status::InvalidArgument("empty input");
  return Status::OK();
}

// Per-cluster centroids and sizes over non-noise points.
void Centroids(const Dataset& dataset, std::span<const int> labels, size_t k,
               std::vector<std::vector<double>>* centroids,
               std::vector<size_t>* sizes) {
  centroids->assign(k, std::vector<double>(dataset.dim(), 0.0));
  sizes->assign(k, 0);
  for (size_t i = 0; i < dataset.size(); ++i) {
    int c = labels[i];
    if (c < 0) continue;
    std::span<const double> p = dataset.point(static_cast<PointId>(i));
    size_t cu = static_cast<size_t>(c);
    for (size_t d = 0; d < dataset.dim(); ++d) (*centroids)[cu][d] += p[d];
    ++(*sizes)[cu];
  }
  for (size_t c = 0; c < k; ++c) {
    if ((*sizes)[c] == 0) continue;
    for (double& v : (*centroids)[c]) v /= static_cast<double>((*sizes)[c]);
  }
}

}  // namespace

Result<double> SumSquaredError(const Dataset& dataset,
                               std::span<const int> assignment) {
  DDP_RETURN_NOT_OK(CheckSizes(dataset, assignment));
  size_t k = 0;
  std::vector<int> labels = DensifyAssignment(assignment, &k);
  if (k == 0) return Status::InvalidArgument("no assigned points");
  std::vector<std::vector<double>> centroids;
  std::vector<size_t> sizes;
  Centroids(dataset, labels, k, &centroids, &sizes);
  double sse = 0.0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    int c = labels[i];
    if (c < 0) continue;
    sse += SquaredEuclidean(dataset.point(static_cast<PointId>(i)),
                            centroids[static_cast<size_t>(c)]);
  }
  return sse;
}

Result<double> MeanSilhouette(const Dataset& dataset,
                              std::span<const int> assignment,
                              const CountingMetric& metric,
                              const SilhouetteOptions& options) {
  DDP_RETURN_NOT_OK(CheckSizes(dataset, assignment));
  size_t k = 0;
  std::vector<int> labels = DensifyAssignment(assignment, &k);
  if (k < 2) return Status::InvalidArgument("need at least 2 clusters");
  std::vector<size_t> sizes(k, 0);
  for (int c : labels) {
    if (c >= 0) ++sizes[static_cast<size_t>(c)];
  }

  // Points to evaluate.
  std::vector<PointId> eval_points;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) eval_points.push_back(static_cast<PointId>(i));
  }
  if (options.sample > 0 && options.sample < eval_points.size()) {
    Rng rng(options.seed);
    std::vector<size_t> pick =
        SampleWithoutReplacement(eval_points.size(), options.sample, &rng);
    std::vector<PointId> sampled;
    sampled.reserve(pick.size());
    for (size_t idx : pick) sampled.push_back(eval_points[idx]);
    eval_points = std::move(sampled);
  }

  double total = 0.0;
  size_t counted = 0;
  std::vector<double> sum_to_cluster(k);
  for (PointId i : eval_points) {
    int ci = labels[i];
    if (sizes[static_cast<size_t>(ci)] < 2) continue;  // a(i) undefined
    std::fill(sum_to_cluster.begin(), sum_to_cluster.end(), 0.0);
    for (size_t j = 0; j < dataset.size(); ++j) {
      int cj = labels[j];
      if (cj < 0 || static_cast<PointId>(j) == i) continue;
      sum_to_cluster[static_cast<size_t>(cj)] +=
          metric.Distance(dataset.point(i), dataset.point(static_cast<PointId>(j)));
    }
    double a = sum_to_cluster[static_cast<size_t>(ci)] /
               static_cast<double>(sizes[static_cast<size_t>(ci)] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (static_cast<int>(c) == ci || sizes[c] == 0) continue;
      b = std::min(b, sum_to_cluster[c] / static_cast<double>(sizes[c]));
    }
    if (!std::isfinite(b)) continue;
    double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  if (counted == 0) {
    return Status::InvalidArgument("no points with a defined silhouette");
  }
  return total / static_cast<double>(counted);
}

Result<double> DaviesBouldin(const Dataset& dataset,
                             std::span<const int> assignment,
                             const CountingMetric& metric) {
  DDP_RETURN_NOT_OK(CheckSizes(dataset, assignment));
  size_t k = 0;
  std::vector<int> labels = DensifyAssignment(assignment, &k);
  if (k < 2) return Status::InvalidArgument("need at least 2 clusters");
  std::vector<std::vector<double>> centroids;
  std::vector<size_t> sizes;
  Centroids(dataset, labels, k, &centroids, &sizes);
  // Scatter: mean distance to centroid.
  std::vector<double> scatter(k, 0.0);
  for (size_t i = 0; i < dataset.size(); ++i) {
    int c = labels[i];
    if (c < 0) continue;
    scatter[static_cast<size_t>(c)] += metric.Distance(
        dataset.point(static_cast<PointId>(i)), centroids[static_cast<size_t>(c)]);
  }
  for (size_t c = 0; c < k; ++c) {
    if (sizes[c] > 0) scatter[c] /= static_cast<double>(sizes[c]);
  }
  double db = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < k; ++i) {
    if (sizes[i] == 0) continue;
    double worst = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (i == j || sizes[j] == 0) continue;
      double separation = metric.Distance(centroids[i], centroids[j]);
      if (separation <= 0.0) {
        worst = std::numeric_limits<double>::infinity();
        continue;
      }
      worst = std::max(worst, (scatter[i] + scatter[j]) / separation);
    }
    db += worst;
    ++counted;
  }
  if (counted == 0) return Status::InvalidArgument("no non-empty clusters");
  return db / static_cast<double>(counted);
}

}  // namespace eval
}  // namespace ddp

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "eval/contingency.h"

namespace ddp {
namespace eval {

Result<double> AdjustedRandIndex(std::span<const int> predicted,
                                 std::span<const int> truth) {
  DDP_ASSIGN_OR_RETURN(ContingencyTable table,
                       ContingencyTable::Build(predicted, truth));
  double index = table.SumCellsChoose2();
  double sum_rows = table.SumRowsChoose2();
  double sum_cols = table.SumColsChoose2();
  double total = static_cast<double>(table.n()) *
                 (static_cast<double>(table.n()) - 1.0) / 2.0;
  if (total == 0.0) return 1.0;
  double expected = sum_rows * sum_cols / total;
  double max_index = 0.5 * (sum_rows + sum_cols);
  double denom = max_index - expected;
  if (denom == 0.0) return 1.0;  // both partitions are all-singletons/all-one
  return (index - expected) / denom;
}

Result<double> NormalizedMutualInformation(std::span<const int> predicted,
                                           std::span<const int> truth) {
  DDP_ASSIGN_OR_RETURN(ContingencyTable table,
                       ContingencyTable::Build(predicted, truth));
  const double n = static_cast<double>(table.n());
  double mi = 0.0, h_pred = 0.0, h_truth = 0.0;
  for (size_t r = 0; r < table.num_predicted(); ++r) {
    double pr = static_cast<double>(table.row_sums()[r]) / n;
    if (pr > 0.0) h_pred -= pr * std::log(pr);
  }
  for (size_t c = 0; c < table.num_truth(); ++c) {
    double pc = static_cast<double>(table.col_sums()[c]) / n;
    if (pc > 0.0) h_truth -= pc * std::log(pc);
  }
  for (size_t r = 0; r < table.num_predicted(); ++r) {
    for (size_t c = 0; c < table.num_truth(); ++c) {
      double nij = static_cast<double>(table.cell(r, c));
      if (nij == 0.0) continue;
      double pij = nij / n;
      double pr = static_cast<double>(table.row_sums()[r]) / n;
      double pc = static_cast<double>(table.col_sums()[c]) / n;
      mi += pij * std::log(pij / (pr * pc));
    }
  }
  double norm = 0.5 * (h_pred + h_truth);
  if (norm == 0.0) return 1.0;  // both partitions trivial
  return std::clamp(mi / norm, 0.0, 1.0);
}

Result<double> Purity(std::span<const int> predicted,
                      std::span<const int> truth) {
  DDP_ASSIGN_OR_RETURN(ContingencyTable table,
                       ContingencyTable::Build(predicted, truth));
  double correct = 0.0;
  for (size_t r = 0; r < table.num_predicted(); ++r) {
    uint64_t best = 0;
    for (size_t c = 0; c < table.num_truth(); ++c) {
      best = std::max(best, table.cell(r, c));
    }
    correct += static_cast<double>(best);
  }
  return correct / static_cast<double>(table.n());
}

Result<double> RandIndex(std::span<const int> predicted,
                         std::span<const int> truth) {
  DDP_ASSIGN_OR_RETURN(ContingencyTable table,
                       ContingencyTable::Build(predicted, truth));
  double total = static_cast<double>(table.n()) *
                 (static_cast<double>(table.n()) - 1.0) / 2.0;
  if (total == 0.0) return 1.0;
  double a = table.SumCellsChoose2();  // same-same pairs
  double b = total - table.SumRowsChoose2() - table.SumColsChoose2() + a;
  return (a + b) / total;
}

Result<PairwiseScores> PairwiseF1(std::span<const int> predicted,
                                  std::span<const int> truth) {
  DDP_ASSIGN_OR_RETURN(ContingencyTable table,
                       ContingencyTable::Build(predicted, truth));
  double tp = table.SumCellsChoose2();
  double predicted_pairs = table.SumRowsChoose2();
  double truth_pairs = table.SumColsChoose2();
  PairwiseScores scores;
  scores.precision = predicted_pairs > 0.0 ? tp / predicted_pairs : 1.0;
  scores.recall = truth_pairs > 0.0 ? tp / truth_pairs : 1.0;
  scores.f1 = (scores.precision + scores.recall) > 0.0
                  ? 2.0 * scores.precision * scores.recall /
                        (scores.precision + scores.recall)
                  : 0.0;
  return scores;
}

}  // namespace eval
}  // namespace ddp

#include "ddp/lsh_ddp.h"

#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "core/local_dp.h"
#include "ddp/records.h"
#include "lsh/partitioner.h"

namespace ddp {

namespace {

/// MapReduce key of one LSH bucket: (layout index m, bucket signature).
using BucketMapKey = std::pair<uint32_t, lsh::BucketKey>;

// Borrows the coordinate rows of a (sub-)bucket straight out of the shuffled
// records — no copies. `Records` is PointRecord or ScoredPointRecord.
template <typename Records>
LocalPointView BucketView(std::span<const Records> members,
                          std::span<const size_t> group, size_t dim) {
  LocalPointView view(dim);
  view.Reserve(group.size());
  for (size_t k : group) view.Add(members[k].id, members[k].coords);
  return view;
}

// Deterministically splits indices [0, n) into ceil(n/max) balanced
// sub-groups keyed by member point id, for the skew-mitigation option.
std::vector<std::vector<size_t>> SplitOversized(size_t n, size_t max_size,
                                                auto id_of) {
  std::vector<std::vector<size_t>> groups;
  if (max_size == 0 || n <= max_size) {
    groups.emplace_back(n);
    std::iota(groups[0].begin(), groups[0].end(), 0);
    return groups;
  }
  size_t num_groups = (n + max_size - 1) / max_size;
  groups.resize(num_groups);
  for (size_t k = 0; k < n; ++k) {
    uint64_t h = id_of(k) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    groups[h % num_groups].push_back(k);
  }
  return groups;
}

}  // namespace

Result<DpScores> LshDdp::ComputeScores(const Dataset& dataset, double dc,
                                       const CountingMetric& metric,
                                       const mr::Options& mr_options,
                                       mr::RunStats* stats) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");

  // Resolve the width from the accuracy target when not given (Sec. V).
  lsh::LshParams lsh_params = params_.lsh;
  if (lsh_params.width <= 0.0) {
    DDP_ASSIGN_OR_RETURN(
        lsh_params.width,
        lsh::SolveMinimalWidth(params_.accuracy, lsh_params.num_layouts,
                               lsh_params.pi, dc));
  }
  DDP_ASSIGN_OR_RETURN(
      lsh::MultiLshPartitioner partitioner,
      lsh::MultiLshPartitioner::Create(dataset.dim(), lsh_params.num_layouts,
                                       lsh_params.pi, lsh_params.width,
                                       params_.seed));
  const uint32_t num_layouts = static_cast<uint32_t>(lsh_params.num_layouts);
  const size_t n_points = dataset.size();
  const size_t dim = dataset.dim();

  std::vector<PointId> input(n_points);
  std::iota(input.begin(), input.end(), 0);

  // ---- Job 1 (Map1 + Reduce1): LSH partition + local rho_hat^m.
  using RhoOut = std::pair<PointId, uint32_t>;
  mr::JobSpec<PointId, BucketMapKey, ddprec::PointRecord, RhoOut> rho_job;
  rho_job.name = "lsh-rho-local";
  const size_t probes = params_.probes;
  rho_job.map = [&dataset, &partitioner, num_layouts, probes](
                    const PointId& id,
                    mr::Emitter<BucketMapKey, ddprec::PointRecord>* out) {
    std::span<const double> p = dataset.point(id);
    ddprec::PointRecord rec{id, {p.begin(), p.end()}};
    for (uint32_t m = 0; m < num_layouts; ++m) {
      for (lsh::BucketKey& key :
           partitioner.group(m).KeysWithProbes(p, probes)) {
        out->Emit({m, std::move(key)}, rec);
      }
    }
  };
  const DensityKernel kernel = params_.kernel;
  const size_t max_bucket = params_.max_bucket_size;
  LocalDpEngineOptions engine_options;
  engine_options.backend = params_.local_backend;
  const LocalDpEngine engine(engine_options);
  rho_job.reduce = [dc, dim, kernel, max_bucket, engine, &metric](
                       const BucketMapKey&,
                       std::span<const ddprec::PointRecord> members,
                       std::vector<RhoOut>* out) {
    auto groups = SplitOversized(members.size(), max_bucket,
                                 [&](size_t k) { return members[k].id; });
    for (const std::vector<size_t>& group : groups) {
      LocalPointView view = BucketView(members, group, dim);
      std::vector<uint32_t> rho = engine.Rho(view, dc, kernel, metric);
      for (size_t g = 0; g < group.size(); ++g) {
        out->push_back({view.id(g), rho[g]});
      }
    }
  };
  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(std::vector<RhoOut> rho_locals,
                       mr::RunJob(rho_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 2 (Reduce2): rho_hat = max_m rho_hat^m.
  mr::JobSpec<RhoOut, PointId, uint32_t, RhoOut> rho_agg;
  rho_agg.name = "lsh-rho-aggregate";
  rho_agg.map = [](const RhoOut& in, mr::Emitter<PointId, uint32_t>* out) {
    out->Emit(in.first, in.second);
  };
  rho_agg.combiner = [](const PointId&, std::vector<uint32_t> values) {
    uint32_t best = 0;
    for (uint32_t v : values) best = std::max(best, v);
    return std::vector<uint32_t>{best};
  };
  rho_agg.reduce = [](const PointId& id, std::span<const uint32_t> values,
                      std::vector<RhoOut>* out) {
    uint32_t best = 0;
    for (uint32_t v : values) best = std::max(best, v);
    out->push_back({id, best});
  };
  DDP_ASSIGN_OR_RETURN(std::vector<RhoOut> rho_final,
                       mr::RunJob(rho_agg, std::span<const RhoOut>(rho_locals),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  rho_locals.clear();
  rho_locals.shrink_to_fit();

  std::vector<uint32_t> rho_hat(n_points, 0);
  for (const RhoOut& r : rho_final) rho_hat[r.first] = r.second;

  // ---- Job 3 (Map3 + Reduce3): LSH partition + local delta_hat^m.
  using DeltaOut = std::pair<PointId, ddprec::DeltaCandidate>;
  mr::JobSpec<PointId, BucketMapKey, ddprec::ScoredPointRecord, DeltaOut>
      delta_job;
  delta_job.name = "lsh-delta-local";
  delta_job.map = [&dataset, &partitioner, &rho_hat, num_layouts, probes](
                      const PointId& id,
                      mr::Emitter<BucketMapKey, ddprec::ScoredPointRecord>*
                          out) {
    std::span<const double> p = dataset.point(id);
    ddprec::ScoredPointRecord rec{id, rho_hat[id], {p.begin(), p.end()}};
    for (uint32_t m = 0; m < num_layouts; ++m) {
      for (lsh::BucketKey& key :
           partitioner.group(m).KeysWithProbes(p, probes)) {
        out->Emit({m, std::move(key)}, rec);
      }
    }
  };
  delta_job.reduce = [dim, max_bucket, engine, &metric](
                         const BucketMapKey&,
                         std::span<const ddprec::ScoredPointRecord> members,
                         std::vector<DeltaOut>* out) {
    // The engine's delta kernel ranks the (sub-)bucket by the global
    // (rho_hat, id) total order, so aggregation across layouts is
    // consistent, and gives the sub-bucket's densest point
    // delta_hat^m = +infinity (Sec. IV-C).
    auto groups = SplitOversized(members.size(), max_bucket,
                                 [&](size_t k) { return members[k].id; });
    for (const std::vector<size_t>& group : groups) {
      LocalPointView view = BucketView(members, group, dim);
      std::vector<uint32_t> rho(group.size());
      for (size_t g = 0; g < group.size(); ++g) rho[g] = members[group[g]].rho;
      LocalDeltaScores local = engine.Delta(view, rho, metric);
      for (size_t g = 0; g < group.size(); ++g) {
        out->push_back({view.id(g), ddprec::DeltaCandidate{local.delta_sq[g],
                                                           local.upslope[g]}});
      }
    }
  };
  DDP_ASSIGN_OR_RETURN(std::vector<DeltaOut> delta_locals,
                       mr::RunJob(delta_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 4 (Reduce4): delta_hat = min_m delta_hat^m.
  mr::JobSpec<DeltaOut, PointId, ddprec::DeltaCandidate, DeltaOut> delta_agg;
  delta_agg.name = "lsh-delta-aggregate";
  delta_agg.map = [](const DeltaOut& in,
                     mr::Emitter<PointId, ddprec::DeltaCandidate>* out) {
    out->Emit(in.first, in.second);
  };
  delta_agg.combiner = [](const PointId&,
                          std::vector<ddprec::DeltaCandidate> values) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    return std::vector<ddprec::DeltaCandidate>{best};
  };
  delta_agg.reduce = [](const PointId& id,
                        std::span<const ddprec::DeltaCandidate> values,
                        std::vector<DeltaOut>* out) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    out->push_back({id, best});
  };
  DDP_ASSIGN_OR_RETURN(
      std::vector<DeltaOut> delta_final,
      mr::RunJob(delta_agg, std::span<const DeltaOut>(delta_locals),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  DpScores scores;
  scores.Resize(n_points);
  scores.rho = std::move(rho_hat);
  for (const DeltaOut& d : delta_final) {
    // ddp-lint: allow(no-raw-sqrt) -- final assembly: one sqrt per point
    // when delta_sq leaves the shuffled squared-space representation.
    scores.delta[d.first] = std::sqrt(d.second.delta_sq);
    scores.upslope[d.first] = d.second.upslope;
  }
  return scores;
}

}  // namespace ddp

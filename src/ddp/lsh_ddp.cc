#include "ddp/lsh_ddp.h"

#include <cmath>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "ddp/lsh_ddp_jobs.h"
#include "lsh/partitioner.h"

namespace ddp {

Result<DpScores> LshDdp::ComputeScores(const Dataset& dataset, double dc,
                                       const CountingMetric& metric,
                                       const mr::Options& mr_options,
                                       mr::RunStats* stats) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");

  // Resolve the width from the accuracy target when not given (Sec. V).
  lsh::LshParams lsh_params = params_.lsh;
  if (lsh_params.width <= 0.0) {
    DDP_ASSIGN_OR_RETURN(
        lsh_params.width,
        lsh::SolveMinimalWidth(params_.accuracy, lsh_params.num_layouts,
                               lsh_params.pi, dc));
  }
  DDP_ASSIGN_OR_RETURN(
      lsh::MultiLshPartitioner partitioner,
      lsh::MultiLshPartitioner::Create(dataset.dim(), lsh_params.num_layouts,
                                       lsh_params.pi, lsh_params.width,
                                       params_.seed));
  const size_t n_points = dataset.size();

  // Job closures (local and, via JobSetupMsg ctx blobs, remote) read
  // everything through this ctx; see ddp/lsh_ddp_jobs.h.
  auto make_ctx = [&] {
    auto ctx = std::make_shared<lshjobs::LshJobsCtx>();
    ctx->dc = dc;
    ctx->num_layouts = static_cast<uint32_t>(lsh_params.num_layouts);
    ctx->pi = lsh_params.pi;
    ctx->width = lsh_params.width;
    ctx->lsh_seed = params_.seed;
    ctx->kernel = params_.kernel;
    ctx->probes = params_.probes;
    ctx->max_bucket = params_.max_bucket_size;
    ctx->backend = params_.local_backend;
    ctx->dataset = &dataset;
    ctx->partitioner = &partitioner;
    ctx->metric = &metric;
    return ctx;
  };

  std::vector<PointId> input(n_points);
  std::iota(input.begin(), input.end(), 0);

  // ---- Job 1 (Map1 + Reduce1): LSH partition + local rho_hat^m.
  auto rho_job = lshjobs::MakeLshRhoLocalJob(make_ctx());
  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(std::vector<lshjobs::LshRhoOut> rho_locals,
                       mr::RunJob(rho_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 2 (Reduce2): rho_hat = max_m rho_hat^m.
  auto rho_agg = lshjobs::MakeLshRhoAggregateJob();
  DDP_ASSIGN_OR_RETURN(
      std::vector<lshjobs::LshRhoOut> rho_final,
      mr::RunJob(rho_agg, std::span<const lshjobs::LshRhoOut>(rho_locals),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  rho_locals.clear();
  rho_locals.shrink_to_fit();

  std::vector<uint32_t> rho_hat(n_points, 0);
  for (const lshjobs::LshRhoOut& r : rho_final) rho_hat[r.first] = r.second;

  // ---- Job 3 (Map3 + Reduce3): LSH partition + local delta_hat^m.
  auto delta_ctx = make_ctx();
  delta_ctx->rho_hat = rho_hat;
  auto delta_job = lshjobs::MakeLshDeltaLocalJob(std::move(delta_ctx));
  DDP_ASSIGN_OR_RETURN(std::vector<lshjobs::LshDeltaOut> delta_locals,
                       mr::RunJob(delta_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 4 (Reduce4): delta_hat = min_m delta_hat^m.
  auto delta_agg = lshjobs::MakeLshDeltaAggregateJob();
  DDP_ASSIGN_OR_RETURN(
      std::vector<lshjobs::LshDeltaOut> delta_final,
      mr::RunJob(delta_agg,
                 std::span<const lshjobs::LshDeltaOut>(delta_locals),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  DpScores scores;
  scores.Resize(n_points);
  scores.rho = std::move(rho_hat);
  for (const lshjobs::LshDeltaOut& d : delta_final) {
    // ddp-lint: allow(no-raw-sqrt) -- final assembly: one sqrt per point
    // when delta_sq leaves the shuffled squared-space representation.
    scores.delta[d.first] = std::sqrt(d.second.delta_sq);
    scores.upslope[d.first] = d.second.upslope;
  }
  return scores;
}

}  // namespace ddp

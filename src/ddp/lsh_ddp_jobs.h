#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "core/kernel.h"
#include "core/local_dp.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "ddp/job_ctx.h"
#include "ddp/records.h"
#include "lsh/partitioner.h"
#include "mapreduce/mapreduce.h"

/// \file lsh_ddp_jobs.h
/// The four LSH-DDP MapReduce jobs (Sec. IV) as reusable JobSpec factories.
/// LshDdp::ComputeScores builds each spec from a driver-side ctx (borrowed
/// dataset/partitioner/metric); ddp/remote_jobs.cc registers the same
/// factories in the worker-side JobRegistry, where the ctx is decoded from
/// the JobSetupMsg blob into owned storage. One set of map/reduce bodies
/// serves inproc, fork, and remote execution — bit-identity across exec
/// modes is structural, not re-proven per mode.

namespace ddp {
namespace lshjobs {

/// MapReduce key of one LSH bucket: (layout index m, bucket signature).
using BucketMapKey = std::pair<uint32_t, lsh::BucketKey>;
using LshRhoOut = std::pair<PointId, uint32_t>;
using LshDeltaOut = std::pair<PointId, ddprec::DeltaCandidate>;

// Borrows the coordinate rows of a (sub-)bucket straight out of the shuffled
// records — no copies. `Records` is PointRecord or ScoredPointRecord.
template <typename Records>
LocalPointView BucketView(std::span<const Records> members,
                          std::span<const size_t> group, size_t dim) {
  LocalPointView view(dim);
  view.Reserve(group.size());
  for (size_t k : group) view.Add(members[k].id, members[k].coords);
  return view;
}

// Deterministically splits indices [0, n) into ceil(n/max) balanced
// sub-groups keyed by member point id, for the skew-mitigation option.
inline std::vector<std::vector<size_t>> SplitOversized(size_t n,
                                                       size_t max_size,
                                                       auto id_of) {
  std::vector<std::vector<size_t>> groups;
  if (max_size == 0 || n <= max_size) {
    groups.emplace_back(n);
    std::iota(groups[0].begin(), groups[0].end(), 0);
    return groups;
  }
  size_t num_groups = (n + max_size - 1) / max_size;
  groups.resize(num_groups);
  for (size_t k = 0; k < n; ++k) {
    uint64_t h = id_of(k) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    groups[h % num_groups].push_back(k);
  }
  return groups;
}

/// Everything the LSH job closures read. The partitioner is reproducible
/// from (dim, num_layouts, pi, width, seed), so only those parameters cross
/// the wire; `rho_hat` is empty for the rho jobs and carries the aggregated
/// densities for the delta job.
struct LshJobsCtx {
  double dc = 0.0;
  uint32_t num_layouts = 0;
  uint64_t pi = 0;
  double width = 0.0;  // resolved (never the <= 0 "derive me" sentinel)
  uint64_t lsh_seed = 0;
  DensityKernel kernel = DensityKernel::kCutoff;
  uint64_t probes = 0;
  uint64_t max_bucket = 0;
  LocalDpBackend backend = LocalDpBackend::kAuto;
  std::vector<uint32_t> rho_hat;

  const Dataset* dataset = nullptr;
  const lsh::MultiLshPartitioner* partitioner = nullptr;
  const CountingMetric* metric = nullptr;

  std::optional<Dataset> owned_dataset;
  std::optional<lsh::MultiLshPartitioner> owned_partitioner;
  CountingMetric owned_metric;  // null counter: workers do not count

  LocalDpEngine Engine() const {
    LocalDpEngineOptions options;
    options.backend = backend;
    return LocalDpEngine(options);
  }

  void EncodeTo(BufferWriter* w) const {
    w->PutDouble(dc);
    w->PutVarint32(num_layouts);
    w->PutVarint64(pi);
    w->PutDouble(width);
    w->PutVarint64(lsh_seed);
    w->PutByte(static_cast<uint8_t>(kernel));
    w->PutVarint64(probes);
    w->PutVarint64(max_bucket);
    w->PutByte(static_cast<uint8_t>(backend));
    jobctx::EncodeDataset(w, *dataset);
    Serde<std::vector<uint32_t>>::Write(w, rho_hat);
  }

  static Result<std::shared_ptr<const LshJobsCtx>> DecodeNew(
      const std::string& blob) {
    auto ctx = std::make_shared<LshJobsCtx>();
    BufferReader r(blob);
    DDP_RETURN_NOT_OK(r.GetDouble(&ctx->dc));
    DDP_RETURN_NOT_OK(r.GetVarint32(&ctx->num_layouts));
    DDP_RETURN_NOT_OK(r.GetVarint64(&ctx->pi));
    DDP_RETURN_NOT_OK(r.GetDouble(&ctx->width));
    DDP_RETURN_NOT_OK(r.GetVarint64(&ctx->lsh_seed));
    uint8_t kernel_byte = 0;
    DDP_RETURN_NOT_OK(r.GetByte(&kernel_byte));
    ctx->kernel = static_cast<DensityKernel>(kernel_byte);
    DDP_RETURN_NOT_OK(r.GetVarint64(&ctx->probes));
    DDP_RETURN_NOT_OK(r.GetVarint64(&ctx->max_bucket));
    uint8_t backend_byte = 0;
    DDP_RETURN_NOT_OK(r.GetByte(&backend_byte));
    ctx->backend = static_cast<LocalDpBackend>(backend_byte);
    DDP_ASSIGN_OR_RETURN(Dataset dataset, jobctx::DecodeDataset(&r));
    ctx->owned_dataset.emplace(std::move(dataset));
    DDP_RETURN_NOT_OK(
        Serde<std::vector<uint32_t>>::Read(&r, &ctx->rho_hat));
    DDP_RETURN_NOT_OK(jobctx::ExpectExhausted(r, "lsh"));
    DDP_ASSIGN_OR_RETURN(
        lsh::MultiLshPartitioner partitioner,
        lsh::MultiLshPartitioner::Create(
            ctx->owned_dataset->dim(), ctx->num_layouts,
            static_cast<size_t>(ctx->pi), ctx->width, ctx->lsh_seed));
    ctx->owned_partitioner.emplace(std::move(partitioner));
    ctx->dataset = &*ctx->owned_dataset;
    ctx->partitioner = &*ctx->owned_partitioner;
    ctx->metric = &ctx->owned_metric;
    return std::shared_ptr<const LshJobsCtx>(std::move(ctx));
  }
};

/// Job 1 (Map1 + Reduce1): LSH partition + local rho_hat^m.
inline mr::JobSpec<PointId, BucketMapKey, ddprec::PointRecord, LshRhoOut>
MakeLshRhoLocalJob(std::shared_ptr<const LshJobsCtx> ctx) {
  mr::JobSpec<PointId, BucketMapKey, ddprec::PointRecord, LshRhoOut> job;
  job.name = "lsh-rho-local";
  job.remote_task_id = "lsh-rho-local";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id,
                  mr::Emitter<BucketMapKey, ddprec::PointRecord>* out) {
    std::span<const double> p = ctx->dataset->point(id);
    ddprec::PointRecord rec{id, {p.begin(), p.end()}};
    const size_t probes = static_cast<size_t>(ctx->probes);
    for (uint32_t m = 0; m < ctx->num_layouts; ++m) {
      for (lsh::BucketKey& key :
           ctx->partitioner->group(m).KeysWithProbes(p, probes)) {
        out->Emit({m, std::move(key)}, rec);
      }
    }
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](const BucketMapKey&,
                             std::span<const ddprec::PointRecord> members,
                             std::vector<LshRhoOut>* out) {
    const size_t dim = ctx->dataset->dim();
    auto groups =
        SplitOversized(members.size(), static_cast<size_t>(ctx->max_bucket),
                       [&](size_t k) { return members[k].id; });
    for (const std::vector<size_t>& group : groups) {
      LocalPointView view = BucketView(members, group, dim);
      std::vector<uint32_t> rho =
          engine.Rho(view, ctx->dc, ctx->kernel, *ctx->metric);
      for (size_t g = 0; g < group.size(); ++g) {
        out->push_back({view.id(g), rho[g]});
      }
    }
  };
  return job;
}

/// Job 2 (Reduce2): rho_hat = max_m rho_hat^m.
inline mr::JobSpec<LshRhoOut, PointId, uint32_t, LshRhoOut>
MakeLshRhoAggregateJob() {
  mr::JobSpec<LshRhoOut, PointId, uint32_t, LshRhoOut> job;
  job.name = "lsh-rho-aggregate";
  job.remote_task_id = "lsh-rho-aggregate";
  job.map = [](const LshRhoOut& in, mr::Emitter<PointId, uint32_t>* out) {
    out->Emit(in.first, in.second);
  };
  job.combiner = [](const PointId&, std::vector<uint32_t> values) {
    uint32_t best = 0;
    for (uint32_t v : values) best = std::max(best, v);
    return std::vector<uint32_t>{best};
  };
  job.reduce = [](const PointId& id, std::span<const uint32_t> values,
                  std::vector<LshRhoOut>* out) {
    uint32_t best = 0;
    for (uint32_t v : values) best = std::max(best, v);
    out->push_back({id, best});
  };
  return job;
}

/// Job 3 (Map3 + Reduce3): LSH partition + local delta_hat^m. The ctx must
/// carry the aggregated rho_hat.
inline mr::JobSpec<PointId, BucketMapKey, ddprec::ScoredPointRecord,
                   LshDeltaOut>
MakeLshDeltaLocalJob(std::shared_ptr<const LshJobsCtx> ctx) {
  mr::JobSpec<PointId, BucketMapKey, ddprec::ScoredPointRecord, LshDeltaOut>
      job;
  job.name = "lsh-delta-local";
  job.remote_task_id = "lsh-delta-local";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id,
                  mr::Emitter<BucketMapKey, ddprec::ScoredPointRecord>* out) {
    std::span<const double> p = ctx->dataset->point(id);
    ddprec::ScoredPointRecord rec{id, ctx->rho_hat[id], {p.begin(), p.end()}};
    const size_t probes = static_cast<size_t>(ctx->probes);
    for (uint32_t m = 0; m < ctx->num_layouts; ++m) {
      for (lsh::BucketKey& key :
           ctx->partitioner->group(m).KeysWithProbes(p, probes)) {
        out->Emit({m, std::move(key)}, rec);
      }
    }
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](
                   const BucketMapKey&,
                   std::span<const ddprec::ScoredPointRecord> members,
                   std::vector<LshDeltaOut>* out) {
    // The engine's delta kernel ranks the (sub-)bucket by the global
    // (rho_hat, id) total order, so aggregation across layouts is
    // consistent, and gives the sub-bucket's densest point
    // delta_hat^m = +infinity (Sec. IV-C).
    const size_t dim = ctx->dataset->dim();
    auto groups =
        SplitOversized(members.size(), static_cast<size_t>(ctx->max_bucket),
                       [&](size_t k) { return members[k].id; });
    for (const std::vector<size_t>& group : groups) {
      LocalPointView view = BucketView(members, group, dim);
      std::vector<uint32_t> rho(group.size());
      for (size_t g = 0; g < group.size(); ++g) rho[g] = members[group[g]].rho;
      LocalDeltaScores local = engine.Delta(view, rho, *ctx->metric);
      for (size_t g = 0; g < group.size(); ++g) {
        out->push_back({view.id(g), ddprec::DeltaCandidate{local.delta_sq[g],
                                                           local.upslope[g]}});
      }
    }
  };
  return job;
}

/// Job 4 (Reduce4): delta_hat = min_m delta_hat^m.
inline mr::JobSpec<LshDeltaOut, PointId, ddprec::DeltaCandidate, LshDeltaOut>
MakeLshDeltaAggregateJob() {
  mr::JobSpec<LshDeltaOut, PointId, ddprec::DeltaCandidate, LshDeltaOut> job;
  job.name = "lsh-delta-aggregate";
  job.remote_task_id = "lsh-delta-aggregate";
  job.map = [](const LshDeltaOut& in,
               mr::Emitter<PointId, ddprec::DeltaCandidate>* out) {
    out->Emit(in.first, in.second);
  };
  job.combiner = [](const PointId&,
                    std::vector<ddprec::DeltaCandidate> values) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    return std::vector<ddprec::DeltaCandidate>{best};
  };
  job.reduce = [](const PointId& id,
                  std::span<const ddprec::DeltaCandidate> values,
                  std::vector<LshDeltaOut>* out) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    out->push_back({id, best});
  };
  return job;
}

}  // namespace lshjobs
}  // namespace ddp

#include "ddp/basic_ddp.h"

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "ddp/basic_ddp_jobs.h"

namespace ddp {

uint32_t BasicDdp::MeetingReducer(uint32_t a, uint32_t b, uint32_t n) {
  return basicjobs::MeetingReducerOf(a, b, n);
}

Result<DpScores> BasicDdp::ComputeScores(const Dataset& dataset, double dc,
                                         const CountingMetric& metric,
                                         const mr::Options& mr_options,
                                         mr::RunStats* stats) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  if (params_.block_size == 0) {
    return Status::InvalidArgument("block_size must be > 0");
  }
  const size_t n_points = dataset.size();
  const uint32_t num_blocks = static_cast<uint32_t>(
      (n_points + params_.block_size - 1) / params_.block_size);

  // Job closures (local and, via JobSetupMsg ctx blobs, remote) read
  // everything through this ctx; see ddp/basic_ddp_jobs.h.
  auto make_ctx = [&] {
    auto ctx = std::make_shared<basicjobs::BasicJobsCtx>();
    ctx->dc = dc;
    ctx->num_blocks = num_blocks;
    ctx->backend = params_.local_backend;
    ctx->dataset = &dataset;
    ctx->metric = &metric;
    return ctx;
  };

  std::vector<PointId> input(n_points);
  std::iota(input.begin(), input.end(), 0);

  // ---- Job 1: rho partials over circular block meetings.
  auto rho_job = basicjobs::MakeBasicRhoLocalJob(make_ctx());
  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(std::vector<basicjobs::BasicRhoPartial> partials,
                       mr::RunJob(rho_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 2: rho = sum of partials (with a sum combiner).
  auto rho_agg = basicjobs::MakeBasicRhoAggregateJob();
  DDP_ASSIGN_OR_RETURN(
      std::vector<basicjobs::BasicRhoPartial> rho_final,
      mr::RunJob(rho_agg,
                 std::span<const basicjobs::BasicRhoPartial>(partials),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  partials.clear();
  partials.shrink_to_fit();

  std::vector<uint32_t> rho(n_points, 0);
  for (const basicjobs::BasicRhoPartial& p : rho_final) rho[p.first] = p.second;

  // ---- Job 3: delta candidates. Same routing; values carry rho.
  auto delta_ctx = make_ctx();
  delta_ctx->rho = rho;
  auto delta_job = basicjobs::MakeBasicDeltaLocalJob(std::move(delta_ctx));
  DDP_ASSIGN_OR_RETURN(std::vector<basicjobs::BasicDeltaOut> delta_partials,
                       mr::RunJob(delta_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 4: delta = min of candidates (with a min combiner).
  auto delta_agg = basicjobs::MakeBasicDeltaAggregateJob();
  DDP_ASSIGN_OR_RETURN(
      std::vector<basicjobs::BasicDeltaOut> delta_final,
      mr::RunJob(delta_agg,
                 std::span<const basicjobs::BasicDeltaOut>(delta_partials),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  DpScores scores;
  scores.Resize(n_points);
  scores.rho = std::move(rho);
  for (const basicjobs::BasicDeltaOut& d : delta_final) {
    // ddp-lint: allow(no-raw-sqrt) -- final assembly: one sqrt per point
    // when delta_sq leaves the shuffled squared-space representation.
    scores.delta[d.first] = std::sqrt(d.second.delta_sq);
    scores.upslope[d.first] = d.second.upslope;
  }
  // Points without candidates keep delta = +inf / invalid upslope: exactly
  // the absolute density peak.
  return scores;
}

}  // namespace ddp

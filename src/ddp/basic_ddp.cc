#include "ddp/basic_ddp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/dp_types.h"
#include "core/local_dp.h"
#include "ddp/records.h"

namespace ddp {

namespace {

// A point in flight tagged with its source block.
struct BlockedPoint {
  uint32_t block = 0;
  ddprec::ScoredPointRecord point;  // rho unused (0) in the rho job

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(block);
    point.SerializeTo(w);
  }
  static Status DeserializeFrom(BufferReader* r, BlockedPoint* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->block));
    return ddprec::ScoredPointRecord::DeserializeFrom(r, &out->point);
  }
  bool operator==(const BlockedPoint&) const = default;
};

uint32_t BlockOf(PointId id, uint32_t num_blocks) { return id % num_blocks; }

// Reducers this block must be shuffled to under the circular scheme.
void TargetsOf(uint32_t block, uint32_t num_blocks, std::vector<uint32_t>* out) {
  out->clear();
  uint32_t h = num_blocks / 2;
  for (uint32_t t = 0; t <= h; ++t) {
    out->push_back((block + t) % num_blocks);
  }
}

// Reducer input grouped by source block. Members preserve arrival order;
// `present` lists the block ids in sorted order so every loop that feeds
// reducer output walks blocks in a derivable order, never hash order.
struct BlockGroups {
  std::unordered_map<uint32_t, std::vector<const BlockedPoint*>> members;
  std::vector<uint32_t> present;
};

BlockGroups GroupByBlock(std::span<const BlockedPoint> values) {
  BlockGroups groups;
  for (const BlockedPoint& v : values) groups.members[v.block].push_back(&v);
  groups.present.reserve(groups.members.size());
  // Hash-order iteration is confined to this collect step; the sort below
  // is what makes downstream emission order derivable (R2).
  for (const auto& [b, pts] : groups.members) groups.present.push_back(b);
  std::sort(groups.present.begin(), groups.present.end());
  return groups;
}

// Borrows one block's coordinate rows into an engine view, in arrival order.
LocalPointView BlockView(const std::vector<const BlockedPoint*>& members,
                         size_t dim) {
  LocalPointView view(dim);
  view.Reserve(members.size());
  for (const BlockedPoint* p : members) view.Add(p->point.id, p->point.coords);
  return view;
}

}  // namespace

uint32_t BasicDdp::MeetingReducer(uint32_t a, uint32_t b, uint32_t n) {
  if (a == b) return a;
  uint32_t diff = (b + n - a) % n;
  uint32_t rdiff = n - diff;
  if (diff < rdiff) return b;
  if (rdiff < diff) return a;
  return std::max(a, b);  // even n, antipodal blocks: pick one deterministically
}

Result<DpScores> BasicDdp::ComputeScores(const Dataset& dataset, double dc,
                                         const CountingMetric& metric,
                                         const mr::Options& mr_options,
                                         mr::RunStats* stats) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  if (params_.block_size == 0) {
    return Status::InvalidArgument("block_size must be > 0");
  }
  const size_t n_points = dataset.size();
  const uint32_t num_blocks = static_cast<uint32_t>(
      (n_points + params_.block_size - 1) / params_.block_size);

  std::vector<PointId> input(n_points);
  std::iota(input.begin(), input.end(), 0);

  // ---- Job 1: rho partials. Map routes each point to its block's meeting
  // reducers; each reducer computes the distances of the block pairs it owns
  // and accumulates per-point neighbor counts.
  using RhoPartial = std::pair<PointId, uint32_t>;
  mr::JobSpec<PointId, uint32_t, BlockedPoint, RhoPartial> rho_job;
  rho_job.name = "basic-rho-local";
  rho_job.map = [&dataset, num_blocks](const PointId& id,
                                       mr::Emitter<uint32_t, BlockedPoint>* out) {
    std::span<const double> p = dataset.point(id);
    BlockedPoint rec;
    rec.block = BlockOf(id, num_blocks);
    rec.point = {id, 0, {p.begin(), p.end()}};
    std::vector<uint32_t> targets;
    TargetsOf(rec.block, num_blocks, &targets);
    for (uint32_t r : targets) out->Emit(r, rec);
  };
  const size_t dim = dataset.dim();
  LocalDpEngineOptions engine_options;
  engine_options.backend = params_.local_backend;
  const LocalDpEngine engine(engine_options);
  rho_job.reduce = [dc, dim, num_blocks, engine, &metric](
                       const uint32_t& reducer,
                       std::span<const BlockedPoint> values,
                       std::vector<RhoPartial>* out) {
    BlockGroups blocks = GroupByBlock(values);
    // All blocks present at this reducer (sorted), with engine views and
    // position-aligned partial counts.
    const std::vector<uint32_t>& present = blocks.present;
    std::unordered_map<uint32_t, LocalPointView> views;
    std::unordered_map<uint32_t, std::vector<uint32_t>> counts;
    for (uint32_t b : present) {
      views.emplace(b, BlockView(blocks.members[b], dim));
      counts[b].assign(blocks.members[b].size(), 0);
    }
    for (size_t x = 0; x < present.size(); ++x) {
      for (size_t y = x; y < present.size(); ++y) {
        uint32_t a = present[x], b = present[y];
        if (MeetingReducer(a, b, num_blocks) != reducer) continue;
        if (a == b) {
          std::vector<uint32_t> self = engine.Rho(
              views.at(a), dc, DensityKernel::kCutoff, metric);
          std::vector<uint32_t>& acc = counts.at(a);
          for (size_t k = 0; k < self.size(); ++k) acc[k] += self[k];
        } else {
          engine.RhoCross(views.at(a), views.at(b), dc, metric, counts.at(a),
                          counts.at(b));
        }
      }
    }
    // Every received point gets a partial so that rho=0 points still appear.
    for (uint32_t b : present) {
      const LocalPointView& view = views.at(b);
      const std::vector<uint32_t>& acc = counts.at(b);
      for (size_t k = 0; k < view.size(); ++k) {
        out->push_back({view.id(k), acc[k]});
      }
    }
  };
  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(std::vector<RhoPartial> partials,
                       mr::RunJob(rho_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 2: rho = sum of partials (with a sum combiner).
  mr::JobSpec<RhoPartial, PointId, uint32_t, RhoPartial> rho_agg;
  rho_agg.name = "basic-rho-aggregate";
  rho_agg.map = [](const RhoPartial& in, mr::Emitter<PointId, uint32_t>* out) {
    out->Emit(in.first, in.second);
  };
  rho_agg.combiner = [](const PointId&, std::vector<uint32_t> values) {
    uint32_t sum = 0;
    for (uint32_t v : values) sum += v;
    return std::vector<uint32_t>{sum};
  };
  rho_agg.reduce = [](const PointId& id, std::span<const uint32_t> values,
                      std::vector<RhoPartial>* out) {
    uint32_t sum = 0;
    for (uint32_t v : values) sum += v;
    out->push_back({id, sum});
  };
  DDP_ASSIGN_OR_RETURN(std::vector<RhoPartial> rho_final,
                       mr::RunJob(rho_agg, std::span<const RhoPartial>(partials),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  partials.clear();
  partials.shrink_to_fit();

  std::vector<uint32_t> rho(n_points, 0);
  for (const RhoPartial& p : rho_final) rho[p.first] = p.second;

  // ---- Job 3: delta candidates. Same routing; values carry rho.
  using DeltaOut = std::pair<PointId, ddprec::DeltaCandidate>;
  mr::JobSpec<PointId, uint32_t, BlockedPoint, DeltaOut> delta_job;
  delta_job.name = "basic-delta-local";
  delta_job.map = [&dataset, &rho, num_blocks](
                      const PointId& id,
                      mr::Emitter<uint32_t, BlockedPoint>* out) {
    std::span<const double> p = dataset.point(id);
    BlockedPoint rec;
    rec.block = BlockOf(id, num_blocks);
    rec.point = {id, rho[id], {p.begin(), p.end()}};
    std::vector<uint32_t> targets;
    TargetsOf(rec.block, num_blocks, &targets);
    for (uint32_t r : targets) out->Emit(r, rec);
  };
  delta_job.reduce = [dim, num_blocks, engine, &metric](
                         const uint32_t& reducer,
                         std::span<const BlockedPoint> values,
                         std::vector<DeltaOut>* out) {
    BlockGroups blocks = GroupByBlock(values);
    const std::vector<uint32_t>& present = blocks.present;
    std::unordered_map<uint32_t, LocalPointView> views;
    std::unordered_map<uint32_t, std::vector<uint32_t>> rhos;
    std::unordered_map<uint32_t, std::vector<LocalDeltaBest>> best;
    for (uint32_t b : present) {
      views.emplace(b, BlockView(blocks.members[b], dim));
      std::vector<uint32_t>& r = rhos[b];
      r.reserve(blocks.members[b].size());
      for (const BlockedPoint* p : blocks.members[b]) r.push_back(p->point.rho);
      best[b].resize(blocks.members[b].size());
    }
    for (size_t x = 0; x < present.size(); ++x) {
      for (size_t y = x; y < present.size(); ++y) {
        uint32_t a = present[x], b = present[y];
        if (MeetingReducer(a, b, num_blocks) != reducer) continue;
        if (a == b) {
          LocalDeltaScores self = engine.Delta(views.at(a), rhos.at(a), metric);
          std::vector<LocalDeltaBest>& acc = best.at(a);
          for (size_t k = 0; k < acc.size(); ++k) {
            if (self.upslope[k] != kInvalidPointId) {
              acc[k].Improve(self.delta_sq[k], self.upslope[k]);
            }
          }
        } else {
          engine.DeltaCrossSymmetric(views.at(a), rhos.at(a), views.at(b),
                                     rhos.at(b), metric, best.at(a),
                                     best.at(b));
        }
      }
    }
    // Emit only points that found a denser neighbor here; the absolute peak
    // keeps no candidate anywhere.
    for (uint32_t b : present) {
      const LocalPointView& view = views.at(b);
      const std::vector<LocalDeltaBest>& acc = best.at(b);
      for (size_t k = 0; k < view.size(); ++k) {
        if (acc[k].upslope == kInvalidPointId) continue;
        out->push_back(
            {view.id(k), ddprec::DeltaCandidate{acc[k].d_sq, acc[k].upslope}});
      }
    }
  };
  DDP_ASSIGN_OR_RETURN(std::vector<DeltaOut> delta_partials,
                       mr::RunJob(delta_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 4: delta = min of candidates (with a min combiner).
  mr::JobSpec<DeltaOut, PointId, ddprec::DeltaCandidate, DeltaOut> delta_agg;
  delta_agg.name = "basic-delta-aggregate";
  delta_agg.map = [](const DeltaOut& in,
                     mr::Emitter<PointId, ddprec::DeltaCandidate>* out) {
    out->Emit(in.first, in.second);
  };
  delta_agg.combiner = [](const PointId&,
                          std::vector<ddprec::DeltaCandidate> values) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    return std::vector<ddprec::DeltaCandidate>{best};
  };
  delta_agg.reduce = [](const PointId& id,
                        std::span<const ddprec::DeltaCandidate> values,
                        std::vector<DeltaOut>* out) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    out->push_back({id, best});
  };
  DDP_ASSIGN_OR_RETURN(
      std::vector<DeltaOut> delta_final,
      mr::RunJob(delta_agg, std::span<const DeltaOut>(delta_partials),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  DpScores scores;
  scores.Resize(n_points);
  scores.rho = std::move(rho);
  for (const DeltaOut& d : delta_final) {
    // ddp-lint: allow(no-raw-sqrt) -- final assembly: one sqrt per point
    // when delta_sq leaves the shuffled squared-space representation.
    scores.delta[d.first] = std::sqrt(d.second.delta_sq);
    scores.upslope[d.first] = d.second.upslope;
  }
  // Points without candidates keep delta = +inf / invalid upslope: exactly
  // the absolute density peak.
  return scores;
}

}  // namespace ddp

#pragma once

#include <cstdint>

#include "core/kernel.h"
#include "core/local_dp.h"
#include "ddp/driver.h"
#include "lsh/tuning.h"

/// \file lsh_ddp.h
/// LSH-DDP (Sec. IV): the approximate distributed DP algorithm.
///
/// Four MapReduce jobs:
///  1. `lsh-rho-local`     — Map1 hashes every point under M layout groups and
///     emits one copy per layout keyed by (m, G_m(p)); Reduce1 runs the exact
///     local rho kernel inside each bucket, producing rho_hat^m.
///  2. `lsh-rho-aggregate` — Reduce2 takes rho_hat = max_m rho_hat^m
///     (each local estimate undercounts, so max is the tightest; Thm. 1).
///  3. `lsh-delta-local`   — points re-hashed with rho_hat attached; Reduce3
///     runs the local delta kernel; a bucket's densest point gets
///     delta_hat^m = +infinity (Sec. IV-C).
///  4. `lsh-delta-aggregate` — delta_hat = min_m delta_hat^m with the
///     corresponding upslope id (Thm. 2).
///
/// Points that remain at +infinity after aggregation are exactly the
/// "wrongly recognized absolute peaks" the paper embraces: they surface at
/// the top of the decision graph and are natural peak candidates.

namespace ddp {

class LshDdp : public DistributedDpAlgorithm {
 public:
  struct Params {
    /// Expected rho accuracy A in (0, 1); used to derive the width w when
    /// lsh.width == 0 (Sec. V closed form).
    double accuracy = 0.99;
    /// M, pi, and optionally an explicit width w.
    lsh::LshParams lsh;
    /// Seed for drawing the M hash groups.
    uint64_t seed = 7;
    /// Density kernel for the local rho computation (core/kernel.h).
    /// kGaussian computes quantized soft densities; max-aggregation and the
    /// density total order work unchanged because every local estimate is
    /// still an underestimate in the same uint32 domain.
    DensityKernel kernel = DensityKernel::kCutoff;
    /// Multi-probe LSH: besides its own bucket, each point also joins this
    /// many boundary-adjacent buckets per layout. Improves rho recall (and
    /// thus tau2) per layout at the cost of proportionally more shuffle —
    /// an alternative to raising M.
    size_t probes = 0;
    /// Skew mitigation: buckets larger than this are deterministically split
    /// into sub-buckets before the local kernels run, bounding a straggler
    /// reducer's quadratic work (the Fig. 12(a) small-M/large-pi pathology).
    /// Splitting coarsens the approximation for the affected points the same
    /// way a narrower hash would; 0 disables (default).
    size_t max_bucket_size = 0;
    /// LocalDpEngine backend for the per-bucket rho/delta kernels. kAuto
    /// picks per group by size and dimension; results are bit-identical
    /// across backends (core/local_dp.h determinism contract).
    LocalDpBackend local_backend = LocalDpBackend::kAuto;
  };

  LshDdp() : LshDdp(Params{}) {}
  explicit LshDdp(Params params) : params_(params) {}

  std::string name() const override { return "LSH-DDP"; }

  const Params& params() const { return params_; }

  Result<DpScores> ComputeScores(const Dataset& dataset, double dc,
                                 const CountingMetric& metric,
                                 const mr::Options& mr_options,
                                 mr::RunStats* stats) override;

 private:
  Params params_;
};

}  // namespace ddp


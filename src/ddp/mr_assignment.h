#pragma once

#include <span>

#include "common/result.h"
#include "core/dp_types.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "mapreduce/counters.h"
#include "mapreduce/mapreduce.h"

/// \file mr_assignment.h
/// Distributed cluster assignment. The paper's Step 3 assumes (rho, delta)
/// fit on one machine and follows upslope chains centrally; at
/// billions-of-points scale the chain-following itself must be distributed.
/// This module implements assignment as iterative MapReduce pointer jumping:
///
///   state per point: (parent, cluster or unresolved)
///   each round:  map    — unresolved points ask their current parent;
///                reduce — a parent answers every asker with either its
///                         cluster id (resolved) or its own parent
///                         (halving the chain: pointer doubling).
///
/// Chains of length L resolve in O(log L) jobs. Peaks are their own roots.
/// Points with no usable upslope (unselected LSH local peaks) are left
/// unresolved here and must be patched by nearest-peak fallback, exactly as
/// core/assignment.cc does; `ResolveOrphansByNearestPeak` provides that.

namespace ddp {

struct MrAssignmentResult {
  /// Cluster id per point; -1 where no chain reaches a selected peak.
  std::vector<int> assignment;
  size_t rounds = 0;
  mr::RunStats stats;
};

/// Runs pointer-jumping assignment over the upslope pointers in `scores`
/// given the selected `peaks`. Errors mirror AssignClusters' validation.
Result<MrAssignmentResult> AssignClustersMapReduce(
    const DpScores& scores, std::span<const PointId> peaks,
    const mr::Options& mr_options = {});

/// Assigns every remaining -1 point to the cluster of its nearest peak
/// (distance work counted through `metric`).
Status ResolveOrphansByNearestPeak(const Dataset& dataset,
                                   std::span<const PointId> peaks,
                                   const CountingMetric& metric,
                                   std::vector<int>* assignment);

}  // namespace ddp


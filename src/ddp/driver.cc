#include "ddp/driver.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "ddp/mr_assignment.h"
#include "ddp/pipeline_jobs.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddp {

std::vector<PointId> PeakSelector::Select(const DecisionGraph& graph) const {
  switch (mode) {
    case Mode::kThreshold:
      return graph.SelectByThreshold(rho_min, delta_min);
    case Mode::kTopK:
      return graph.SelectTopK(k);
    case Mode::kGammaGap:
      return graph.SelectByGammaGap(max_peaks);
  }
  return {};
}

Result<double> ChooseCutoffMapReduce(const Dataset& dataset,
                                     const CountingMetric& metric,
                                     const CutoffOptions& options,
                                     const mr::Options& mr_options,
                                     mr::RunStats* stats) {
  const size_t n = dataset.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 points");
  if (!(options.percentile > 0.0) || !(options.percentile < 1.0)) {
    return Status::InvalidArgument("percentile must be in (0, 1)");
  }
  // Sample size s with s*(s-1)/2 ~= sample_pairs, capped at N.
  // ddp-lint: allow(no-raw-sqrt) -- sample-size arithmetic on a pair
  // budget, not a distance; no determinism contract applies.
  size_t sample_size = static_cast<size_t>(
      std::ceil(std::sqrt(2.0 * static_cast<double>(options.sample_pairs))));
  sample_size = std::clamp<size_t>(sample_size, 2, n);
  const double rate = static_cast<double>(sample_size) / static_cast<double>(n);
  const uint64_t seed = options.seed;

  // Map: sample each point independently, send to the single reducer (key 0).
  // Reduce: all sampled pairwise distances, pick the percentile position.
  // The job body lives in ddp/pipeline_jobs.h so exec'd ddp_worker
  // processes can run it by name.
  std::vector<PointId> input(n);
  std::iota(input.begin(), input.end(), 0);
  auto ctx = std::make_shared<pipejobs::ChooseDcCtx>();
  ctx->rate = rate;
  ctx->seed = seed;
  ctx->percentile = options.percentile;
  ctx->dataset = &dataset;
  ctx->metric = &metric;
  auto spec = pipejobs::MakeChooseDcJob(std::move(ctx));

  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(
      std::vector<double> result,
      mr::RunJob(spec, std::span<const PointId>(input), mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  if (result.empty()) {
    return Status::OutOfRange(
        "cutoff preprocessing sampled no usable distances");
  }
  return result[0];
}

Result<DdpRunResult> RunDistributedDp(DistributedDpAlgorithm* algorithm,
                                      const Dataset& dataset,
                                      const DdpOptions& options) {
  if (algorithm == nullptr) {
    return Status::InvalidArgument("algorithm is null");
  }
  if (dataset.size() < 2) {
    return Status::InvalidArgument("need at least 2 points");
  }
  Stopwatch total_timer;
  DDP_TRACE_SPAN(pipeline_span, obs::kCatPipeline, algorithm->name());
  if (pipeline_span.active()) {
    pipeline_span.AddArg("points", static_cast<uint64_t>(dataset.size()));
    pipeline_span.AddArg("dim", static_cast<uint64_t>(dataset.dim()));
  }
  DdpRunResult result;
  DistanceCounter counter;
  CountingMetric metric(&counter);

  // Driver recovery: every job below runs against a checkpoint store (when
  // configured), keyed by its position in the pipeline. The sequence is
  // rewound at the start of each (re-)run so a resumed pipeline requests the
  // same keys and replays completed jobs instead of re-executing them.
  mr::Options mr_options = options.mr;
  std::optional<mr::CheckpointStore> owned_store;
  if (mr_options.checkpoint == nullptr && !options.checkpoint_dir.empty()) {
    owned_store.emplace(options.checkpoint_dir);
    mr_options.checkpoint = &*owned_store;
  }
  if (mr_options.checkpoint != nullptr) {
    mr_options.checkpoint->ResetSequence();
  }

  if (options.dc > 0.0) {
    result.dc = options.dc;
  } else {
    DDP_TRACE_SPAN(dc_span, obs::kCatPipeline, obs::kSpanChooseDc);
    DDP_ASSIGN_OR_RETURN(
        result.dc, ChooseCutoffMapReduce(dataset, metric, options.cutoff,
                                         mr_options, &result.stats));
  }

  {
    DDP_TRACE_SPAN(scores_span, obs::kCatPipeline, obs::kSpanComputeScores);
    DDP_ASSIGN_OR_RETURN(result.scores,
                         algorithm->ComputeScores(dataset, result.dc, metric,
                                                  mr_options, &result.stats));
  }

  // Final step (Sec. III Step 3): decision graph, peaks, assignment —
  // centralized by default, distributed pointer jumping on request.
  DDP_TRACE_SPAN(peaks_span, obs::kCatPipeline, obs::kSpanPeakSelection);
  DecisionGraph graph = DecisionGraph::FromScores(result.scores);
  std::vector<PointId> peaks = options.selector.Select(graph);
  if (peaks.empty()) {
    peaks_span.MarkCancelled();
    pipeline_span.MarkCancelled();
    return Status::OutOfRange("peak selector returned no peaks");
  }
  if (peaks_span.active()) {
    peaks_span.AddArg("peaks", static_cast<uint64_t>(peaks.size()));
  }
  peaks_span.End();
  DDP_METRIC_COUNTER_ADD(obs::kMetricDdpPeaksSelected, peaks.size());
  {
    DDP_TRACE_SPAN(assign_span, obs::kCatPipeline, obs::kSpanAssignment);
    if (assign_span.active() && options.use_mr_assignment) {
      assign_span.AddArg("mode", "mapreduce");
    }
    if (options.use_mr_assignment) {
      DDP_ASSIGN_OR_RETURN(MrAssignmentResult assigned,
                           AssignClustersMapReduce(result.scores, peaks,
                                                   mr_options));
      for (const mr::JobCounters& job : assigned.stats.jobs) {
        result.stats.Add(job);
      }
      DDP_RETURN_NOT_OK(ResolveOrphansByNearestPeak(dataset, peaks, metric,
                                                    &assigned.assignment));
      result.clusters.assignment = std::move(assigned.assignment);
      result.clusters.peaks.assign(peaks.begin(), peaks.end());
    } else {
      DDP_ASSIGN_OR_RETURN(
          result.clusters,
          AssignClusters(dataset, result.scores, peaks, metric));
    }
  }

  result.distance_evaluations = counter.value();
  result.total_seconds = total_timer.ElapsedSeconds();
  DDP_METRIC_HISTOGRAM_SECONDS(obs::kMetricDdpPipelineSeconds, result.total_seconds);
  DDP_METRIC_COUNTER_ADD(obs::kMetricDdpPipelines, 1);
  return result;
}

}  // namespace ddp

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/serde.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "ddp/job_ctx.h"
#include "ddp/records.h"
#include "mapreduce/mapreduce.h"

/// \file pipeline_jobs.h
/// The algorithm-independent pipeline jobs as reusable JobSpec factories:
/// the d_c preprocessing sampler (driver.cc), the pointer-jumping
/// assignment rounds (mr_assignment.cc), and the K-means iteration
/// (mr_kmeans.cc). Round-suffixed job *names* ("assign-jump-3",
/// "kmeans-iter-17") vary per invocation while the registry task id stays
/// the stable prefix, so one registered factory serves every round. See
/// lsh_ddp_jobs.h for the ctx borrow/own convention.

namespace ddp {
namespace pipejobs {

/// Ctx of the "choose-dc" sampling job.
struct ChooseDcCtx {
  double rate = 0.0;
  uint64_t seed = 0;
  double percentile = 0.0;

  const Dataset* dataset = nullptr;
  const CountingMetric* metric = nullptr;

  std::optional<Dataset> owned_dataset;
  CountingMetric owned_metric;  // null counter: workers do not count

  void EncodeTo(BufferWriter* w) const {
    w->PutDouble(rate);
    w->PutVarint64(seed);
    w->PutDouble(percentile);
    jobctx::EncodeDataset(w, *dataset);
  }

  static Result<std::shared_ptr<const ChooseDcCtx>> DecodeNew(
      const std::string& blob) {
    auto ctx = std::make_shared<ChooseDcCtx>();
    BufferReader r(blob);
    DDP_RETURN_NOT_OK(r.GetDouble(&ctx->rate));
    DDP_RETURN_NOT_OK(r.GetVarint64(&ctx->seed));
    DDP_RETURN_NOT_OK(r.GetDouble(&ctx->percentile));
    DDP_ASSIGN_OR_RETURN(Dataset dataset, jobctx::DecodeDataset(&r));
    ctx->owned_dataset.emplace(std::move(dataset));
    DDP_RETURN_NOT_OK(jobctx::ExpectExhausted(r, "choose-dc"));
    ctx->dataset = &*ctx->owned_dataset;
    ctx->metric = &ctx->owned_metric;
    return std::shared_ptr<const ChooseDcCtx>(std::move(ctx));
  }
};

/// The d_c preprocessing job (Sec. III-A): map samples points to a single
/// reducer, which computes sampled pairwise distances and returns the
/// percentile value.
inline mr::JobSpec<PointId, uint32_t, ddprec::PointRecord, double>
MakeChooseDcJob(std::shared_ptr<const ChooseDcCtx> ctx) {
  mr::JobSpec<PointId, uint32_t, ddprec::PointRecord, double> job;
  job.name = "choose-dc";
  job.remote_task_id = "choose-dc";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id,
                  mr::Emitter<uint32_t, ddprec::PointRecord>* out) {
    // Deterministic per-point coin flip.
    uint64_t s = SplitSeed(ctx->seed, id);
    double coin =
        static_cast<double>(SplitMix64(&s) >> 11) * 0x1.0p-53;  // [0,1)
    if (coin < ctx->rate) {
      std::span<const double> p = ctx->dataset->point(id);
      out->Emit(0, ddprec::PointRecord{id, {p.begin(), p.end()}});
    }
  };
  job.reduce = [ctx](const uint32_t&,
                     std::span<const ddprec::PointRecord> points,
                     std::vector<double>* out) {
    std::vector<double> distances;
    distances.reserve(points.size() * (points.size() - 1) / 2);
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        distances.push_back(
            ctx->metric->Distance(points[i].coords, points[j].coords));
      }
    }
    if (distances.empty()) return;
    size_t pos = static_cast<size_t>(ctx->percentile *
                                     static_cast<double>(distances.size()));
    pos = std::min(pos, distances.size() - 1);
    std::nth_element(distances.begin(),
                     distances.begin() + static_cast<std::ptrdiff_t>(pos),
                     distances.end());
    if (distances[pos] > 0.0) {
      out->push_back(distances[pos]);
      return;
    }
    // Degenerate sample: fall back to the smallest positive distance.
    std::sort(distances.begin(), distances.end());
    for (double d : distances) {
      if (d > 0.0) {
        out->push_back(d);
        return;
      }
    }
  };
  return job;
}

/// One message of the pointer-jumping protocol, keyed by point id.
///  kState: point `key` publishes its (cluster, parent) to its own reducer.
///  kAsk:   unresolved point `asker` asks `key` (its current parent).
struct JumpMessage {
  uint8_t kind = 0;  // 0 = state, 1 = ask
  int32_t cluster = -1;
  PointId parent = kInvalidPointId;
  PointId asker = kInvalidPointId;

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(kind);
    w->PutSignedVarint64(cluster);
    w->PutVarint32(parent);
    w->PutVarint32(asker);
  }
  static Status DeserializeFrom(BufferReader* r, JumpMessage* out) {
    DDP_RETURN_NOT_OK(r->GetByte(&out->kind));
    int64_t c;
    DDP_RETURN_NOT_OK(r->GetSignedVarint64(&c));
    out->cluster = static_cast<int32_t>(c);
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->parent));
    return r->GetVarint32(&out->asker);
  }
  bool operator==(const JumpMessage&) const = default;
};

/// Reducer verdict for one asker.
struct JumpUpdate {
  PointId point = kInvalidPointId;
  int32_t cluster = -1;                  // >= 0: resolved
  PointId new_parent = kInvalidPointId;  // otherwise: jump target (or orphan)

  // Member serde so the assignment rounds can fork their reduce phase (and
  // checkpoint-replay).
  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(point);
    w->PutSignedVarint64(cluster);
    w->PutVarint32(new_parent);
  }
  static Status DeserializeFrom(BufferReader* r, JumpUpdate* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->point));
    int64_t cluster = 0;
    DDP_RETURN_NOT_OK(r->GetSignedVarint64(&cluster));
    out->cluster = static_cast<int32_t>(cluster);
    return r->GetVarint32(&out->new_parent);
  }
};

/// Ctx of one pointer-jumping round: the per-point (cluster, parent) state
/// at the start of the round.
struct AssignJumpCtx {
  const std::vector<int>* assignment = nullptr;
  const std::vector<PointId>* parent = nullptr;

  std::vector<int> owned_assignment;
  std::vector<PointId> owned_parent;

  void EncodeTo(BufferWriter* w) const {
    w->PutVarint64(assignment->size());
    for (int a : (*assignment)) w->PutSignedVarint64(a);
    w->PutVarint64(parent->size());
    for (PointId p : (*parent)) w->PutVarint32(p);
  }

  static Result<std::shared_ptr<const AssignJumpCtx>> DecodeNew(
      const std::string& blob) {
    auto ctx = std::make_shared<AssignJumpCtx>();
    BufferReader r(blob);
    uint64_t n = 0;
    DDP_RETURN_NOT_OK(r.GetVarint64(&n));
    ctx->owned_assignment.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      int64_t a = 0;
      DDP_RETURN_NOT_OK(r.GetSignedVarint64(&a));
      ctx->owned_assignment[i] = static_cast<int>(a);
    }
    DDP_RETURN_NOT_OK(r.GetVarint64(&n));
    ctx->owned_parent.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r.GetVarint32(&ctx->owned_parent[i]));
    }
    DDP_RETURN_NOT_OK(jobctx::ExpectExhausted(r, "assign-jump"));
    ctx->assignment = &ctx->owned_assignment;
    ctx->parent = &ctx->owned_parent;
    return std::shared_ptr<const AssignJumpCtx>(std::move(ctx));
  }
};

/// One pointer-jumping round (mr_assignment.h): unresolved points ask their
/// current parent; a parent answers with either its cluster id or its own
/// parent (pointer doubling).
inline mr::JobSpec<PointId, PointId, JumpMessage, JumpUpdate>
MakeAssignJumpJob(std::shared_ptr<const AssignJumpCtx> ctx, size_t round) {
  mr::JobSpec<PointId, PointId, JumpMessage, JumpUpdate> job;
  job.name = "assign-jump-" + std::to_string(round);
  job.remote_task_id = "assign-jump";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& i, mr::Emitter<PointId, JumpMessage>* out) {
    const std::vector<int>& assignment = *ctx->assignment;
    const std::vector<PointId>& parent = *ctx->parent;
    JumpMessage state;
    state.kind = 0;
    state.cluster = assignment[i];
    state.parent = parent[i];
    out->Emit(i, state);
    if (assignment[i] < 0 && parent[i] != kInvalidPointId) {
      JumpMessage ask;
      ask.kind = 1;
      ask.asker = i;
      out->Emit(parent[i], ask);
    }
  };
  job.reduce = [](const PointId&, std::span<const JumpMessage> messages,
                  std::vector<JumpUpdate>* out) {
    // Exactly one state message per key; any number of asks.
    JumpMessage state;
    for (const JumpMessage& m : messages) {
      if (m.kind == 0) state = m;
    }
    for (const JumpMessage& m : messages) {
      if (m.kind != 1) continue;
      JumpUpdate update;
      update.point = m.asker;
      if (state.cluster >= 0) {
        update.cluster = state.cluster;
      } else {
        // Jump over the parent (possibly to "no parent": the asker
        // becomes an orphan rooted at an unselected local peak).
        update.new_parent = state.parent;
      }
      out->push_back(update);
    }
  };
  return job;
}

/// (sum of member coordinates, member count) — the combinable partial.
struct CentroidPartial {
  std::vector<double> sum;
  uint64_t count = 0;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint64(count);
    w->PutVarint64(sum.size());
    for (double s : sum) w->PutDouble(s);
  }
  static Status DeserializeFrom(BufferReader* r, CentroidPartial* out) {
    DDP_RETURN_NOT_OK(r->GetVarint64(&out->count));
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->sum.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r->GetDouble(&out->sum[i]));
    }
    return Status::OK();
  }
  bool operator==(const CentroidPartial&) const = default;

  void Merge(const CentroidPartial& other) {
    if (sum.empty()) sum.assign(other.sum.size(), 0.0);
    for (size_t d = 0; d < sum.size(); ++d) sum[d] += other.sum[d];
    count += other.count;
  }
};

inline uint32_t NearestCentroid(std::span<const double> p,
                                const std::vector<std::vector<double>>& centroids,
                                const CountingMetric& metric) {
  uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (uint32_t c = 0; c < centroids.size(); ++c) {
    double d = metric.SquaredDistance(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

using KmeansIterOut = std::pair<uint32_t, CentroidPartial>;

/// Ctx of one Lloyd iteration: the centroids it assigns against.
struct KmeansIterCtx {
  std::vector<std::vector<double>> centroids;

  const Dataset* dataset = nullptr;
  const CountingMetric* metric = nullptr;

  std::optional<Dataset> owned_dataset;
  CountingMetric owned_metric;  // null counter: workers do not count

  void EncodeTo(BufferWriter* w) const {
    Serde<std::vector<std::vector<double>>>::Write(w, centroids);
    jobctx::EncodeDataset(w, *dataset);
  }

  static Result<std::shared_ptr<const KmeansIterCtx>> DecodeNew(
      const std::string& blob) {
    auto ctx = std::make_shared<KmeansIterCtx>();
    BufferReader r(blob);
    DDP_RETURN_NOT_OK(
        Serde<std::vector<std::vector<double>>>::Read(&r, &ctx->centroids));
    DDP_ASSIGN_OR_RETURN(Dataset dataset, jobctx::DecodeDataset(&r));
    ctx->owned_dataset.emplace(std::move(dataset));
    DDP_RETURN_NOT_OK(jobctx::ExpectExhausted(r, "kmeans-iter"));
    ctx->dataset = &*ctx->owned_dataset;
    ctx->metric = &ctx->owned_metric;
    return std::shared_ptr<const KmeansIterCtx>(std::move(ctx));
  }
};

/// One MapReduce K-means iteration (mr_kmeans.h): map assigns each point to
/// its nearest centroid with a summing combiner; reduce recomputes
/// centroids.
inline mr::JobSpec<PointId, uint32_t, CentroidPartial, KmeansIterOut>
MakeKmeansIterJob(std::shared_ptr<const KmeansIterCtx> ctx, size_t iter) {
  mr::JobSpec<PointId, uint32_t, CentroidPartial, KmeansIterOut> job;
  job.name = "kmeans-iter-" + std::to_string(iter);
  job.remote_task_id = "kmeans-iter";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id,
                  mr::Emitter<uint32_t, CentroidPartial>* out) {
    std::span<const double> p = ctx->dataset->point(id);
    uint32_t c = NearestCentroid(p, ctx->centroids, *ctx->metric);
    CentroidPartial partial;
    partial.sum.assign(p.begin(), p.end());
    partial.count = 1;
    out->Emit(c, partial);
  };
  job.combiner = [](const uint32_t&, std::vector<CentroidPartial> values) {
    CentroidPartial merged;
    for (const CentroidPartial& v : values) merged.Merge(v);
    return std::vector<CentroidPartial>{merged};
  };
  job.reduce = [](const uint32_t& c, std::span<const CentroidPartial> values,
                  std::vector<KmeansIterOut>* out) {
    CentroidPartial merged;
    for (const CentroidPartial& v : values) merged.Merge(v);
    out->push_back({c, merged});
  };
  return job;
}

}  // namespace pipejobs
}  // namespace ddp

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file job_ctx.h
/// Shared encode/decode helpers for driver job contexts. Each DDP job
/// family ships a self-contained ctx blob in JobSetupMsg::ctx so an exec'd
/// ddp_worker can rebuild the job's closures by name (see
/// mapreduce/remote_job.h). The dataset dominates every ctx, so its wire
/// form lives here: dim + the raw row-major values (labels are never needed
/// by a job body).
///
/// Convention used by every ctx struct in the *_jobs.h headers:
///   * Borrow pointers (`dataset`, `metric`) name what the closures read.
///     On the driver side they point at driver-owned objects and the owned
///     storage stays empty; after DecodeNew they point at the ctx's own
///     `owned_*` members. Either way the ctx outlives the JobSpec closures
///     because they capture it by shared_ptr.
///   * `EncodeTo` writes the full blob; `DecodeNew` rebuilds an owned ctx
///     and rejects trailing bytes. Workers count no distance evaluations
///     (the owned CountingMetric has a null counter), matching fork mode,
///     where child-process counters are equally invisible to the driver.

namespace ddp {
namespace jobctx {

inline void EncodeDataset(BufferWriter* w, const Dataset& d) {
  w->PutVarint64(d.dim());
  const std::vector<double>& values = d.values();
  w->PutVarint64(values.size());
  for (double v : values) w->PutDouble(v);
}

inline Result<Dataset> DecodeDataset(BufferReader* r) {
  uint64_t dim = 0;
  uint64_t count = 0;
  DDP_RETURN_NOT_OK(r->GetVarint64(&dim));
  DDP_RETURN_NOT_OK(r->GetVarint64(&count));
  if (dim == 0) return Status::IoError("ctx dataset has dim 0");
  std::vector<double> values(count);
  for (uint64_t i = 0; i < count; ++i) {
    DDP_RETURN_NOT_OK(r->GetDouble(&values[i]));
  }
  return Dataset::FromValues(static_cast<size_t>(dim), std::move(values));
}

inline Status ExpectExhausted(const BufferReader& r, const char* what) {
  if (!r.exhausted()) {
    return Status::IoError(std::string(what) + " ctx has trailing bytes");
  }
  return Status::OK();
}

}  // namespace jobctx
}  // namespace ddp

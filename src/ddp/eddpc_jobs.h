#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "core/kernel.h"
#include "core/local_dp.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "ddp/job_ctx.h"
#include "ddp/records.h"
#include "mapreduce/mapreduce.h"

/// \file eddpc_jobs.h
/// The four EDDPC MapReduce jobs (Gong & Zhang [21], Table IV comparator)
/// as reusable JobSpec factories, shared by Eddpc::ComputeScores and the
/// worker-side JobRegistry (ddp/remote_jobs.cc). See lsh_ddp_jobs.h for the
/// ctx borrow/own convention. The refine job additionally needs the per-cell
/// statistics the driver collects between jobs 2 and 3 — they ride the same
/// ctx blob.

namespace ddp {
namespace eddpcjobs {

inline constexpr double kEddpcInf = std::numeric_limits<double>::infinity();

// Job 1 intermediate: a point routed to a Voronoi cell, either as one of the
// cell's own ("home") points or as a replicated neighbor-support point.
struct CellPoint {
  uint8_t is_support = 0;
  ddprec::PointRecord point;

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(is_support);
    point.SerializeTo(w);
  }
  static Status DeserializeFrom(BufferReader* r, CellPoint* out) {
    DDP_RETURN_NOT_OK(r->GetByte(&out->is_support));
    return ddprec::PointRecord::DeserializeFrom(r, &out->point);
  }
  bool operator==(const CellPoint&) const = default;
};

// Job 3 intermediate: a cell member (comparison target) or a delta query.
// Queries carry their squared within-cell bound — the engine's canonical
// comparison space — as the refinement seed.
struct MemberOrQuery {
  uint8_t is_query = 0;
  PointId id = 0;
  uint32_t rho = 0;
  double delta_ub_sq = 0.0;  // queries only
  std::vector<double> coords;

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(is_query);
    w->PutVarint32(id);
    w->PutVarint32(rho);
    if (is_query != 0) w->PutDouble(delta_ub_sq);
    w->PutVarint64(coords.size());
    for (double c : coords) w->PutDouble(c);
  }
  static Status DeserializeFrom(BufferReader* r, MemberOrQuery* out) {
    DDP_RETURN_NOT_OK(r->GetByte(&out->is_query));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    out->delta_ub_sq = 0.0;
    if (out->is_query != 0) DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_ub_sq));
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->coords.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r->GetDouble(&out->coords[i]));
    }
    return Status::OK();
  }
  bool operator==(const MemberOrQuery&) const = default;
};

// Per-point state threaded between jobs. Never shuffled, but it is a reduce
// output type, so it carries member serde: that is what lets the jobs
// producing it run their reduce phase in forked (and remote) workers, and
// be checkpoint-replayable.
struct HomeInfo {
  PointId id = 0;
  uint32_t rho = 0;
  uint32_t cell = 0;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(id);
    w->PutVarint32(rho);
    w->PutVarint32(cell);
  }
  static Status DeserializeFrom(BufferReader* r, HomeInfo* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    return r->GetVarint32(&out->cell);
  }
};

struct BoundInfo {
  PointId id = 0;
  uint32_t rho = 0;
  uint32_t cell = 0;
  double delta_ub = kEddpcInf;     // distance space, for the radius filter
  double delta_ub_sq = kEddpcInf;  // squared space, the refinement seed
  PointId upslope = kInvalidPointId;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(id);
    w->PutVarint32(rho);
    w->PutVarint32(cell);
    w->PutDouble(delta_ub);
    w->PutDouble(delta_ub_sq);
    w->PutVarint32(upslope);
  }
  static Status DeserializeFrom(BufferReader* r, BoundInfo* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->cell));
    DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_ub));
    DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_ub_sq));
    return r->GetVarint32(&out->upslope);
  }
};

// Job 2 output: either a per-point bound or per-cell statistics.
struct BoundOrStats {
  bool is_stats = false;
  BoundInfo bound;       // when !is_stats
  uint32_t cell = 0;     // when is_stats
  double radius = 0.0;   // max distance member -> pivot
  uint32_t max_rho = 0;  // densest member

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(is_stats ? 1 : 0);
    bound.SerializeTo(w);
    w->PutVarint32(cell);
    w->PutDouble(radius);
    w->PutVarint32(max_rho);
  }
  static Status DeserializeFrom(BufferReader* r, BoundOrStats* out) {
    uint8_t s = 0;
    DDP_RETURN_NOT_OK(r->GetByte(&s));
    out->is_stats = s != 0;
    DDP_RETURN_NOT_OK(BoundInfo::DeserializeFrom(r, &out->bound));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->cell));
    DDP_RETURN_NOT_OK(r->GetDouble(&out->radius));
    return r->GetVarint32(&out->max_rho);
  }
};

using EddpcDeltaOut = std::pair<PointId, ddprec::DeltaCandidate>;

/// Everything the EDDPC job closures read. The pivots are sampled by the
/// driver and shipped verbatim (the worker must never re-sample); the
/// cell_* vectors are empty until the driver fills them between jobs 2 and
/// 3 for the refine job.
struct EddpcJobsCtx {
  double dc = 0.0;
  LocalDpBackend backend = LocalDpBackend::kAuto;
  bool use_max_rho_filter = true;
  std::vector<std::vector<double>> pivots;
  std::vector<double> cell_radius;
  std::vector<uint32_t> cell_max_rho;
  std::vector<uint8_t> cell_nonempty;  // vector<bool> has no spanable form

  const Dataset* dataset = nullptr;
  const CountingMetric* metric = nullptr;

  std::optional<Dataset> owned_dataset;
  CountingMetric owned_metric;  // null counter: workers do not count

  uint32_t p_count() const { return static_cast<uint32_t>(pivots.size()); }

  LocalDpEngine Engine() const {
    LocalDpEngineOptions options;
    options.backend = backend;
    return LocalDpEngine(options);
  }

  /// Distances from a point to every pivot; returns the home cell.
  uint32_t PivotDistances(std::span<const double> p,
                          std::vector<double>* dist) const {
    const uint32_t count = p_count();
    dist->resize(count);
    uint32_t home = 0;
    for (uint32_t k = 0; k < count; ++k) {
      (*dist)[k] = metric->Distance(p, pivots[k]);
      if ((*dist)[k] < (*dist)[home]) home = k;
    }
    return home;
  }

  void EncodeTo(BufferWriter* w) const {
    w->PutDouble(dc);
    w->PutByte(static_cast<uint8_t>(backend));
    w->PutByte(use_max_rho_filter ? 1 : 0);
    Serde<std::vector<std::vector<double>>>::Write(w, pivots);
    Serde<std::vector<double>>::Write(w, cell_radius);
    Serde<std::vector<uint32_t>>::Write(w, cell_max_rho);
    Serde<std::vector<uint8_t>>::Write(w, cell_nonempty);
    jobctx::EncodeDataset(w, *dataset);
  }

  static Result<std::shared_ptr<const EddpcJobsCtx>> DecodeNew(
      const std::string& blob) {
    auto ctx = std::make_shared<EddpcJobsCtx>();
    BufferReader r(blob);
    DDP_RETURN_NOT_OK(r.GetDouble(&ctx->dc));
    uint8_t backend_byte = 0;
    DDP_RETURN_NOT_OK(r.GetByte(&backend_byte));
    ctx->backend = static_cast<LocalDpBackend>(backend_byte);
    uint8_t filter_byte = 0;
    DDP_RETURN_NOT_OK(r.GetByte(&filter_byte));
    ctx->use_max_rho_filter = filter_byte != 0;
    DDP_RETURN_NOT_OK(
        Serde<std::vector<std::vector<double>>>::Read(&r, &ctx->pivots));
    DDP_RETURN_NOT_OK(
        Serde<std::vector<double>>::Read(&r, &ctx->cell_radius));
    DDP_RETURN_NOT_OK(
        Serde<std::vector<uint32_t>>::Read(&r, &ctx->cell_max_rho));
    DDP_RETURN_NOT_OK(
        Serde<std::vector<uint8_t>>::Read(&r, &ctx->cell_nonempty));
    DDP_ASSIGN_OR_RETURN(Dataset dataset, jobctx::DecodeDataset(&r));
    ctx->owned_dataset.emplace(std::move(dataset));
    DDP_RETURN_NOT_OK(jobctx::ExpectExhausted(r, "eddpc"));
    ctx->dataset = &*ctx->owned_dataset;
    ctx->metric = &ctx->owned_metric;
    return std::shared_ptr<const EddpcJobsCtx>(std::move(ctx));
  }
};

/// Job 1: exact rho via home + 2*d_c support replication.
inline mr::JobSpec<PointId, uint32_t, CellPoint, HomeInfo> MakeEddpcRhoJob(
    std::shared_ptr<const EddpcJobsCtx> ctx) {
  mr::JobSpec<PointId, uint32_t, CellPoint, HomeInfo> job;
  job.name = "eddpc-rho";
  job.remote_task_id = "eddpc-rho";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id, mr::Emitter<uint32_t, CellPoint>* out) {
    std::span<const double> p = ctx->dataset->point(id);
    std::vector<double> dist;
    uint32_t home = ctx->PivotDistances(p, &dist);
    CellPoint rec;
    rec.point = {id, {p.begin(), p.end()}};
    rec.is_support = 0;
    out->Emit(home, rec);
    rec.is_support = 1;
    for (uint32_t k = 0; k < ctx->p_count(); ++k) {
      if (k != home && dist[k] <= dist[home] + 2.0 * ctx->dc) {
        out->Emit(k, rec);
      }
    }
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](const uint32_t& cell,
                             std::span<const CellPoint> values,
                             std::vector<HomeInfo>* out) {
    const size_t dim = ctx->dataset->dim();
    LocalPointView home_view(dim), support_view(dim);
    for (const CellPoint& v : values) {
      (v.is_support != 0 ? support_view : home_view)
          .Add(v.point.id, v.point.coords);
    }
    // Exact rho = within-cell neighbors + one-sided support neighbors (each
    // support point is counted as a home point of its own cell).
    std::vector<uint32_t> rho =
        engine.Rho(home_view, ctx->dc, DensityKernel::kCutoff, *ctx->metric);
    engine.RhoCross(home_view, support_view, ctx->dc, *ctx->metric, rho, {});
    for (size_t i = 0; i < home_view.size(); ++i) {
      out->push_back({home_view.id(i), rho[i], cell});
    }
  };
  return job;
}

/// Job 2: exact-within-cell delta upper bound + cell statistics.
inline mr::JobSpec<HomeInfo, uint32_t, ddprec::ScoredPointRecord, BoundOrStats>
MakeEddpcDeltaBoundJob(std::shared_ptr<const EddpcJobsCtx> ctx) {
  mr::JobSpec<HomeInfo, uint32_t, ddprec::ScoredPointRecord, BoundOrStats> job;
  job.name = "eddpc-delta-bound";
  job.remote_task_id = "eddpc-delta-bound";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const HomeInfo& in,
                  mr::Emitter<uint32_t, ddprec::ScoredPointRecord>* out) {
    std::span<const double> p = ctx->dataset->point(in.id);
    out->Emit(in.cell, {in.id, in.rho, {p.begin(), p.end()}});
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](const uint32_t& cell,
                             std::span<const ddprec::ScoredPointRecord> members,
                             std::vector<BoundOrStats>* out) {
    const size_t dim = ctx->dataset->dim();
    LocalPointView view(dim);
    view.Reserve(members.size());
    std::vector<uint32_t> rho;
    rho.reserve(members.size());
    BoundOrStats cell_stats;
    cell_stats.is_stats = true;
    cell_stats.cell = cell;
    for (const ddprec::ScoredPointRecord& m : members) {
      view.Add(m.id, m.coords);
      rho.push_back(m.rho);
      cell_stats.radius = std::max(
          cell_stats.radius, ctx->metric->Distance(m.coords, ctx->pivots[cell]));
      cell_stats.max_rho = std::max(cell_stats.max_rho, m.rho);
    }
    // Exact within-cell delta over the density total order; the cell's
    // densest member keeps delta_ub = +inf and no upslope.
    LocalDeltaScores local = engine.Delta(view, rho, *ctx->metric);
    for (size_t k = 0; k < members.size(); ++k) {
      BoundOrStats rec;
      rec.bound = {members[k].id, members[k].rho,  cell,
                   local.delta[k], local.delta_sq[k], local.upslope[k]};
      out->push_back(rec);
    }
    out->push_back(cell_stats);
  };
  return job;
}

/// Job 3: cross-cell delta refinement with radius/max-rho filtering. The
/// ctx must carry the cell statistics job 2 produced.
inline mr::JobSpec<BoundInfo, uint32_t, MemberOrQuery, EddpcDeltaOut>
MakeEddpcDeltaRefineJob(std::shared_ptr<const EddpcJobsCtx> ctx) {
  mr::JobSpec<BoundInfo, uint32_t, MemberOrQuery, EddpcDeltaOut> job;
  job.name = "eddpc-delta-refine";
  job.remote_task_id = "eddpc-delta-refine";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const BoundInfo& in,
                  mr::Emitter<uint32_t, MemberOrQuery>* out) {
    std::span<const double> p = ctx->dataset->point(in.id);
    MemberOrQuery rec;
    rec.id = in.id;
    rec.rho = in.rho;
    rec.coords.assign(p.begin(), p.end());
    rec.is_query = 0;
    out->Emit(in.cell, rec);
    rec.is_query = 1;
    rec.delta_ub_sq = in.delta_ub_sq;
    std::vector<double> dist;
    (void)ctx->PivotDistances(p, &dist);
    for (uint32_t k = 0; k < ctx->p_count(); ++k) {
      if (k == in.cell || ctx->cell_nonempty[k] == 0) continue;
      // A denser point can exist in cell k only if its densest member
      // reaches rho_i (ties resolved by id in the reducer). This filter is
      // our extension over the published EDDPC; see Eddpc::Params.
      if (ctx->use_max_rho_filter && ctx->cell_max_rho[k] < in.rho) continue;
      // Lower bound on the distance from i to any member of cell k.
      if (dist[k] - ctx->cell_radius[k] >= in.delta_ub) continue;
      out->Emit(k, rec);
    }
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](const uint32_t&,
                             std::span<const MemberOrQuery> values,
                             std::vector<EddpcDeltaOut>* out) {
    const size_t dim = ctx->dataset->dim();
    LocalPointView member_view(dim), query_view(dim);
    std::vector<uint32_t> member_rho, query_rho;
    std::vector<LocalDeltaBest> best;
    for (const MemberOrQuery& v : values) {
      if (v.is_query != 0) {
        query_view.Add(v.id, v.coords);
        query_rho.push_back(v.rho);
        // Seed with the within-cell bound; only a strict improvement (or an
        // equal distance, which wins the id tie-break against the invalid
        // seed) produces a refinement candidate.
        best.push_back({v.delta_ub_sq, kInvalidPointId});
      } else {
        member_view.Add(v.id, v.coords);
        member_rho.push_back(v.rho);
      }
    }
    engine.DeltaCross(query_view, query_rho, member_view, member_rho,
                      *ctx->metric, best);
    for (size_t k = 0; k < best.size(); ++k) {
      if (best[k].upslope == kInvalidPointId) continue;
      out->push_back({query_view.id(k),
                      ddprec::DeltaCandidate{best[k].d_sq, best[k].upslope}});
    }
  };
  return job;
}

/// Job 4: min-aggregate home bounds and refinement candidates.
inline mr::JobSpec<EddpcDeltaOut, PointId, ddprec::DeltaCandidate,
                   EddpcDeltaOut>
MakeEddpcDeltaAggregateJob() {
  mr::JobSpec<EddpcDeltaOut, PointId, ddprec::DeltaCandidate, EddpcDeltaOut>
      job;
  job.name = "eddpc-delta-aggregate";
  job.remote_task_id = "eddpc-delta-aggregate";
  job.map = [](const EddpcDeltaOut& in,
               mr::Emitter<PointId, ddprec::DeltaCandidate>* out) {
    out->Emit(in.first, in.second);
  };
  job.combiner = [](const PointId&,
                    std::vector<ddprec::DeltaCandidate> values) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    return std::vector<ddprec::DeltaCandidate>{best};
  };
  job.reduce = [](const PointId& id,
                  std::span<const ddprec::DeltaCandidate> values,
                  std::vector<EddpcDeltaOut>* out) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    out->push_back({id, best});
  };
  return job;
}

}  // namespace eddpcjobs
}  // namespace ddp

#include "ddp/eddpc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/dp_types.h"
#include "core/local_dp.h"
#include "ddp/records.h"

namespace ddp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Job 1 intermediate: a point routed to a Voronoi cell, either as one of the
// cell's own ("home") points or as a replicated neighbor-support point.
struct CellPoint {
  uint8_t is_support = 0;
  ddprec::PointRecord point;

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(is_support);
    point.SerializeTo(w);
  }
  static Status DeserializeFrom(BufferReader* r, CellPoint* out) {
    DDP_RETURN_NOT_OK(r->GetByte(&out->is_support));
    return ddprec::PointRecord::DeserializeFrom(r, &out->point);
  }
  bool operator==(const CellPoint&) const = default;
};

// Job 3 intermediate: a cell member (comparison target) or a delta query.
// Queries carry their squared within-cell bound — the engine's canonical
// comparison space — as the refinement seed.
struct MemberOrQuery {
  uint8_t is_query = 0;
  PointId id = 0;
  uint32_t rho = 0;
  double delta_ub_sq = 0.0;  // queries only
  std::vector<double> coords;

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(is_query);
    w->PutVarint32(id);
    w->PutVarint32(rho);
    if (is_query != 0) w->PutDouble(delta_ub_sq);
    w->PutVarint64(coords.size());
    for (double c : coords) w->PutDouble(c);
  }
  static Status DeserializeFrom(BufferReader* r, MemberOrQuery* out) {
    DDP_RETURN_NOT_OK(r->GetByte(&out->is_query));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    out->delta_ub_sq = 0.0;
    if (out->is_query != 0) DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_ub_sq));
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->coords.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r->GetDouble(&out->coords[i]));
    }
    return Status::OK();
  }
  bool operator==(const MemberOrQuery&) const = default;
};

// Per-point state threaded between jobs. Never shuffled, but it is a reduce
// output type, so it carries member serde: that is what lets the jobs
// producing it run their reduce phase in forked workers (and be
// checkpoint-replayable).
struct HomeInfo {
  PointId id = 0;
  uint32_t rho = 0;
  uint32_t cell = 0;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(id);
    w->PutVarint32(rho);
    w->PutVarint32(cell);
  }
  static Status DeserializeFrom(BufferReader* r, HomeInfo* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    return r->GetVarint32(&out->cell);
  }
};

struct BoundInfo {
  PointId id = 0;
  uint32_t rho = 0;
  uint32_t cell = 0;
  double delta_ub = kInf;     // distance space, for the cell-radius filter
  double delta_ub_sq = kInf;  // squared space, the refinement seed
  PointId upslope = kInvalidPointId;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(id);
    w->PutVarint32(rho);
    w->PutVarint32(cell);
    w->PutDouble(delta_ub);
    w->PutDouble(delta_ub_sq);
    w->PutVarint32(upslope);
  }
  static Status DeserializeFrom(BufferReader* r, BoundInfo* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->cell));
    DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_ub));
    DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_ub_sq));
    return r->GetVarint32(&out->upslope);
  }
};

// Job 2 output: either a per-point bound or per-cell statistics.
struct BoundOrStats {
  bool is_stats = false;
  BoundInfo bound;          // when !is_stats
  uint32_t cell = 0;        // when is_stats
  double radius = 0.0;      // max distance member -> pivot
  uint32_t max_rho = 0;     // densest member

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(is_stats ? 1 : 0);
    bound.SerializeTo(w);
    w->PutVarint32(cell);
    w->PutDouble(radius);
    w->PutVarint32(max_rho);
  }
  static Status DeserializeFrom(BufferReader* r, BoundOrStats* out) {
    uint8_t s = 0;
    DDP_RETURN_NOT_OK(r->GetByte(&s));
    out->is_stats = s != 0;
    DDP_RETURN_NOT_OK(BoundInfo::DeserializeFrom(r, &out->bound));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->cell));
    DDP_RETURN_NOT_OK(r->GetDouble(&out->radius));
    return r->GetVarint32(&out->max_rho);
  }
};

}  // namespace

Result<DpScores> Eddpc::ComputeScores(const Dataset& dataset, double dc,
                                      const CountingMetric& metric,
                                      const mr::Options& mr_options,
                                      mr::RunStats* stats) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  const size_t n_points = dataset.size();

  // ---- Pivot sampling (centralized, as in EDDPC's preprocessing).
  size_t num_pivots = params_.num_pivots;
  if (num_pivots == 0) {
    // ddp-lint: allow(no-raw-sqrt) -- ~2*sqrt(N) pivot-count heuristic,
    // not a distance; no determinism contract applies.
    num_pivots = static_cast<size_t>(
        2.0 * std::sqrt(static_cast<double>(n_points)));
    num_pivots = std::clamp<size_t>(num_pivots, 4, 256);
  }
  num_pivots = std::min(num_pivots, n_points);
  Rng rng(params_.seed);
  std::vector<size_t> pivot_ids =
      SampleWithoutReplacement(n_points, num_pivots, &rng);
  std::sort(pivot_ids.begin(), pivot_ids.end());
  std::vector<std::vector<double>> pivots(num_pivots);
  for (size_t k = 0; k < num_pivots; ++k) {
    std::span<const double> p =
        dataset.point(static_cast<PointId>(pivot_ids[k]));
    pivots[k].assign(p.begin(), p.end());
  }
  const uint32_t p_count = static_cast<uint32_t>(num_pivots);

  // Distances from a point to every pivot; returns the home cell.
  auto pivot_distances = [&](std::span<const double> p,
                             std::vector<double>* dist) {
    dist->resize(p_count);
    uint32_t home = 0;
    for (uint32_t k = 0; k < p_count; ++k) {
      (*dist)[k] = metric.Distance(p, pivots[k]);
      if ((*dist)[k] < (*dist)[home]) home = k;
    }
    return home;
  };

  std::vector<PointId> input(n_points);
  std::iota(input.begin(), input.end(), 0);

  // ---- Job 1: exact rho via home + 2*d_c support replication.
  mr::JobSpec<PointId, uint32_t, CellPoint, HomeInfo> rho_job;
  rho_job.name = "eddpc-rho";
  rho_job.map = [&dataset, &pivot_distances, dc, p_count](
                    const PointId& id, mr::Emitter<uint32_t, CellPoint>* out) {
    std::span<const double> p = dataset.point(id);
    std::vector<double> dist;
    uint32_t home = pivot_distances(p, &dist);
    CellPoint rec;
    rec.point = {id, {p.begin(), p.end()}};
    rec.is_support = 0;
    out->Emit(home, rec);
    rec.is_support = 1;
    for (uint32_t k = 0; k < p_count; ++k) {
      if (k != home && dist[k] <= dist[home] + 2.0 * dc) {
        out->Emit(k, rec);
      }
    }
  };
  const size_t dim = dataset.dim();
  LocalDpEngineOptions engine_options;
  engine_options.backend = params_.local_backend;
  const LocalDpEngine engine(engine_options);
  rho_job.reduce = [dc, dim, engine, &metric](const uint32_t& cell,
                                              std::span<const CellPoint> values,
                                              std::vector<HomeInfo>* out) {
    LocalPointView home_view(dim), support_view(dim);
    for (const CellPoint& v : values) {
      (v.is_support != 0 ? support_view : home_view)
          .Add(v.point.id, v.point.coords);
    }
    // Exact rho = within-cell neighbors + one-sided support neighbors (each
    // support point is counted as a home point of its own cell).
    std::vector<uint32_t> rho =
        engine.Rho(home_view, dc, DensityKernel::kCutoff, metric);
    engine.RhoCross(home_view, support_view, dc, metric, rho, {});
    for (size_t i = 0; i < home_view.size(); ++i) {
      out->push_back({home_view.id(i), rho[i], cell});
    }
  };
  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(std::vector<HomeInfo> homes,
                       mr::RunJob(rho_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 2: exact-within-cell delta upper bound + cell statistics.
  mr::JobSpec<HomeInfo, uint32_t, ddprec::ScoredPointRecord, BoundOrStats>
      bound_job;
  bound_job.name = "eddpc-delta-bound";
  bound_job.map = [&dataset](const HomeInfo& in,
                             mr::Emitter<uint32_t, ddprec::ScoredPointRecord>*
                                 out) {
    std::span<const double> p = dataset.point(in.id);
    out->Emit(in.cell, {in.id, in.rho, {p.begin(), p.end()}});
  };
  bound_job.reduce = [dim, engine, &pivots, &metric](
                         const uint32_t& cell,
                         std::span<const ddprec::ScoredPointRecord> members,
                         std::vector<BoundOrStats>* out) {
    LocalPointView view(dim);
    view.Reserve(members.size());
    std::vector<uint32_t> rho;
    rho.reserve(members.size());
    BoundOrStats cell_stats;
    cell_stats.is_stats = true;
    cell_stats.cell = cell;
    for (const ddprec::ScoredPointRecord& m : members) {
      view.Add(m.id, m.coords);
      rho.push_back(m.rho);
      cell_stats.radius =
          std::max(cell_stats.radius, metric.Distance(m.coords, pivots[cell]));
      cell_stats.max_rho = std::max(cell_stats.max_rho, m.rho);
    }
    // Exact within-cell delta over the density total order; the cell's
    // densest member keeps delta_ub = +inf and no upslope.
    LocalDeltaScores local = engine.Delta(view, rho, metric);
    for (size_t k = 0; k < members.size(); ++k) {
      BoundOrStats rec;
      rec.bound = {members[k].id, members[k].rho,  cell,
                   local.delta[k], local.delta_sq[k], local.upslope[k]};
      out->push_back(rec);
    }
    out->push_back(cell_stats);
  };
  DDP_ASSIGN_OR_RETURN(std::vector<BoundOrStats> bounds_and_stats,
                       mr::RunJob(bound_job, std::span<const HomeInfo>(homes),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  homes.clear();
  homes.shrink_to_fit();

  std::vector<double> cell_radius(num_pivots, 0.0);
  std::vector<uint32_t> cell_max_rho(num_pivots, 0);
  std::vector<bool> cell_nonempty(num_pivots, false);
  std::vector<BoundInfo> bounds;
  bounds.reserve(n_points);
  for (const BoundOrStats& b : bounds_and_stats) {
    if (b.is_stats) {
      cell_radius[b.cell] = b.radius;
      cell_max_rho[b.cell] = b.max_rho;
      cell_nonempty[b.cell] = true;
    } else {
      bounds.push_back(b.bound);
    }
  }
  bounds_and_stats.clear();
  bounds_and_stats.shrink_to_fit();

  // ---- Job 3: cross-cell delta refinement with radius/max-rho filtering.
  using DeltaOut = std::pair<PointId, ddprec::DeltaCandidate>;
  mr::JobSpec<BoundInfo, uint32_t, MemberOrQuery, DeltaOut> refine_job;
  refine_job.name = "eddpc-delta-refine";
  const bool use_max_rho_filter = params_.use_max_rho_filter;
  refine_job.map = [&dataset, &pivot_distances, &cell_radius, &cell_max_rho,
                    &cell_nonempty, p_count, use_max_rho_filter](
                       const BoundInfo& in,
                       mr::Emitter<uint32_t, MemberOrQuery>* out) {
    std::span<const double> p = dataset.point(in.id);
    MemberOrQuery rec;
    rec.id = in.id;
    rec.rho = in.rho;
    rec.coords.assign(p.begin(), p.end());
    rec.is_query = 0;
    out->Emit(in.cell, rec);
    rec.is_query = 1;
    rec.delta_ub_sq = in.delta_ub_sq;
    std::vector<double> dist;
    (void)pivot_distances(p, &dist);
    for (uint32_t k = 0; k < p_count; ++k) {
      if (k == in.cell || !cell_nonempty[k]) continue;
      // A denser point can exist in cell k only if its densest member
      // reaches rho_i (ties resolved by id in the reducer). This filter is
      // our extension over the published EDDPC; see Params.
      if (use_max_rho_filter && cell_max_rho[k] < in.rho) continue;
      // Lower bound on the distance from i to any member of cell k.
      if (dist[k] - cell_radius[k] >= in.delta_ub) continue;
      out->Emit(k, rec);
    }
  };
  refine_job.reduce = [dim, engine, &metric](const uint32_t&,
                                             std::span<const MemberOrQuery> values,
                                             std::vector<DeltaOut>* out) {
    LocalPointView member_view(dim), query_view(dim);
    std::vector<uint32_t> member_rho, query_rho;
    std::vector<LocalDeltaBest> best;
    for (const MemberOrQuery& v : values) {
      if (v.is_query != 0) {
        query_view.Add(v.id, v.coords);
        query_rho.push_back(v.rho);
        // Seed with the within-cell bound; only a strict improvement (or an
        // equal distance, which wins the id tie-break against the invalid
        // seed) produces a refinement candidate.
        best.push_back({v.delta_ub_sq, kInvalidPointId});
      } else {
        member_view.Add(v.id, v.coords);
        member_rho.push_back(v.rho);
      }
    }
    engine.DeltaCross(query_view, query_rho, member_view, member_rho, metric,
                      best);
    for (size_t k = 0; k < best.size(); ++k) {
      if (best[k].upslope == kInvalidPointId) continue;
      out->push_back({query_view.id(k),
                      ddprec::DeltaCandidate{best[k].d_sq, best[k].upslope}});
    }
  };
  DDP_ASSIGN_OR_RETURN(std::vector<DeltaOut> refinements,
                       mr::RunJob(refine_job, std::span<const BoundInfo>(bounds),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 4: min-aggregate home bounds and refinement candidates.
  std::vector<DeltaOut> candidates;
  candidates.reserve(bounds.size() + refinements.size());
  for (const BoundInfo& b : bounds) {
    candidates.push_back(
        {b.id, ddprec::DeltaCandidate{b.delta_ub_sq, b.upslope}});
  }
  std::move(refinements.begin(), refinements.end(),
            std::back_inserter(candidates));

  mr::JobSpec<DeltaOut, PointId, ddprec::DeltaCandidate, DeltaOut> agg_job;
  agg_job.name = "eddpc-delta-aggregate";
  agg_job.map = [](const DeltaOut& in,
                   mr::Emitter<PointId, ddprec::DeltaCandidate>* out) {
    out->Emit(in.first, in.second);
  };
  agg_job.combiner = [](const PointId&,
                        std::vector<ddprec::DeltaCandidate> values) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    return std::vector<ddprec::DeltaCandidate>{best};
  };
  agg_job.reduce = [](const PointId& id,
                      std::span<const ddprec::DeltaCandidate> values,
                      std::vector<DeltaOut>* out) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    out->push_back({id, best});
  };
  DDP_ASSIGN_OR_RETURN(
      std::vector<DeltaOut> delta_final,
      mr::RunJob(agg_job, std::span<const DeltaOut>(candidates), mr_options,
                 &counters));
  if (stats != nullptr) stats->Add(counters);

  DpScores scores;
  scores.Resize(n_points);
  for (const BoundInfo& b : bounds) scores.rho[b.id] = b.rho;
  for (const DeltaOut& d : delta_final) {
    // ddp-lint: allow(no-raw-sqrt) -- final assembly: one sqrt per point
    // when delta_sq leaves the shuffled squared-space representation.
    scores.delta[d.first] = std::sqrt(d.second.delta_sq);
    scores.upslope[d.first] = d.second.upslope;
  }
  return scores;
}

}  // namespace ddp

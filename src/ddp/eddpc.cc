#include "ddp/eddpc.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "ddp/eddpc_jobs.h"

namespace ddp {

Result<DpScores> Eddpc::ComputeScores(const Dataset& dataset, double dc,
                                      const CountingMetric& metric,
                                      const mr::Options& mr_options,
                                      mr::RunStats* stats) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  const size_t n_points = dataset.size();

  // ---- Pivot sampling (centralized, as in EDDPC's preprocessing).
  size_t num_pivots = params_.num_pivots;
  if (num_pivots == 0) {
    // ddp-lint: allow(no-raw-sqrt) -- ~2*sqrt(N) pivot-count heuristic,
    // not a distance; no determinism contract applies.
    num_pivots = static_cast<size_t>(
        2.0 * std::sqrt(static_cast<double>(n_points)));
    num_pivots = std::clamp<size_t>(num_pivots, 4, 256);
  }
  num_pivots = std::min(num_pivots, n_points);
  Rng rng(params_.seed);
  std::vector<size_t> pivot_ids =
      SampleWithoutReplacement(n_points, num_pivots, &rng);
  std::sort(pivot_ids.begin(), pivot_ids.end());
  std::vector<std::vector<double>> pivots(num_pivots);
  for (size_t k = 0; k < num_pivots; ++k) {
    std::span<const double> p =
        dataset.point(static_cast<PointId>(pivot_ids[k]));
    pivots[k].assign(p.begin(), p.end());
  }

  // Job closures (local and, via JobSetupMsg ctx blobs, remote) read
  // everything through this ctx; see ddp/eddpc_jobs.h. The sampled pivots
  // ship verbatim so workers never re-sample.
  auto make_ctx = [&] {
    auto ctx = std::make_shared<eddpcjobs::EddpcJobsCtx>();
    ctx->dc = dc;
    ctx->backend = params_.local_backend;
    ctx->use_max_rho_filter = params_.use_max_rho_filter;
    ctx->pivots = pivots;
    ctx->dataset = &dataset;
    ctx->metric = &metric;
    return ctx;
  };

  std::vector<PointId> input(n_points);
  std::iota(input.begin(), input.end(), 0);

  // ---- Job 1: exact rho via home + 2*d_c support replication.
  auto rho_job = eddpcjobs::MakeEddpcRhoJob(make_ctx());
  mr::JobCounters counters;
  DDP_ASSIGN_OR_RETURN(std::vector<eddpcjobs::HomeInfo> homes,
                       mr::RunJob(rho_job, std::span<const PointId>(input),
                                  mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 2: exact-within-cell delta upper bound + cell statistics.
  auto bound_job = eddpcjobs::MakeEddpcDeltaBoundJob(make_ctx());
  DDP_ASSIGN_OR_RETURN(
      std::vector<eddpcjobs::BoundOrStats> bounds_and_stats,
      mr::RunJob(bound_job, std::span<const eddpcjobs::HomeInfo>(homes),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);
  homes.clear();
  homes.shrink_to_fit();

  std::vector<double> cell_radius(num_pivots, 0.0);
  std::vector<uint32_t> cell_max_rho(num_pivots, 0);
  std::vector<uint8_t> cell_nonempty(num_pivots, 0);
  std::vector<eddpcjobs::BoundInfo> bounds;
  bounds.reserve(n_points);
  for (const eddpcjobs::BoundOrStats& b : bounds_and_stats) {
    if (b.is_stats) {
      cell_radius[b.cell] = b.radius;
      cell_max_rho[b.cell] = b.max_rho;
      cell_nonempty[b.cell] = 1;
    } else {
      bounds.push_back(b.bound);
    }
  }
  bounds_and_stats.clear();
  bounds_and_stats.shrink_to_fit();

  // ---- Job 3: cross-cell delta refinement with radius/max-rho filtering.
  auto refine_ctx = make_ctx();
  refine_ctx->cell_radius = cell_radius;
  refine_ctx->cell_max_rho = cell_max_rho;
  refine_ctx->cell_nonempty = cell_nonempty;
  auto refine_job = eddpcjobs::MakeEddpcDeltaRefineJob(std::move(refine_ctx));
  DDP_ASSIGN_OR_RETURN(
      std::vector<eddpcjobs::EddpcDeltaOut> refinements,
      mr::RunJob(refine_job, std::span<const eddpcjobs::BoundInfo>(bounds),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  // ---- Job 4: min-aggregate home bounds and refinement candidates.
  std::vector<eddpcjobs::EddpcDeltaOut> candidates;
  candidates.reserve(bounds.size() + refinements.size());
  for (const eddpcjobs::BoundInfo& b : bounds) {
    candidates.push_back(
        {b.id, ddprec::DeltaCandidate{b.delta_ub_sq, b.upslope}});
  }
  std::move(refinements.begin(), refinements.end(),
            std::back_inserter(candidates));

  auto agg_job = eddpcjobs::MakeEddpcDeltaAggregateJob();
  DDP_ASSIGN_OR_RETURN(
      std::vector<eddpcjobs::EddpcDeltaOut> delta_final,
      mr::RunJob(agg_job,
                 std::span<const eddpcjobs::EddpcDeltaOut>(candidates),
                 mr_options, &counters));
  if (stats != nullptr) stats->Add(counters);

  DpScores scores;
  scores.Resize(n_points);
  for (const eddpcjobs::BoundInfo& b : bounds) scores.rho[b.id] = b.rho;
  for (const eddpcjobs::EddpcDeltaOut& d : delta_final) {
    // ddp-lint: allow(no-raw-sqrt) -- final assembly: one sqrt per point
    // when delta_sq leaves the shuffled squared-space representation.
    scores.delta[d.first] = std::sqrt(d.second.delta_sq);
    scores.upslope[d.first] = d.second.upslope;
  }
  return scores;
}

}  // namespace ddp

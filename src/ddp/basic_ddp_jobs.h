#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "core/kernel.h"
#include "core/local_dp.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "ddp/job_ctx.h"
#include "ddp/records.h"
#include "mapreduce/mapreduce.h"

/// \file basic_ddp_jobs.h
/// The four Basic-DDP MapReduce jobs (Sec. III) as reusable JobSpec
/// factories, shared by BasicDdp::ComputeScores and the worker-side
/// JobRegistry (ddp/remote_jobs.cc). See lsh_ddp_jobs.h for the ctx
/// borrow/own convention.

namespace ddp {
namespace basicjobs {

using BasicRhoPartial = std::pair<PointId, uint32_t>;
using BasicDeltaOut = std::pair<PointId, ddprec::DeltaCandidate>;

/// A point in flight tagged with its source block.
struct BlockedPoint {
  uint32_t block = 0;
  ddprec::ScoredPointRecord point;  // rho unused (0) in the rho job

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(block);
    point.SerializeTo(w);
  }
  static Status DeserializeFrom(BufferReader* r, BlockedPoint* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->block));
    return ddprec::ScoredPointRecord::DeserializeFrom(r, &out->point);
  }
  bool operator==(const BlockedPoint&) const = default;
};

inline uint32_t BlockOf(PointId id, uint32_t num_blocks) {
  return id % num_blocks;
}

/// Reducers this block must be shuffled to under the circular scheme.
inline void TargetsOf(uint32_t block, uint32_t num_blocks,
                      std::vector<uint32_t>* out) {
  out->clear();
  uint32_t h = num_blocks / 2;
  for (uint32_t t = 0; t <= h; ++t) {
    out->push_back((block + t) % num_blocks);
  }
}

/// The reducer at which blocks `a` and `b` (of `n` blocks) meet.
/// BasicDdp::MeetingReducer delegates here so tests keep their entry point.
inline uint32_t MeetingReducerOf(uint32_t a, uint32_t b, uint32_t n) {
  if (a == b) return a;
  uint32_t diff = (b + n - a) % n;
  uint32_t rdiff = n - diff;
  if (diff < rdiff) return b;
  if (rdiff < diff) return a;
  return std::max(a, b);  // even n, antipodal blocks: pick one deterministically
}

/// Reducer input grouped by source block. Members preserve arrival order;
/// `present` lists the block ids in sorted order so every loop that feeds
/// reducer output walks blocks in a derivable order, never hash order.
struct BlockGroups {
  std::unordered_map<uint32_t, std::vector<const BlockedPoint*>> members;
  std::vector<uint32_t> present;
};

inline BlockGroups GroupByBlock(std::span<const BlockedPoint> values) {
  BlockGroups groups;
  for (const BlockedPoint& v : values) groups.members[v.block].push_back(&v);
  groups.present.reserve(groups.members.size());
  // Hash-order iteration is confined to this collect step; the sort below
  // is what makes downstream emission order derivable (R2).
  for (const auto& [b, pts] : groups.members) groups.present.push_back(b);
  std::sort(groups.present.begin(), groups.present.end());
  return groups;
}

/// Borrows one block's coordinate rows into an engine view, in arrival order.
inline LocalPointView BlockView(
    const std::vector<const BlockedPoint*>& members, size_t dim) {
  LocalPointView view(dim);
  view.Reserve(members.size());
  for (const BlockedPoint* p : members) view.Add(p->point.id, p->point.coords);
  return view;
}

/// Everything the Basic-DDP job closures read. `rho` is empty for the rho
/// jobs and carries the summed densities for the delta job.
struct BasicJobsCtx {
  double dc = 0.0;
  uint32_t num_blocks = 0;
  LocalDpBackend backend = LocalDpBackend::kAuto;
  std::vector<uint32_t> rho;

  const Dataset* dataset = nullptr;
  const CountingMetric* metric = nullptr;

  std::optional<Dataset> owned_dataset;
  CountingMetric owned_metric;  // null counter: workers do not count

  LocalDpEngine Engine() const {
    LocalDpEngineOptions options;
    options.backend = backend;
    return LocalDpEngine(options);
  }

  void EncodeTo(BufferWriter* w) const {
    w->PutDouble(dc);
    w->PutVarint32(num_blocks);
    w->PutByte(static_cast<uint8_t>(backend));
    jobctx::EncodeDataset(w, *dataset);
    Serde<std::vector<uint32_t>>::Write(w, rho);
  }

  static Result<std::shared_ptr<const BasicJobsCtx>> DecodeNew(
      const std::string& blob) {
    auto ctx = std::make_shared<BasicJobsCtx>();
    BufferReader r(blob);
    DDP_RETURN_NOT_OK(r.GetDouble(&ctx->dc));
    DDP_RETURN_NOT_OK(r.GetVarint32(&ctx->num_blocks));
    uint8_t backend_byte = 0;
    DDP_RETURN_NOT_OK(r.GetByte(&backend_byte));
    ctx->backend = static_cast<LocalDpBackend>(backend_byte);
    DDP_ASSIGN_OR_RETURN(Dataset dataset, jobctx::DecodeDataset(&r));
    ctx->owned_dataset.emplace(std::move(dataset));
    DDP_RETURN_NOT_OK(Serde<std::vector<uint32_t>>::Read(&r, &ctx->rho));
    DDP_RETURN_NOT_OK(jobctx::ExpectExhausted(r, "basic"));
    ctx->dataset = &*ctx->owned_dataset;
    ctx->metric = &ctx->owned_metric;
    return std::shared_ptr<const BasicJobsCtx>(std::move(ctx));
  }
};

/// Job 1: rho partials. Map routes each point to its block's meeting
/// reducers; each reducer computes the distances of the block pairs it owns
/// and accumulates per-point neighbor counts.
inline mr::JobSpec<PointId, uint32_t, BlockedPoint, BasicRhoPartial>
MakeBasicRhoLocalJob(std::shared_ptr<const BasicJobsCtx> ctx) {
  mr::JobSpec<PointId, uint32_t, BlockedPoint, BasicRhoPartial> job;
  job.name = "basic-rho-local";
  job.remote_task_id = "basic-rho-local";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id, mr::Emitter<uint32_t, BlockedPoint>* out) {
    std::span<const double> p = ctx->dataset->point(id);
    BlockedPoint rec;
    rec.block = BlockOf(id, ctx->num_blocks);
    rec.point = {id, 0, {p.begin(), p.end()}};
    std::vector<uint32_t> targets;
    TargetsOf(rec.block, ctx->num_blocks, &targets);
    for (uint32_t r : targets) out->Emit(r, rec);
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](const uint32_t& reducer,
                             std::span<const BlockedPoint> values,
                             std::vector<BasicRhoPartial>* out) {
    const size_t dim = ctx->dataset->dim();
    BlockGroups blocks = GroupByBlock(values);
    // All blocks present at this reducer (sorted), with engine views and
    // position-aligned partial counts.
    const std::vector<uint32_t>& present = blocks.present;
    std::unordered_map<uint32_t, LocalPointView> views;
    std::unordered_map<uint32_t, std::vector<uint32_t>> counts;
    for (uint32_t b : present) {
      views.emplace(b, BlockView(blocks.members[b], dim));
      counts[b].assign(blocks.members[b].size(), 0);
    }
    for (size_t x = 0; x < present.size(); ++x) {
      for (size_t y = x; y < present.size(); ++y) {
        uint32_t a = present[x], b = present[y];
        if (MeetingReducerOf(a, b, ctx->num_blocks) != reducer) continue;
        if (a == b) {
          std::vector<uint32_t> self = engine.Rho(
              views.at(a), ctx->dc, DensityKernel::kCutoff, *ctx->metric);
          std::vector<uint32_t>& acc = counts.at(a);
          for (size_t k = 0; k < self.size(); ++k) acc[k] += self[k];
        } else {
          engine.RhoCross(views.at(a), views.at(b), ctx->dc, *ctx->metric,
                          counts.at(a), counts.at(b));
        }
      }
    }
    // Every received point gets a partial so that rho=0 points still appear.
    for (uint32_t b : present) {
      const LocalPointView& view = views.at(b);
      const std::vector<uint32_t>& acc = counts.at(b);
      for (size_t k = 0; k < view.size(); ++k) {
        out->push_back({view.id(k), acc[k]});
      }
    }
  };
  return job;
}

/// Job 2: rho = sum of partials (with a sum combiner).
inline mr::JobSpec<BasicRhoPartial, PointId, uint32_t, BasicRhoPartial>
MakeBasicRhoAggregateJob() {
  mr::JobSpec<BasicRhoPartial, PointId, uint32_t, BasicRhoPartial> job;
  job.name = "basic-rho-aggregate";
  job.remote_task_id = "basic-rho-aggregate";
  job.map = [](const BasicRhoPartial& in,
               mr::Emitter<PointId, uint32_t>* out) {
    out->Emit(in.first, in.second);
  };
  job.combiner = [](const PointId&, std::vector<uint32_t> values) {
    uint32_t sum = 0;
    for (uint32_t v : values) sum += v;
    return std::vector<uint32_t>{sum};
  };
  job.reduce = [](const PointId& id, std::span<const uint32_t> values,
                  std::vector<BasicRhoPartial>* out) {
    uint32_t sum = 0;
    for (uint32_t v : values) sum += v;
    out->push_back({id, sum});
  };
  return job;
}

/// Job 3: delta candidates. Same routing as job 1; values carry rho from
/// the ctx.
inline mr::JobSpec<PointId, uint32_t, BlockedPoint, BasicDeltaOut>
MakeBasicDeltaLocalJob(std::shared_ptr<const BasicJobsCtx> ctx) {
  mr::JobSpec<PointId, uint32_t, BlockedPoint, BasicDeltaOut> job;
  job.name = "basic-delta-local";
  job.remote_task_id = "basic-delta-local";
  job.remote_ctx = [ctx](BufferWriter* w) { ctx->EncodeTo(w); };
  job.map = [ctx](const PointId& id, mr::Emitter<uint32_t, BlockedPoint>* out) {
    std::span<const double> p = ctx->dataset->point(id);
    BlockedPoint rec;
    rec.block = BlockOf(id, ctx->num_blocks);
    rec.point = {id, ctx->rho[id], {p.begin(), p.end()}};
    std::vector<uint32_t> targets;
    TargetsOf(rec.block, ctx->num_blocks, &targets);
    for (uint32_t r : targets) out->Emit(r, rec);
  };
  const LocalDpEngine engine = ctx->Engine();
  job.reduce = [ctx, engine](const uint32_t& reducer,
                             std::span<const BlockedPoint> values,
                             std::vector<BasicDeltaOut>* out) {
    const size_t dim = ctx->dataset->dim();
    BlockGroups blocks = GroupByBlock(values);
    const std::vector<uint32_t>& present = blocks.present;
    std::unordered_map<uint32_t, LocalPointView> views;
    std::unordered_map<uint32_t, std::vector<uint32_t>> rhos;
    std::unordered_map<uint32_t, std::vector<LocalDeltaBest>> best;
    for (uint32_t b : present) {
      views.emplace(b, BlockView(blocks.members[b], dim));
      std::vector<uint32_t>& r = rhos[b];
      r.reserve(blocks.members[b].size());
      for (const BlockedPoint* p : blocks.members[b]) r.push_back(p->point.rho);
      best[b].resize(blocks.members[b].size());
    }
    for (size_t x = 0; x < present.size(); ++x) {
      for (size_t y = x; y < present.size(); ++y) {
        uint32_t a = present[x], b = present[y];
        if (MeetingReducerOf(a, b, ctx->num_blocks) != reducer) continue;
        if (a == b) {
          LocalDeltaScores self =
              engine.Delta(views.at(a), rhos.at(a), *ctx->metric);
          std::vector<LocalDeltaBest>& acc = best.at(a);
          for (size_t k = 0; k < acc.size(); ++k) {
            if (self.upslope[k] != kInvalidPointId) {
              acc[k].Improve(self.delta_sq[k], self.upslope[k]);
            }
          }
        } else {
          engine.DeltaCrossSymmetric(views.at(a), rhos.at(a), views.at(b),
                                     rhos.at(b), *ctx->metric, best.at(a),
                                     best.at(b));
        }
      }
    }
    // Emit only points that found a denser neighbor here; the absolute peak
    // keeps no candidate anywhere.
    for (uint32_t b : present) {
      const LocalPointView& view = views.at(b);
      const std::vector<LocalDeltaBest>& acc = best.at(b);
      for (size_t k = 0; k < view.size(); ++k) {
        if (acc[k].upslope == kInvalidPointId) continue;
        out->push_back(
            {view.id(k), ddprec::DeltaCandidate{acc[k].d_sq, acc[k].upslope}});
      }
    }
  };
  return job;
}

/// Job 4: delta = min of candidates (with a min combiner).
inline mr::JobSpec<BasicDeltaOut, PointId, ddprec::DeltaCandidate,
                   BasicDeltaOut>
MakeBasicDeltaAggregateJob() {
  mr::JobSpec<BasicDeltaOut, PointId, ddprec::DeltaCandidate, BasicDeltaOut>
      job;
  job.name = "basic-delta-aggregate";
  job.remote_task_id = "basic-delta-aggregate";
  job.map = [](const BasicDeltaOut& in,
               mr::Emitter<PointId, ddprec::DeltaCandidate>* out) {
    out->Emit(in.first, in.second);
  };
  job.combiner = [](const PointId&,
                    std::vector<ddprec::DeltaCandidate> values) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    return std::vector<ddprec::DeltaCandidate>{best};
  };
  job.reduce = [](const PointId& id,
                  std::span<const ddprec::DeltaCandidate> values,
                  std::vector<BasicDeltaOut>* out) {
    ddprec::DeltaCandidate best = values[0];
    for (const auto& v : values) {
      if (v.BetterThan(best)) best = v;
    }
    out->push_back({id, best});
  };
  return job;
}

}  // namespace basicjobs
}  // namespace ddp

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/dp_types.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "mapreduce/counters.h"
#include "mapreduce/mapreduce.h"

/// \file driver.h
/// The "driver program" of Sec. II-B: runs the preprocessing d_c job, the
/// algorithm-specific rho/delta jobs, and the centralized peak selection and
/// assignment step, collecting RunStats across all jobs.

namespace ddp {

/// Interface implemented by BasicDdp, LshDdp, and Eddpc: compute (rho, delta,
/// upslope) for every point given d_c, running MapReduce jobs whose counters
/// are appended to `stats`.
class DistributedDpAlgorithm {
 public:
  virtual ~DistributedDpAlgorithm() = default;

  virtual std::string name() const = 0;

  virtual Result<DpScores> ComputeScores(const Dataset& dataset, double dc,
                                         const CountingMetric& metric,
                                         const mr::Options& mr_options,
                                         mr::RunStats* stats) = 0;
};

/// How the centralized step picks peaks off the decision graph.
struct PeakSelector {
  enum class Mode {
    kThreshold,  // rho > rho_min and delta > delta_min
    kTopK,       // k largest gamma = rho * delta
    kGammaGap,   // automatic largest-gap cut (default)
  };
  Mode mode = Mode::kGammaGap;
  double rho_min = 0.0;
  double delta_min = 0.0;
  size_t k = 0;
  size_t max_peaks = 32;

  static PeakSelector Threshold(double rho_min, double delta_min) {
    return {Mode::kThreshold, rho_min, delta_min, 0, 32};
  }
  static PeakSelector TopK(size_t k) { return {Mode::kTopK, 0, 0, k, 32}; }
  static PeakSelector GammaGap(size_t max_peaks = 32) {
    return {Mode::kGammaGap, 0, 0, 0, max_peaks};
  }

  std::vector<PointId> Select(const DecisionGraph& graph) const;
};

struct DdpOptions {
  /// Runtime options applied to every MapReduce job the driver launches.
  /// This includes out-of-core execution: setting `mr.memory_budget_bytes`
  /// (and optionally `mr.spill_dir`) makes every job of every algorithm —
  /// preprocessing, scores, assignment — spill and merge-stream through
  /// disk, with output bit-identical to the in-memory run.
  mr::Options mr;
  /// When non-empty, the driver persists every MapReduce job's output under
  /// this directory and resumes from the last completed job on re-run (see
  /// mapreduce/checkpoint.h). A killed pipeline re-run with the same options
  /// and dataset produces bit-identical results without redoing finished
  /// work. Ignored when `mr.checkpoint` is already set by the caller.
  std::string checkpoint_dir;
  /// Cutoff preprocessing (ignored when dc > 0).
  CutoffOptions cutoff;
  /// Explicit cutoff distance; <= 0 means "run the preprocessing job".
  double dc = 0.0;
  PeakSelector selector;
  /// Run the final assignment as MapReduce pointer jumping
  /// (ddp/mr_assignment.h) instead of the centralized chain walk — for
  /// regimes where even the per-point state exceeds one machine. Identical
  /// results except for descendants of unselected local peaks (orphans):
  /// the centralized walk lets them inherit their root's nearest-peak
  /// fallback, while the distributed path resolves each orphaned point to
  /// its own nearest peak.
  bool use_mr_assignment = false;
};

/// Everything a distributed run produces.
struct DdpRunResult {
  DpScores scores;
  double dc = 0.0;
  ClusterResult clusters;
  mr::RunStats stats;
  /// Distance evaluations across all phases (Fig. 10(c) axis).
  uint64_t distance_evaluations = 0;
  double total_seconds = 0.0;  // wall time incl. centralized step
};

/// The d_c preprocessing MapReduce job (Sec. III-A): map samples points to a
/// single reducer, which computes sampled pairwise distances and returns the
/// percentile value. Statistically equivalent to pair sampling with
/// s*(s-1)/2 ~= sample_pairs.
Result<double> ChooseCutoffMapReduce(const Dataset& dataset,
                                     const CountingMetric& metric,
                                     const CutoffOptions& options,
                                     const mr::Options& mr_options,
                                     mr::RunStats* stats);

/// Full pipeline: preprocessing (if needed) -> scores -> decision graph ->
/// peaks -> assignment.
Result<DdpRunResult> RunDistributedDp(DistributedDpAlgorithm* algorithm,
                                      const Dataset& dataset,
                                      const DdpOptions& options);

}  // namespace ddp


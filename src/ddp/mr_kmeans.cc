#include "ddp/mr_kmeans.h"

#include <limits>
#include <numeric>

#include "common/random.h"
#include "common/serde.h"
#include "common/stopwatch.h"

namespace ddp {

namespace {

// (sum of member coordinates, member count) — the combinable partial.
struct CentroidPartial {
  std::vector<double> sum;
  uint64_t count = 0;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint64(count);
    w->PutVarint64(sum.size());
    for (double s : sum) w->PutDouble(s);
  }
  static Status DeserializeFrom(BufferReader* r, CentroidPartial* out) {
    DDP_RETURN_NOT_OK(r->GetVarint64(&out->count));
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->sum.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r->GetDouble(&out->sum[i]));
    }
    return Status::OK();
  }
  bool operator==(const CentroidPartial&) const = default;

  void Merge(const CentroidPartial& other) {
    if (sum.empty()) sum.assign(other.sum.size(), 0.0);
    for (size_t d = 0; d < sum.size(); ++d) sum[d] += other.sum[d];
    count += other.count;
  }
};

uint32_t NearestCentroid(std::span<const double> p,
                         const std::vector<std::vector<double>>& centroids,
                         const CountingMetric& metric) {
  uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (uint32_t c = 0; c < centroids.size(); ++c) {
    double d = metric.SquaredDistance(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

Result<MrKmeansResult> RunMrKmeans(const Dataset& dataset,
                                   const MrKmeansOptions& options,
                                   const CountingMetric& metric) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.k > dataset.size()) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  MrKmeansResult result;
  // Initial centroids: k distinct points.
  Rng rng(options.seed);
  std::vector<size_t> init =
      SampleWithoutReplacement(dataset.size(), options.k, &rng);
  result.centroids.resize(options.k);
  for (size_t c = 0; c < options.k; ++c) {
    std::span<const double> p = dataset.point(static_cast<PointId>(init[c]));
    result.centroids[c].assign(p.begin(), p.end());
  }

  std::vector<PointId> input(dataset.size());
  std::iota(input.begin(), input.end(), 0);

  using IterOut = std::pair<uint32_t, CentroidPartial>;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    Stopwatch iter_timer;
    const std::vector<std::vector<double>>& centroids = result.centroids;

    mr::JobSpec<PointId, uint32_t, CentroidPartial, IterOut> job;
    job.name = "kmeans-iter-" + std::to_string(iter);
    job.map = [&dataset, &centroids, &metric](
                  const PointId& id,
                  mr::Emitter<uint32_t, CentroidPartial>* out) {
      std::span<const double> p = dataset.point(id);
      uint32_t c = NearestCentroid(p, centroids, metric);
      CentroidPartial partial;
      partial.sum.assign(p.begin(), p.end());
      partial.count = 1;
      out->Emit(c, partial);
    };
    job.combiner = [](const uint32_t&, std::vector<CentroidPartial> values) {
      CentroidPartial merged;
      for (const CentroidPartial& v : values) merged.Merge(v);
      return std::vector<CentroidPartial>{merged};
    };
    job.reduce = [](const uint32_t& c, std::span<const CentroidPartial> values,
                    std::vector<IterOut>* out) {
      CentroidPartial merged;
      for (const CentroidPartial& v : values) merged.Merge(v);
      out->push_back({c, merged});
    };

    mr::JobCounters counters;
    DDP_ASSIGN_OR_RETURN(std::vector<IterOut> partials,
                         mr::RunJob(job, std::span<const PointId>(input),
                                    options.mr, &counters));
    result.stats.Add(counters);

    double max_move_sq = 0.0;
    for (const IterOut& p : partials) {
      if (p.second.count == 0) continue;
      std::vector<double>& c = result.centroids[p.first];
      double move_sq = 0.0;
      for (size_t d = 0; d < c.size(); ++d) {
        double next = p.second.sum[d] / static_cast<double>(p.second.count);
        double diff = next - c[d];
        move_sq += diff * diff;
        c[d] = next;
      }
      max_move_sq = std::max(max_move_sq, move_sq);
    }
    result.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
    ++result.iterations_run;
    if (options.convergence_tol > 0.0 &&
        max_move_sq < options.convergence_tol) {
      break;
    }
  }

  // Final assignment pass (centralized; not timed as an iteration).
  result.assignment.resize(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    result.assignment[i] = static_cast<int>(NearestCentroid(
        dataset.point(static_cast<PointId>(i)), result.centroids, metric));
  }
  return result;
}

}  // namespace ddp

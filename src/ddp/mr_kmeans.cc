#include "ddp/mr_kmeans.h"

#include <memory>
#include <numeric>

#include "common/random.h"
#include "common/stopwatch.h"
#include "ddp/pipeline_jobs.h"

namespace ddp {

Result<MrKmeansResult> RunMrKmeans(const Dataset& dataset,
                                   const MrKmeansOptions& options,
                                   const CountingMetric& metric) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.k > dataset.size()) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  MrKmeansResult result;
  // Initial centroids: k distinct points.
  Rng rng(options.seed);
  std::vector<size_t> init =
      SampleWithoutReplacement(dataset.size(), options.k, &rng);
  result.centroids.resize(options.k);
  for (size_t c = 0; c < options.k; ++c) {
    std::span<const double> p = dataset.point(static_cast<PointId>(init[c]));
    result.centroids[c].assign(p.begin(), p.end());
  }

  std::vector<PointId> input(dataset.size());
  std::iota(input.begin(), input.end(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    Stopwatch iter_timer;

    // The iteration's job body lives in ddp/pipeline_jobs.h so exec'd
    // ddp_worker processes can run it by name; the ctx snapshots this
    // iteration's centroids.
    auto ctx = std::make_shared<pipejobs::KmeansIterCtx>();
    ctx->centroids = result.centroids;
    ctx->dataset = &dataset;
    ctx->metric = &metric;
    auto job = pipejobs::MakeKmeansIterJob(std::move(ctx), iter);

    mr::JobCounters counters;
    DDP_ASSIGN_OR_RETURN(std::vector<pipejobs::KmeansIterOut> partials,
                         mr::RunJob(job, std::span<const PointId>(input),
                                    options.mr, &counters));
    result.stats.Add(counters);

    double max_move_sq = 0.0;
    for (const pipejobs::KmeansIterOut& p : partials) {
      if (p.second.count == 0) continue;
      std::vector<double>& c = result.centroids[p.first];
      double move_sq = 0.0;
      for (size_t d = 0; d < c.size(); ++d) {
        double next = p.second.sum[d] / static_cast<double>(p.second.count);
        double diff = next - c[d];
        move_sq += diff * diff;
        c[d] = next;
      }
      max_move_sq = std::max(max_move_sq, move_sq);
    }
    result.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
    ++result.iterations_run;
    if (options.convergence_tol > 0.0 &&
        max_move_sq < options.convergence_tol) {
      break;
    }
  }

  // Final assignment pass (centralized; not timed as an iteration).
  result.assignment.resize(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    result.assignment[i] = static_cast<int>(pipejobs::NearestCentroid(
        dataset.point(static_cast<PointId>(i)), result.centroids, metric));
  }
  return result;
}

}  // namespace ddp

#include "ddp/mr_assignment.h"

#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/serde.h"

namespace ddp {

namespace {

// One message of the pointer-jumping protocol, keyed by point id.
//  kState: point `key` publishes its (cluster, parent) to its own reducer.
//  kAsk:   unresolved point `asker` asks `key` (its current parent).
struct JumpMessage {
  uint8_t kind = 0;  // 0 = state, 1 = ask
  int32_t cluster = -1;
  PointId parent = kInvalidPointId;
  PointId asker = kInvalidPointId;

  void SerializeTo(BufferWriter* w) const {
    w->PutByte(kind);
    w->PutSignedVarint64(cluster);
    w->PutVarint32(parent);
    w->PutVarint32(asker);
  }
  static Status DeserializeFrom(BufferReader* r, JumpMessage* out) {
    DDP_RETURN_NOT_OK(r->GetByte(&out->kind));
    int64_t c;
    DDP_RETURN_NOT_OK(r->GetSignedVarint64(&c));
    out->cluster = static_cast<int32_t>(c);
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->parent));
    return r->GetVarint32(&out->asker);
  }
  bool operator==(const JumpMessage&) const = default;
};

// Reducer verdict for one asker.
struct JumpUpdate {
  PointId point = kInvalidPointId;
  int32_t cluster = -1;                  // >= 0: resolved
  PointId new_parent = kInvalidPointId;  // otherwise: jump target (or orphan)

  // Member serde so the assignment rounds can fork their reduce phase (and
  // checkpoint-replay).
  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(point);
    w->PutSignedVarint64(cluster);
    w->PutVarint32(new_parent);
  }
  static Status DeserializeFrom(BufferReader* r, JumpUpdate* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->point));
    int64_t cluster = 0;
    DDP_RETURN_NOT_OK(r->GetSignedVarint64(&cluster));
    out->cluster = static_cast<int32_t>(cluster);
    return r->GetVarint32(&out->new_parent);
  }
};

}  // namespace

Result<MrAssignmentResult> AssignClustersMapReduce(
    const DpScores& scores, std::span<const PointId> peaks,
    const mr::Options& mr_options) {
  const size_t n = scores.size();
  if (n == 0) return Status::InvalidArgument("empty scores");
  if (peaks.empty()) return Status::InvalidArgument("no peaks selected");
  std::unordered_set<PointId> seen;
  for (PointId p : peaks) {
    if (p >= n) return Status::OutOfRange("peak id out of range");
    if (!seen.insert(p).second) {
      return Status::InvalidArgument("duplicate peak id");
    }
  }

  MrAssignmentResult result;
  result.assignment.assign(n, -1);
  std::vector<PointId> parent(scores.upslope.begin(), scores.upslope.end());
  for (size_t c = 0; c < peaks.size(); ++c) {
    result.assignment[peaks[c]] = static_cast<int>(c);
    parent[peaks[c]] = kInvalidPointId;  // peaks are roots
  }

  std::vector<PointId> all(n);
  std::iota(all.begin(), all.end(), 0);

  const size_t kMaxRounds = 64;  // chains halve per round: 2^64 is plenty
  for (result.rounds = 0; result.rounds < kMaxRounds; ++result.rounds) {
    // Anything left to resolve?
    bool pending = false;
    for (size_t i = 0; i < n; ++i) {
      if (result.assignment[i] < 0 && parent[i] != kInvalidPointId) {
        pending = true;
        break;
      }
    }
    if (!pending) break;

    mr::JobSpec<PointId, PointId, JumpMessage, JumpUpdate> job;
    job.name = "assign-jump-" + std::to_string(result.rounds);
    const std::vector<int>& assignment = result.assignment;
    job.map = [&assignment, &parent](const PointId& i,
                                     mr::Emitter<PointId, JumpMessage>* out) {
      JumpMessage state;
      state.kind = 0;
      state.cluster = assignment[i];
      state.parent = parent[i];
      out->Emit(i, state);
      if (assignment[i] < 0 && parent[i] != kInvalidPointId) {
        JumpMessage ask;
        ask.kind = 1;
        ask.asker = i;
        out->Emit(parent[i], ask);
      }
    };
    job.reduce = [](const PointId&, std::span<const JumpMessage> messages,
                    std::vector<JumpUpdate>* out) {
      // Exactly one state message per key; any number of asks.
      JumpMessage state;
      for (const JumpMessage& m : messages) {
        if (m.kind == 0) state = m;
      }
      for (const JumpMessage& m : messages) {
        if (m.kind != 1) continue;
        JumpUpdate update;
        update.point = m.asker;
        if (state.cluster >= 0) {
          update.cluster = state.cluster;
        } else {
          // Jump over the parent (possibly to "no parent": the asker
          // becomes an orphan rooted at an unselected local peak).
          update.new_parent = state.parent;
        }
        out->push_back(update);
      }
    };
    mr::JobCounters counters;
    DDP_ASSIGN_OR_RETURN(std::vector<JumpUpdate> updates,
                         mr::RunJob(job, std::span<const PointId>(all),
                                    mr_options, &counters));
    result.stats.Add(counters);
    for (const JumpUpdate& u : updates) {
      if (u.cluster >= 0) {
        result.assignment[u.point] = u.cluster;
        parent[u.point] = kInvalidPointId;
      } else {
        parent[u.point] = u.new_parent;
      }
    }
  }
  return result;
}

Status ResolveOrphansByNearestPeak(const Dataset& dataset,
                                   std::span<const PointId> peaks,
                                   const CountingMetric& metric,
                                   std::vector<int>* assignment) {
  if (assignment->size() != dataset.size()) {
    return Status::InvalidArgument("assignment/dataset size mismatch");
  }
  if (peaks.empty()) return Status::InvalidArgument("no peaks");
  for (size_t i = 0; i < assignment->size(); ++i) {
    if ((*assignment)[i] >= 0) continue;
    double best = std::numeric_limits<double>::infinity();
    int best_cluster = -1;
    for (size_t c = 0; c < peaks.size(); ++c) {
      double d = metric.Distance(dataset.point(static_cast<PointId>(i)),
                                 dataset.point(peaks[c]));
      if (d < best) {
        best = d;
        best_cluster = static_cast<int>(c);
      }
    }
    (*assignment)[i] = best_cluster;
  }
  return Status::OK();
}

}  // namespace ddp

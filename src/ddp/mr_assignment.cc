#include "ddp/mr_assignment.h"

#include <limits>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "ddp/pipeline_jobs.h"

namespace ddp {

Result<MrAssignmentResult> AssignClustersMapReduce(
    const DpScores& scores, std::span<const PointId> peaks,
    const mr::Options& mr_options) {
  const size_t n = scores.size();
  if (n == 0) return Status::InvalidArgument("empty scores");
  if (peaks.empty()) return Status::InvalidArgument("no peaks selected");
  std::unordered_set<PointId> seen;
  for (PointId p : peaks) {
    if (p >= n) return Status::OutOfRange("peak id out of range");
    if (!seen.insert(p).second) {
      return Status::InvalidArgument("duplicate peak id");
    }
  }

  MrAssignmentResult result;
  result.assignment.assign(n, -1);
  std::vector<PointId> parent(scores.upslope.begin(), scores.upslope.end());
  for (size_t c = 0; c < peaks.size(); ++c) {
    result.assignment[peaks[c]] = static_cast<int>(c);
    parent[peaks[c]] = kInvalidPointId;  // peaks are roots
  }

  std::vector<PointId> all(n);
  std::iota(all.begin(), all.end(), 0);

  const size_t kMaxRounds = 64;  // chains halve per round: 2^64 is plenty
  for (result.rounds = 0; result.rounds < kMaxRounds; ++result.rounds) {
    // Anything left to resolve?
    bool pending = false;
    for (size_t i = 0; i < n; ++i) {
      if (result.assignment[i] < 0 && parent[i] != kInvalidPointId) {
        pending = true;
        break;
      }
    }
    if (!pending) break;

    // The round's job body lives in ddp/pipeline_jobs.h so exec'd
    // ddp_worker processes can run it by name; the ctx snapshots this
    // round's (cluster, parent) state.
    auto ctx = std::make_shared<pipejobs::AssignJumpCtx>();
    ctx->assignment = &result.assignment;
    ctx->parent = &parent;
    auto job = pipejobs::MakeAssignJumpJob(std::move(ctx), result.rounds);
    mr::JobCounters counters;
    DDP_ASSIGN_OR_RETURN(std::vector<pipejobs::JumpUpdate> updates,
                         mr::RunJob(job, std::span<const PointId>(all),
                                    mr_options, &counters));
    result.stats.Add(counters);
    for (const pipejobs::JumpUpdate& u : updates) {
      if (u.cluster >= 0) {
        result.assignment[u.point] = u.cluster;
        parent[u.point] = kInvalidPointId;
      } else {
        parent[u.point] = u.new_parent;
      }
    }
  }
  return result;
}

Status ResolveOrphansByNearestPeak(const Dataset& dataset,
                                   std::span<const PointId> peaks,
                                   const CountingMetric& metric,
                                   std::vector<int>* assignment) {
  if (assignment->size() != dataset.size()) {
    return Status::InvalidArgument("assignment/dataset size mismatch");
  }
  if (peaks.empty()) return Status::InvalidArgument("no peaks");
  for (size_t i = 0; i < assignment->size(); ++i) {
    if ((*assignment)[i] >= 0) continue;
    double best = std::numeric_limits<double>::infinity();
    int best_cluster = -1;
    for (size_t c = 0; c < peaks.size(); ++c) {
      double d = metric.Distance(dataset.point(static_cast<PointId>(i)),
                                 dataset.point(peaks[c]));
      if (d < best) {
        best = d;
        best_cluster = static_cast<int>(c);
      }
    }
    (*assignment)[i] = best_cluster;
  }
  return Status::OK();
}

}  // namespace ddp

#pragma once

/// \file ddp.h
/// Umbrella header: everything needed for the common "load points, run a
/// distributed DP variant, get clusters" flow. Fine-grained headers remain
/// available for selective inclusion.

#include "baselines/kmeans.h"          // IWYU pragma: export
#include "core/assignment.h"           // IWYU pragma: export
#include "core/cutoff.h"               // IWYU pragma: export
#include "core/decision_graph.h"       // IWYU pragma: export
#include "core/dp_types.h"             // IWYU pragma: export
#include "core/halo.h"                 // IWYU pragma: export
#include "core/sequential_dp.h"        // IWYU pragma: export
#include "dataset/binary_io.h"         // IWYU pragma: export
#include "dataset/csv.h"               // IWYU pragma: export
#include "dataset/dataset.h"           // IWYU pragma: export
#include "dataset/generators.h"        // IWYU pragma: export
#include "ddp/basic_ddp.h"             // IWYU pragma: export
#include "ddp/driver.h"                // IWYU pragma: export
#include "ddp/eddpc.h"                 // IWYU pragma: export
#include "ddp/lsh_ddp.h"               // IWYU pragma: export
#include "ddp/mr_assignment.h"         // IWYU pragma: export
#include "ddp/mr_kmeans.h"             // IWYU pragma: export
#include "eval/internal_metrics.h"     // IWYU pragma: export
#include "eval/metrics.h"              // IWYU pragma: export
#include "eval/tau.h"                  // IWYU pragma: export
#include "lsh/tuning.h"                // IWYU pragma: export


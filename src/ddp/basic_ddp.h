#pragma once

#include <cstdint>

#include "core/local_dp.h"
#include "ddp/driver.h"

/// \file basic_ddp.h
/// Basic-DDP (Sec. III): the exact blocked MapReduce implementation of DP.
///
/// The point set is split into n disjoint blocks. Computing the full upper
/// triangular distance matrix requires every unordered pair of blocks to
/// meet at some reducer; the circular meeting scheme sends block k to
/// reducers (k + t) mod n for t = 0..floor(n/2), so every point is shuffled
/// floor(n/2) + 1 ~= ceil((n+1)/2) times (the paper's shuffle cost), and each
/// unordered block pair is computed at exactly one reducer.
///
/// Four MapReduce jobs: rho partials, rho sum-aggregation, delta candidates,
/// delta min-aggregation; rho partial and delta candidate jobs recompute
/// distances rather than materializing the O(N^2) matrix (Sec. III Step 2).
/// Results are bit-exact equal to ComputeExactDp.

namespace ddp {

class BasicDdp : public DistributedDpAlgorithm {
 public:
  struct Params {
    /// Target points per block (paper's experiments use 500).
    size_t block_size = 500;
    /// LocalDpEngine backend for the per-reducer block kernels. Results are
    /// bit-identical across backends (core/local_dp.h determinism contract),
    /// so Basic-DDP stays exact under any choice.
    LocalDpBackend local_backend = LocalDpBackend::kAuto;
  };

  BasicDdp() : BasicDdp(Params{}) {}
  explicit BasicDdp(Params params) : params_(params) {}

  std::string name() const override { return "Basic-DDP"; }

  Result<DpScores> ComputeScores(const Dataset& dataset, double dc,
                                 const CountingMetric& metric,
                                 const mr::Options& mr_options,
                                 mr::RunStats* stats) override;

  /// The reducer at which blocks `a` and `b` (of `n` blocks) meet. Exposed
  /// for tests of the coverage/duplication invariants.
  static uint32_t MeetingReducer(uint32_t a, uint32_t b, uint32_t n);

 private:
  Params params_;
};

}  // namespace ddp


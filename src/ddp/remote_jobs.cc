#include "ddp/remote_jobs.h"

#include <memory>
#include <utility>

#include "ddp/basic_ddp_jobs.h"
#include "ddp/eddpc_jobs.h"
#include "ddp/lsh_ddp_jobs.h"
#include "ddp/pipeline_jobs.h"
#include "mapreduce/remote_job.h"

namespace ddp {

namespace {

// Registers a Make function that takes a decoded ctx. `DecodeNew` rejects
// malformed/trailing bytes, so a version-skewed supervisor fails the job
// setup instead of silently computing on garbage.
template <typename Ctx, typename MakeFn>
void RegisterCtxJob(const std::string& id, MakeFn make) {
  mr::RegisterRemoteJob(
      id, [make](const mr::JobSetupMsg& setup)
              -> Result<decltype(make(std::shared_ptr<const Ctx>()))> {
        DDP_ASSIGN_OR_RETURN(std::shared_ptr<const Ctx> ctx,
                             Ctx::DecodeNew(setup.ctx));
        return make(std::move(ctx));
      });
}

// Registers a Make function with no ctx (the pure aggregation jobs).
template <typename MakeFn>
void RegisterPlainJob(const std::string& id, MakeFn make) {
  mr::RegisterRemoteJob(
      id, [make](const mr::JobSetupMsg&) -> Result<decltype(make())> {
        return make();
      });
}

}  // namespace

void RegisterAllRemoteJobs() {
  // LSH-DDP (Sec. IV).
  RegisterCtxJob<lshjobs::LshJobsCtx>("lsh-rho-local",
                                      &lshjobs::MakeLshRhoLocalJob);
  RegisterPlainJob("lsh-rho-aggregate", &lshjobs::MakeLshRhoAggregateJob);
  RegisterCtxJob<lshjobs::LshJobsCtx>("lsh-delta-local",
                                      &lshjobs::MakeLshDeltaLocalJob);
  RegisterPlainJob("lsh-delta-aggregate", &lshjobs::MakeLshDeltaAggregateJob);

  // Basic-DDP (Sec. III).
  RegisterCtxJob<basicjobs::BasicJobsCtx>("basic-rho-local",
                                          &basicjobs::MakeBasicRhoLocalJob);
  RegisterPlainJob("basic-rho-aggregate",
                   &basicjobs::MakeBasicRhoAggregateJob);
  RegisterCtxJob<basicjobs::BasicJobsCtx>("basic-delta-local",
                                          &basicjobs::MakeBasicDeltaLocalJob);
  RegisterPlainJob("basic-delta-aggregate",
                   &basicjobs::MakeBasicDeltaAggregateJob);

  // EDDPC (Table IV comparator).
  RegisterCtxJob<eddpcjobs::EddpcJobsCtx>("eddpc-rho",
                                          &eddpcjobs::MakeEddpcRhoJob);
  RegisterCtxJob<eddpcjobs::EddpcJobsCtx>("eddpc-delta-bound",
                                          &eddpcjobs::MakeEddpcDeltaBoundJob);
  RegisterCtxJob<eddpcjobs::EddpcJobsCtx>("eddpc-delta-refine",
                                          &eddpcjobs::MakeEddpcDeltaRefineJob);
  RegisterPlainJob("eddpc-delta-aggregate",
                   &eddpcjobs::MakeEddpcDeltaAggregateJob);

  // Pipeline kernels shared by every driver run. Round-suffixed job names
  // ("assign-jump-3") ride JobSetupMsg::job_name; the registry id stays the
  // stable prefix, so the round number only matters to the supervisor.
  RegisterCtxJob<pipejobs::ChooseDcCtx>("choose-dc",
                                        &pipejobs::MakeChooseDcJob);
  mr::RegisterRemoteJob(
      "assign-jump",
      [](const mr::JobSetupMsg& setup)
          -> Result<decltype(pipejobs::MakeAssignJumpJob(nullptr, 0))> {
        DDP_ASSIGN_OR_RETURN(auto ctx,
                             pipejobs::AssignJumpCtx::DecodeNew(setup.ctx));
        return pipejobs::MakeAssignJumpJob(std::move(ctx), 0);
      });
  mr::RegisterRemoteJob(
      "kmeans-iter",
      [](const mr::JobSetupMsg& setup)
          -> Result<decltype(pipejobs::MakeKmeansIterJob(nullptr, 0))> {
        DDP_ASSIGN_OR_RETURN(auto ctx,
                             pipejobs::KmeansIterCtx::DecodeNew(setup.ctx));
        return pipejobs::MakeKmeansIterJob(std::move(ctx), 0);
      });
}

}  // namespace ddp

#pragma once

/// \file remote_jobs.h
/// One-call registration of every DDP driver job in the process-global
/// mr::JobRegistry, so a ddp_worker binary (tools/ddp_worker.cc) can serve
/// any task an ExecMode::kRemote pipeline assigns: the four LSH-DDP jobs,
/// the four Basic-DDP jobs, the four EDDPC jobs, and the shared pipeline
/// jobs (choose-dc, assign-jump, kmeans-iter). Idempotent — re-registering
/// replaces the factories in place.

namespace ddp {

void RegisterAllRemoteJobs();

}  // namespace ddp

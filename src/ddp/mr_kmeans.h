#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "mapreduce/counters.h"
#include "mapreduce/mapreduce.h"

/// \file mr_kmeans.h
/// MapReduce K-means — the iterative comparator of Fig. 11. One MapReduce
/// job per Lloyd iteration: map assigns each point to its nearest centroid
/// and emits (cluster, (coordinate sums, count)) with a summing combiner;
/// reduce recomputes centroids. Per-iteration wall time is recorded so the
/// benchmark can locate which iteration count LSH-DDP's runtime corresponds
/// to (the paper finds ~iteration 24 on BigCross).

namespace ddp {

struct MrKmeansOptions {
  size_t k = 8;
  size_t max_iterations = 100;
  /// Stop early when every centroid moves less than this (squared L2);
  /// <= 0 disables early stopping (paper runs a fixed 100 iterations).
  double convergence_tol = 0.0;
  uint64_t seed = 3;
  mr::Options mr;
};

struct MrKmeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<int> assignment;
  /// Wall time of each executed iteration's MapReduce job.
  std::vector<double> iteration_seconds;
  size_t iterations_run = 0;
  mr::RunStats stats;
};

/// Runs MapReduce K-means. Initial centroids are k distinct points sampled
/// uniformly (the paper's setting; K-means++ is available in baselines/ for
/// the sequential variant).
Result<MrKmeansResult> RunMrKmeans(const Dataset& dataset,
                                   const MrKmeansOptions& options,
                                   const CountingMetric& metric);

}  // namespace ddp


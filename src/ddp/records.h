#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "dataset/dataset.h"

/// \file records.h
/// Intermediate record types shared by the distributed DP jobs, with Serde
/// implementations so the MapReduce shuffle can account their real encoded
/// size. Coordinates dominate these records, exactly as in the paper's
/// shuffle-cost model (Eq. (6): |S| terms).

namespace ddp {
namespace ddprec {

/// A point in flight: id + coordinates.
struct PointRecord {
  PointId id = 0;
  std::vector<double> coords;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(id);
    w->PutVarint64(coords.size());
    for (double c : coords) w->PutDouble(c);
  }
  static Status DeserializeFrom(BufferReader* r, PointRecord* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->coords.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r->GetDouble(&out->coords[i]));
    }
    return Status::OK();
  }
  bool operator==(const PointRecord&) const = default;
};

/// A point in flight carrying its (approximate) density.
struct ScoredPointRecord {
  PointId id = 0;
  uint32_t rho = 0;
  std::vector<double> coords;

  void SerializeTo(BufferWriter* w) const {
    w->PutVarint32(id);
    w->PutVarint32(rho);
    w->PutVarint64(coords.size());
    for (double c : coords) w->PutDouble(c);
  }
  static Status DeserializeFrom(BufferReader* r, ScoredPointRecord* out) {
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->id));
    DDP_RETURN_NOT_OK(r->GetVarint32(&out->rho));
    uint64_t n;
    DDP_RETURN_NOT_OK(r->GetVarint64(&n));
    out->coords.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DDP_RETURN_NOT_OK(r->GetDouble(&out->coords[i]));
    }
    return Status::OK();
  }
  bool operator==(const ScoredPointRecord&) const = default;
};

/// A (delta, upslope) candidate produced by a local computation; aggregated
/// by min-delta. Candidates carry the SQUARED delta while in flight — the
/// LocalDpEngine's canonical comparison space — so min-aggregation across
/// reducers resolves distance ties exactly like the sequential oracle; the
/// driver takes one sqrt per point when assembling final scores.
struct DeltaCandidate {
  double delta_sq = 0.0;  // may be +infinity (local absolute peak)
  PointId upslope = kInvalidPointId;

  void SerializeTo(BufferWriter* w) const {
    w->PutDouble(delta_sq);
    w->PutVarint32(upslope);
  }
  static Status DeserializeFrom(BufferReader* r, DeltaCandidate* out) {
    DDP_RETURN_NOT_OK(r->GetDouble(&out->delta_sq));
    return r->GetVarint32(&out->upslope);
  }
  bool operator==(const DeltaCandidate&) const = default;

  /// True if this candidate beats `other` (smaller squared delta; ties by
  /// upslope id for determinism).
  bool BetterThan(const DeltaCandidate& other) const {
    if (delta_sq != other.delta_sq) return delta_sq < other.delta_sq;
    return upslope < other.upslope;
  }
};

}  // namespace ddprec
}  // namespace ddp


#pragma once

#include <cstdint>

#include "core/local_dp.h"
#include "ddp/driver.h"

/// \file eddpc.h
/// EDDPC (Gong & Zhang [21]) — the exact distributed DP comparator of
/// Table IV. It replaces LSH partitioning with a Voronoi partition over
/// sampled pivots and uses replication + filtering to keep results exact:
///
///  * rho: each point lives in the cell of its nearest pivot; it is
///    additionally replicated as a "support" point to every cell j with
///    d(p, c_j) <= d(p, c_home) + 2 d_c — the triangle inequality guarantees
///    every potential d_c-neighbor pair meets in the neighbor's home cell,
///    so local counting is exact.
///  * delta: a first pass computes an exact-within-cell upper bound
///    delta_ub; a second pass replicates point i as a query to any cell j
///    that could contain a closer denser point, filtered by the cell-radius
///    lower bound d(i, c_j) - r_j < delta_ub_i and the cell's max density
///    (a cell with max rho below rho_i cannot host an upslope point);
///    min-aggregation over the home bound and the query results is exact.
///
/// Compared to Basic-DDP it shuffles far less (no all-pairs blocks); compared
/// to LSH-DDP it must compute more distances to stay exact — the profile
/// Table IV reports.

namespace ddp {

class Eddpc : public DistributedDpAlgorithm {
 public:
  struct Params {
    /// Number of Voronoi pivots; 0 derives ~2*sqrt(N) capped to [4, 256].
    size_t num_pivots = 0;
    uint64_t seed = 11;
    /// Skip query replication to cells whose densest member cannot beat the
    /// query's density. This refinement is OUR addition on top of the
    /// published EDDPC (which filters by distance bounds only); disable it
    /// to reproduce the comparator as the paper measured it (Table IV).
    bool use_max_rho_filter = true;
    /// LocalDpEngine backend for the per-cell kernels (rho counting, the
    /// within-cell delta bound, and the cross-cell refinement). Results are
    /// bit-identical across backends, so EDDPC stays exact.
    LocalDpBackend local_backend = LocalDpBackend::kAuto;
  };

  Eddpc() : Eddpc(Params{}) {}
  explicit Eddpc(Params params) : params_(params) {}

  std::string name() const override { return "EDDPC"; }

  Result<DpScores> ComputeScores(const Dataset& dataset, double dc,
                                 const CountingMetric& metric,
                                 const mr::Options& mr_options,
                                 mr::RunStats* stats) override;

 private:
  Params params_;
};

}  // namespace ddp


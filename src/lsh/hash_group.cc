#include "lsh/hash_group.h"

// Header-only; this translation unit verifies self-containment.

namespace ddp {
namespace lsh {}  // namespace lsh
}  // namespace ddp

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

/// \file tuning.h
/// Parameter selection per Section V: the user specifies a target accuracy
/// confidence A plus the integer parameters M (layouts) and pi (functions per
/// group); the minimal feasible width w follows in closed form from Eq. (5):
///
///   A = 1 - [1 - P_rho(w, d_c)^pi]^M
///   => P_rho* = (1 - (1-A)^{1/M})^{1/pi}
///   => w = 4 d_c / (sqrt(2 pi_const) (1 - P_rho*))
///
/// Smaller w means narrower slots, hence smaller buckets and less work
/// (Sec. V-B), so the minimal feasible w is also the cheapest.

namespace ddp {
namespace lsh {

struct LshParams {
  size_t num_layouts = 10;  // M; paper recommends [10, 20]
  size_t pi = 3;            // paper recommends [3, 10]
  double width = 0.0;       // w; derived from accuracy when 0

  std::string ToString() const;
};

/// Minimal width achieving expected rho accuracy `accuracy` with the given
/// M and pi (paper Eq. (5) solved for w). Errors on accuracy outside (0, 1),
/// zero M/pi, or non-positive d_c.
Result<double> SolveMinimalWidth(double accuracy, size_t num_layouts,
                                 size_t pi, double dc);

/// Full user-facing tuner: accuracy + (M, pi) -> complete LshParams.
Result<LshParams> TuneParams(double accuracy, size_t num_layouts, size_t pi,
                             double dc);

}  // namespace lsh
}  // namespace ddp


#include "lsh/theory.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ddp {
namespace lsh {

namespace {
constexpr double kSqrt2Pi = 2.5066282746310002;  // sqrt(2*pi)
}

double NormCdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double PRhoLowerBound(double w, double dc) {
  if (w <= 0.0) return 0.0;
  double p = 1.0 - 4.0 * dc / (kSqrt2Pi * w);
  return std::clamp(p, 0.0, 1.0);
}

double PCollision(double d, double w) {
  if (d <= 0.0) return 1.0;
  if (w <= 0.0) return 0.0;
  double r = w / d;
  double p = 2.0 * NormCdf(r) - 1.0 -
             (2.0 / (kSqrt2Pi * r)) * (1.0 - std::exp(-r * r / 2.0));
  return std::clamp(p, 0.0, 1.0);
}

double ExpectedRhoAccuracy(double w, size_t pi, size_t num_layouts, double dc) {
  double per_layout = std::pow(PRhoLowerBound(w, dc), static_cast<double>(pi));
  return 1.0 - std::pow(1.0 - per_layout, static_cast<double>(num_layouts));
}

double ExpectedDeltaAccuracy(double d_upslope, double w, size_t pi,
                             size_t num_layouts) {
  double per_layout =
      std::pow(PCollision(d_upslope, w), static_cast<double>(pi));
  return 1.0 - std::pow(1.0 - per_layout, static_cast<double>(num_layouts));
}

}  // namespace lsh
}  // namespace ddp

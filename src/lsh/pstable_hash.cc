#include "lsh/pstable_hash.h"

#include <cmath>

// Header-only; this translation unit verifies self-containment.

namespace ddp {
namespace lsh {}  // namespace lsh
}  // namespace ddp

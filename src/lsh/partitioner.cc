#include "lsh/partitioner.h"

#include <algorithm>

namespace ddp {
namespace lsh {

Result<MultiLshPartitioner> MultiLshPartitioner::Create(size_t dim,
                                                        size_t num_layouts,
                                                        size_t pi, double width,
                                                        uint64_t seed) {
  if (dim == 0) return Status::InvalidArgument("dim must be >= 1");
  if (num_layouts == 0) return Status::InvalidArgument("M must be >= 1");
  if (pi == 0) return Status::InvalidArgument("pi must be >= 1");
  if (!(width > 0.0)) return Status::InvalidArgument("width must be > 0");
  std::vector<HashGroup> groups;
  groups.reserve(num_layouts);
  for (size_t m = 0; m < num_layouts; ++m) {
    Rng rng(SplitSeed(seed, m));
    groups.push_back(HashGroup::Random(dim, pi, width, &rng));
  }
  return MultiLshPartitioner(std::move(groups), width);
}

std::vector<MultiLshPartitioner::Layout> MultiLshPartitioner::PartitionAll(
    const Dataset& dataset) const {
  std::vector<Layout> layouts(num_layouts());
  BucketKey key;
  for (size_t m = 0; m < num_layouts(); ++m) {
    for (size_t i = 0; i < dataset.size(); ++i) {
      groups_[m].KeyInto(dataset.point(static_cast<PointId>(i)), &key);
      layouts[m][key].push_back(static_cast<PointId>(i));
    }
  }
  return layouts;
}

std::vector<MultiLshPartitioner::LayoutStats>
MultiLshPartitioner::ComputeStats(const Dataset& dataset) const {
  std::vector<Layout> layouts = PartitionAll(dataset);
  std::vector<LayoutStats> stats(layouts.size());
  for (size_t m = 0; m < layouts.size(); ++m) {
    stats[m].num_buckets = layouts[m].size();
    for (const auto& [key, ids] : layouts[m]) {
      stats[m].largest_bucket = std::max(stats[m].largest_bucket, ids.size());
      stats[m].sum_squared_sizes +=
          static_cast<uint64_t>(ids.size()) * ids.size();
    }
  }
  return stats;
}

}  // namespace lsh
}  // namespace ddp

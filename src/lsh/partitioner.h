#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "lsh/hash_group.h"

/// \file partitioner.h
/// The M-layout LSH partitioner of Section IV-A: M independent hash groups
/// (G_1, ..., G_M), each inducing one partition layout P_m(S). A point's key
/// under layout m is (m, G_m(p)); the LSH-DDP map() functions emit one copy
/// of every point per layout.

namespace ddp {
namespace lsh {

/// Hash functor for bucket signatures (FNV-1a over slot indices).
struct BucketKeyHash {
  size_t operator()(const BucketKey& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int64_t v : k) {
      h ^= static_cast<uint64_t>(v);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Key of one partition across all layouts: the layout index plus the bucket
/// signature within that layout.
struct LayoutBucket {
  uint32_t layout;  // m in [0, M)
  BucketKey bucket;

  bool operator==(const LayoutBucket& other) const {
    return layout == other.layout && bucket == other.bucket;
  }
  bool operator<(const LayoutBucket& other) const {
    if (layout != other.layout) return layout < other.layout;
    return bucket < other.bucket;
  }
};

class MultiLshPartitioner {
 public:
  using Layout =
      std::unordered_map<BucketKey, std::vector<PointId>, BucketKeyHash>;

  /// Draws M hash groups of pi functions each. All randomness derives from
  /// `seed`, so a partitioner is reproducible.
  static Result<MultiLshPartitioner> Create(size_t dim, size_t num_layouts,
                                            size_t pi, double width,
                                            uint64_t seed);

  size_t num_layouts() const { return groups_.size(); }
  size_t pi() const { return groups_.empty() ? 0 : groups_[0].pi(); }
  double width() const { return width_; }
  const HashGroup& group(size_t m) const { return groups_[m]; }

  /// Bucket signature of `p` under layout `m`.
  BucketKey Key(size_t m, std::span<const double> p) const {
    return groups_[m].Key(p);
  }

  /// Materializes all M layouts of `dataset`: result[m] maps bucket
  /// signature -> point ids. Used by tests and by the non-MapReduce local
  /// reference implementation; the MR pipeline instead streams keys.
  std::vector<Layout> PartitionAll(const Dataset& dataset) const;

  struct LayoutStats {
    size_t num_buckets = 0;
    size_t largest_bucket = 0;
    /// sum over buckets of |bucket|^2 — the cost driver of Eq. (7)/(8).
    uint64_t sum_squared_sizes = 0;
  };

  /// Cost-model statistics for each layout over `dataset`.
  std::vector<LayoutStats> ComputeStats(const Dataset& dataset) const;

 private:
  MultiLshPartitioner(std::vector<HashGroup> groups, double width)
      : groups_(std::move(groups)), width_(width) {}

  std::vector<HashGroup> groups_;
  double width_;
};

}  // namespace lsh
}  // namespace ddp


#pragma once

#include <cstddef>

/// \file theory.h
/// The paper's probabilistic model of LSH-DDP approximation quality
/// (Section IV, Lemmas 1-4 and Theorems 1-2). These closed forms drive both
/// the parameter tuner (Section V) and the theory-validation benchmark.

namespace ddp {
namespace lsh {

/// Standard normal cumulative distribution function.
double NormCdf(double x);

/// Lemma 1: lower bound on the probability that ALL d_c-neighbors of a point
/// share its slot under one hash function of width `w`:
///   P_rho(w, d_c) >= 1 - 4 d_c / (sqrt(2 pi) w).
/// Clamped to [0, 1].
double PRhoLowerBound(double w, double dc);

/// Lemma 3 / Datar et al.: exact probability that two points at distance `d`
/// collide under one hash function of width `w`:
///   P(d, w) = 2 norm(w/d) - 1 - (2 d / (sqrt(2 pi) w)) (1 - e^{-w^2/(2d^2)}).
/// For d == 0 returns 1.
double PCollision(double d, double w);

/// Lemma 2 + Theorem 1: the expected rho accuracy of the full scheme,
///   A(w, pi, M) = 1 - [1 - P_rho(w, d_c)^pi]^M.
double ExpectedRhoAccuracy(double w, size_t pi, size_t num_layouts, double dc);

/// Lemma 4 + Theorem 2: probability that delta_i is exactly recovered given
/// the true upslope distance `d_upslope` (assuming rho values are exact),
///   Pr = 1 - [1 - P(d_upslope, w)^pi]^M.
double ExpectedDeltaAccuracy(double d_upslope, double w, size_t pi,
                             size_t num_layouts);

}  // namespace lsh
}  // namespace ddp


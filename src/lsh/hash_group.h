#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "lsh/pstable_hash.h"

/// \file hash_group.h
/// A hash group G = (h_1, ..., h_pi) (paper Definition 2). Two points land in
/// the same partition of the layout induced by G iff ALL pi hash values
/// agree; the concatenated slot indices form the partition id
/// G(p) = [h_1(p), ..., h_pi(p)].

namespace ddp {
namespace lsh {

/// A partition id within one LSH layout: the pi concatenated slot indices.
using BucketKey = std::vector<int64_t>;

class HashGroup {
 public:
  explicit HashGroup(std::vector<PStableHash> functions)
      : functions_(std::move(functions)) {}

  /// Draws pi independent random functions of the given width.
  static HashGroup Random(size_t dim, size_t pi, double width, Rng* rng) {
    std::vector<PStableHash> fns;
    fns.reserve(pi);
    for (size_t t = 0; t < pi; ++t) {
      fns.push_back(PStableHash::Random(dim, width, rng));
    }
    return HashGroup(std::move(fns));
  }

  /// The partition id G(p).
  BucketKey Key(std::span<const double> p) const {
    BucketKey key(functions_.size());
    for (size_t t = 0; t < functions_.size(); ++t) {
      key[t] = functions_[t].Hash(p);
    }
    return key;
  }

  /// Writes G(p) into `out` (resized to pi); avoids allocation in hot loops.
  void KeyInto(std::span<const double> p, BucketKey* out) const {
    out->resize(functions_.size());
    for (size_t t = 0; t < functions_.size(); ++t) {
      (*out)[t] = functions_[t].Hash(p);
    }
  }

  /// Multi-probe keys: the base key plus up to `probes` perturbed keys,
  /// each shifting the single slot coordinate whose projection sits closest
  /// to a slot boundary (the classic multi-probe LSH heuristic). Points near
  /// bucket borders thereby also join the adjacent bucket, trading extra
  /// copies for recall without adding layouts.
  std::vector<BucketKey> KeysWithProbes(std::span<const double> p,
                                        size_t probes) const {
    std::vector<BucketKey> keys;
    BucketKey base(functions_.size());
    // (boundary distance, function index, direction)
    std::vector<std::tuple<double, size_t, int64_t>> candidates;
    candidates.reserve(2 * functions_.size());
    for (size_t t = 0; t < functions_.size(); ++t) {
      double scaled = functions_[t].Project(p) / functions_[t].width();
      double slot = std::floor(scaled);
      base[t] = static_cast<int64_t>(slot);
      double frac = scaled - slot;  // in [0, 1)
      candidates.push_back({frac, t, -1});        // distance to lower edge
      candidates.push_back({1.0 - frac, t, +1});  // distance to upper edge
    }
    keys.push_back(base);
    probes = std::min(probes, candidates.size());
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(probes),
                      candidates.end());
    for (size_t q = 0; q < probes; ++q) {
      BucketKey probe = base;
      probe[std::get<1>(candidates[q])] += std::get<2>(candidates[q]);
      keys.push_back(std::move(probe));
    }
    return keys;
  }

  size_t pi() const { return functions_.size(); }
  const std::vector<PStableHash>& functions() const { return functions_; }

 private:
  std::vector<PStableHash> functions_;
};

}  // namespace lsh
}  // namespace ddp


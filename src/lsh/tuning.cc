#include "lsh/tuning.h"

#include <cmath>
#include <cstdio>

#include "lsh/theory.h"

namespace ddp {
namespace lsh {

namespace {
constexpr double kSqrt2Pi = 2.5066282746310002;
}

std::string LshParams::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "LshParams{M=%zu, pi=%zu, w=%.6g}",
                num_layouts, pi, width);
  return buf;
}

Result<double> SolveMinimalWidth(double accuracy, size_t num_layouts,
                                 size_t pi, double dc) {
  if (!(accuracy > 0.0) || !(accuracy < 1.0)) {
    return Status::InvalidArgument("accuracy must be in (0, 1)");
  }
  if (num_layouts == 0 || pi == 0) {
    return Status::InvalidArgument("M and pi must be >= 1");
  }
  if (!(dc > 0.0)) return Status::InvalidArgument("d_c must be > 0");
  // Invert A = 1 - (1 - P^pi)^M for the required per-function probability P.
  double per_layout =
      1.0 - std::pow(1.0 - accuracy, 1.0 / static_cast<double>(num_layouts));
  double p_required = std::pow(per_layout, 1.0 / static_cast<double>(pi));
  if (!(p_required < 1.0)) {
    return Status::OutOfRange("accuracy target requires infinite width");
  }
  double w = 4.0 * dc / (kSqrt2Pi * (1.0 - p_required));
  return w;
}

Result<LshParams> TuneParams(double accuracy, size_t num_layouts, size_t pi,
                             double dc) {
  DDP_ASSIGN_OR_RETURN(double w, SolveMinimalWidth(accuracy, num_layouts, pi, dc));
  LshParams params;
  params.num_layouts = num_layouts;
  params.pi = pi;
  params.width = w;
  return params;
}

}  // namespace lsh
}  // namespace ddp

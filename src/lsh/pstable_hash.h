#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"

/// \file pstable_hash.h
/// The p-stable LSH function for Euclidean distance (Datar et al. [11],
/// paper Eq. (3)):
///
///   h(p) = floor((a . p + b) / w)
///
/// where `a` is a vector of i.i.d. standard gaussian entries (2-stable for
/// L2), `b` is uniform in [0, w), and `w` is the slot width. Points within
/// distance r collide with probability that decreases in r/w — see
/// lsh/theory.h for the exact collision model used by the paper's analysis.

namespace ddp {
namespace lsh {

class PStableHash {
 public:
  /// Takes ownership of the projection vector. `width` must be > 0.
  PStableHash(std::vector<double> a, double b, double width)
      : a_(std::move(a)), b_(b), width_(width) {}

  /// Draws a random hash function for `dim`-dimensional points.
  static PStableHash Random(size_t dim, double width, Rng* rng) {
    return PStableHash(rng->GaussianVector(dim), rng->Uniform(0.0, width),
                       width);
  }

  /// The slot index h(p).
  int64_t Hash(std::span<const double> p) const {
    return static_cast<int64_t>(std::floor(Project(p) / width_));
  }

  /// The scalar projection a.p + b (before slotting).
  double Project(std::span<const double> p) const {
    double s = b_;
    for (size_t d = 0; d < p.size(); ++d) s += a_[d] * p[d];
    return s;
  }

  size_t dim() const { return a_.size(); }
  double width() const { return width_; }
  double offset() const { return b_; }
  const std::vector<double>& direction() const { return a_; }

 private:
  std::vector<double> a_;
  double b_;
  double width_;
};

}  // namespace lsh
}  // namespace ddp


#include "baselines/em_gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "baselines/kmeans.h"
#include "common/random.h"

namespace ddp {
namespace baselines {

namespace {

// log N(p | mean, diag(var)).
double LogGaussian(std::span<const double> p, const std::vector<double>& mean,
                   const std::vector<double>& var) {
  double log_det = 0.0;
  double maha = 0.0;
  for (size_t d = 0; d < p.size(); ++d) {
    log_det += std::log(var[d]);
    double diff = p[d] - mean[d];
    maha += diff * diff / var[d];
  }
  return -0.5 * (static_cast<double>(p.size()) *
                     std::log(2.0 * std::numbers::pi) +
                 log_det + maha);
}

// log(sum_i exp(x_i)) without overflow.
double LogSumExp(const std::vector<double>& x) {
  double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double v : x) s += std::exp(v - m);
  return m + std::log(s);
}

}  // namespace

Result<EmGmmResult> RunEmGmm(const Dataset& dataset,
                             const EmGmmOptions& options,
                             const CountingMetric& metric) {
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.k > n) return Status::InvalidArgument("k exceeds point count");

  // Initialize means with a short K-means++ run, unit variances, uniform
  // weights.
  KmeansOptions init_opts;
  init_opts.k = options.k;
  init_opts.max_iterations = 5;
  init_opts.seed = options.seed;
  DDP_ASSIGN_OR_RETURN(KmeansResult init, RunKmeans(dataset, init_opts, metric));

  EmGmmResult result;
  result.means = std::move(init.centroids);
  result.variances.assign(options.k, std::vector<double>(dim, 1.0));
  result.weights.assign(options.k, 1.0 / static_cast<double>(options.k));

  std::vector<std::vector<double>> resp(n, std::vector<double>(options.k));
  std::vector<double> log_terms(options.k);
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // E step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      std::span<const double> p = dataset.point(static_cast<PointId>(i));
      for (size_t c = 0; c < options.k; ++c) {
        log_terms[c] = std::log(result.weights[c]) +
                       LogGaussian(p, result.means[c], result.variances[c]);
      }
      double norm = LogSumExp(log_terms);
      ll += norm;
      for (size_t c = 0; c < options.k; ++c) {
        resp[i][c] = std::exp(log_terms[c] - norm);
      }
    }
    ll /= static_cast<double>(n);
    result.log_likelihood = ll;

    // M step.
    for (size_t c = 0; c < options.k; ++c) {
      double nc = 0.0;
      for (size_t i = 0; i < n; ++i) nc += resp[i][c];
      if (nc <= 0.0) continue;  // dead component: keep previous parameters
      result.weights[c] = nc / static_cast<double>(n);
      std::vector<double>& mean = result.means[c];
      std::fill(mean.begin(), mean.end(), 0.0);
      for (size_t i = 0; i < n; ++i) {
        std::span<const double> p = dataset.point(static_cast<PointId>(i));
        for (size_t d = 0; d < dim; ++d) mean[d] += resp[i][c] * p[d];
      }
      for (size_t d = 0; d < dim; ++d) mean[d] /= nc;
      std::vector<double>& var = result.variances[c];
      std::fill(var.begin(), var.end(), 0.0);
      for (size_t i = 0; i < n; ++i) {
        std::span<const double> p = dataset.point(static_cast<PointId>(i));
        for (size_t d = 0; d < dim; ++d) {
          double diff = p[d] - mean[d];
          var[d] += resp[i][c] * diff * diff;
        }
      }
      for (size_t d = 0; d < dim; ++d) {
        var[d] = std::max(options.min_variance, var[d] / nc);
      }
    }

    if (iter > 0 && ll - prev_ll < options.convergence_tol) break;
    prev_ll = ll;
  }

  // Hard assignment by maximum responsibility.
  result.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    result.assignment[i] = static_cast<int>(
        std::max_element(resp[i].begin(), resp[i].end()) - resp[i].begin());
  }
  return result;
}

}  // namespace baselines
}  // namespace ddp

#include "baselines/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/random.h"

namespace ddp {
namespace baselines {

namespace {

// K-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
std::vector<std::vector<double>> KmeansPlusPlusInit(
    const Dataset& dataset, size_t k, Rng* rng, const CountingMetric& metric) {
  const size_t n = dataset.size();
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  {
    std::span<const double> p =
        dataset.point(static_cast<PointId>(rng->UniformInt(n)));
    centroids.emplace_back(p.begin(), p.end());
  }
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = metric.SquaredDistance(dataset.point(static_cast<PointId>(i)),
                                        centroids.back());
      d2[i] = std::min(d2[i], d);
      total += d2[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double u = rng->Uniform() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += d2[i];
        if (acc >= u) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(n);  // all points coincide with centroids
    }
    std::span<const double> p = dataset.point(static_cast<PointId>(chosen));
    centroids.emplace_back(p.begin(), p.end());
  }
  return centroids;
}

std::vector<std::vector<double>> UniformInit(const Dataset& dataset, size_t k,
                                             Rng* rng) {
  std::vector<size_t> ids = SampleWithoutReplacement(dataset.size(), k, rng);
  std::vector<std::vector<double>> centroids(k);
  for (size_t c = 0; c < k; ++c) {
    std::span<const double> p = dataset.point(static_cast<PointId>(ids[c]));
    centroids[c].assign(p.begin(), p.end());
  }
  return centroids;
}

}  // namespace

Result<KmeansResult> RunKmeans(const Dataset& dataset,
                               const KmeansOptions& options,
                               const CountingMetric& metric) {
  const size_t n = dataset.size();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.k > n) return Status::InvalidArgument("k exceeds point count");
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  Rng rng(options.seed);
  KmeansResult result;
  result.centroids = options.use_kmeans_plus_plus
                         ? KmeansPlusPlusInit(dataset, options.k, &rng, metric)
                         : UniformInit(dataset, options.k, &rng);
  result.assignment.assign(n, -1);

  const size_t dim = dataset.dim();
  std::vector<std::vector<double>> sums(options.k,
                                        std::vector<double>(dim, 0.0));
  std::vector<size_t> counts(options.k, 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    result.inertia = 0.0;

    for (size_t i = 0; i < n; ++i) {
      std::span<const double> p = dataset.point(static_cast<PointId>(i));
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < options.k; ++c) {
        double d = metric.SquaredDistance(p, result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      result.assignment[i] = static_cast<int>(best);
      result.inertia += best_d;
      for (size_t d = 0; d < dim; ++d) sums[best][d] += p[d];
      ++counts[best];
    }

    double max_move_sq = 0.0;
    for (size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      double move_sq = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        double next = sums[c][d] / static_cast<double>(counts[c]);
        double diff = next - result.centroids[c][d];
        move_sq += diff * diff;
        result.centroids[c][d] = next;
      }
      max_move_sq = std::max(max_move_sq, move_sq);
    }
    if (options.convergence_tol > 0.0 &&
        max_move_sq < options.convergence_tol) {
      break;
    }
  }
  return result;
}

}  // namespace baselines
}  // namespace ddp

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file kmeans.h
/// Sequential Lloyd's K-means (Table III's centroid-based comparator), with
/// optional K-means++ seeding. Deterministic given the seed.

namespace ddp {
namespace baselines {

struct KmeansOptions {
  size_t k = 8;
  size_t max_iterations = 100;
  /// Stop when every centroid moves less than sqrt(tol); 0 disables.
  double convergence_tol = 1e-12;
  bool use_kmeans_plus_plus = true;
  uint64_t seed = 5;
};

struct KmeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<int> assignment;
  size_t iterations = 0;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
};

Result<KmeansResult> RunKmeans(const Dataset& dataset,
                               const KmeansOptions& options,
                               const CountingMetric& metric);

}  // namespace baselines
}  // namespace ddp


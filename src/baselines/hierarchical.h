#pragma once

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file hierarchical.h
/// Agglomerative hierarchical clustering (Table III's connectivity-based
/// comparator) with single / complete / average linkage via Lance-Williams
/// updates on an explicit O(N^2) distance matrix. Intended for the small
/// shaped data sets of Fig. 8; datasets above `max_points` are rejected to
/// avoid accidental multi-GB allocations.

namespace ddp {
namespace baselines {

enum class Linkage { kSingle, kComplete, kAverage };

struct HierarchicalOptions {
  size_t num_clusters = 2;
  Linkage linkage = Linkage::kSingle;
  /// Safety cap on the O(N^2) matrix.
  size_t max_points = 10000;
};

struct HierarchicalResult {
  std::vector<int> assignment;
};

Result<HierarchicalResult> RunHierarchical(const Dataset& dataset,
                                           const HierarchicalOptions& options,
                                           const CountingMetric& metric);

}  // namespace baselines
}  // namespace ddp


#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file mean_shift.h
/// Mean shift clustering — mode seeking with a flat (window) kernel. Not in
/// the paper's Table III, but the closest classical relative of Density
/// Peaks (both find density modes; DP replaces the iterative hill climb with
/// the one-shot (rho, delta) construction), so it makes a natural extra
/// comparator for the quality study.
///
/// Each point iteratively moves to the mean of its `bandwidth`-neighborhood
/// until the shift is below `tolerance`; converged positions within
/// `bandwidth / 2` of each other are merged into one mode, and points are
/// labeled by their mode. O(iterations * N^2) — for the Fig. 8-scale data
/// sets only.

namespace ddp {
namespace baselines {

struct MeanShiftOptions {
  /// Window radius; a good default is the DP cutoff d_c scaled up ~2-4x.
  double bandwidth = 1.0;
  size_t max_iterations = 100;
  double tolerance = 1e-5;
  /// Safety cap, as in hierarchical.h.
  size_t max_points = 20000;
};

struct MeanShiftResult {
  std::vector<int> assignment;
  /// Mode coordinates, one per cluster.
  std::vector<std::vector<double>> modes;
  size_t num_clusters = 0;
};

Result<MeanShiftResult> RunMeanShift(const Dataset& dataset,
                                     const MeanShiftOptions& options,
                                     const CountingMetric& metric);

}  // namespace baselines
}  // namespace ddp


#include "baselines/dbscan.h"

#include <deque>

namespace ddp {
namespace baselines {

namespace {

// Ids with distance <= epsilon from point i, including i itself.
std::vector<PointId> RegionQuery(const Dataset& dataset, PointId i,
                                 double epsilon,
                                 const CountingMetric& metric) {
  std::vector<PointId> neighbors;
  std::span<const double> pi = dataset.point(i);
  for (size_t j = 0; j < dataset.size(); ++j) {
    if (static_cast<PointId>(j) == i) {
      neighbors.push_back(i);
      continue;
    }
    if (metric.Distance(pi, dataset.point(static_cast<PointId>(j))) <=
        epsilon) {
      neighbors.push_back(static_cast<PointId>(j));
    }
  }
  return neighbors;
}

}  // namespace

Result<DbscanResult> RunDbscan(const Dataset& dataset,
                               const DbscanOptions& options,
                               const CountingMetric& metric) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (options.min_points == 0) {
    return Status::InvalidArgument("min_points must be >= 1");
  }
  const size_t n = dataset.size();
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;

  DbscanResult result;
  result.assignment.assign(n, kUnvisited);
  int next_cluster = 0;

  for (size_t i = 0; i < n; ++i) {
    if (result.assignment[i] != kUnvisited) continue;
    std::vector<PointId> seeds =
        RegionQuery(dataset, static_cast<PointId>(i), options.epsilon, metric);
    if (seeds.size() < options.min_points) {
      result.assignment[i] = kNoise;
      continue;
    }
    const int cluster = next_cluster++;
    result.assignment[i] = cluster;
    std::deque<PointId> frontier(seeds.begin(), seeds.end());
    while (!frontier.empty()) {
      PointId q = frontier.front();
      frontier.pop_front();
      if (result.assignment[q] == kNoise) {
        result.assignment[q] = cluster;  // border point adopted
      }
      if (result.assignment[q] != kUnvisited) continue;
      result.assignment[q] = cluster;
      std::vector<PointId> q_neighbors =
          RegionQuery(dataset, q, options.epsilon, metric);
      if (q_neighbors.size() >= options.min_points) {
        frontier.insert(frontier.end(), q_neighbors.begin(),
                        q_neighbors.end());
      }
    }
  }
  result.num_clusters = static_cast<size_t>(next_cluster);
  return result;
}

}  // namespace baselines
}  // namespace ddp

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file em_gmm.h
/// Expectation-Maximization for a diagonal-covariance Gaussian mixture
/// (Table III's distribution-based comparator). Deterministic given the
/// seed; initialized from K-means++ means with unit variances.

namespace ddp {
namespace baselines {

struct EmGmmOptions {
  size_t k = 8;
  size_t max_iterations = 100;
  /// Stop when mean log-likelihood improves by less than this.
  double convergence_tol = 1e-7;
  /// Variance floor to keep components from collapsing onto a point.
  double min_variance = 1e-6;
  uint64_t seed = 9;
};

struct EmGmmResult {
  std::vector<std::vector<double>> means;      // k x dim
  std::vector<std::vector<double>> variances;  // k x dim (diagonal)
  std::vector<double> weights;                 // k, sums to 1
  std::vector<int> assignment;                 // argmax responsibility
  double log_likelihood = 0.0;                 // mean per point
  size_t iterations = 0;
};

Result<EmGmmResult> RunEmGmm(const Dataset& dataset,
                             const EmGmmOptions& options,
                             const CountingMetric& metric);

}  // namespace baselines
}  // namespace ddp


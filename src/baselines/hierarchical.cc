#include "baselines/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace ddp {
namespace baselines {

Result<HierarchicalResult> RunHierarchical(const Dataset& dataset,
                                           const HierarchicalOptions& options,
                                           const CountingMetric& metric) {
  const size_t n = dataset.size();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.num_clusters == 0 || options.num_clusters > n) {
    return Status::InvalidArgument("num_clusters must be in [1, N]");
  }
  if (n > options.max_points) {
    return Status::InvalidArgument(
        "dataset exceeds the hierarchical clustering size cap");
  }

  // Full distance matrix between active clusters (initially singletons).
  std::vector<double> dist(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = metric.Distance(dataset.point(static_cast<PointId>(i)),
                                 dataset.point(static_cast<PointId>(j)));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<size_t> cluster_size(n, 1);
  // Union-find style parent chain so points can be traced to a surviving
  // cluster representative at the end.
  std::vector<size_t> merged_into(n);
  std::iota(merged_into.begin(), merged_into.end(), 0);

  size_t active_count = n;
  while (active_count > options.num_clusters) {
    // Locate the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist[i * n + j] < best) {
          best = dist[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi; Lance-Williams update of bi's distances.
    const double si = static_cast<double>(cluster_size[bi]);
    const double sj = static_cast<double>(cluster_size[bj]);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double dik = dist[bi * n + k];
      double djk = dist[bj * n + k];
      double merged = dik;  // overwritten below; init pacifies -Wmaybe-uninitialized
      switch (options.linkage) {
        case Linkage::kSingle:
          merged = std::min(dik, djk);
          break;
        case Linkage::kComplete:
          merged = std::max(dik, djk);
          break;
        case Linkage::kAverage:
          merged = (si * dik + sj * djk) / (si + sj);
          break;
      }
      dist[bi * n + k] = merged;
      dist[k * n + bi] = merged;
    }
    active[bj] = false;
    merged_into[bj] = bi;
    cluster_size[bi] += cluster_size[bj];
    --active_count;
  }

  // Compress chains and densify cluster labels.
  auto find_root = [&](size_t i) {
    while (merged_into[i] != i) i = merged_into[i];
    return i;
  };
  HierarchicalResult result;
  result.assignment.assign(n, -1);
  std::vector<int> label_of_root(n, -1);
  int next_label = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t root = find_root(i);
    if (label_of_root[root] < 0) label_of_root[root] = next_label++;
    result.assignment[i] = label_of_root[root];
  }
  return result;
}

}  // namespace baselines
}  // namespace ddp

#include "baselines/mean_shift.h"

#include <algorithm>
#include <cmath>

namespace ddp {
namespace baselines {

Result<MeanShiftResult> RunMeanShift(const Dataset& dataset,
                                     const MeanShiftOptions& options,
                                     const CountingMetric& metric) {
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (!(options.bandwidth > 0.0)) {
    return Status::InvalidArgument("bandwidth must be > 0");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (n > options.max_points) {
    return Status::InvalidArgument("dataset exceeds the mean-shift size cap");
  }

  // Current positions: start at the points themselves.
  std::vector<std::vector<double>> pos(n);
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> p = dataset.point(static_cast<PointId>(i));
    pos[i].assign(p.begin(), p.end());
  }

  std::vector<bool> converged(n, false);
  std::vector<double> mean(dim);
  const double tol_sq = options.tolerance * options.tolerance;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool any_moved = false;
    for (size_t i = 0; i < n; ++i) {
      if (converged[i]) continue;
      std::fill(mean.begin(), mean.end(), 0.0);
      size_t count = 0;
      for (size_t j = 0; j < n; ++j) {
        // Window over the ORIGINAL points (standard blurring-free variant).
        std::span<const double> q = dataset.point(static_cast<PointId>(j));
        if (metric.Distance(pos[i], q) <= options.bandwidth) {
          for (size_t d = 0; d < dim; ++d) mean[d] += q[d];
          ++count;
        }
      }
      if (count == 0) {  // isolated point: its own mode
        converged[i] = true;
        continue;
      }
      double shift_sq = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        double next = mean[d] / static_cast<double>(count);
        double diff = next - pos[i][d];
        shift_sq += diff * diff;
        pos[i][d] = next;
      }
      if (shift_sq < tol_sq) {
        converged[i] = true;
      } else {
        any_moved = true;
      }
    }
    if (!any_moved) break;
  }

  // Merge converged positions within bandwidth/2 into modes.
  MeanShiftResult result;
  result.assignment.assign(n, -1);
  const double merge_radius = options.bandwidth / 2.0;
  for (size_t i = 0; i < n; ++i) {
    int found = -1;
    for (size_t m = 0; m < result.modes.size(); ++m) {
      if (metric.Distance(pos[i], result.modes[m]) <= merge_radius) {
        found = static_cast<int>(m);
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int>(result.modes.size());
      result.modes.push_back(pos[i]);
    }
    result.assignment[i] = found;
  }
  result.num_clusters = result.modes.size();
  return result;
}

}  // namespace baselines
}  // namespace ddp

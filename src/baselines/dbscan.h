#pragma once

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"

/// \file dbscan.h
/// DBSCAN (Table III's density-based comparator). Classic region-growing
/// formulation with O(N^2) neighborhood queries. Label -1 marks noise.
/// The paper configures epsilon = d_c and min_points = 1 in Fig. 8.

namespace ddp {
namespace baselines {

struct DbscanOptions {
  double epsilon = 1.0;
  /// Minimum neighborhood size (including the point itself) for a core
  /// point. min_points = 1 makes every point a core point, as in Fig. 8.
  size_t min_points = 1;
};

struct DbscanResult {
  std::vector<int> assignment;  // -1 = noise
  size_t num_clusters = 0;
};

Result<DbscanResult> RunDbscan(const Dataset& dataset,
                               const DbscanOptions& options,
                               const CountingMetric& metric);

}  // namespace baselines
}  // namespace ddp


#include "obs/proc_stats.h"

#include <cstdio>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ddp {
namespace obs {

namespace {

/// Reads one "<key>: <n> kB" line from /proc/self/status, in bytes.
uint64_t StatusLineBytes(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  uint64_t kib = 0;
  char line[256];
  char pattern[64];
  std::snprintf(pattern, sizeof(pattern), "%s: %%llu kB", key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long v = 0;
    if (std::sscanf(line, pattern, &v) == 1) {
      kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace

uint64_t PeakRssBytes() { return StatusLineBytes("VmHWM"); }

uint64_t CurrentRssBytes() { return StatusLineBytes("VmRSS"); }

void SampleProcessGauges() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge(kMetricProcessPeakRssBytes)
      ->Set(static_cast<double>(PeakRssBytes()));
  registry.GetGauge(kMetricProcessRssBytes)
      ->Set(static_cast<double>(CurrentRssBytes()));
}

}  // namespace obs
}  // namespace ddp

#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"

/// \file metrics.h
/// Metrics half of the observability subsystem: a process-wide registry of
/// named counters, gauges, and log-bucketed latency histograms, with a JSON
/// snapshot exporter (`--metrics-out`).
///
/// Recording is always on and lock-free — a counter bump is one relaxed
/// atomic add, a histogram sample is two — so instrumented code does not
/// need an enabled check. Hot paths cache the instrument pointer in a
/// function-local static (`MetricsRegistry::Global().GetCounter(...)` once,
/// atomics forever after); the registry map itself is only locked on the
/// first lookup of each name and at snapshot time.
///
/// Compiling with -DDDP_OBS_NO_METRICS turns the DDP_METRIC_* convenience
/// macros into nothing for builds that want even the atomics gone.

namespace ddp {
namespace obs {

/// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. peak RSS bytes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed latency/size histogram. Samples are recorded as
/// microseconds (`RecordSeconds`) or raw units (`Record`) into bucket
/// floor(log2(v)) + 1 (bucket 0 holds v == 0), i.e. bucket b >= 1 covers
/// [2^(b-1), 2^b). Quantile estimates interpolate inside the bucket
/// geometrically, which is exact to a factor of 2 — plenty for p50/p95/p99
/// phase-latency reporting.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value) {
    const size_t b = value == 0 ? 0 : static_cast<size_t>(
                                          std::bit_width(value));
    buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  /// Records a duration in microseconds (sub-microsecond samples land in
  /// bucket 0 rather than vanishing).
  void RecordSeconds(double seconds) {
    Record(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e6));
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;  // same unit as Record (us for RecordSeconds)
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max_bound = 0.0;  // upper bound of the highest non-empty bucket
  };
  Snapshot Snap() const;

  void Reset();

 private:
  double QuantileFromCounts(const uint64_t* counts, uint64_t total,
                            double q) const;

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Named-instrument registry. Instruments are created on first lookup and
/// live for the life of the registry; returned pointers are stable.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count":..,"sum":..,"p50":..,"p95":..,"p99":..}}}. Histogram
  /// quantiles are in the recorded unit (microseconds for RecordSeconds).
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Zeroes every instrument (tests). Pointers stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace ddp

#ifdef DDP_OBS_NO_METRICS
#define DDP_METRIC_COUNTER_ADD(name, n) ((void)0)
#define DDP_METRIC_HISTOGRAM_SECONDS(name, seconds) ((void)0)
#define DDP_METRIC_HISTOGRAM_RECORD(name, value) ((void)0)
#else
/// Cache the instrument once per call site, then pay only the atomic.
#define DDP_METRIC_COUNTER_ADD(name, n)                                    \
  do {                                                                     \
    static ::ddp::obs::Counter* ddp_metric_counter =                       \
        ::ddp::obs::MetricsRegistry::Global().GetCounter(name);            \
    ddp_metric_counter->Add(n);                                            \
  } while (0)
#define DDP_METRIC_HISTOGRAM_SECONDS(name, seconds)                        \
  do {                                                                     \
    static ::ddp::obs::Histogram* ddp_metric_hist =                        \
        ::ddp::obs::MetricsRegistry::Global().GetHistogram(name);          \
    ddp_metric_hist->RecordSeconds(seconds);                               \
  } while (0)
#define DDP_METRIC_HISTOGRAM_RECORD(name, value)                           \
  do {                                                                     \
    static ::ddp::obs::Histogram* ddp_metric_hist =                        \
        ::ddp::obs::MetricsRegistry::Global().GetHistogram(name);          \
    ddp_metric_hist->Record(value);                                        \
  } while (0)
#endif


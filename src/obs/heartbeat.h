#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

/// \file heartbeat.h
/// Lightweight progress heartbeat for long jobs: a background thread that
/// periodically invokes a callback returning a human-readable progress line
/// (tasks done, rate) and logs it at Info level. The MapReduce phase
/// scheduler starts one per phase when `mr::Options::heartbeat_seconds > 0`;
/// the default (0) starts no thread at all, so quiet runs pay nothing.

namespace ddp {
namespace obs {

class ProgressHeartbeat {
 public:
  /// Starts a heartbeat logging `report()` every `interval_seconds`.
  /// `report` runs on the heartbeat thread and must be thread-safe. An
  /// interval <= 0 starts nothing (all methods become no-ops).
  ProgressHeartbeat(double interval_seconds,
                    std::function<std::string()> report);
  /// Joins the thread; emits one final report if any beat fired (so a job
  /// that finished between beats still logs its completion line).
  ~ProgressHeartbeat();

  ProgressHeartbeat(const ProgressHeartbeat&) = delete;
  ProgressHeartbeat& operator=(const ProgressHeartbeat&) = delete;

  /// Number of reports emitted so far (tests).
  uint64_t beats() const;

 private:
  void Loop(double interval_seconds);

  std::function<std::string()> report_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t beats_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace ddp


#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace ddp {
namespace obs {

void JsonWriter::AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (depth_ > 0 && (had_value_ & (uint64_t{1} << (depth_ - 1)))) {
    out_.push_back(',');
  }
  if (depth_ > 0) had_value_ |= uint64_t{1} << (depth_ - 1);
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  ++depth_;
  if (depth_ <= 64) had_value_ &= ~(uint64_t{1} << (depth_ - 1));
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  --depth_;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  ++depth_;
  if (depth_ <= 64) had_value_ &= ~(uint64_t{1} << (depth_ - 1));
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  --depth_;
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendQuoted(&out_, key);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  AppendQuoted(&out_, value);
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

}  // namespace obs
}  // namespace ddp

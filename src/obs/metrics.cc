#include "obs/metrics.h"

#include <cmath>
#include <fstream>

#include "obs/json.h"

namespace ddp {
namespace obs {

Histogram::Snapshot Histogram::Snap() const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  Snapshot snap;
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  snap.p50 = QuantileFromCounts(counts, total, 0.50);
  snap.p95 = QuantileFromCounts(counts, total, 0.95);
  snap.p99 = QuantileFromCounts(counts, total, 0.99);
  for (size_t b = kBuckets; b-- > 0;) {
    if (counts[b] > 0) {
      snap.max_bound = b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
      break;
    }
  }
  return snap;
}

double Histogram::QuantileFromCounts(const uint64_t* counts, uint64_t total,
                                     double q) const {
  // Rank of the q-quantile sample (1-based), then walk buckets to it and
  // interpolate geometrically inside the bucket's [2^(b-1), 2^b) range.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] >= rank) {
      if (b == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[b]);
      return lo * std::pow(2.0, frac);
    }
    seen += counts[b];
  }
  return 0.0;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never
  // destroyed: instruments may be bumped from thread/static destructors.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Field(name, counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Field(name, gauge->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->Snap();
    w.Key(name);
    w.BeginObject();
    w.Field("count", snap.count);
    w.Field("sum", snap.sum);
    w.Field("p50", snap.p50);
    w.Field("p95", snap.p95);
    w.Field("p99", snap.p99);
    w.Field("max_bound", snap.max_bound);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open metrics file " + path);
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.close();
  if (!out) return Status::IoError("short write to metrics file " + path);
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace ddp

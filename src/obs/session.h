#pragma once

#include <string>

#include "common/result.h"

/// \file session.h
/// Export lifecycle glue for one process run: arm tracing when a trace
/// output path is configured, and write the trace + metrics snapshot files
/// on Finish(). Used by `ddp_cli --trace-out/--metrics-out` and by the
/// bench harnesses via DDP_TRACE_OUT / DDP_METRICS_OUT environment
/// variables, so every binary exports the same way.

namespace ddp {
namespace obs {

struct ExportOptions {
  std::string trace_path;    // Chrome trace JSON; enables tracing when set
  std::string metrics_path;  // metrics snapshot JSON
};

class Session {
 public:
  /// Enables the global trace recorder when `options.trace_path` is set.
  explicit Session(ExportOptions options);
  /// Finishes (best-effort) if Finish() was never called.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Samples process gauges, writes the configured files, and disables
  /// tracing. Idempotent; returns the first write error.
  Status Finish();

  /// Reads DDP_TRACE_OUT / DDP_METRICS_OUT.
  static ExportOptions FromEnv();

 private:
  ExportOptions options_;
  bool finished_ = false;
};

}  // namespace obs
}  // namespace ddp


#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"

namespace ddp {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed:
  // spans may fire from thread_local destructors after static teardown.
  return *recorder;
}

TraceRecorder::TraceRecorder() : epoch_ns_(SteadyNowNs()) {
  static std::atomic<uint64_t> next_recorder_id{1};
  id_ = next_recorder_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>((SteadyNowNs() - epoch_ns_) / 1000);
}

internal::ThreadTraceBuffer* TraceRecorder::BufferForThisThread() {
  // One buffer per (thread, recorder). The thread_local holds shared
  // ownership so the buffer outlives the thread inside `buffers_`, keeping
  // worker-thread spans exportable after their ThreadPool is destroyed.
  // The slot keys on the recorder's process-unique id, not its address: a
  // destroyed recorder's address can be reused by a new one (stack-allocated
  // recorders in tests), and a pointer match would then hand the new
  // recorder a stale buffer it never registered.
  struct Slot {
    uint64_t owner_id = 0;
    std::shared_ptr<internal::ThreadTraceBuffer> buffer;
  };
  thread_local Slot slot;
  if (slot.owner_id != id_) {
    auto buffer = std::make_shared<internal::ThreadTraceBuffer>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffer->tid = next_tid_++;
      buffers_.push_back(buffer);
    }
    slot.owner_id = id_;
    slot.buffer = std::move(buffer);
  }
  return slot.buffer.get();
}

void TraceRecorder::Record(TraceEvent event) {
  if (recorded_.fetch_add(1, std::memory_order_relaxed) >=
      max_events_.load(std::memory_order_relaxed)) {
    recorded_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  internal::ThreadTraceBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<std::shared_ptr<internal::ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return events;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Field("name", std::string_view(ev.name));
    w.Field("cat", std::string_view(ev.category));
    w.Field("ph", std::string_view("X"));
    w.Field("ts", ev.start_us);
    w.Field("dur", ev.duration_us);
    w.Field("pid", uint64_t{1});
    w.Field("tid", uint64_t{ev.tid});
    if (ev.cancelled || !ev.args.empty()) {
      w.Key("args");
      w.BeginObject();
      if (ev.cancelled) w.Field("cancelled", true);
      for (const TraceEvent::Arg& arg : ev.args) {
        if (arg.numeric) {
          w.Key(arg.key);
          // The digits were formatted by AddArg; re-emit verbatim via the
          // typed path to keep the writer's comma bookkeeping correct.
          char* end = nullptr;
          w.Double(std::strtod(arg.value.c_str(), &end));
        } else {
          w.Field(arg.key, std::string_view(arg.value));
        }
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Field("displayTimeUnit", std::string_view("ms"));
  if (dropped_events() > 0) {
    w.Key("otherData");
    w.BeginObject();
    w.Field("dropped_events", dropped_events());
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open trace file " + path);
  const std::string json = ToChromeTraceJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.close();
  if (!out) return Status::IoError("short write to trace file " + path);
  return Status::OK();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

Span::Span(TraceRecorder& recorder, const char* category,
           std::string_view name) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  event_ = std::make_unique<TraceEvent>();
  event_->name.assign(name);
  event_->category = category;
  event_->start_us = recorder.NowMicros();
}

Span::~Span() { End(); }

void Span::End() {
  if (event_ == nullptr) return;
  const uint64_t now = recorder_->NowMicros();
  event_->duration_us = now >= event_->start_us ? now - event_->start_us : 0;
  recorder_->Record(std::move(*event_));
  event_.reset();
}

void Span::AddArg(std::string_view key, std::string_view value) {
  if (event_ == nullptr) return;
  event_->args.push_back({std::string(key), std::string(value), false});
}

void Span::AddArg(std::string_view key, uint64_t value) {
  if (event_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  event_->args.push_back({std::string(key), buf, true});
}

void Span::AddArg(std::string_view key, double value) {
  if (event_ == nullptr) return;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  event_->args.push_back({std::string(key), buf, true});
}

void Span::MarkCancelled() {
  if (event_ == nullptr) return;
  event_->cancelled = true;
}

}  // namespace obs
}  // namespace ddp

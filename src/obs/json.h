#pragma once

#include <cstdint>
#include <string>
#include <string_view>

/// \file json.h
/// A minimal streaming JSON writer shared by every machine-readable export
/// in the system: Chrome trace-event files (obs/trace.h), metrics snapshots
/// (obs/metrics.h), and the JobCounters/RunStats serialization
/// (mapreduce/counters.h). Keeping one writer means every exporter escapes
/// strings the same way and emits the same number formatting, so downstream
/// tooling can parse any of them with one code path.
///
/// Usage is push-style: Begin/End calls must nest properly; Key() must
/// precede every value inside an object. The writer inserts commas itself.

namespace ddp {
namespace obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; call before the member's value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Doubles print with enough digits to round-trip; non-finite values
  /// (infinity from delta scores, NaN) are emitted as null, since JSON has
  /// no literal for them.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Shorthand for Key(k) followed by the value call.
  void Field(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void Field(std::string_view key, uint64_t value) {
    Key(key);
    Uint(value);
  }
  void Field(std::string_view key, int64_t value) {
    Key(key);
    Int(value);
  }
  void Field(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void Field(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  /// The document built so far; valid JSON once every Begin has its End.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

  /// Appends a backslash-escaped, quoted JSON string literal to `*out`.
  static void AppendQuoted(std::string* out, std::string_view s);

 private:
  void MaybeComma();

  std::string out_;
  /// Whether a value has already been written at the current nesting level
  /// (one bit per depth; depth 64+ would be pathological for our exports).
  uint64_t had_value_ = 0;
  int depth_ = 0;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace ddp


#include "obs/heartbeat.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace ddp {
namespace obs {

ProgressHeartbeat::ProgressHeartbeat(double interval_seconds,
                                     std::function<std::string()> report)
    : report_(std::move(report)) {
  if (interval_seconds <= 0.0 || !report_) return;
  thread_ = std::thread([this, interval_seconds] { Loop(interval_seconds); });
}

ProgressHeartbeat::~ProgressHeartbeat() {
  if (!thread_.joinable()) return;
  bool fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    fired = beats_ > 0;
  }
  cv_.notify_all();
  thread_.join();
  if (fired) DDP_LOG(Info) << "[heartbeat] " << report_();
}

uint64_t ProgressHeartbeat::beats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return beats_;
}

void ProgressHeartbeat::Loop(double interval_seconds) {
  const auto interval = std::chrono::duration<double>(interval_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    ++beats_;
    lock.unlock();
    DDP_LOG(Info) << "[heartbeat] " << report_();
    lock.lock();
  }
}

}  // namespace obs
}  // namespace ddp

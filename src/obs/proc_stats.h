#pragma once

#include <cstdint>

/// \file proc_stats.h
/// Process-level resource sampling (Linux procfs), promoted out of
/// bench/bench_util.h so benches, the CLI, and the metrics exporter all
/// share one implementation. All functions return 0 where procfs is
/// unavailable rather than failing.

namespace ddp {
namespace obs {

/// Peak resident set size of this process in bytes (VmHWM).
uint64_t PeakRssBytes();

/// Current resident set size of this process in bytes (VmRSS).
uint64_t CurrentRssBytes();

/// Samples PeakRssBytes/CurrentRssBytes into the global MetricsRegistry
/// gauges `process.peak_rss_bytes` and `process.rss_bytes`. Called by the
/// metrics exporters just before writing a snapshot.
void SampleProcessGauges();

}  // namespace obs
}  // namespace ddp


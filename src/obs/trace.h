#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

/// \file trace.h
/// Tracing half of the observability subsystem (see docs/observability.md):
/// RAII `Span` objects record named, nested scopes into per-thread buffers
/// owned by a process-wide `TraceRecorder`, which exports Chrome
/// trace-event JSON loadable in Perfetto / chrome://tracing.
///
/// Cost model:
///  * Tracing is off by default. A span constructed while the recorder is
///    disabled does one relaxed atomic load and nothing else — no clock
///    read, no allocation — so instrumented hot paths stay at production
///    speed (bench_obs measures the disabled span at a few ns).
///  * Compiling with -DDDP_OBS_NO_TRACING turns the DDP_TRACE_SPAN macros
///    into nothing at all for builds that want the instrumentation gone.
///  * When enabled, a span appends one event to a thread-local buffer under
///    that buffer's own mutex (uncontended in steady state: only the owning
///    thread appends; the exporter locks each buffer briefly at snapshot
///    time). This is the TSan-clean sharing discipline.
///
/// Span nesting is positional, the Chrome trace-event model: events carry
/// (thread, start, duration), and a span whose lifetime encloses another's
/// on the same thread renders as its parent. Scheduler-style code that
/// completes work on a different thread than it started should create the
/// span on the executing thread (the MapReduce runtime creates per-attempt
/// spans inside the worker closure for exactly this reason).
///
/// Buffers survive thread exit: the recorder shares ownership of every
/// thread's buffer, so spans recorded by a ThreadPool worker are still
/// exported after the pool is destroyed — including spans from killed
/// speculative attempts and deadline-expired tasks, which mark themselves
/// cancelled rather than vanishing.

namespace ddp {
namespace obs {

/// One finished span. Times are microseconds relative to the recorder's
/// epoch (steady clock), which is what the Chrome trace-event `ts`/`dur`
/// fields expect.
struct TraceEvent {
  std::string name;
  const char* category = "";  // must point at a string literal
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t tid = 0;
  bool cancelled = false;
  /// Extra `args` key/value pairs; `numeric` values are emitted as JSON
  /// numbers (the string holds the digits), others as JSON strings.
  struct Arg {
    std::string key;
    std::string value;
    bool numeric = false;
  };
  std::vector<Arg> args;
};

namespace internal {
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
};
}  // namespace internal

/// Process-wide trace sink. `Global()` is the instance every Span uses.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder();

  /// Enabling (re-)arms span recording; disabling stops new spans but keeps
  /// already-recorded events for export.
  void Enable() { enabled_.store(true, std::memory_order_release); }
  void Disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the total number of retained events; further spans are dropped
  /// and counted, so a pathological run cannot eat the heap. Default 1M.
  void SetMaxEvents(uint64_t max_events) {
    max_events_.store(max_events, std::memory_order_relaxed);
  }
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder's epoch (monotonic).
  uint64_t NowMicros() const;

  /// Appends one finished event (called by ~Span on the executing thread).
  void Record(TraceEvent event);

  /// Copies every recorded event, across all threads, ordered by start
  /// time. Safe to call while other threads record.
  std::vector<TraceEvent> Snapshot() const;

  /// Serializes the snapshot as a Chrome trace-event document:
  /// {"traceEvents":[{"ph":"X",...}, ...]}. Cancelled spans carry
  /// args.cancelled = true so they are visible in the Perfetto UI.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Drops all recorded events and the dropped-event count (tests).
  void Clear();

 private:
  internal::ThreadTraceBuffer* BufferForThisThread();

  uint64_t id_ = 0;  // process-unique; thread-local buffer slots key on it
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> max_events_{1000000};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  int64_t epoch_ns_ = 0;

  mutable std::mutex mu_;  // guards buffers_ and next_tid_
  std::vector<std::shared_ptr<internal::ThreadTraceBuffer>> buffers_;
  uint32_t next_tid_ = 1;
};

/// RAII trace scope. Construction samples the clock only if the global
/// recorder is enabled; destruction records the finished event.
class Span {
 public:
  /// `category` must be a string literal (it is stored by pointer).
  Span(const char* category, std::string_view name)
      : Span(TraceRecorder::Global(), category, name) {}
  Span(TraceRecorder& recorder, const char* category, std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when the recorder was enabled at construction; argument setters
  /// are no-ops on inactive spans, so callers can annotate unconditionally.
  bool active() const { return event_ != nullptr; }

  void AddArg(std::string_view key, std::string_view value);
  void AddArg(std::string_view key, uint64_t value);
  void AddArg(std::string_view key, double value);

  /// Marks the span cancelled (killed speculative attempt, deadline kill,
  /// job abort). The span is still recorded on destruction.
  void MarkCancelled();

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void End();

 private:
  TraceRecorder* recorder_ = nullptr;
  std::unique_ptr<TraceEvent> event_;  // null when inactive or ended
};

}  // namespace obs
}  // namespace ddp

/// Statement-position macros compile to nothing under -DDDP_OBS_NO_TRACING.
/// DDP_TRACE_SPAN declares a named local so callers can annotate it;
/// DDP_TRACE_SCOPE is the anonymous fire-and-forget form.
#ifdef DDP_OBS_NO_TRACING
namespace ddp::obs::internal {
/// Stand-in with the Span surface so annotation sites still compile.
struct NoopSpan {
  constexpr bool active() const { return false; }
  template <typename K, typename V>
  void AddArg(K&&, V&&) {}
  void MarkCancelled() {}
  void End() {}
};
}  // namespace ddp::obs::internal
#define DDP_TRACE_SPAN(var, category, name) \
  ::ddp::obs::internal::NoopSpan var;       \
  (void)var
#define DDP_TRACE_SCOPE(category, name) ((void)0)
#else
#define DDP_TRACE_SPAN(var, category, name) \
  ::ddp::obs::Span var((category), (name))
#define DDP_TRACE_SCOPE(category, name) \
  ::ddp::obs::Span ddp_trace_scope_##__LINE__((category), (name))
#endif


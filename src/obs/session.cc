#include "obs/session.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/proc_stats.h"
#include "obs/trace.h"

namespace ddp {
namespace obs {

Session::Session(ExportOptions options) : options_(std::move(options)) {
  if (!options_.trace_path.empty()) TraceRecorder::Global().Enable();
}

Session::~Session() {
  if (!finished_) {
    Status st = Finish();
    if (!st.ok()) {
      DDP_LOG(Warning) << "observability export failed: " << st.ToString();
    }
  }
}

Status Session::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  Status result;
  if (!options_.trace_path.empty()) {
    TraceRecorder::Global().Disable();
    Status st = TraceRecorder::Global().WriteChromeTrace(options_.trace_path);
    if (!st.ok() && result.ok()) result = st;
  }
  if (!options_.metrics_path.empty()) {
    SampleProcessGauges();
    Status st = MetricsRegistry::Global().WriteJson(options_.metrics_path);
    if (!st.ok() && result.ok()) result = st;
  }
  return result;
}

ExportOptions Session::FromEnv() {
  ExportOptions options;
  if (const char* trace = std::getenv("DDP_TRACE_OUT")) {
    options.trace_path = trace;
  }
  if (const char* metrics = std::getenv("DDP_METRICS_OUT")) {
    options.metrics_path = metrics;
  }
  return options;
}

}  // namespace obs
}  // namespace ddp

// Metric and span name registry. Every metric name, span name, and span
// category exported by this tree is declared here as a named constant, and
// call sites reference the constant instead of repeating the literal. This
// is the single source of truth the name-registry lint rule (R11 in
// docs/static-analysis.md) checks both directions: a literal at a call site
// that is not registered here is a finding, and an entry here that is
// missing from the tables in docs/observability.md (or vice versa) is a
// finding anchored in whichever side is stale.
//
// Constants are grouped by exporter. Keep each group sorted by value so a
// diff of this file reads like a diff of the exported name set.
//
// Naming: kMetric* for metric names, kSpan* for span names, kCat* for span
// categories. The lint rule keys on those prefixes, so do not add constants
// with other prefixes here.
#pragma once

namespace ddp::obs {

// --------------------------------------------------------------------------
// Span categories.
// --------------------------------------------------------------------------

inline constexpr const char* kCatJob = "job";
inline constexpr const char* kCatLocalDp = "local_dp";
inline constexpr const char* kCatMr = "mr";
inline constexpr const char* kCatPipeline = "pipeline";
inline constexpr const char* kCatServer = "server";
inline constexpr const char* kCatSpill = "spill";

// --------------------------------------------------------------------------
// Span names.
// --------------------------------------------------------------------------

// Pipeline stages (category "pipeline").
inline constexpr const char* kSpanAssignment = "assignment";
inline constexpr const char* kSpanChooseDc = "choose_dc";
inline constexpr const char* kSpanComputeScores = "compute_scores";
inline constexpr const char* kSpanPeakSelection = "peak_selection";

// Local density-peaks kernels (category "local_dp").
inline constexpr const char* kSpanDelta = "delta";
inline constexpr const char* kSpanDeltaCross = "delta_cross";
inline constexpr const char* kSpanDeltaCrossSym = "delta_cross_sym";
inline constexpr const char* kSpanRho = "rho";
inline constexpr const char* kSpanRhoCross = "rho_cross";

// MapReduce substrate (categories "mr", "job", "spill").
inline constexpr const char* kSpanMapAttempt = "map_attempt";
inline constexpr const char* kSpanMapPhase = "map_phase";
inline constexpr const char* kSpanMergeStream = "merge_stream";
inline constexpr const char* kSpanReduceAttempt = "reduce_attempt";
inline constexpr const char* kSpanReducePhase = "reduce_phase";
inline constexpr const char* kSpanRemoteWorker = "remote_worker";
inline constexpr const char* kSpanShufflePhase = "shuffle_phase";
inline constexpr const char* kSpanSpillWrite = "spill_write";
inline constexpr const char* kSpanSupervisedPhase = "supervised_phase";
inline constexpr const char* kSpanWorker = "worker";

// Serving layer (category "server").
inline constexpr const char* kSpanServerExecuteJob = "server.execute_job";

// --------------------------------------------------------------------------
// Metric names.
// --------------------------------------------------------------------------

// Pipeline driver.
inline constexpr const char* kMetricDdpPeaksSelected = "ddp.peaks_selected";
inline constexpr const char* kMetricDdpPipelineSeconds = "ddp.pipeline_seconds";
inline constexpr const char* kMetricDdpPipelines = "ddp.pipelines";

// Local density-peaks kernels.
inline constexpr const char* kMetricLocalDpDistanceEvals =
    "local_dp.distance_evals";
inline constexpr const char* kMetricLocalDpGroupSize = "local_dp.group_size";
inline constexpr const char* kMetricLocalDpGroups = "local_dp.groups";

// MapReduce substrate.
inline constexpr const char* kMetricMrChannelReconnects =
    "mr.channel_reconnects";
inline constexpr const char* kMetricMrJobSeconds = "mr.job_seconds";
inline constexpr const char* kMetricMrJobs = "mr.jobs";
inline constexpr const char* kMetricMrMapAttemptSeconds =
    "mr.map_attempt_seconds";
inline constexpr const char* kMetricMrQuarantinedTasks = "mr.quarantined_tasks";
inline constexpr const char* kMetricMrReduceAttemptSeconds =
    "mr.reduce_attempt_seconds";
inline constexpr const char* kMetricMrRunShipSeconds = "mr.run_ship_seconds";
inline constexpr const char* kMetricMrShuffleBytes = "mr.shuffle_bytes";
inline constexpr const char* kMetricMrShuffleRecords = "mr.shuffle_records";
inline constexpr const char* kMetricMrShuffleResentRuns =
    "mr.shuffle_resent_runs";
inline constexpr const char* kMetricMrShuffleStreamedBytes =
    "mr.shuffle_streamed_bytes";
inline constexpr const char* kMetricMrSpillWriteBytes = "mr.spill_write_bytes";
inline constexpr const char* kMetricMrSpillWriteSeconds =
    "mr.spill_write_seconds";
inline constexpr const char* kMetricMrSpilledBytes = "mr.spilled_bytes";
inline constexpr const char* kMetricMrTasksReassigned = "mr.tasks_reassigned";
inline constexpr const char* kMetricMrWorkerCrashLatencySeconds =
    "mr.worker_crash_latency_seconds";
inline constexpr const char* kMetricMrWorkerCrashes = "mr.worker_crashes";
inline constexpr const char* kMetricMrWorkerKills = "mr.worker_kills";
inline constexpr const char* kMetricMrWorkerRestarts = "mr.worker_restarts";
inline constexpr const char* kMetricMrWorkersEvicted = "mr.workers_evicted";
inline constexpr const char* kMetricMrWorkersRegistered =
    "mr.workers_registered";

// Process-wide gauges.
inline constexpr const char* kMetricProcessPeakRssBytes =
    "process.peak_rss_bytes";
inline constexpr const char* kMetricProcessRssBytes = "process.rss_bytes";

// Serving layer.
inline constexpr const char* kMetricServerAdmittedBudgetBytes =
    "server.admitted_budget_bytes";
inline constexpr const char* kMetricServerDatasetCacheBytes =
    "server.dataset_cache_bytes";
inline constexpr const char* kMetricServerDatasetCacheHits =
    "server.dataset_cache_hits";
inline constexpr const char* kMetricServerDatasetCacheMisses =
    "server.dataset_cache_misses";
inline constexpr const char* kMetricServerJobSeconds = "server.job_seconds";
inline constexpr const char* kMetricServerJobsCancelled =
    "server.jobs_cancelled";
inline constexpr const char* kMetricServerJobsCoalesced =
    "server.jobs_coalesced";
inline constexpr const char* kMetricServerJobsCompleted =
    "server.jobs_completed";
inline constexpr const char* kMetricServerJobsFailed = "server.jobs_failed";
inline constexpr const char* kMetricServerJobsRejected = "server.jobs_rejected";
inline constexpr const char* kMetricServerJobsSubmitted =
    "server.jobs_submitted";
inline constexpr const char* kMetricServerQueueDepth = "server.queue_depth";
inline constexpr const char* kMetricServerQueueWaitSeconds =
    "server.queue_wait_seconds";
inline constexpr const char* kMetricServerResultCacheEntries =
    "server.result_cache_entries";
inline constexpr const char* kMetricServerResultCacheHits =
    "server.result_cache_hits";
inline constexpr const char* kMetricServerResultCacheMisses =
    "server.result_cache_misses";
inline constexpr const char* kMetricServerRunningJobs = "server.running_jobs";

}  // namespace ddp::obs

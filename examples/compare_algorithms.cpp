// Head-to-head comparison of the library's clustering algorithms on one
// shaped data set — the programmatic version of the paper's Fig. 8.
//
// Run: ./build/examples/compare_algorithms

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/dbscan.h"
#include "baselines/em_gmm.h"
#include "baselines/hierarchical.h"
#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"
#include "eval/metrics.h"

namespace {

void Print(const std::string& name, const std::vector<int>& assignment,
           const std::vector<int>& truth) {
  double ari = std::move(ddp::eval::AdjustedRandIndex(assignment, truth))
                   .ValueOrDie();
  double nmi = std::move(ddp::eval::NormalizedMutualInformation(assignment,
                                                                truth))
                   .ValueOrDie();
  double purity = std::move(ddp::eval::Purity(assignment, truth)).ValueOrDie();
  std::printf("%-22s %8.4f %8.4f %8.4f\n", name.c_str(), ari, nmi, purity);
}

}  // namespace

int main() {
  ddp::Dataset ds = std::move(ddp::gen::AggregationLike(42)).ValueOrDie();
  const std::vector<int>& truth = ds.labels();
  ddp::CountingMetric metric;
  double dc = std::move(ddp::ChooseCutoff(ds, metric)).ValueOrDie();

  std::printf("Aggregation-like: %zu points, 7 clusters, d_c = %.3f\n\n",
              ds.size(), dc);
  std::printf("%-22s %8s %8s %8s\n", "algorithm", "ARI", "NMI", "purity");

  // Exact sequential DP.
  {
    ddp::DpScores scores =
        std::move(ddp::ComputeExactDp(ds, dc, metric)).ValueOrDie();
    ddp::DecisionGraph graph = ddp::DecisionGraph::FromScores(scores);
    auto clusters = std::move(ddp::AssignClusters(ds, scores,
                                                  graph.SelectTopK(7), metric))
                        .ValueOrDie();
    Print("DP (sequential)", clusters.assignment, truth);
  }
  // Distributed approximate DP.
  {
    ddp::LshDdp lsh;
    ddp::DdpOptions options;
    options.dc = dc;
    options.selector = ddp::PeakSelector::TopK(7);
    auto run = std::move(ddp::RunDistributedDp(&lsh, ds, options)).ValueOrDie();
    Print("LSH-DDP (A=0.99)", run.clusters.assignment, truth);
  }
  // K-means.
  {
    ddp::baselines::KmeansOptions options;
    options.k = 7;
    options.seed = 1;
    auto r = std::move(ddp::baselines::RunKmeans(ds, options, metric))
                 .ValueOrDie();
    Print("k-means++", r.assignment, truth);
  }
  // EM / GMM.
  {
    ddp::baselines::EmGmmOptions options;
    options.k = 7;
    auto r = std::move(ddp::baselines::RunEmGmm(ds, options, metric))
                 .ValueOrDie();
    Print("EM (diagonal GMM)", r.assignment, truth);
  }
  // DBSCAN with the paper's Fig. 8 configuration.
  {
    ddp::baselines::DbscanOptions options;
    options.epsilon = dc;
    options.min_points = 1;
    auto r = std::move(ddp::baselines::RunDbscan(ds, options, metric))
                 .ValueOrDie();
    Print("DBSCAN (eps=d_c)", r.assignment, truth);
  }
  // Mean shift (bandwidth scaled from d_c).
  {
    ddp::baselines::MeanShiftOptions options;
    options.bandwidth = 2.5 * dc;
    auto r = std::move(ddp::baselines::RunMeanShift(ds, options, metric))
                 .ValueOrDie();
    Print("mean shift", r.assignment, truth);
  }
  // Agglomerative, three linkages.
  for (auto [linkage, name] :
       {std::pair{ddp::baselines::Linkage::kSingle, "hier. (single)"},
        std::pair{ddp::baselines::Linkage::kComplete, "hier. (complete)"},
        std::pair{ddp::baselines::Linkage::kAverage, "hier. (average)"}}) {
    ddp::baselines::HierarchicalOptions options;
    options.num_clusters = 7;
    options.linkage = linkage;
    auto r = std::move(ddp::baselines::RunHierarchical(ds, options, metric))
                 .ValueOrDie();
    Print(name, r.assignment, truth);
  }
  return 0;
}

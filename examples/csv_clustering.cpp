// Cluster your own CSV file with LSH-DDP.
//
// Usage:
//   ./build/examples/csv_clustering <input.csv> [num_clusters] [output.csv]
//
// The input is one point per line, coordinates separated by commas, spaces,
// or tabs; lines starting with '#' are skipped. The output is the input with
// a cluster-id column appended. With no arguments, a demo data set is
// generated, written to /tmp/ddp_demo_input.csv, and clustered.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dataset/csv.h"
#include "dataset/generators.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"

int main(int argc, char** argv) {
  std::string input_path;
  size_t num_clusters = 0;  // 0 = automatic gamma-gap selection
  std::string output_path = "/tmp/ddp_clustered.csv";

  if (argc > 1) {
    input_path = argv[1];
    if (argc > 2) num_clusters = static_cast<size_t>(std::atoi(argv[2]));
    if (argc > 3) output_path = argv[3];
  } else {
    input_path = "/tmp/ddp_demo_input.csv";
    std::printf("no input given; generating a demo data set at %s\n",
                input_path.c_str());
    ddp::Dataset demo = std::move(ddp::gen::S2Like(1, 1500)).ValueOrDie();
    // Write coordinates only (drop labels) so the demo mirrors real input.
    ddp::Dataset coords_only =
        std::move(ddp::Dataset::FromValues(demo.dim(), demo.values()))
            .ValueOrDie();
    ddp::WriteCsvFile(input_path, coords_only).Abort("write demo");
    num_clusters = 15;
  }

  auto dataset = ddp::ReadCsvFile(input_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", input_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu points of dimension %zu\n", dataset->size(),
              dataset->dim());

  ddp::LshDdp algorithm;  // A = 0.99, M = 10, pi = 3 defaults
  ddp::DdpOptions options;
  options.selector = num_clusters > 0
                         ? ddp::PeakSelector::TopK(num_clusters)
                         : ddp::PeakSelector::GammaGap();
  auto run = ddp::RunDistributedDp(&algorithm, *dataset, options);
  if (!run.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("d_c = %.4f; %s\n", run->dc, run->clusters.Summary().c_str());

  // Append the assignment as a label column and write out.
  ddp::Dataset labeled =
      std::move(ddp::Dataset::FromValues(dataset->dim(), dataset->values()))
          .ValueOrDie();
  labeled.set_labels(run->clusters.assignment);
  ddp::Status st = ddp::WriteCsvFile(output_path, labeled);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", output_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("clustered output written to %s (last column = cluster id)\n",
              output_path.c_str());
  return 0;
}

// Decision-graph workflow demo (the paper's Fig. 1 / Fig. 7 interaction):
//
//   1. compute (rho, delta) for every point,
//   2. export the decision graph as TSV for plotting,
//   3. try the three peak-selection strategies and show how the chosen
//      peaks translate into clusterings.
//
// Run: ./build/examples/decision_graph_demo [output.tsv]

#include <cstdio>
#include <fstream>

#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "/tmp/decision_graph.tsv";

  // An Aggregation-like shaped data set with 7 ground-truth clusters.
  ddp::Dataset dataset = std::move(ddp::gen::AggregationLike(42)).ValueOrDie();
  ddp::CountingMetric metric;

  // Cutoff via the 2% percentile rule of thumb.
  double dc = std::move(ddp::ChooseCutoff(dataset, metric)).ValueOrDie();
  std::printf("N = %zu, d_c = %.3f\n", dataset.size(), dc);

  // Exact DP scores (use BasicDdp/LshDdp for the distributed equivalents).
  ddp::DpScores scores =
      std::move(ddp::ComputeExactDp(dataset, dc, metric)).ValueOrDie();
  ddp::DecisionGraph graph = ddp::DecisionGraph::FromScores(scores);

  // Export for plotting (e.g. gnuplot> plot "decision_graph.tsv" u 2:3).
  std::ofstream(out_path) << graph.ToTsv();
  std::printf("decision graph exported to %s (x=rho, y=delta)\n\n", out_path);

  // The top of the gamma ranking — what a user would eyeball as peaks.
  std::printf("top 10 gamma candidates (id, rho, delta, gamma):\n");
  for (ddp::PointId id : graph.SelectTopK(10)) {
    std::printf("  %6u  %6.0f  %8.3f  %10.1f\n", id, graph.rho()[id],
                graph.delta()[id], graph.gamma(id));
  }

  // Three selection strategies.
  struct Strategy {
    const char* name;
    std::vector<ddp::PointId> peaks;
  };
  Strategy strategies[] = {
      {"top-7 by gamma", graph.SelectTopK(7)},
      {"automatic gamma gap", graph.SelectByGammaGap()},
      {"threshold rho>8, delta>3", graph.SelectByThreshold(8.0, 3.0)},
  };
  std::printf("\n%-28s %8s %10s\n", "strategy", "#peaks", "ARI");
  for (const Strategy& s : strategies) {
    if (s.peaks.empty()) {
      std::printf("%-28s %8zu %10s\n", s.name, s.peaks.size(), "n/a");
      continue;
    }
    ddp::ClusterResult clusters =
        std::move(ddp::AssignClusters(dataset, scores, s.peaks, metric))
            .ValueOrDie();
    double ari = std::move(ddp::eval::AdjustedRandIndex(clusters.assignment,
                                                        dataset.labels()))
                     .ValueOrDie();
    std::printf("%-28s %8zu %10.4f\n", s.name, s.peaks.size(), ari);
  }
  return 0;
}

// Parameter tuning walkthrough (Sec. V): how the accuracy target A and the
// integer parameters (M, pi) translate into the LSH width w, and what that
// means for expected cost.
//
// Run: ./build/examples/param_tuning

#include <cstdio>

#include "core/cutoff.h"
#include "dataset/generators.h"
#include "lsh/partitioner.h"
#include "lsh/theory.h"
#include "lsh/tuning.h"

int main() {
  ddp::Dataset ds = std::move(ddp::gen::KddLike(3, 2000)).ValueOrDie();
  ddp::CountingMetric metric;
  double dc = std::move(ddp::ChooseCutoff(ds, metric)).ValueOrDie();
  std::printf("KDD-like sample: %zu points, d_c = %.3f\n\n", ds.size(), dc);

  // (1) The closed-form width solver: A, M, pi -> w (Eq. (5) inverted).
  std::printf("minimal width w for target accuracy (M layouts, pi functions):\n");
  std::printf("%8s %6s %6s %12s %22s\n", "A", "M", "pi", "w",
              "check A(w,pi,M)");
  for (double accuracy : {0.90, 0.99}) {
    for (size_t layouts : {5ul, 10ul, 20ul}) {
      for (size_t pi : {3ul, 10ul}) {
        double w = std::move(ddp::lsh::SolveMinimalWidth(accuracy, layouts,
                                                         pi, dc))
                       .ValueOrDie();
        std::printf("%8.2f %6zu %6zu %12.3f %22.6f\n", accuracy, layouts, pi,
                    w, ddp::lsh::ExpectedRhoAccuracy(w, pi, layouts, dc));
      }
    }
  }

  // (2) The cost side (Sec. V-B): wider slots mean bigger buckets, i.e. a
  // larger sum of squared partition sizes — the Eq. (8) computational cost.
  std::printf("\ncost driver sum_k N_k^2 per layout (A=0.99, M=10):\n");
  std::printf("%6s %12s %14s %14s\n", "pi", "w", "buckets", "sum N_k^2");
  for (size_t pi : {1ul, 3ul, 10ul}) {
    double w =
        std::move(ddp::lsh::SolveMinimalWidth(0.99, 10, pi, dc)).ValueOrDie();
    auto part = std::move(ddp::lsh::MultiLshPartitioner::Create(
                              ds.dim(), 1, pi, w, 7))
                    .ValueOrDie();
    auto stats = part.ComputeStats(ds);
    std::printf("%6zu %12.3f %14zu %14llu\n", pi, w, stats[0].num_buckets,
                static_cast<unsigned long long>(stats[0].sum_squared_sizes));
  }

  // (3) Theorem 2's delta-side implication: recovery probability by upslope
  // distance. Faraway upslope points (density peaks!) are rarely recovered —
  // by design, they surface as +inf and are peak candidates anyway.
  std::printf("\ndelta recovery probability vs upslope distance "
              "(A=0.99, M=10, pi=3):\n");
  double w = std::move(ddp::lsh::SolveMinimalWidth(0.99, 10, 3, dc)).ValueOrDie();
  std::printf("%14s %14s\n", "d_upslope/d_c", "Pr[recovered]");
  for (double mult : {0.25, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    std::printf("%14.2f %14.4f\n", mult,
                ddp::lsh::ExpectedDeltaAccuracy(mult * dc, w, 3, 10));
  }
  return 0;
}

// Quickstart: cluster a data set with LSH-DDP in ~20 lines.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//
// The pipeline mirrors the paper end to end: a MapReduce job picks the
// cutoff distance d_c, four MapReduce jobs approximate (rho, delta), and a
// centralized step selects density peaks off the decision graph and assigns
// every point by following its upslope chain.

#include <cstdio>

#include "dataset/generators.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"
#include "eval/metrics.h"

int main() {
  // 1. Get a data set. Here: 2000 points in 15 gaussian clusters (an
  //    S2-like workload). Use ddp::ReadCsvFile to load your own points.
  ddp::Dataset dataset = std::move(ddp::gen::S2Like(/*seed=*/42, 2000))
                             .ValueOrDie();

  // 2. Configure LSH-DDP: ask for 99% expected rho accuracy with M=10
  //    layouts of pi=3 hash functions (the paper's recommended setting).
  ddp::LshDdp::Params params;
  params.accuracy = 0.99;
  params.lsh.num_layouts = 10;
  params.lsh.pi = 3;
  ddp::LshDdp algorithm(params);

  // 3. Run the full distributed pipeline. The gamma-gap selector picks the
  //    peaks automatically; use PeakSelector::Threshold(...) to mimic the
  //    paper's interactive selection.
  ddp::DdpOptions options;
  options.selector = ddp::PeakSelector::TopK(15);
  ddp::DdpRunResult result =
      std::move(ddp::RunDistributedDp(&algorithm, dataset, options))
          .ValueOrDie();

  // 4. Inspect the result.
  std::printf("chose d_c = %.1f\n", result.dc);
  std::printf("%s\n", result.clusters.Summary().c_str());
  std::printf("MapReduce cost:\n%s\n", result.stats.ToString().c_str());
  std::printf("distance evaluations: %llu\n",
              static_cast<unsigned long long>(result.distance_evaluations));

  // 5. The generator ships ground truth, so score the clustering.
  double ari = std::move(ddp::eval::AdjustedRandIndex(
                             result.clusters.assignment, dataset.labels()))
                   .ValueOrDie();
  std::printf("adjusted Rand index vs ground truth: %.4f\n", ari);
  return 0;
}

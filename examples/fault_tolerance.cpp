// Fault-tolerance demo: run the full LSH-DDP pipeline while the MapReduce
// runtime loses 25% of all map and reduce task attempts, then verify the
// clustering is bit-identical to a failure-free run.
//
// Run: ./build/examples/fault_tolerance

#include <cstdio>

#include "dataset/generators.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"

int main() {
  ddp::Dataset dataset =
      std::move(ddp::gen::KddLike(/*seed=*/3, 1500)).ValueOrDie();
  std::printf("KDD-like data set: %zu points, %zu dims\n", dataset.size(),
              dataset.dim());

  ddp::DdpOptions clean;
  clean.selector = ddp::PeakSelector::TopK(8);

  ddp::DdpOptions chaotic = clean;
  chaotic.mr.faults.map_failure_rate = 0.25;
  chaotic.mr.faults.reduce_failure_rate = 0.25;
  chaotic.mr.faults.seed = 2026;
  chaotic.mr.max_task_attempts = 20;

  ddp::LshDdp algo_clean, algo_chaotic;
  auto a = std::move(ddp::RunDistributedDp(&algo_clean, dataset, clean))
               .ValueOrDie();
  auto b = std::move(ddp::RunDistributedDp(&algo_chaotic, dataset, chaotic))
               .ValueOrDie();

  uint64_t retries = 0;
  for (const auto& job : b.stats.jobs) {
    retries += job.map_task_retries + job.reduce_task_retries;
  }
  std::printf("chaotic run: %llu task attempts were killed and retried\n",
              static_cast<unsigned long long>(retries));

  bool identical = a.clusters.assignment == b.clusters.assignment &&
                   a.scores.rho == b.scores.rho &&
                   a.scores.delta == b.scores.delta;
  std::printf("results identical to the failure-free run: %s\n",
              identical ? "YES" : "NO (bug!)");
  std::printf(
      "\nWhy: tasks are pure functions of their input split; a failed\n"
      "attempt's partial output is discarded and the retry reproduces it\n"
      "exactly -- the same guarantee a Hadoop deployment relies on.\n");
  return identical ? 0 : 1;
}

// Fault-tolerance demo: run the full LSH-DDP pipeline through the complete
// chaos gauntlet — lost task attempts, injected stragglers with speculative
// backups, per-attempt deadlines, corrupt shuffle records under
// skip_bad_records, and a simulated driver kill with checkpoint resume —
// then verify the clustering is bit-identical to a failure-free run.
//
// Run: ./build/examples/fault_tolerance

#include <cstdio>
#include <filesystem>
#include <string>

#include "dataset/generators.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"

namespace {

bool SameResults(const ddp::DdpRunResult& a, const ddp::DdpRunResult& b) {
  return a.clusters.assignment == b.clusters.assignment &&
         a.scores.rho == b.scores.rho && a.scores.delta == b.scores.delta;
}

int Fail(const ddp::Status& status, const char* what) {
  std::printf("FAILED: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  ddp::Result<ddp::Dataset> data = ddp::gen::KddLike(/*seed=*/3, 1500);
  if (!data.ok()) return Fail(data.status(), "generating data set");
  ddp::Dataset dataset = std::move(data).value();
  std::printf("KDD-like data set: %zu points, %zu dims\n", dataset.size(),
              dataset.dim());

  ddp::DdpOptions clean;
  clean.selector = ddp::PeakSelector::TopK(8);

  ddp::LshDdp algo_clean;
  ddp::Result<ddp::DdpRunResult> clean_run =
      ddp::RunDistributedDp(&algo_clean, dataset, clean);
  if (!clean_run.ok()) return Fail(clean_run.status(), "failure-free run");
  const ddp::DdpRunResult& baseline = *clean_run;

  // ---- Round 1: the full chaos gauntlet in one run.
  ddp::DdpOptions chaotic = clean;
  chaotic.mr.faults.map_failure_rate = 0.25;
  chaotic.mr.faults.reduce_failure_rate = 0.25;
  chaotic.mr.faults.straggler_rate = 0.2;      // 1 in 5 attempts dawdles...
  chaotic.mr.faults.straggler_slowdown = 10.0;  // ...at ~10x its compute time
  chaotic.mr.faults.straggler_min_seconds = 0.25;
  chaotic.mr.faults.corruption_rate = 0.05;  // poisoned shuffle frames
  chaotic.mr.faults.seed = 2026;
  chaotic.mr.max_task_attempts = 20;
  chaotic.mr.speculative_execution = true;  // race backups against stragglers
  chaotic.mr.speculative_multiplier = 3.0;
  chaotic.mr.skip_bad_records = true;  // step over the poisoned frames
  // Tighter than the straggler dawdle: a straggler whose backup also
  // straggles is deadline-killed and retried instead of stalling the job.
  chaotic.mr.task_deadline_seconds = 0.2;

  ddp::LshDdp algo_chaotic;
  ddp::Result<ddp::DdpRunResult> chaotic_run =
      ddp::RunDistributedDp(&algo_chaotic, dataset, chaotic);
  if (!chaotic_run.ok()) return Fail(chaotic_run.status(), "chaotic run");

  const ddp::mr::RunStats& stats = chaotic_run->stats;
  std::printf(
      "chaotic run survived: retries=%llu speculative=%llu (won %llu) "
      "skipped_records=%llu deadline_kills=%llu\n",
      static_cast<unsigned long long>(stats.TotalTaskRetries()),
      static_cast<unsigned long long>(stats.TotalSpeculativeLaunches()),
      static_cast<unsigned long long>(stats.TotalSpeculativeWins()),
      static_cast<unsigned long long>(stats.TotalSkippedRecords()),
      static_cast<unsigned long long>(stats.TotalDeadlineKills()));

  bool identical = SameResults(baseline, *chaotic_run);
  std::printf("results identical to the failure-free run: %s\n",
              identical ? "YES" : "NO (bug!)");

  // ---- Round 2: kill the driver partway through, then resume from the
  // checkpoint directory — a fresh driver process picks up where the dead
  // one stopped, replaying completed jobs from disk.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "ddp_fault_tolerance_demo")
          .string();
  std::filesystem::remove_all(ckpt_dir);

  ddp::mr::CheckpointStore store(ckpt_dir);
  ddp::DdpOptions resumable = clean;
  resumable.mr.checkpoint = &store;

  store.SetKillAfter(2);  // die after the 2nd job checkpoints
  ddp::LshDdp algo_killed;
  ddp::Result<ddp::DdpRunResult> killed_run =
      ddp::RunDistributedDp(&algo_killed, dataset, resumable);
  if (killed_run.ok()) {
    std::printf("FAILED: simulated driver kill did not stop the pipeline\n");
    return 1;
  }
  std::printf("\ndriver killed mid-pipeline: %s\n",
              killed_run.status().ToString().c_str());

  store.SetKillAfter(-1);  // new driver process: no kill switch
  ddp::LshDdp algo_resumed;
  ddp::Result<ddp::DdpRunResult> resumed_run =
      ddp::RunDistributedDp(&algo_resumed, dataset, resumable);
  if (!resumed_run.ok()) return Fail(resumed_run.status(), "resumed run");

  uint64_t replayed = resumed_run->stats.JobsLoadedFromCheckpoint();
  bool resumed_identical = SameResults(baseline, *resumed_run);
  std::printf(
      "resumed run: %llu of %zu jobs replayed from checkpoint, results "
      "identical: %s\n",
      static_cast<unsigned long long>(replayed),
      resumed_run->stats.jobs.size(), resumed_identical ? "YES" : "NO (bug!)");
  std::filesystem::remove_all(ckpt_dir);

  std::printf(
      "\nWhy: tasks are pure functions of their input split, so every\n"
      "recovery path -- retry, speculative backup, deadline kill, bad-record\n"
      "skip, checkpoint replay -- reproduces the same bytes a clean run\n"
      "produces, the guarantee a Hadoop deployment relies on.\n");
  return (identical && resumed_identical && replayed > 0) ? 0 : 1;
}

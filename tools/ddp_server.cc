// ddp_server — the clustering-as-a-service daemon (src/server/server.h).
//
//   ddp_server [options]
//
//   --listen HOST:PORT       numeric-IPv4 listen endpoint (default
//                            127.0.0.1:0; port 0 picks an ephemeral port)
//   --port-file FILE         write the bound port as a decimal line once
//                            serving (how scripts find an ephemeral port)
//   --work-dir DIR           root for spill + checkpoint dirs (default:
//                            <system temp>/ddp-server-<port>)
//   --max-queued-jobs N      bounded queue depth (default 16)
//   --admission-budget B     server-wide admission budget in bytes
//   --default-job-budget B   admission weight of jobs that omit a budget
//   --dataset-cache-bytes B  resident dataset cache bound
//   --result-cache-entries N result cache bound (0 disables)
//   --scheduler-threads N    concurrent running jobs (default 2)
//   --drain-timeout S        grace period before shutdown cancels jobs
//   --remote-listen H:P      enable the remote worker pool: bind a second
//                            listener for exec'd ddp_worker processes
//                            (port 0 picks an ephemeral port); jobs
//                            submitted with exec_mode 2 run on it
//   --remote-port-file FILE  write the remote listener's bound port
//   --stats-out FILE         write the metrics registry JSON at exit
//
// The daemon serves until it receives SIGINT/SIGTERM or a client drain
// request (ddp_client shutdown), then drains and exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/host_port.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "server/server.h"

namespace ddp {
namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0 && i + 1 < argc) {
        flags_[a.substr(2)] = argv[++i];
      } else {
        bad_ = true;
      }
    }
  }

  bool bad() const { return bad_; }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : it->second;
  }
  uint64_t GetUint(const std::string& key, uint64_t def) const {
    auto it = flags_.find(key);
    return it == flags_.end()
               ? def
               : static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> flags_;
  bool bad_ = false;
};

int Main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.bad()) {
    std::fprintf(stderr, "usage: ddp_server [--flag value ...]\n");
    return 2;
  }

  obs::ExportOptions export_options = obs::Session::FromEnv();
  obs::Session obs_session(export_options);

  server::ServerConfig config;
  Result<HostPort> listen = ParseHostPort(args.Get("listen", "127.0.0.1:0"));
  if (!listen.ok()) {
    std::fprintf(stderr, "bad --listen: %s\n",
                 listen.status().ToString().c_str());
    return 2;
  }
  config.host = listen->host;
  config.port = listen->port;
  config.max_queued_jobs =
      static_cast<size_t>(args.GetUint("max-queued-jobs", 16));
  config.admission_budget_bytes =
      args.GetUint("admission-budget", config.admission_budget_bytes);
  config.default_job_budget_bytes =
      args.GetUint("default-job-budget", config.default_job_budget_bytes);
  config.dataset_cache_bytes =
      args.GetUint("dataset-cache-bytes", config.dataset_cache_bytes);
  config.result_cache_entries =
      static_cast<size_t>(args.GetUint("result-cache-entries", 64));
  config.scheduler_threads =
      static_cast<size_t>(args.GetUint("scheduler-threads", 2));
  config.work_dir = args.Get("work-dir");
  config.drain_timeout_seconds = args.GetDouble("drain-timeout", 60.0);
  if (args.Has("remote-listen")) {
    Result<HostPort> remote = ParseHostPort(args.Get("remote-listen"));
    if (!remote.ok()) {
      std::fprintf(stderr, "bad --remote-listen: %s\n",
                   remote.status().ToString().c_str());
      return 2;
    }
    config.enable_remote_workers = true;
    config.remote_listen_host = remote->host;
    config.remote_listen_port = remote->port;
  }

  Result<std::unique_ptr<server::DdpServer>> started =
      server::DdpServer::Start(config);
  if (!started.ok()) {
    std::fprintf(stderr, "ddp_server start failed: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  server::DdpServer& srv = **started;
  std::printf("ddp_server listening on %s:%u (work dir %s)\n",
              config.host.c_str(), static_cast<unsigned>(srv.port()),
              srv.work_dir().c_str());
  if (srv.remote_port() != 0) {
    std::printf("remote workers: dial %s:%u (ddp_worker --connect)\n",
                config.remote_listen_host.c_str(),
                static_cast<unsigned>(srv.remote_port()));
  }
  std::fflush(stdout);

  if (args.Has("port-file")) {
    const std::string port_file = args.Get("port-file");
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(srv.port()));
    std::fclose(f);
  }
  if (args.Has("remote-port-file")) {
    const std::string port_file = args.Get("remote-port-file");
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --remote-port-file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(srv.remote_port()));
    std::fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Serve until a signal or a client drain request (kShutdownJobId) flips
  // the server into draining.
  CancelToken idle;
  while (g_signal == 0 && !srv.draining()) {
    idle.WaitFor(0.05);
  }
  std::printf("ddp_server draining (%s)\n",
              g_signal != 0 ? "signal" : "client request");
  std::fflush(stdout);
  srv.RequestShutdown();
  srv.WaitShutdown();

  if (args.Has("stats-out")) {
    Status st = obs::MetricsRegistry::Global().WriteJson(args.Get("stats-out"));
    if (!st.ok()) {
      std::fprintf(stderr, "stats write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", args.Get("stats-out").c_str());
  }
  Status obs_st = obs_session.Finish();
  if (!obs_st.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 obs_st.ToString().c_str());
  }
  std::printf("ddp_server exited cleanly\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main(int argc, char** argv) { return ddp::Main(argc, argv); }

// ddp_client — command-line client for a running ddp_server.
//
//   ddp_client submit <dataset> --connect HOST:PORT [options]
//   ddp_client status <job-id>  --connect HOST:PORT
//   ddp_client result <job-id>  --connect HOST:PORT [--out FILE]
//   ddp_client cancel <job-id>  --connect HOST:PORT
//   ddp_client shutdown         --connect HOST:PORT
//
// `submit` options mirror the ddp_cli cluster flags the serving layer
// supports:
//   --algo lsh|basic|eddpc   algorithm (default lsh)
//   --k N | --rho X --delta Y   peak selection (default gamma-gap)
//   --dc D --percentile P    cutoff
//   --accuracy A --m M --pi P   LSH-DDP parameters
//   --block N                Basic-DDP block size
//   --workers N              MapReduce workers (0 = server default)
//   --memory-budget B        per-job spill budget; admission weight
//   --exec-mode inproc|fork|remote
//                            worker execution mode (remote requires the
//                            server to run with --remote-listen)
//   --seed S                 chaos/backoff seed (default 1)
//   --map-failure-rate R --reduce-failure-rate R --worker-crash-rate R
//                            seeded chaos (tests and drills)
//   --wait [--timeout S]     block until the job finishes, then fetch the
//                            result (exit 0 only if the job is done)
//   --progress S             subscribe to kJobProgress pushes every S sec
//   --out FILE               write the assignment as CSV (one id per line)
//
// Machine-readable output: `submit` prints `job_id: N`, terminal states
// print `state: <name>` and `from_result_cache: yes|no`, so shell tests can
// grep the cache behaviour.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/host_port.h"
#include "server/client.h"

namespace ddp {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ddp_client submit <dataset> --connect HOST:PORT "
               "[options]\n"
               "       ddp_client status|result|cancel <job-id> --connect "
               "HOST:PORT\n"
               "       ddp_client shutdown --connect HOST:PORT\n");
  return 2;
}

class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        std::string key = a.substr(2);
        if (key == "wait") {  // boolean flag
          flags_[key] = "1";
        } else if (i + 1 < argc) {
          flags_[key] = argv[++i];
        } else {
          bad_ = true;
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  bool bad() const { return bad_; }
  const std::vector<std::string>& positional() const { return positional_; }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : it->second;
  }
  uint64_t GetUint(const std::string& key, uint64_t def) const {
    auto it = flags_.find(key);
    return it == flags_.end()
               ? def
               : static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  bool bad_ = false;
};

void PrintStatus(const server::JobStatusMsg& status) {
  std::printf("job_id: %llu\n",
              static_cast<unsigned long long>(status.job_id));
  std::printf("state: %s\n",
              std::string(server::JobStateName(
                              static_cast<server::JobState>(status.state)))
                  .c_str());
  if (!status.detail.empty()) {
    std::printf("detail: %s\n", status.detail.c_str());
  }
  std::printf("from_result_cache: %s\n",
              status.from_result_cache != 0 ? "yes" : "no");
}

int FetchAndPrintResult(server::DdpClient& client, uint64_t job_id,
                        const Args& args) {
  Result<server::JobResultMsg> result = client.FetchResult(job_id);
  if (!result.ok()) {
    std::fprintf(stderr, "result fetch failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("job_id: %llu\n", static_cast<unsigned long long>(job_id));
  std::printf("state: %s\n",
              std::string(server::JobStateName(
                              static_cast<server::JobState>(result->state)))
                  .c_str());
  std::printf("from_result_cache: %s\n",
              result->from_result_cache != 0 ? "yes" : "no");
  if (result->state != static_cast<uint8_t>(server::JobState::kDone)) {
    std::printf("error: %s\n", result->error.c_str());
    return 1;
  }
  server::JobResultPayload payload;
  Status st = server::JobResultPayload::Decode(result->payload, &payload);
  if (!st.ok()) {
    std::fprintf(stderr, "result decode failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("d_c: %.6g\nclusters: %llu\npoints: %zu\n"
              "distance_evals: %llu\nmr_jobs: %llu\ntotal_seconds: %.3f\n",
              payload.dc, static_cast<unsigned long long>(payload.num_clusters),
              payload.assignment.size(),
              static_cast<unsigned long long>(payload.distance_evaluations),
              static_cast<unsigned long long>(payload.mr_jobs),
              payload.total_seconds);
  if (args.Has("out")) {
    std::ofstream out(args.Get("out"));
    for (int32_t id : payload.assignment) out << id << '\n';
    if (!out) {
      std::fprintf(stderr, "write failed: %s\n", args.Get("out").c_str());
      return 1;
    }
    std::printf("assignment -> %s\n", args.Get("out").c_str());
  }
  return 0;
}

int CmdSubmit(server::DdpClient& client, const Args& args) {
  if (args.positional().size() != 2) return Usage();
  server::JobSubmitMsg msg;
  msg.dataset_path = args.positional()[1];
  msg.params.algo = args.Get("algo", "lsh");
  msg.params.dc = args.GetDouble("dc", 0.0);
  msg.params.percentile = args.GetDouble("percentile", 0.02);
  msg.params.k = args.GetUint("k", 0);
  msg.params.rho_min = args.GetDouble("rho", 0.0);
  msg.params.delta_min = args.GetDouble("delta", 0.0);
  msg.params.accuracy = args.GetDouble("accuracy", 0.99);
  msg.params.num_layouts = args.GetUint("m", 10);
  msg.params.pi = args.GetUint("pi", 3);
  msg.params.block_size = args.GetUint("block", 500);
  msg.params.num_workers = args.GetUint("workers", 0);
  msg.params.memory_budget_bytes = args.GetUint("memory-budget", 0);
  const std::string exec_mode = args.Get("exec-mode", "inproc");
  if (exec_mode == "fork") {
    msg.params.exec_mode = 1;
  } else if (exec_mode == "remote") {
    msg.params.exec_mode = 2;
  } else if (exec_mode != "inproc") {
    std::fprintf(stderr, "unknown --exec-mode '%s' (inproc|fork|remote)\n",
                 exec_mode.c_str());
    return 2;
  }
  msg.params.seed = args.GetUint("seed", 1);
  msg.params.map_failure_rate = args.GetDouble("map-failure-rate", 0.0);
  msg.params.reduce_failure_rate = args.GetDouble("reduce-failure-rate", 0.0);
  msg.params.worker_crash_rate = args.GetDouble("worker-crash-rate", 0.0);
  msg.progress_seconds = args.GetDouble("progress", 0.0);

  if (msg.progress_seconds > 0.0) {
    client.set_progress_handler([](const server::JobStatusMsg& push) {
      std::printf("progress: job %llu %s, %llu MapReduce jobs, %.1fs\n",
                  static_cast<unsigned long long>(push.job_id),
                  std::string(server::JobStateName(
                                  static_cast<server::JobState>(push.state)))
                      .c_str(),
                  static_cast<unsigned long long>(push.mr_jobs_done),
                  push.running_seconds);
      std::fflush(stdout);
    });
  }

  Result<server::JobStatusMsg> submitted = client.Submit(msg);
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  if (submitted->state == static_cast<uint8_t>(server::JobState::kRejected)) {
    PrintStatus(*submitted);
    return 3;  // distinct exit for admission rejection
  }
  if (!args.Has("wait")) {
    PrintStatus(*submitted);
    return 0;
  }
  const double timeout = args.GetDouble("timeout", 600.0);
  Result<server::JobStatusMsg> done =
      client.WaitForResult(submitted->job_id, timeout);
  if (!done.ok()) {
    std::fprintf(stderr, "wait failed: %s\n",
                 done.status().ToString().c_str());
    return 1;
  }
  return FetchAndPrintResult(client, done->job_id, args);
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Args args(argc, argv, 1);
  if (args.bad()) return Usage();

  Result<HostPort> endpoint = ParseHostPort(args.Get("connect", ""));
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bad --connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  Result<std::unique_ptr<server::DdpClient>> connected =
      server::DdpClient::Connect(endpoint->host, endpoint->port,
                                 args.GetDouble("connect-timeout", 10.0));
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  server::DdpClient& client = **connected;

  if (cmd == "submit") return CmdSubmit(client, args);
  if (cmd == "shutdown") {
    Result<server::JobStatusMsg> reply = client.RequestServerShutdown();
    if (!reply.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    std::printf("server drain: %s\n", reply->detail.c_str());
    return 0;
  }

  if (args.positional().size() != 2) return Usage();
  const uint64_t job_id =
      static_cast<uint64_t>(std::atoll(args.positional()[1].c_str()));
  if (cmd == "status") {
    Result<server::JobStatusMsg> status = client.Poll(job_id);
    if (!status.ok()) {
      std::fprintf(stderr, "status failed: %s\n",
                   status.status().ToString().c_str());
      return 1;
    }
    PrintStatus(*status);
    return 0;
  }
  if (cmd == "result") return FetchAndPrintResult(client, job_id, args);
  if (cmd == "cancel") {
    Result<server::JobStatusMsg> reply = client.Cancel(job_id);
    if (!reply.ok()) {
      std::fprintf(stderr, "cancel failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    PrintStatus(*reply);
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace ddp

int main(int argc, char** argv) { return ddp::Main(argc, argv); }

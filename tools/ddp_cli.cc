// ddp_cli — command-line front end for the ddp library.
//
//   ddp_cli gen <family> <n> <seed> <out>            generate a data set
//   ddp_cli info <in>                                 dataset statistics
//   ddp_cli tune --dc D [--accuracy A --m M --pi P]   Sec. V parameter model
//   ddp_cli cluster <in> [options]                    run DP clustering
//
// Files ending in .ddpb use the binary format; everything else is CSV. A
// directory `<in>` is read as a sharded DDPB dataset (every *.ddpb inside,
// lexicographic order). `gen --shards N` splits the generated set into N
// DDPB shards `<out>-00000.ddpb`, ... instead of one file.
// `cluster` options:
//   --algo lsh|basic|eddpc|seq   algorithm (default lsh)
//   --k N                        select the top-N peaks by gamma
//   --rho X --delta Y            threshold peak selection
//   --accuracy A --m M --pi P    LSH-DDP parameters (defaults 0.99, 10, 3)
//   --probes N                   multi-probe LSH: extra buckets per layout
//   --dc D                       explicit cutoff (default: sampled 2%)
//   --percentile P               cutoff percentile (default 0.02)
//   --kernel cutoff|gaussian     density kernel (lsh/seq only)
//   --local-backend B            local rho/delta kernel backend:
//                                auto|brute|kdtree|triangle (default auto;
//                                bit-identical results, different cost)
//   --block N                    Basic-DDP block size (default 500)
//   --memory-budget B            out-of-core execution: spill map output to
//                                disk past B buffered bytes per task
//                                (0 = all in memory, the default)
//   --spill-dir DIR              spill file directory (default: system temp)
//   --halo                       flag halo/border points (extra column)
//   --internal-metrics           print silhouette / Davies-Bouldin / SSE
//   --graph FILE                 export the decision graph TSV
//   --out FILE                   write input + cluster-id column (default
//                                <in>.clustered.csv)
//   --trace-out FILE             record tracing spans for the whole run and
//                                write Chrome trace-event JSON (load in
//                                Perfetto / chrome://tracing)
//   --metrics-out FILE           write the metrics registry snapshot JSON
//   --stats-out FILE             write per-job MapReduce counters JSON
//   --heartbeat SECONDS          log per-phase progress every S seconds
//   --exec-mode MODE             inproc (default) runs MapReduce tasks on a
//                                thread pool; fork runs them in supervised
//                                worker processes (crash isolation,
//                                bit-identical output); remote runs them on
//                                exec'd ddp_worker processes over TCP
//                                (bit-identical output, any host)
//   --transport T                fork mode: pipe (default) talks to workers
//                                over socketpairs; tcp[:host:port] over TCP
//                                (port 0 or omitted picks an ephemeral port)
//   --max-worker-restarts N      fork mode: replacement workers each phase
//                                may spawn after crashes (default 8)
//   --remote-listen H:P          remote mode: the worker pool's listen
//                                endpoint (default 127.0.0.1:0 = ephemeral)
//   --remote-port-file FILE      remote mode: write the bound port, so
//                                externally launched ddp_worker processes
//                                can find an ephemeral listener
//   --remote-workers N           remote mode: ddp_worker processes to spawn
//                                on this host (default 2; 0 = none, workers
//                                join from elsewhere via --remote-listen)
//   --remote-worker-bin PATH     remote mode: the worker binary to spawn
//                                (default: ddp_worker next to this binary)
//   --remote-local-workers N     remote mode: forked local workers to run
//                                alongside the remote crew (default 0)
//   --remote-crash-task K        remote mode: pass --chaos-crash-task K to
//                                the first spawned worker (fault drills)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/host_port.h"
#include "core/halo.h"
#include "mapreduce/remote_worker.h"
#include "core/sequential_dp.h"
#include "dataset/binary_io.h"
#include "dataset/csv.h"
#include "dataset/sharded_io.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "eval/internal_metrics.h"
#include "eval/metrics.h"
#include "lsh/theory.h"
#include "lsh/tuning.h"
#include "obs/session.h"

namespace ddp {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ddp_cli gen <aggregation|s2|facial|kdd|spatial|bigcross> <n> <seed> "
      "<out> [--shards N]\n"
      "  ddp_cli info <in>   (<in>: CSV, .ddpb, or a directory of .ddpb "
      "shards)\n"
      "  ddp_cli tune --dc D [--accuracy A] [--m M] [--pi P]\n"
      "  ddp_cli cluster <in> [--algo lsh|basic|eddpc|seq] [--k N]\n"
      "          [--rho X --delta Y] [--accuracy A] [--m M] [--pi P]\n"
      "          [--dc D] [--percentile P] [--kernel cutoff|gaussian]\n"
      "          [--local-backend auto|brute|kdtree|triangle]\n"
      "          [--memory-budget BYTES] [--spill-dir DIR]\n"
      "          [--block N] [--halo] [--graph FILE] [--out FILE]\n"
      "          [--trace-out FILE] [--metrics-out FILE] [--stats-out FILE]\n"
      "          [--heartbeat SECONDS] [--exec-mode inproc|fork|remote]\n"
      "          [--transport pipe|tcp[:host:port]]\n"
      "          [--max-worker-restarts N]\n"
      "          [--remote-listen H:P] [--remote-port-file FILE]\n"
      "          [--remote-workers N] [--remote-worker-bin PATH]\n"
      "          [--remote-local-workers N] [--remote-crash-task K]\n");
  return 2;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Dataset> LoadDataset(const std::string& path) {
  if (std::filesystem::is_directory(path)) {
    DDP_ASSIGN_OR_RETURN(ShardedDatasetReader reader,
                         ShardedDatasetReader::OpenDirectory(path));
    return reader.ReadAll();
  }
  if (EndsWith(path, ".ddpb")) return ReadBinaryFile(path);
  return ReadCsvFile(path);
}

Status SaveDataset(const std::string& path, const Dataset& ds) {
  if (EndsWith(path, ".ddpb")) return WriteBinaryFile(path, ds);
  return WriteCsvFile(path, ds);
}

// Minimal --flag value parser; positional args collected separately.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        std::string key = a.substr(2);
        if (key == "halo" || key == "internal-metrics") {  // boolean flags
          flags_[key] = "1";
        } else if (i + 1 < argc) {
          flags_[key] = argv[++i];
        } else {
          bad_ = true;
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  bool bad() const { return bad_; }
  const std::vector<std::string>& positional() const { return positional_; }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& key, size_t def) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def
                              : static_cast<size_t>(std::atoll(it->second.c_str()));
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  bool bad_ = false;
};

int CmdGen(const Args& args) {
  if (args.positional().size() != 4) return Usage();
  const std::string& family = args.positional()[0];
  size_t n = static_cast<size_t>(std::atoll(args.positional()[1].c_str()));
  uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.positional()[2].c_str()));
  const std::string& out = args.positional()[3];

  Result<Dataset> ds = Status::InvalidArgument("unknown family " + family);
  if (family == "aggregation") ds = gen::AggregationLike(seed, n);
  if (family == "s2") ds = gen::S2Like(seed, n);
  if (family == "facial") ds = gen::FacialLike(seed, n);
  if (family == "kdd") ds = gen::KddLike(seed, n);
  if (family == "spatial") ds = gen::SpatialLike(seed, n);
  if (family == "bigcross") ds = gen::BigCrossLike(seed, n);
  if (!ds.ok()) {
    std::fprintf(stderr, "gen failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  if (args.Has("shards")) {
    const size_t shards = std::max<size_t>(1, args.GetSize("shards", 1));
    const uint64_t per_shard = (ds->size() + shards - 1) / shards;
    std::string prefix = out;
    if (EndsWith(prefix, ".ddpb")) prefix.resize(prefix.size() - 5);
    auto paths = WriteShardedDataset(prefix, *ds, per_shard);
    if (!paths.ok()) {
      std::fprintf(stderr, "write failed: %s\n",
                   paths.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu points (%zu dims, labeled) to %zu shards %s-*.ddpb\n",
                ds->size(), ds->dim(), paths->size(), prefix.c_str());
    return 0;
  }
  Status st = SaveDataset(out, *ds);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu points (%zu dims, labeled) to %s\n", ds->size(),
              ds->dim(), out.c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional().size() != 1) return Usage();
  if (std::filesystem::is_directory(args.positional()[0])) {
    // Sharded dataset: report from headers alone, never loading the points.
    auto reader = ShardedDatasetReader::OpenDirectory(args.positional()[0]);
    if (!reader.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    std::printf("points:    %llu\ndimension: %zu\nlabeled:   %s\nshards:    "
                "%zu\n",
                static_cast<unsigned long long>(reader->total_points()),
                reader->dim(), reader->has_labels() ? "yes" : "no",
                reader->num_shards());
    for (const auto& shard : reader->shards()) {
      std::printf("  %s: %llu points (ids %llu..%llu)\n", shard.path.c_str(),
                  static_cast<unsigned long long>(shard.num_points),
                  static_cast<unsigned long long>(shard.base_id),
                  static_cast<unsigned long long>(shard.base_id +
                                                  shard.num_points) -
                      1);
    }
    return 0;
  }
  auto ds = LoadDataset(args.positional()[0]);
  if (!ds.ok()) {
    std::fprintf(stderr, "load failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("points:    %zu\ndimension: %zu\nlabeled:   %s\n", ds->size(),
              ds->dim(), ds->has_labels() ? "yes" : "no");
  std::vector<double> lo, hi;
  if (ds->BoundingBox(&lo, &hi).ok()) {
    double max_extent = 0.0;
    for (size_t d = 0; d < lo.size(); ++d) {
      max_extent = std::max(max_extent, hi[d] - lo[d]);
    }
    std::printf("max extent: %.6g\n", max_extent);
  }
  CountingMetric metric;
  auto dc = ChooseCutoff(*ds, metric);
  if (dc.ok()) std::printf("suggested d_c (2%%): %.6g\n", *dc);
  return 0;
}

int CmdTune(const Args& args) {
  double dc = args.GetDouble("dc", 0.0);
  if (dc <= 0.0) {
    std::fprintf(stderr, "tune requires --dc > 0\n");
    return 2;
  }
  double accuracy = args.GetDouble("accuracy", 0.99);
  size_t m = args.GetSize("m", 10);
  size_t pi = args.GetSize("pi", 3);
  auto w = lsh::SolveMinimalWidth(accuracy, m, pi, dc);
  if (!w.ok()) {
    std::fprintf(stderr, "tune failed: %s\n", w.status().ToString().c_str());
    return 1;
  }
  std::printf("A=%.4f M=%zu pi=%zu dc=%.6g\n", accuracy, m, pi, dc);
  std::printf("minimal width w = %.6g\n", *w);
  std::printf("model check A(w) = %.6f\n",
              lsh::ExpectedRhoAccuracy(*w, pi, m, dc));
  std::printf("per-function collision at d_c: %.4f\n",
              lsh::PCollision(dc, *w));
  return 0;
}

int CmdCluster(const Args& args, const std::string& self_path) {
  if (args.positional().size() != 1) return Usage();
  const std::string& in_path = args.positional()[0];
  auto ds = LoadDataset(in_path);
  if (!ds.ok()) {
    std::fprintf(stderr, "load failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  // Observability: flags win over the DDP_TRACE_OUT / DDP_METRICS_OUT
  // environment hooks; the session writes both files when the run ends.
  obs::ExportOptions export_options = obs::Session::FromEnv();
  if (args.Has("trace-out")) export_options.trace_path = args.Get("trace-out");
  if (args.Has("metrics-out")) {
    export_options.metrics_path = args.Get("metrics-out");
  }
  obs::Session obs_session(export_options);

  DdpOptions options;
  options.dc = args.GetDouble("dc", 0.0);
  options.cutoff.percentile = args.GetDouble("percentile", 0.02);
  options.mr.memory_budget_bytes =
      static_cast<uint64_t>(args.GetSize("memory-budget", 0));
  options.mr.spill_dir = args.Get("spill-dir");
  options.mr.heartbeat_seconds = args.GetDouble("heartbeat", 0.0);
  const std::string exec_mode = args.Get("exec-mode");
  if (exec_mode == "fork") {
    options.mr.exec_mode = mr::ExecMode::kFork;
  } else if (exec_mode == "remote") {
    options.mr.exec_mode = mr::ExecMode::kRemote;
  } else if (!exec_mode.empty() && exec_mode != "inproc") {
    std::fprintf(stderr, "unknown --exec-mode '%s' (inproc|fork|remote)\n",
                 exec_mode.c_str());
    return 2;
  }
  options.mr.max_worker_restarts = args.GetSize("max-worker-restarts", 8);
  const std::string transport = args.Get("transport");
  if (transport == "tcp" || transport.rfind("tcp:", 0) == 0) {
    options.mr.transport = mr::Transport::kTcp;
    if (transport.size() > 4) {
      Result<HostPort> endpoint = ParseHostPort(transport.substr(4));
      if (!endpoint.ok()) {
        std::fprintf(stderr, "bad --transport endpoint: %s\n",
                     endpoint.status().ToString().c_str());
        return 2;
      }
      options.mr.tcp_host = endpoint->host;
      options.mr.tcp_port = endpoint->port;
    }
  } else if (!transport.empty() && transport != "pipe") {
    std::fprintf(stderr, "unknown --transport '%s' (pipe|tcp[:host:port])\n",
                 transport.c_str());
    return 2;
  }

  // Remote mode: bind the worker pool's listener, then spawn ddp_worker
  // processes that dial it. Workers spawned elsewhere (other hosts, other
  // shells) can join the same run via --remote-listen/--remote-port-file.
  std::unique_ptr<mr::RemoteWorkerPool> remote_pool;
  std::vector<int64_t> remote_pids;
  if (options.mr.exec_mode == mr::ExecMode::kRemote) {
    Result<HostPort> listen =
        ParseHostPort(args.Get("remote-listen", "127.0.0.1:0"));
    if (!listen.ok()) {
      std::fprintf(stderr, "bad --remote-listen: %s\n",
                   listen.status().ToString().c_str());
      return 2;
    }
    auto pool = mr::RemoteWorkerPool::Listen(listen->host, listen->port);
    if (!pool.ok()) {
      std::fprintf(stderr, "remote pool listen failed: %s\n",
                   pool.status().ToString().c_str());
      return 1;
    }
    remote_pool = std::move(*pool);
    options.mr.remote_pool = remote_pool.get();
    options.mr.remote_local_workers = args.GetSize("remote-local-workers", 0);
    if (args.Has("remote-port-file")) {
      std::ofstream port_file(args.Get("remote-port-file"));
      port_file << remote_pool->port() << '\n';
      if (!port_file) {
        std::fprintf(stderr, "cannot write --remote-port-file %s\n",
                     args.Get("remote-port-file").c_str());
        return 1;
      }
    }
    const std::string endpoint =
        remote_pool->host() + ":" + std::to_string(remote_pool->port());
    std::string worker_bin = args.Get("remote-worker-bin");
    if (worker_bin.empty()) {
      worker_bin = (std::filesystem::path(self_path).parent_path() /
                    "ddp_worker")
                       .string();
    }
    const size_t num_workers = args.GetSize("remote-workers", 2);
    for (size_t i = 0; i < num_workers; ++i) {
      std::vector<std::string> worker_args = {"--connect", endpoint};
      if (i == 0 && args.Has("remote-crash-task")) {
        worker_args.push_back("--chaos-crash-task");
        worker_args.push_back(args.Get("remote-crash-task"));
      }
      Result<int64_t> pid = mr::SpawnWorkerProcess(worker_bin, worker_args);
      if (!pid.ok()) {
        std::fprintf(stderr, "spawn %s failed: %s\n", worker_bin.c_str(),
                     pid.status().ToString().c_str());
        for (int64_t p : remote_pids) mr::KillWorkerProcess(p);
        for (int64_t p : remote_pids) mr::WaitWorkerProcess(p);
        return 1;
      }
      remote_pids.push_back(*pid);
    }
  }
  // kShutdown the parked workers and reap spawned ones; safe on every exit
  // path once spawning succeeded (a chaos-crashed worker is reaped with its
  // non-zero code ignored — the run itself decides success).
  auto stop_remote_workers = [&remote_pool, &remote_pids] {
    if (remote_pool != nullptr) remote_pool->Shutdown();
    for (int64_t p : remote_pids) mr::WaitWorkerProcess(p);
    remote_pids.clear();
  };
  if (args.Has("k")) {
    options.selector = PeakSelector::TopK(args.GetSize("k", 8));
  } else if (args.Has("rho") || args.Has("delta")) {
    options.selector = PeakSelector::Threshold(args.GetDouble("rho", 0.0),
                                               args.GetDouble("delta", 0.0));
  } else {
    options.selector = PeakSelector::GammaGap();
  }

  DensityKernel kernel = DensityKernel::kCutoff;
  if (args.Get("kernel") == "gaussian") kernel = DensityKernel::kGaussian;

  auto backend = ParseLocalDpBackend(args.Get("local-backend", "auto"));
  if (!backend.ok()) {
    std::fprintf(stderr, "bad --local-backend: %s\n",
                 backend.status().ToString().c_str());
    return 2;
  }

  const std::string algo_name = args.Get("algo", "lsh");
  LshDdp::Params lsh_params;
  lsh_params.accuracy = args.GetDouble("accuracy", 0.99);
  lsh_params.lsh.num_layouts = args.GetSize("m", 10);
  lsh_params.lsh.pi = args.GetSize("pi", 3);
  lsh_params.probes = args.GetSize("probes", 0);
  lsh_params.kernel = kernel;
  lsh_params.local_backend = *backend;
  LshDdp lsh_algo(lsh_params);
  BasicDdp::Params basic_params;
  basic_params.block_size = args.GetSize("block", 500);
  basic_params.local_backend = *backend;
  BasicDdp basic_algo(basic_params);
  Eddpc::Params eddpc_params;
  eddpc_params.local_backend = *backend;
  Eddpc eddpc_algo(eddpc_params);

  Result<DdpRunResult> run = Status::InvalidArgument("unknown algo " +
                                                     algo_name);
  if (algo_name == "lsh") run = RunDistributedDp(&lsh_algo, *ds, options);
  if (algo_name == "basic") run = RunDistributedDp(&basic_algo, *ds, options);
  if (algo_name == "eddpc") run = RunDistributedDp(&eddpc_algo, *ds, options);
  if (algo_name == "seq") {
    // Sequential exact pipeline, same options.
    CountingMetric metric;
    double dc = options.dc;
    if (dc <= 0.0) {
      auto chosen = ChooseCutoff(*ds, metric, options.cutoff);
      if (!chosen.ok()) {
        std::fprintf(stderr, "cutoff failed: %s\n",
                     chosen.status().ToString().c_str());
        return 1;
      }
      dc = *chosen;
    }
    SequentialDpOptions seq_opts;
    seq_opts.kernel = kernel;
    seq_opts.backend = *backend;
    auto scores = ComputeExactDp(*ds, dc, metric, seq_opts);
    if (!scores.ok()) {
      std::fprintf(stderr, "dp failed: %s\n",
                   scores.status().ToString().c_str());
      return 1;
    }
    DecisionGraph graph = DecisionGraph::FromScores(*scores);
    auto peaks = options.selector.Select(graph);
    auto clusters = AssignClusters(*ds, *scores, peaks, metric);
    if (!clusters.ok()) {
      std::fprintf(stderr, "assignment failed: %s\n",
                   clusters.status().ToString().c_str());
      return 1;
    }
    DdpRunResult r;
    r.scores = std::move(scores).value();
    r.dc = dc;
    r.clusters = std::move(clusters).value();
    run = std::move(r);
  }
  stop_remote_workers();
  if (!run.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  std::printf("d_c = %.6g\n%s\n", run->dc, run->clusters.Summary().c_str());
  if (!run->stats.jobs.empty()) {
    std::printf("%s\n", run->stats.ToString().c_str());
  }
  if (args.Has("stats-out")) {
    std::ofstream stats_file(args.Get("stats-out"));
    stats_file << run->stats.ToJson() << '\n';
    if (!stats_file) {
      std::fprintf(stderr, "stats write failed: %s\n",
                   args.Get("stats-out").c_str());
      return 1;
    }
    std::printf("job stats -> %s\n", args.Get("stats-out").c_str());
  }
  if (ds->has_labels()) {
    auto ari = eval::AdjustedRandIndex(run->clusters.assignment, ds->labels());
    if (ari.ok()) std::printf("ARI vs input labels: %.4f\n", *ari);
  }
  if (args.Has("internal-metrics")) {
    CountingMetric metric;
    eval::SilhouetteOptions sil_opts;
    sil_opts.sample = 2000;  // keep O(sample * N)
    auto sil = eval::MeanSilhouette(*ds, run->clusters.assignment, metric,
                                    sil_opts);
    auto db = eval::DaviesBouldin(*ds, run->clusters.assignment, metric);
    auto sse = eval::SumSquaredError(*ds, run->clusters.assignment);
    if (sil.ok()) std::printf("mean silhouette:  %.4f (higher better)\n", *sil);
    if (db.ok()) std::printf("Davies-Bouldin:   %.4f (lower better)\n", *db);
    if (sse.ok()) std::printf("sum sq. error:    %.6g\n", *sse);
  }

  if (args.Has("graph")) {
    DecisionGraph graph = DecisionGraph::FromScores(run->scores);
    std::ofstream(args.Get("graph")) << graph.ToTsv();
    std::printf("decision graph -> %s\n", args.Get("graph").c_str());
  }

  std::vector<int> out_labels = run->clusters.assignment;
  if (args.Has("halo")) {
    CountingMetric metric;
    auto halo = ComputeHalo(*ds, run->scores, run->clusters, run->dc, metric);
    if (!halo.ok()) {
      std::fprintf(stderr, "halo failed: %s\n",
                   halo.status().ToString().c_str());
      return 1;
    }
    size_t count = 0;
    for (size_t i = 0; i < out_labels.size(); ++i) {
      if (halo->halo[i]) {
        out_labels[i] = -1;  // halo marked as noise in the output column
        ++count;
      }
    }
    std::printf("halo points: %zu\n", count);
  }

  std::string out_path = args.Get("out", in_path + ".clustered.csv");
  Dataset labeled =
      std::move(Dataset::FromValues(ds->dim(), ds->values())).ValueOrDie();
  labeled.set_labels(out_labels);
  Status st = SaveDataset(out_path, labeled);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("clustered output -> %s\n", out_path.c_str());
  Status obs_st = obs_session.Finish();
  if (!obs_st.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 obs_st.ToString().c_str());
    return 1;
  }
  if (!export_options.trace_path.empty()) {
    std::printf("trace -> %s\n", export_options.trace_path.c_str());
  }
  if (!export_options.metrics_path.empty()) {
    std::printf("metrics -> %s\n", export_options.metrics_path.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Args args(argc, argv, 2);
  if (args.bad()) return Usage();
  if (cmd == "gen") return CmdGen(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "tune") return CmdTune(args);
  if (cmd == "cluster") return CmdCluster(args, argv[0]);
  return Usage();
}

}  // namespace
}  // namespace ddp

int main(int argc, char** argv) { return ddp::Main(argc, argv); }

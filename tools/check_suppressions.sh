#!/usr/bin/env bash
# No-new-suppressions ratchet: fail if the tree-wide `ddp-lint: allow` count
# grew in HEAD relative to its parent while docs/static-analysis.md was left
# untouched. Adding a justified suppression is allowed — the rule catalogue
# must acknowledge the new exception class in the same commit.
#
# Usage: tools/check_suppressions.sh   (run from anywhere inside the repo)
#
# Exit codes: 0 ok, 1 ratchet violated. A missing parent commit (shallow
# clone of depth 1, or the root commit) passes: there is nothing to compare
# against.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 1

count_at() {
  # Suppressions in the real tree at revision $1: src/ tools/ tests/ bench/,
  # minus the lint fixtures (which hold suppressions as test *inputs*).
  git grep -c 'ddp-lint: allow(' "$1" -- \
      'src' 'tools' 'tests' 'bench' ':(exclude)tests/lint_fixtures' \
      2>/dev/null | awk -F: '{n += $NF} END {print n + 0}'
}

if ! git rev-parse --verify --quiet HEAD^ >/dev/null; then
  echo "check_suppressions: no parent commit to compare against; skipping"
  exit 0
fi

BEFORE=$(count_at HEAD^)
AFTER=$(count_at HEAD)
echo "check_suppressions: ddp-lint allow() count: HEAD^=$BEFORE HEAD=$AFTER"

if [ "$AFTER" -le "$BEFORE" ]; then
  echo "check_suppressions: OK (count did not grow)"
  exit 0
fi

if git diff --name-only HEAD^ HEAD | grep -qx 'docs/static-analysis.md'; then
  echo "check_suppressions: OK (count grew, but docs/static-analysis.md was" \
       "updated in the same commit)"
  exit 0
fi

echo "check_suppressions: FAILED — HEAD adds $((AFTER - BEFORE)) ddp-lint" \
     "suppression(s) without touching docs/static-analysis.md."
echo "Document the new exception class in the rule catalogue (or drop the" \
     "suppression) in the same commit."
exit 1

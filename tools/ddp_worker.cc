// ddp_worker — standalone MapReduce worker for `--exec-mode=remote`.
//
//   ddp_worker --connect HOST:PORT [options]
//
//   --connect HOST:PORT      supervisor endpoint (numeric IPv4; required).
//                            This is the RemoteWorkerPool listener the
//                            driver printed / wrote to --remote-port-file.
//   --workers N              serve N worker loops from this invocation
//                            (default 1). N > 1 spawns N-1 child ddp_worker
//                            processes so each worker keeps its own crash
//                            domain; the parent serves the last loop itself
//                            and reaps the children on shutdown.
//   --worker-id ID           explicit worker id (default 0 derives
//                            (1 << 63) | pid, disjoint from fork-worker ids)
//   --heartbeat S            heartbeat interval seconds (default 0.25)
//   --dial-deadline S        per-dial retry budget seconds (default 5)
//   --chaos-crash-task K     crash-test hook: on the Kth task assignment
//                            served, die mid-shuffle after shipping half the
//                            attempt's runs (exactly the fault
//                            FaultInjection::worker_crash_rate injects).
//                            Applies to this process's own loop, never to
//                            spawned children.
//
// The binary dials the supervisor's TcpListener, registers over an extended
// hello (kWorkerHelloRemote capability flag), and executes whatever
// registered jobs the supervisor installs with kJobSetup — every DDP driver
// job is registered at startup via RegisterAllRemoteJobs(). It exits 0 on a
// clean kShutdown, non-zero if the channel dies for good or a child fails.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/host_port.h"
#include "ddp/remote_jobs.h"
#include "mapreduce/remote_worker.h"

namespace ddp {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ddp_worker --connect HOST:PORT [--workers N]\n"
               "                  [--worker-id ID] [--heartbeat S]\n"
               "                  [--dial-deadline S] [--chaos-crash-task K]\n");
  return 2;
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0 && i + 1 < argc) {
        flags_[a.substr(2)] = argv[++i];
      } else {
        bad_ = true;
      }
    }
  }

  bool bad() const { return bad_; }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def
                              : static_cast<int64_t>(
                                    std::atoll(it->second.c_str()));
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? def : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> flags_;
  bool bad_ = false;
};

int Main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.bad() || !args.Has("connect")) return Usage();

  Result<HostPort> endpoint = ParseHostPort(args.Get("connect"));
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bad --connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  const int64_t workers = args.GetInt("workers", 1);
  if (workers < 1 || workers > 256) {
    std::fprintf(stderr, "--workers must be in 1..256\n");
    return 2;
  }

  // Every job a remote pipeline can assign must be resolvable by name
  // before the first kJobSetup arrives.
  RegisterAllRemoteJobs();

  mr::RemoteWorkerOptions options;
  options.host = endpoint->host;
  options.port = endpoint->port;
  options.worker_id = static_cast<uint64_t>(args.GetInt("worker-id", 0));
  options.heartbeat_seconds = args.GetDouble("heartbeat", 0.25);
  options.dial_deadline_seconds = args.GetDouble("dial-deadline", 5.0);
  options.chaos_crash_task = args.GetInt("chaos-crash-task", -1);

  // N > 1: each extra worker is its own process (own pid-derived id, own
  // crash domain — a chaos crash or SIGKILL takes out exactly one worker).
  // Process control stays behind the mr:: spawn/reap API.
  std::vector<int64_t> children;
  for (int64_t i = 1; i < workers; ++i) {
    std::vector<std::string> child_args = {
        "--connect",       endpoint->ToString(),
        "--workers",       "1",
        "--heartbeat",     std::to_string(options.heartbeat_seconds),
        "--dial-deadline", std::to_string(options.dial_deadline_seconds),
    };
    Result<int64_t> pid = mr::SpawnWorkerProcess(argv[0], child_args);
    if (!pid.ok()) {
      std::fprintf(stderr, "spawn failed: %s\n",
                   pid.status().ToString().c_str());
      for (int64_t child : children) mr::KillWorkerProcess(child);
      for (int64_t child : children) mr::WaitWorkerProcess(child);
      return 1;
    }
    children.push_back(*pid);
  }

  int rc = mr::RunRemoteWorker(options);
  for (int64_t child : children) {
    int child_rc = mr::WaitWorkerProcess(child);
    if (child_rc != 0 && rc == 0) rc = child_rc < 0 ? 1 : child_rc;
  }
  return rc;
}

}  // namespace
}  // namespace ddp

int main(int argc, char** argv) { return ddp::Main(argc, argv); }

// ddp_lint — project-invariant static analyzer for the DDP codebase.
//
// The determinism contracts this tree depends on (squared-space kernels with
// one sqrt at final assembly, derivable shuffle/reduce ordering, explicit
// atomic memory orders, seeded randomness only) are enforced here as lint
// rules with file/line diagnostics. See docs/static-analysis.md for the rule
// catalogue and the rationale behind each rule.
//
// Rules:
//   no-raw-sqrt            R1  sqrt/hypot banned in src/core, src/ddp, src/lsh
//   ordered-emission       R2  unordered-container iteration feeding emission
//                              requires a sort in the same scope
//   explicit-memory-order  R3  atomic ops must name a std::memory_order_*
//   banned-nondeterminism  R4  rand()/random_device/time()/system_clock
//                              outside src/common/random.* and src/obs/
//   name-hygiene           R5  span/metric name literals match [a-z0-9_.]+
//   header-hygiene         R6  headers use #pragma once, no using namespace
//   process-control        R7  fork/exec/kill/waitpid and raw socket calls
//                              (socket/bind/listen/connect/accept) confined
//                              to src/mapreduce/ (supervisor + CommChannel),
//                              src/server/ (the serving daemon), and
//                              tools/ddp_worker.cc (the worker binary)
//
// Suppression syntax, trailing the violating line or opening a comment block
// directly above it:
//   // ddp-lint: allow(<rule>) -- <reason>
// A reason is mandatory: an allow() without one does not suppress and is
// itself reported (suppression-missing-reason). Suppressions that match no
// finding are reported too (unused-suppression), so annotations cannot rot.
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  size_t line = 0;         // line the comment is on
  size_t target_line = 0;  // first line the suppression applies to
  size_t target_end = 0;   // last line (statement continuation) covered
  std::string rule;        // rule id inside allow(...)
  bool has_reason = false;
  bool used = false;
};

// One loaded source file: the raw text, a "code" view with comments and
// string/char literals blanked to spaces (newlines kept, so offsets and line
// numbers agree between the two), and the parsed suppression comments.
struct SourceFile {
  std::string path;      // path as reported in diagnostics
  std::string raw;
  std::string code;
  std::vector<size_t> line_starts;  // offset of each line start
  std::vector<Suppression> suppressions;
};

size_t LineOfOffset(const SourceFile& f, size_t offset) {
  auto it = std::upper_bound(f.line_starts.begin(), f.line_starts.end(), offset);
  return static_cast<size_t>(it - f.line_starts.begin());  // 1-based
}

// Parses "ddp-lint: allow(rule) -- reason" out of one comment's text. The
// directive must open the comment (only whitespace between the comment
// marker and "ddp-lint:"), so prose that merely mentions the syntax — like
// this very comment — is not a suppression.
void ParseSuppressions(std::string_view comment, size_t line,
                       std::vector<Suppression>* out) {
  size_t i = 0;
  while (i < comment.size() && (comment[i] == '/' || comment[i] == '*')) ++i;
  while (i < comment.size() && (comment[i] == ' ' || comment[i] == '\t')) ++i;
  if (comment.compare(i, 9, "ddp-lint:") != 0) return;
  size_t a = comment.find("allow(", i);
  if (a == std::string_view::npos) return;
  size_t close = comment.find(')', a);
  if (close == std::string_view::npos) return;
  Suppression s;
  s.line = line;
  s.rule = std::string(comment.substr(a + 6, close - (a + 6)));
  size_t dashes = comment.find("--", close);
  if (dashes != std::string_view::npos) {
    std::string_view reason = comment.substr(dashes + 2);
    size_t ws = reason.find_first_not_of(" \t");
    s.has_reason = ws != std::string_view::npos;
  }
  out->push_back(s);
}

// Blanks comments and string/char literals (handling escapes and raw string
// literals) so rule regexes never match prose or literal contents, while
// collecting ddp-lint suppression comments.
bool LoadSource(const std::string& fs_path, const std::string& report_path,
                SourceFile* out) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out->path = report_path;
  out->raw = ss.str();
  out->code = out->raw;
  std::string& code = out->code;

  out->line_starts.push_back(0);
  for (size_t i = 0; i < out->raw.size(); ++i) {
    if (out->raw[i] == '\n') out->line_starts.push_back(i + 1);
  }

  enum class St { kCode, kLine, kBlock, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;       // raw string closing delimiter: )delim"
  size_t comment_start = 0;    // start offset of the current comment body
  auto flush_comment = [&](size_t end) {
    std::string_view text(out->raw.data() + comment_start, end - comment_start);
    ParseSuppressions(text, LineOfOffset(*out, comment_start),
                      &out->suppressions);
  };
  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    char next = i + 1 < code.size() ? code[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          comment_start = i;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          comment_start = i;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!isalnum(static_cast<unsigned char>(code[i - 1])) &&
                               code[i - 1] != '_'))) {
          size_t open = code.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delim = ")" + code.substr(i + 2, open - (i + 2)) + "\"";
          for (size_t k = i; k <= open; ++k) {
            if (code[k] != '\n') code[k] = ' ';
          }
          i = open;
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          flush_comment(i);
          st = St::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          flush_comment(i);
          code[i] = code[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          code[i] = ' ';
          if (next != '\n') {
            if (i + 1 < code.size()) code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < code.size() && next != '\n') {
            code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::kRaw:
        if (code.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) code[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
    }
  }
  if (st == St::kLine || st == St::kBlock) flush_comment(code.size());

  // A suppression trailing code applies to its own line; one on a comment
  // line applies to the next line that holds code, so multi-line reasons
  // (and comment blocks continuing below the directive) still anchor to the
  // statement they justify.
  auto line_has_code = [&](size_t line) {
    size_t start = out->line_starts[line - 1];
    size_t end = line < out->line_starts.size() ? out->line_starts[line]
                                                : code.size();
    for (size_t k = start; k < end; ++k) {
      if (!isspace(static_cast<unsigned char>(code[k]))) return true;
    }
    return false;
  };
  // Statements wrap; a suppression covers its target line plus continuation
  // lines until the statement closes (a line ending in ';', '{' or '}').
  auto line_closes_statement = [&](size_t line) {
    size_t start = out->line_starts[line - 1];
    size_t end = line < out->line_starts.size() ? out->line_starts[line]
                                                : code.size();
    for (size_t k = end; k > start; --k) {
      char c = code[k - 1];
      if (isspace(static_cast<unsigned char>(c))) continue;
      return c == ';' || c == '{' || c == '}';
    }
    return false;
  };
  size_t num_lines = out->line_starts.size();
  for (Suppression& s : out->suppressions) {
    if (line_has_code(s.line)) {
      s.target_line = s.line;
    } else {
      s.target_line = s.line;  // fallback: nothing but comments below
      for (size_t line = s.line + 1; line <= num_lines; ++line) {
        if (line_has_code(line)) {
          s.target_line = line;
          break;
        }
      }
    }
    s.target_end = s.target_line;
    while (s.target_end < num_lines && s.target_end < s.target_line + 8 &&
           !line_closes_statement(s.target_end)) {
      ++s.target_end;
    }
  }
  return true;
}

bool IsIdentChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool HasWordBoundaryBefore(const std::string& s, size_t pos) {
  return pos == 0 || !IsIdentChar(s[pos - 1]);
}

// Finds every occurrence of `word` in `text` that starts at a word boundary
// and ends before a non-identifier character.
std::vector<size_t> FindWord(const std::string& text, const std::string& word,
                             size_t from = 0, size_t to = std::string::npos) {
  std::vector<size_t> hits;
  size_t limit = to == std::string::npos ? text.size() : to;
  size_t pos = text.find(word, from);
  while (pos != std::string::npos && pos < limit) {
    bool left = HasWordBoundaryBefore(text, pos);
    size_t end = pos + word.size();
    bool right = end >= text.size() || !IsIdentChar(text[end]);
    if (left && right) hits.push_back(pos);
    pos = text.find(word, pos + 1);
  }
  return hits;
}

// Returns the offset one past the matching ')' for the '(' at `open`, or
// npos if unbalanced. Operates on scrubbed code, so parens inside literals
// and comments cannot confuse the count.
size_t MatchParen(const std::string& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::string ReadIdent(const std::string& s, size_t i) {
  size_t start = i;
  while (i < s.size() && IsIdentChar(s[i])) ++i;
  return s.substr(start, i - start);
}

// Skips a balanced <...> template argument list starting at `i` (which must
// point at '<'); returns the offset just past the closing '>'.
size_t SkipAngles(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::pair<size_t, size_t> EnclosingBlock(const std::string& code,
                                         size_t offset);

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// ---------------------------------------------------------------------------
// Rule implementations. Each appends findings; suppression filtering happens
// afterwards so unused suppressions can be detected.
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleSqrt = "no-raw-sqrt";
constexpr std::string_view kRuleOrdered = "ordered-emission";
constexpr std::string_view kRuleMemOrder = "explicit-memory-order";
constexpr std::string_view kRuleNondet = "banned-nondeterminism";
constexpr std::string_view kRuleNames = "name-hygiene";
constexpr std::string_view kRuleHeader = "header-hygiene";
constexpr std::string_view kRuleProcess = "process-control";
constexpr std::string_view kRuleNoReason = "suppression-missing-reason";
constexpr std::string_view kRuleUnused = "unused-suppression";

void AddFinding(std::vector<Finding>* out, const SourceFile& f, size_t offset,
                std::string_view rule, std::string message) {
  out->push_back(
      {f.path, LineOfOffset(f, offset), std::string(rule), std::move(message)});
}

// R1: raw sqrt/hypot in squared-space kernel directories.
void CheckNoRawSqrt(const SourceFile& f, std::vector<Finding>* out) {
  if (!PathContains(f.path, "src/core") && !PathContains(f.path, "src/ddp") &&
      !PathContains(f.path, "src/lsh")) {
    return;
  }
  for (const char* fn : {"sqrt", "sqrtf", "sqrtl", "hypot", "hypotf", "hypotl"}) {
    for (size_t pos : FindWord(f.code, fn)) {
      size_t after = SkipSpace(f.code, pos + std::strlen(fn));
      if (after >= f.code.size() || f.code[after] != '(') continue;
      AddFinding(out, f, pos, kRuleSqrt,
                 std::string(fn) +
                     "() in squared-space kernel code; keep distances in d^2 "
                     "and take one sqrt at final assembly (annotate that site)");
    }
  }
}

// Per-file symbol tracking for R2 and R3.
struct SymbolInfo {
  std::set<std::string> unordered_vars;     // variables of unordered type
  std::set<std::string> unordered_aliases;  // using X = unordered_...
  std::set<std::string> unordered_funcs;    // functions returning unordered
  std::set<std::string> unordered_elem_vars;  // containers of unordered values
  // Variables of std::atomic type, with the scope of their declaration so a
  // same-named plain variable elsewhere in the file is not confused for one.
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> atomic_vars;
};

void CollectSymbols(const SourceFile& f, SymbolInfo* info) {
  const std::string& code = f.code;
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    for (size_t pos : FindWord(code, kw)) {
      // Skip "#include <unordered_map>" lines.
      size_t ls = f.line_starts[LineOfOffset(f, pos) - 1];
      size_t first = SkipSpace(code, ls);
      if (first < code.size() && code[first] == '#') continue;
      // "using Alias = [std::]unordered_map<...>" registers an alias.
      std::string_view before(code.data(), pos);
      size_t tail_start = before.size() > 64 ? before.size() - 64 : 0;
      std::string tail(before.substr(tail_start));
      size_t u = tail.rfind("using ");
      if (u != std::string::npos && tail.find('=', u) != std::string::npos &&
          tail.find(';', u) == std::string::npos) {
        size_t name_at = SkipSpace(tail, u + 6);
        std::string alias = ReadIdent(tail, name_at);
        if (!alias.empty()) info->unordered_aliases.insert(alias);
        continue;
      }
      size_t i = SkipSpace(code, pos + std::strlen(kw));
      if (i >= code.size() || code[i] != '<') continue;
      i = SkipAngles(code, i);
      if (i == std::string::npos) continue;
      i = SkipSpace(code, i);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = SkipSpace(code, i + 1);
      }
      std::string name = ReadIdent(code, i);
      if (name.empty()) continue;
      size_t j = SkipSpace(code, i + name.size());
      char c = j < code.size() ? code[j] : '\0';
      if (c == '(') {
        // Could be a function returning an unordered container or a variable
        // with constructor arguments; track it as both.
        info->unordered_funcs.insert(name);
        info->unordered_vars.insert(name);
      } else if (c == ';' || c == '=' || c == '{' || c == ',' || c == ')') {
        info->unordered_vars.insert(name);
      }
    }
  }
  // Variables declared with an unordered alias, directly or as the value
  // type of another container ("std::vector<Layout> layouts").
  for (const std::string& alias : info->unordered_aliases) {
    for (size_t pos : FindWord(code, alias)) {
      size_t i = SkipSpace(code, pos + alias.size());
      if (i < code.size() && code[i] == '>') {
        // "...<Alias>" — the enclosing container holds unordered values.
        i = SkipSpace(code, i + 1);
        while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
          i = SkipSpace(code, i + 1);
        }
        std::string name = ReadIdent(code, i);
        if (!name.empty()) info->unordered_elem_vars.insert(name);
      } else {
        std::string name = ReadIdent(code, i);
        if (name.empty()) continue;
        size_t j = SkipSpace(code, i + name.size());
        char c = j < code.size() ? code[j] : '\0';
        if (c == ';' || c == '=' || c == '{' || c == '(' || c == ',') {
          info->unordered_vars.insert(name);
        }
      }
    }
  }
  // "auto v = Func(...)" where Func returns an unordered container.
  for (size_t pos : FindWord(code, "auto")) {
    size_t i = SkipSpace(code, pos + 4);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      i = SkipSpace(code, i + 1);
    }
    std::string name = ReadIdent(code, i);
    if (name.empty()) continue;
    i = SkipSpace(code, i + name.size());
    if (i >= code.size() || code[i] != '=') continue;
    i = SkipSpace(code, i + 1);
    // Callee is the last identifier before '(' in the initializer.
    size_t call = code.find('(', i);
    size_t semi = code.find(';', i);
    if (call == std::string::npos || (semi != std::string::npos && semi < call)) {
      continue;
    }
    size_t id_end = call;
    while (id_end > i && !IsIdentChar(code[id_end - 1])) --id_end;
    size_t id_start = id_end;
    while (id_start > i && IsIdentChar(code[id_start - 1])) --id_start;
    std::string callee = code.substr(id_start, id_end - id_start);
    if (info->unordered_funcs.count(callee) > 0) {
      info->unordered_vars.insert(name);
    }
  }
  // std::atomic<...> declarations (for the implicit seq_cst ++/-- check).
  for (size_t pos : FindWord(code, "atomic")) {
    size_t i = SkipSpace(code, pos + 6);
    if (i >= code.size() || code[i] != '<') continue;
    i = SkipAngles(code, i);
    if (i == std::string::npos) continue;
    i = SkipSpace(code, i);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      i = SkipSpace(code, i + 1);
    }
    std::string name = ReadIdent(code, i);
    if (!name.empty()) info->atomic_vars[name].push_back(EnclosingBlock(code, pos));
  }
}

// Innermost '{'..'}' block containing `offset`, as [open, close) offsets into
// the scrubbed code; the whole file if the offset is at namespace scope.
std::pair<size_t, size_t> EnclosingBlock(const std::string& code,
                                         size_t offset) {
  std::vector<size_t> stack;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      stack.push_back(i);
    } else if (code[i] == '}') {
      if (!stack.empty()) {
        size_t open = stack.back();
        stack.pop_back();
        if (open <= offset && offset < i) return {open, i};
      }
    }
  }
  return {0, code.size()};
}

bool ScopeHas(const std::string& code, std::pair<size_t, size_t> scope,
              const std::vector<std::string>& words, bool call_only) {
  for (const std::string& w : words) {
    for (size_t pos : FindWord(code, w, scope.first, scope.second)) {
      if (!call_only) return true;
      size_t after = SkipSpace(code, pos + w.size());
      if (after < code.size() && code[after] == '(') return true;
    }
  }
  return false;
}

// R2: range-for over an unordered container in a scope that emits records.
void CheckOrderedEmission(const SourceFile& f, const SymbolInfo& info,
                          std::vector<Finding>* out) {
  if (!PathContains(f.path, "src/")) return;
  if (PathContains(f.path, "src/obs/")) return;  // no pipeline records
  static const std::vector<std::string> kEmitters = {
      "Emit",       "SerializeTo", "push_back", "emplace_back",
      "PutVarint32", "PutVarint64", "PutByte",  "PutRaw",
      "PutDouble",  "PutFloat",    "WriteRecord", "Write", "Append"};
  static const std::vector<std::string> kSorters = {"sort", "stable_sort",
                                                    "partial_sort"};
  const std::string& code = f.code;
  for (size_t pos : FindWord(code, "for")) {
    size_t open = SkipSpace(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    size_t close = MatchParen(code, open);
    if (close == std::string::npos) continue;
    std::string head = code.substr(open + 1, close - open - 2);
    // Find the range-for ':' at paren/angle depth 0, not part of '::'.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = 0; i < head.size(); ++i) {
      char c = head[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::string range = head.substr(colon + 1);
    bool tainted = false;
    for (size_t i = 0; i < range.size();) {
      if (IsIdentChar(range[i])) {
        std::string id = ReadIdent(range, i);
        size_t j = SkipSpace(range, i + id.size());
        char after = j < range.size() ? range[j] : '\0';
        // Bare iteration over the container is hash-order; subscripting or
        // member access (m[k], m.at(k)) yields a value whose own order is
        // the value type's, not the hash table's.
        if (info.unordered_vars.count(id) > 0 && after != '[' && after != '.' &&
            after != '(' && !(after == '-' && j + 1 < range.size() &&
                              range[j + 1] == '>')) {
          tainted = true;
        }
        // ...except when the *element* type is unordered: v[m] is a table.
        if (info.unordered_elem_vars.count(id) > 0 && after == '[') {
          tainted = true;
        }
        i += id.size();
      } else {
        ++i;
      }
    }
    if (!tainted) continue;
    auto scope = EnclosingBlock(code, pos);
    if (!ScopeHas(code, scope, kEmitters, /*call_only=*/true)) continue;
    if (ScopeHas(code, scope, kSorters, /*call_only=*/true)) continue;
    AddFinding(out, f, pos, kRuleOrdered,
               "iteration over an unordered container in a scope that emits "
               "records, with no sort in scope; emission order must be "
               "derivable, not hash-order");
  }
}

// R3: atomic operations must name an explicit std::memory_order_*.
void CheckExplicitMemoryOrder(const SourceFile& f, const SymbolInfo& info,
                              std::vector<Finding>* out) {
  static const std::vector<std::string> kOps = {
      "load",      "store",      "exchange",
      "fetch_add", "fetch_sub",  "fetch_and",
      "fetch_or",  "fetch_xor",  "compare_exchange_weak",
      "compare_exchange_strong"};
  const std::string& code = f.code;
  for (const std::string& op : kOps) {
    for (size_t pos : FindWord(code, op)) {
      // Member call only: preceded by '.' or '->'.
      bool member = (pos >= 1 && code[pos - 1] == '.') ||
                    (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
      if (!member) continue;
      size_t open = SkipSpace(code, pos + op.size());
      if (open >= code.size() || code[open] != '(') continue;
      size_t close = MatchParen(code, open);
      if (close == std::string::npos) continue;
      std::string args = code.substr(open, close - open);
      if (args.find("memory_order") != std::string::npos) continue;
      AddFinding(out, f, pos, kRuleMemOrder,
                 "atomic " + op +
                     "() without an explicit std::memory_order_* argument "
                     "(implicit seq_cst hides the intended ordering)");
    }
  }
  // ++/--/+=/-= on a variable declared std::atomic in this file, within the
  // scope of that declaration.
  for (const auto& [var, scopes] : info.atomic_vars) {
    for (size_t pos : FindWord(code, var)) {
      bool in_scope = false;
      for (const auto& [open, close] : scopes) {
        if (pos >= open && pos < close) in_scope = true;
      }
      if (!in_scope) continue;
      size_t after = SkipSpace(code, pos + var.size());
      bool hit = false;
      if (after + 1 < code.size()) {
        std::string_view two(code.data() + after, 2);
        if (two == "++" || two == "--" || two == "+=" || two == "-=") {
          hit = true;
        }
      }
      if (!hit && pos >= 2) {
        std::string_view two(code.data() + pos - 2, 2);
        if (two == "++" || two == "--") hit = true;
      }
      if (hit) {
        AddFinding(out, f, pos, kRuleMemOrder,
                   "implicit seq_cst increment/decrement of atomic '" + var +
                       "'; use fetch_add/fetch_sub with an explicit "
                       "std::memory_order_*");
      }
    }
  }
}

// R4: unseeded / wall-clock nondeterminism outside the sanctioned modules.
void CheckBannedNondeterminism(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/common/random.") ||
      PathContains(f.path, "src/obs/")) {
    return;
  }
  struct Banned {
    const char* word;
    bool call_only;
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", true, "use ddp::Rng seeded from Options"},
      {"srand", true, "use ddp::Rng seeded from Options"},
      {"random_device", false, "use ddp::Rng seeded from Options"},
      {"time", true, "wall-clock input makes runs unreproducible"},
      {"system_clock", false, "wall-clock input makes runs unreproducible"},
  };
  for (const Banned& b : kBanned) {
    for (size_t pos : FindWord(f.code, b.word)) {
      if (b.call_only) {
        size_t after = SkipSpace(f.code, pos + std::strlen(b.word));
        if (after >= f.code.size() || f.code[after] != '(') continue;
      }
      AddFinding(out, f, pos, kRuleNondet,
                 std::string(b.word) + " is a banned nondeterminism source: " +
                     b.why);
    }
  }
}

// R5: span/metric names are literal, lowercase, dot/underscore-separated.
void CheckNameHygiene(const SourceFile& f, std::vector<Finding>* out) {
  static const std::vector<std::string> kApis = {
      "DDP_TRACE_SPAN",        "DDP_TRACE_SCOPE",
      "DDP_METRIC_COUNTER_ADD", "DDP_METRIC_HISTOGRAM_SECONDS",
      "DDP_METRIC_HISTOGRAM_RECORD", "GetCounter", "GetGauge", "GetHistogram"};
  const std::string& code = f.code;
  auto check_args = [&](size_t open, size_t close) {
    // Offsets agree between raw and code, so read literals from raw where the
    // scrubbed view is blank.
    for (size_t i = open; i < close; ++i) {
      if (f.raw[i] != '"') continue;
      size_t end = i + 1;
      while (end < close && f.raw[end] != '"') {
        if (f.raw[end] == '\\') ++end;
        ++end;
      }
      std::string lit = f.raw.substr(i + 1, end - i - 1);
      bool ok = !lit.empty();
      for (char c : lit) {
        if (!(islower(static_cast<unsigned char>(c)) ||
              isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '.')) {
          ok = false;
        }
      }
      if (!ok) {
        AddFinding(out, f, i, kRuleNames,
                   "span/metric name \"" + lit +
                       "\" must match [a-z0-9_.]+ so exported traces and "
                       "metric keys stay greppable and collator-safe");
      }
      i = end;
    }
  };
  for (const std::string& api : kApis) {
    for (size_t pos : FindWord(code, api)) {
      size_t open = SkipSpace(code, pos + api.size());
      if (open >= code.size() || code[open] != '(') continue;
      size_t close = MatchParen(code, open);
      if (close == std::string::npos) continue;
      check_args(open, close);
    }
  }
  // Direct obs::Span construction: "Span name(...)" with literal args.
  for (size_t pos : FindWord(code, "Span")) {
    size_t i = SkipSpace(code, pos + 4);
    std::string name = ReadIdent(code, i);
    if (!name.empty()) i = SkipSpace(code, i + name.size());
    if (i >= code.size() || code[i] != '(') continue;
    size_t close = MatchParen(code, i);
    if (close == std::string::npos) continue;
    check_args(i, close);
  }
}

// R6: headers must use #pragma once and must not open namespaces wholesale.
void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  if (!IsHeader(f.path)) return;
  if (f.code.find("#pragma once") == std::string::npos) {
    out->push_back({f.path, 1, std::string(kRuleHeader),
                    "header is missing #pragma once"});
  }
  for (size_t pos : FindWord(f.code, "using")) {
    size_t i = SkipSpace(f.code, pos + 5);
    if (f.code.compare(i, 9, "namespace") == 0) {
      AddFinding(out, f, pos, kRuleHeader,
                 "using namespace in a header leaks into every includer");
    }
  }
}

// R7: raw process-control and socket primitives are confined to
// src/mapreduce/, src/server/, and tools/ddp_worker.cc. In src/mapreduce/
// the worker supervisor owns the process lifecycle
// (spawn, heartbeat, kill, reap) and CommChannel owns the transport. A
// fork/kill/waitpid anywhere else escapes the crash-fault model: it creates
// children the supervisor will never reap, or signals pids whose ownership
// it cannot see. A raw socket/bind/connect bypasses the framed, CRC-trailed
// channel protocol and its reconnect semantics. src/server/ builds the
// serving daemon on those primitives and shares the exemption, as does
// tools/ddp_worker.cc — the worker subsystem's process entry point, which
// owns the lifecycle of the sibling workers it spawns for --workers N. Use
// the CommChannel/WorkerSupervisor API (or mr::CrashSelf in chaos tests)
// elsewhere.
void CheckProcessControl(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/mapreduce/") ||
      PathContains(f.path, "src/server/") ||
      PathContains(f.path, "tools/ddp_worker.cc")) {
    return;
  }
  static const std::vector<std::string> kCalls = {
      "fork",   "vfork",  "execl",       "execlp",       "execle",
      "execv",  "execvp", "execve",      "execvpe",      "kill",
      "killpg", "wait",   "waitpid",     "wait3",        "wait4",
      "waitid", "system", "posix_spawn", "posix_spawnp", "socket",
      "socketpair", "bind", "listen",    "connect",      "accept",
      "accept4",
  };
  for (const std::string& fn : kCalls) {
    for (size_t pos : FindWord(f.code, fn)) {
      size_t after = SkipSpace(f.code, pos + fn.size());
      if (after >= f.code.size() || f.code[after] != '(') continue;
      // Free calls only: cv.wait(lock) or queue->kill(id) are member
      // functions of unrelated types, not the POSIX primitives.
      bool member = (pos >= 1 && f.code[pos - 1] == '.') ||
                    (pos >= 2 && f.code[pos - 2] == '-' &&
                     f.code[pos - 1] == '>');
      if (member) continue;
      // Declarations, not calls: `void listen(int)` / `Status bind(...)`.
      // A call cannot be directly preceded by a type or identifier token —
      // unless that token is a statement keyword (`return connect(...)`).
      size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[before - 1]))) {
        --before;
      }
      if (before > 0) {
        const char prev = f.code[before - 1];
        if (prev == '*' || prev == '&') continue;  // `int* accept(`
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          size_t start = before;
          while (start > 0 &&
                 (std::isalnum(static_cast<unsigned char>(f.code[start - 1])) ||
                  f.code[start - 1] == '_')) {
            --start;
          }
          const std::string_view word(f.code.data() + start, before - start);
          static constexpr std::string_view kStmtKeywords[] = {
              "return", "throw", "case", "else", "do",
              "co_return", "co_await", "co_yield",
          };
          const bool keyword =
              std::find(std::begin(kStmtKeywords), std::end(kStmtKeywords),
                        word) != std::end(kStmtKeywords);
          if (!keyword) continue;
        }
      }
      AddFinding(out, f, pos, kRuleProcess,
                 fn +
                     "() outside src/mapreduce/, src/server/, or "
                     "tools/ddp_worker.cc; process lifecycle belongs to the "
                     "worker supervisor (use the CommChannel/WorkerSupervisor "
                     "API)");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

struct RuleDoc {
  std::string_view id;
  std::string_view summary;
};

constexpr RuleDoc kRuleDocs[] = {
    {kRuleSqrt, "R1: sqrt/hypot banned in src/core, src/ddp, src/lsh"},
    {kRuleOrdered, "R2: unordered iteration feeding emission needs a sort"},
    {kRuleMemOrder, "R3: atomic ops must name a std::memory_order_*"},
    {kRuleNondet,
     "R4: rand/random_device/time/system_clock outside random.*, obs/"},
    {kRuleNames, "R5: span/metric name literals match [a-z0-9_.]+"},
    {kRuleHeader, "R6: headers use #pragma once, no using namespace"},
    {kRuleProcess,
     "R7: fork/exec/kill/waitpid/socket calls confined to src/mapreduce/, "
     "src/server/, and tools/ddp_worker.cc"},
    {kRuleNoReason, "allow() without '-- <reason>' does not suppress"},
    {kRuleUnused, "allow() that suppresses nothing must be removed"},
};

void LintFile(const std::string& fs_path, const std::string& report_path,
              std::vector<Finding>* findings, bool* io_error) {
  SourceFile f;
  if (!LoadSource(fs_path, report_path, &f)) {
    std::fprintf(stderr, "ddp_lint: cannot read %s\n", fs_path.c_str());
    *io_error = true;
    return;
  }
  std::vector<Finding> raw;
  SymbolInfo info;
  CollectSymbols(f, &info);
  CheckNoRawSqrt(f, &raw);
  CheckOrderedEmission(f, info, &raw);
  CheckExplicitMemoryOrder(f, info, &raw);
  CheckBannedNondeterminism(f, &raw);
  CheckNameHygiene(f, &raw);
  CheckHeaderHygiene(f, &raw);
  CheckProcessControl(f, &raw);

  // Apply suppressions: same line or the line above, matching rule id, with
  // a written reason.
  for (Finding& fd : raw) {
    bool suppressed = false;
    for (Suppression& s : f.suppressions) {
      if (s.rule != fd.rule) continue;
      if (fd.line < s.target_line || fd.line > s.target_end) continue;
      if (!s.has_reason) continue;
      s.used = true;
      suppressed = true;
    }
    if (!suppressed) findings->push_back(std::move(fd));
  }
  for (const Suppression& s : f.suppressions) {
    if (!s.has_reason) {
      findings->push_back(
          {f.path, s.line, std::string(kRuleNoReason),
           "allow(" + s.rule +
               ") has no '-- <reason>'; suppressions must say why"});
    } else if (!s.used) {
      findings->push_back({f.path, s.line, std::string(kRuleUnused),
                           "allow(" + s.rule +
                               ") suppresses nothing on its target line; "
                               "remove it"});
    }
  }
}

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ddp_lint [--root DIR] [--list-rules] [file...]\n"
      "\n"
      "With --root, scans DIR/src DIR/tools DIR/tests DIR/bench (skipping\n"
      "lint fixtures). Explicit file arguments are scanned as given.\n"
      "Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const RuleDoc& r : kRuleDocs) {
        std::printf("%-26s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty() && files.empty()) return Usage();

  // (fs_path, report_path) pairs; report paths are root-relative when
  // scanning a root so rule scoping and output stay stable across machines.
  std::vector<std::pair<std::string, std::string>> inputs;
  if (!root.empty()) {
    for (const char* sub : {"src", "tools", "tests", "bench"}) {
      fs::path dir = fs::path(root) / sub;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
        std::string rel =
            fs::relative(entry.path(), fs::path(root)).generic_string();
        if (rel.find("lint_fixtures") != std::string::npos) continue;
        inputs.push_back({entry.path().string(), rel});
      }
    }
  }
  for (const std::string& fpath : files) {
    inputs.push_back({fpath, fs::path(fpath).generic_string()});
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<Finding> findings;
  bool io_error = false;
  for (const auto& [fs_path, report_path] : inputs) {
    LintFile(fs_path, report_path, &findings, &io_error);
  }
  std::sort(findings.begin(), findings.end(), [](const auto& a, const auto& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  for (const Finding& fd : findings) {
    std::printf("%s:%zu: [%s] %s\n", fd.file.c_str(), fd.line, fd.rule.c_str(),
                fd.message.c_str());
  }
  std::fprintf(stderr, "ddp_lint: %zu file(s), %zu finding(s)\n", inputs.size(),
               findings.size());
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}

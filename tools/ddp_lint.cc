// ddp_lint — project-invariant static analyzer for the DDP codebase.
//
// The determinism contracts this tree depends on (squared-space kernels with
// one sqrt at final assembly, derivable shuffle/reduce ordering, explicit
// atomic memory orders, seeded randomness only) are enforced here as lint
// rules with file/line diagnostics. See docs/static-analysis.md for the rule
// catalogue and the rationale behind each rule.
//
// The implementation lives in tools/lint/: a comment/string-aware source
// loader (source.cc), a small C++ tokenizer (lexer.cc), per-file and
// cross-file symbol indexes (index.cc), and the rules themselves (rules.cc).
// This file is the driver: argument parsing, the two-phase lint (load and
// index everything, then run rules with cross-file context), and output.
//
// Rules:
//   no-raw-sqrt            R1  sqrt/hypot banned in src/core, src/ddp, src/lsh
//   ordered-emission       R2  unordered-container iteration feeding emission
//                              requires a sort in the same scope
//   explicit-memory-order  R3  atomic ops must name a std::memory_order_*
//   banned-nondeterminism  R4  rand()/random_device/time()/system_clock
//                              outside src/common/random.* and src/obs/
//   name-hygiene           R5  span/metric name literals match [a-z0-9_.]+
//   header-hygiene         R6  headers use #pragma once, no using namespace
//   process-control        R7  fork/exec/kill/waitpid and raw socket calls
//                              confined to src/mapreduce/, src/server/, and
//                              tools/ddp_worker.cc
//   serde-symmetry         R8  Encode/Decode codec pairs write and read the
//                              same wire-kind and field sequence
//   frame-exhaustive       R9  switches over frame-type enums handle every
//                              enumerator or carry an annotated default
//   lock-across-blocking   R10 no lock_guard/unique_lock held across
//                              CommChannel Send/Recv, spill writes, or raw
//                              ::connect/::accept
//   name-registry          R11 metric/span names at call sites resolve
//                              against src/obs/metric_names.h, which in turn
//                              agrees with docs/observability.md
//
// Suppression syntax, trailing the violating line or opening a comment block
// directly above it:
//   // ddp-lint: allow(<rule>) -- <reason>
// A reason is mandatory: an allow() without one does not suppress and is
// itself reported (suppression-missing-reason). Suppressions that match no
// finding are reported too (unused-suppression), so annotations cannot rot.
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/rules.h"
#include "lint/source.h"

namespace fs = std::filesystem;

namespace {

using namespace ddp_lint;

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ddp_lint [--root DIR] [--format human|json] [--list-rules]\n"
      "                [--metric-registry FILE] [--metric-doc FILE] [file...]\n"
      "\n"
      "With --root, scans DIR/src DIR/tools DIR/tests DIR/bench (skipping\n"
      "lint fixtures). Explicit file arguments are scanned as given.\n"
      "The name-registry rule reads DIR/src/obs/metric_names.h and\n"
      "DIR/docs/observability.md by default; --metric-registry and\n"
      "--metric-doc override those paths (the rule is skipped when the\n"
      "registry does not exist).\n"
      "Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n");
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintHuman(const std::vector<Finding>& findings) {
  for (const Finding& fd : findings) {
    std::printf("%s:%zu: [%s] %s\n", fd.file.c_str(), fd.line, fd.rule.c_str(),
                fd.message.c_str());
  }
}

// Machine-readable diagnostics for CI artifacts. The `suppression` field is
// the exact comment that would suppress the finding, so a reviewer can copy
// it out of the CI log (filling in the reason).
void PrintJson(size_t num_files, const std::vector<Finding>& findings) {
  std::printf("{\n  \"files\": %zu,\n  \"findings\": [", num_files);
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& fd = findings[i];
    std::string suppression =
        "// ddp-lint: allow(" + fd.rule + ") -- <reason>";
    std::printf("%s\n    {\"path\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
                "\"message\": \"%s\", \"suppression\": \"%s\"}",
                i == 0 ? "" : ",", JsonEscape(fd.file).c_str(), fd.line,
                JsonEscape(fd.rule).c_str(), JsonEscape(fd.message).c_str(),
                JsonEscape(suppression).c_str());
  }
  std::printf("%s]\n}\n", findings.empty() ? "" : "\n  ");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string format = "human";
  std::string registry_path;  // --metric-registry override
  std::string doc_path;       // --metric-doc override
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--format") {
      if (i + 1 >= argc) return Usage();
      format = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--metric-registry") {
      if (i + 1 >= argc) return Usage();
      registry_path = argv[++i];
    } else if (arg == "--metric-doc") {
      if (i + 1 >= argc) return Usage();
      doc_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const RuleDoc& r : kRuleDocs) {
        std::printf("%-26s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty() && files.empty()) return Usage();
  if (format != "human" && format != "json") return Usage();

  // (fs_path, report_path) pairs; report paths are root-relative when
  // scanning a root so rule scoping and output stay stable across machines.
  std::vector<std::pair<std::string, std::string>> inputs;
  if (!root.empty()) {
    for (const char* sub : {"src", "tools", "tests", "bench"}) {
      fs::path dir = fs::path(root) / sub;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
        std::string rel =
            fs::relative(entry.path(), fs::path(root)).generic_string();
        if (rel.find("lint_fixtures") != std::string::npos) continue;
        inputs.push_back({entry.path().string(), rel});
      }
    }
  }
  for (const std::string& fpath : files) {
    inputs.push_back({fpath, fs::path(fpath).generic_string()});
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  // Phase 1: load and index every input, then assemble the cross-file
  // context (enum definitions, the metric-name registry, the doc tables).
  bool io_error = false;
  std::vector<SourceFile> sources(inputs.size());
  std::vector<FileIndex> indexes(inputs.size());
  std::vector<bool> loaded(inputs.size(), false);
  LintContext ctx;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!LoadSource(inputs[i].first, inputs[i].second, &sources[i])) {
      std::fprintf(stderr, "ddp_lint: cannot read %s\n",
                   inputs[i].first.c_str());
      io_error = true;
      continue;
    }
    loaded[i] = true;
    indexes[i] = BuildFileIndex(sources[i]);
    for (const EnumDef& e : indexes[i].enums) {
      ctx.enums.emplace(e.name, e.enumerators);  // first definition wins
    }
  }
  {
    bool explicit_registry = !registry_path.empty();
    std::string reg_fs = registry_path;
    std::string reg_report = registry_path;
    if (reg_fs.empty() && !root.empty()) {
      reg_fs = (fs::path(root) / "src/obs/metric_names.h").string();
      reg_report = "src/obs/metric_names.h";
    }
    if (!reg_fs.empty()) {
      SourceFile reg_src;
      if (LoadSource(reg_fs, reg_report, &reg_src)) {
        ctx.registry = ParseRegistry(reg_src);
      } else if (explicit_registry) {
        std::fprintf(stderr, "ddp_lint: cannot read %s\n", reg_fs.c_str());
        io_error = true;
      }
    }
    bool explicit_doc = !doc_path.empty();
    std::string doc_fs = doc_path;
    std::string doc_report = doc_path;
    if (doc_fs.empty() && !root.empty()) {
      doc_fs = (fs::path(root) / "docs/observability.md").string();
      doc_report = "docs/observability.md";
    }
    if (!doc_fs.empty()) {
      if (!ParseDocNames(doc_fs, doc_report, &ctx.doc) && explicit_doc) {
        std::fprintf(stderr, "ddp_lint: cannot read %s\n", doc_fs.c_str());
        io_error = true;
      }
    }
  }

  // Phase 2: per-file rules plus the cross-file registry/doc consistency
  // pass (whose findings anchor in the registry header and the doc, and are
  // not suppressible from source comments).
  std::vector<Finding> findings;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!loaded[i]) continue;
    LintFile(sources[i], indexes[i], ctx, &findings);
  }
  CheckRegistryDocDrift(ctx, &findings);

  std::sort(findings.begin(), findings.end(), [](const auto& a, const auto& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  if (format == "json") {
    PrintJson(inputs.size(), findings);
  } else {
    PrintHuman(findings);
  }
  std::fprintf(stderr, "ddp_lint: %zu file(s), %zu finding(s)\n", inputs.size(),
               findings.size());
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}

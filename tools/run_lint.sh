#!/usr/bin/env bash
# Runs the full static-analysis gate — the same commands CI's static-analysis
# job runs, so "it passed locally" and "it passed CI" mean the same thing.
#
#   1. ddp_lint over src/ tools/ tests/ bench/ (zero unsuppressed findings)
#   2. clang-tidy over the compile database        (skipped if not installed)
#   3. clang-format --dry-run --Werror             (skipped if not installed)
#
# Usage: tools/run_lint.sh [build-dir]   (default: build)
#
# Exit code is non-zero if any available tool reports a problem. Missing
# optional tools are reported but do not fail the run, so contributors
# without LLVM installed still get the ddp_lint gate.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
FAILED=0

# --- 1. ddp_lint -----------------------------------------------------------
if [ ! -x "$BUILD_DIR/tools/ddp_lint" ]; then
  echo "run_lint: building ddp_lint..."
  cmake --build "$BUILD_DIR" --target ddp_lint -j >/dev/null || {
    echo "run_lint: FAILED to build ddp_lint (configure $BUILD_DIR first?)"
    exit 2
  }
fi
echo "run_lint: ddp_lint --root $ROOT"
"$BUILD_DIR/tools/ddp_lint" --root "$ROOT" || FAILED=1
# Machine-readable copy of the same findings for CI artifacts / tooling.
"$BUILD_DIR/tools/ddp_lint" --root "$ROOT" --format=json \
    > "$BUILD_DIR/ddp_lint.json" 2>/dev/null
echo "run_lint: wrote $BUILD_DIR/ddp_lint.json"

# --- 2. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_lint: clang-tidy (src tools bench)"
    FILES=$(find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" -name '*.cc')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p "$BUILD_DIR" $FILES >/dev/null || FAILED=1
    else
      clang-tidy -quiet -p "$BUILD_DIR" $FILES || FAILED=1
    fi
  else
    echo "run_lint: skipping clang-tidy ($BUILD_DIR/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  echo "run_lint: skipping clang-tidy (not installed)"
fi

# --- 3. clang-format -------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "run_lint: clang-format --dry-run --Werror"
  find "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" \
      \( -name '*.cc' -o -name '*.h' \) -not -path '*lint_fixtures*' -print0 |
    xargs -0 clang-format --dry-run --Werror || FAILED=1
else
  echo "run_lint: skipping clang-format (not installed)"
fi

if [ "$FAILED" -ne 0 ]; then
  echo "run_lint: FAILED"
  exit 1
fi
echo "run_lint: OK"

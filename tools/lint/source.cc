#include "lint/source.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace ddp_lint {

namespace {

// Parses "ddp-lint: allow(rule) -- reason" out of one comment's text. The
// directive must open the comment (only whitespace between the comment
// marker and "ddp-lint:"), so prose that merely mentions the syntax — like
// this very comment — is not a suppression.
void ParseSuppressions(std::string_view comment, size_t line,
                       std::vector<Suppression>* out) {
  size_t i = 0;
  while (i < comment.size() && (comment[i] == '/' || comment[i] == '*')) ++i;
  while (i < comment.size() && (comment[i] == ' ' || comment[i] == '\t')) ++i;
  if (comment.compare(i, 9, "ddp-lint:") != 0) return;
  size_t a = comment.find("allow(", i);
  if (a == std::string_view::npos) return;
  size_t close = comment.find(')', a);
  if (close == std::string_view::npos) return;
  Suppression s;
  s.line = line;
  s.rule = std::string(comment.substr(a + 6, close - (a + 6)));
  size_t dashes = comment.find("--", close);
  if (dashes != std::string_view::npos) {
    std::string_view reason = comment.substr(dashes + 2);
    size_t ws = reason.find_first_not_of(" \t");
    s.has_reason = ws != std::string_view::npos;
  }
  out->push_back(s);
}

}  // namespace

size_t LineOfOffset(const SourceFile& f, size_t offset) {
  auto it =
      std::upper_bound(f.line_starts.begin(), f.line_starts.end(), offset);
  return static_cast<size_t>(it - f.line_starts.begin());  // 1-based
}

bool LoadSource(const std::string& fs_path, const std::string& report_path,
                SourceFile* out) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out->path = report_path;
  out->raw = ss.str();
  out->code = out->raw;
  std::string& code = out->code;

  out->line_starts.push_back(0);
  for (size_t i = 0; i < out->raw.size(); ++i) {
    if (out->raw[i] == '\n') out->line_starts.push_back(i + 1);
  }

  enum class St { kCode, kLine, kBlock, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;     // raw string closing delimiter: )delim"
  size_t comment_start = 0;  // start offset of the current comment body
  auto flush_comment = [&](size_t end) {
    std::string_view text(out->raw.data() + comment_start,
                          end - comment_start);
    ParseSuppressions(text, LineOfOffset(*out, comment_start),
                      &out->suppressions);
  };
  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    char next = i + 1 < code.size() ? code[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          comment_start = i;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          comment_start = i;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 ||
                    (!isalnum(static_cast<unsigned char>(code[i - 1])) &&
                     code[i - 1] != '_'))) {
          size_t open = code.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delim = ")" + code.substr(i + 2, open - (i + 2)) + "\"";
          for (size_t k = i; k <= open; ++k) {
            if (code[k] != '\n') code[k] = ' ';
          }
          i = open;
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          flush_comment(i);
          st = St::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          flush_comment(i);
          code[i] = code[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          code[i] = ' ';
          if (next != '\n') {
            if (i + 1 < code.size()) code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < code.size() && next != '\n') {
            code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::kRaw:
        if (code.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) code[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
    }
  }
  if (st == St::kLine || st == St::kBlock) flush_comment(code.size());

  // A suppression trailing code applies to its own line; one on a comment
  // line applies to the next line that holds code, so multi-line reasons
  // (and comment blocks continuing below the directive) still anchor to the
  // statement they justify.
  auto line_has_code = [&](size_t line) {
    size_t start = out->line_starts[line - 1];
    size_t end =
        line < out->line_starts.size() ? out->line_starts[line] : code.size();
    for (size_t k = start; k < end; ++k) {
      if (!isspace(static_cast<unsigned char>(code[k]))) return true;
    }
    return false;
  };
  // Statements wrap; a suppression covers its target line plus continuation
  // lines until the statement closes (a line ending in ';', '{' or '}').
  auto line_closes_statement = [&](size_t line) {
    size_t start = out->line_starts[line - 1];
    size_t end =
        line < out->line_starts.size() ? out->line_starts[line] : code.size();
    for (size_t k = end; k > start; --k) {
      char c = code[k - 1];
      if (isspace(static_cast<unsigned char>(c))) continue;
      return c == ';' || c == '{' || c == '}';
    }
    return false;
  };
  size_t num_lines = out->line_starts.size();
  for (Suppression& s : out->suppressions) {
    if (line_has_code(s.line)) {
      s.target_line = s.line;
    } else {
      s.target_line = s.line;  // fallback: nothing but comments below
      for (size_t line = s.line + 1; line <= num_lines; ++line) {
        if (line_has_code(line)) {
          s.target_line = line;
          break;
        }
      }
    }
    s.target_end = s.target_line;
    while (s.target_end < num_lines && s.target_end < s.target_line + 8 &&
           !line_closes_statement(s.target_end)) {
      ++s.target_end;
    }
  }
  return true;
}

bool IsIdentChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool HasWordBoundaryBefore(const std::string& s, size_t pos) {
  return pos == 0 || !IsIdentChar(s[pos - 1]);
}

std::vector<size_t> FindWord(const std::string& text, const std::string& word,
                             size_t from, size_t to) {
  std::vector<size_t> hits;
  size_t limit = to == std::string::npos ? text.size() : to;
  size_t pos = text.find(word, from);
  while (pos != std::string::npos && pos < limit) {
    bool left = HasWordBoundaryBefore(text, pos);
    size_t end = pos + word.size();
    bool right = end >= text.size() || !IsIdentChar(text[end]);
    if (left && right) hits.push_back(pos);
    pos = text.find(word, pos + 1);
  }
  return hits;
}

size_t MatchParen(const std::string& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::string ReadIdent(const std::string& s, size_t i) {
  size_t start = i;
  while (i < s.size() && IsIdentChar(s[i])) ++i;
  return s.substr(start, i - start);
}

size_t SkipAngles(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::pair<size_t, size_t> EnclosingBlock(const std::string& code,
                                         size_t offset) {
  std::vector<size_t> stack;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      stack.push_back(i);
    } else if (code[i] == '}') {
      if (!stack.empty()) {
        size_t open = stack.back();
        stack.pop_back();
        if (open <= offset && offset < i) return {open, i};
      }
    }
  }
  return {0, code.size()};
}

bool ScopeHas(const std::string& code, std::pair<size_t, size_t> scope,
              const std::vector<std::string>& words, bool call_only) {
  for (const std::string& w : words) {
    for (size_t pos : FindWord(code, w, scope.first, scope.second)) {
      if (!call_only) return true;
      size_t after = SkipSpace(code, pos + w.size());
      if (after < code.size() && code[after] == '(') return true;
    }
  }
  return false;
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

}  // namespace ddp_lint

// Per-file symbol index for ddp_lint.
//
// Two layers live here. CollectSymbols is the original string-scan index the
// R2/R3 rules were built on (unordered containers, atomics) — moved verbatim
// so those rules stay bit-compatible with the pre-rewrite linter. FileIndex
// is the token-stream index the cross-file rules (R8-R11) need: enum
// definitions, switch statements with their case labels, Encode/Decode codec
// function pairs with their serde op sequences, and metric/span name sites.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.h"
#include "lint/source.h"

namespace ddp_lint {

// --------------------------------------------------------------------------
// Original string-scan index (R2, R3).
// --------------------------------------------------------------------------

// Per-file symbol tracking for R2 and R3.
struct SymbolInfo {
  std::set<std::string> unordered_vars;     // variables of unordered type
  std::set<std::string> unordered_aliases;  // using X = unordered_...
  std::set<std::string> unordered_funcs;    // functions returning unordered
  std::set<std::string> unordered_elem_vars;  // containers of unordered values
  // Variables of std::atomic type, with the scope of their declaration so a
  // same-named plain variable elsewhere in the file is not confused for one.
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> atomic_vars;
};

void CollectSymbols(const SourceFile& f, SymbolInfo* info);

// --------------------------------------------------------------------------
// Token-stream index (R8-R11).
// --------------------------------------------------------------------------

struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
  size_t offset = 0;
};

struct SwitchStmt {
  size_t offset = 0;          // offset of the `switch` keyword
  size_t default_offset = 0;  // offset of `default`, when present
  bool has_default = false;
  std::string enum_name;            // unqualified enum from the case labels
  std::vector<std::string> cases;   // enumerators named by case labels
};

// One write or read in a codec body, in source order. `kind` is the wire
// primitive ("byte", "varint64", "serde<T>", "nested", "dataset", ...);
// `name` is the field identifier the op touches, "" when none is statically
// recoverable (loop temporaries, return-value decodes).
struct SerdeOp {
  std::string kind;
  std::string name;
  size_t offset = 0;
};

struct CodecFn {
  std::string owner;  // struct name or out-of-line qualifier
  std::string fn;     // Encode / Decode / SerializeTo / ...
  bool is_encode = false;
  size_t offset = 0;  // offset of the function name token
  std::vector<SerdeOp> ops;
};

// An Encode-side and Decode-side codec defined for the same struct in the
// same file.
struct CodecPair {
  CodecFn encode;
  CodecFn decode;
};

// A call site that names a metric or span: literal string arguments plus any
// registry-constant identifiers (kMetric* / kSpan* / kCat*) in the argument
// list.
struct NameSite {
  enum class Kind { kMetric, kSpan };
  Kind kind = Kind::kMetric;
  std::vector<std::pair<std::string, size_t>> literals;  // (text, offset)
  std::vector<std::pair<std::string, size_t>> idents;    // (name, offset)
};

struct FileIndex {
  std::vector<Token> tokens;
  std::vector<EnumDef> enums;
  std::vector<SwitchStmt> switches;
  std::vector<CodecPair> codec_pairs;
  std::vector<NameSite> name_sites;
};

FileIndex BuildFileIndex(const SourceFile& f);

// --------------------------------------------------------------------------
// Cross-file inputs: the metric-name registry and the observability doc.
// --------------------------------------------------------------------------

struct RegistryEntry {
  std::string constant;  // kMetricMrJobs
  std::string literal;   // "mr.jobs"
  size_t line = 0;
};

// Parsed src/obs/metric_names.h: every `constexpr const char* kXxx = "...";`
// whose constant name starts with kMetric / kSpan / kCat.
struct NameRegistry {
  bool present = false;
  std::string path;
  std::vector<RegistryEntry> metrics;
  std::vector<RegistryEntry> spans;
  std::vector<RegistryEntry> categories;

  bool HasMetric(const std::string& literal) const;
  bool HasSpanOrCategory(const std::string& literal) const;
  bool HasConstant(const std::string& constant) const;
};

NameRegistry ParseRegistry(const SourceFile& f);

// Parsed docs/observability.md: the backticked names in the span-taxonomy
// and metric-name tables, with their line numbers. Names containing '<' are
// templates (`server.job.<id>.mr_jobs`) and are skipped.
struct DocNames {
  bool present = false;
  std::string path;
  std::vector<std::pair<std::string, size_t>> metrics;     // (name, line)
  std::vector<std::pair<std::string, size_t>> span_names;  // (name, line)
  std::vector<std::pair<std::string, size_t>> categories;  // (name, line)

  bool HasMetric(const std::string& name) const;
  bool HasSpan(const std::string& name) const;
  bool HasCategory(const std::string& name) const;
};

bool ParseDocNames(const std::string& fs_path, const std::string& report_path,
                   DocNames* out);

}  // namespace ddp_lint

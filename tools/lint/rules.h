// Rule implementations for ddp_lint. R1-R7 are the original per-file rules,
// moved verbatim from the single-file linter so their diagnostics stay
// bit-compatible. R8-R11 are the cross-file rules built on the token-stream
// index: serde symmetry, frame-switch exhaustiveness, lock discipline across
// blocking calls, and metric/span name-registry drift.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/index.h"
#include "lint/source.h"

namespace ddp_lint {

constexpr std::string_view kRuleSqrt = "no-raw-sqrt";
constexpr std::string_view kRuleOrdered = "ordered-emission";
constexpr std::string_view kRuleMemOrder = "explicit-memory-order";
constexpr std::string_view kRuleNondet = "banned-nondeterminism";
constexpr std::string_view kRuleNames = "name-hygiene";
constexpr std::string_view kRuleHeader = "header-hygiene";
constexpr std::string_view kRuleProcess = "process-control";
constexpr std::string_view kRuleSerde = "serde-symmetry";
constexpr std::string_view kRuleFrame = "frame-exhaustive";
constexpr std::string_view kRuleLock = "lock-across-blocking";
constexpr std::string_view kRuleRegistry = "name-registry";
constexpr std::string_view kRuleNoReason = "suppression-missing-reason";
constexpr std::string_view kRuleUnused = "unused-suppression";

// Cross-file inputs shared by every per-file lint pass: enum definitions
// gathered from the whole input set (R9 resolves a switch in server.cc
// against the enum defined in channel.h), plus the parsed metric-name
// registry and observability doc (R11).
struct LintContext {
  std::map<std::string, std::vector<std::string>> enums;
  NameRegistry registry;
  DocNames doc;
};

void AddFinding(std::vector<Finding>* out, const SourceFile& f, size_t offset,
                std::string_view rule, std::string message);

// R1: raw sqrt/hypot in squared-space kernel directories.
void CheckNoRawSqrt(const SourceFile& f, std::vector<Finding>* out);
// R2: range-for over an unordered container in a scope that emits records.
void CheckOrderedEmission(const SourceFile& f, const SymbolInfo& info,
                          std::vector<Finding>* out);
// R3: atomic operations must name an explicit std::memory_order_*.
void CheckExplicitMemoryOrder(const SourceFile& f, const SymbolInfo& info,
                              std::vector<Finding>* out);
// R4: unseeded / wall-clock nondeterminism outside the sanctioned modules.
void CheckBannedNondeterminism(const SourceFile& f, std::vector<Finding>* out);
// R5: span/metric names are literal, lowercase, dot/underscore-separated.
void CheckNameHygiene(const SourceFile& f, std::vector<Finding>* out);
// R6: headers must use #pragma once and must not open namespaces wholesale.
void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out);
// R7: raw process-control and socket primitives confined to the worker
// subsystem.
void CheckProcessControl(const SourceFile& f, std::vector<Finding>* out);
// R8: Encode/Decode codec pairs must write and read the same field sequence.
void CheckSerdeSymmetry(const SourceFile& f, const FileIndex& idx,
                        std::vector<Finding>* out);
// R9: switches over frame-type enums must handle every enumerator or carry
// an annotated default.
void CheckFrameExhaustive(const SourceFile& f, const FileIndex& idx,
                          const LintContext& ctx, std::vector<Finding>* out);
// R10: no mutex guard held across channel/spill/socket blocking calls.
void CheckLockAcrossBlocking(const SourceFile& f, std::vector<Finding>* out);
// R11 (per file): metric/span literals and kMetric*/kSpan*/kCat* identifiers
// at observability call sites must resolve against the registry.
void CheckNameRegistry(const SourceFile& f, const FileIndex& idx,
                       const LintContext& ctx, std::vector<Finding>* out);
// R11 (cross file, run once): the registry and the observability doc tables
// must agree in both directions.
void CheckRegistryDocDrift(const LintContext& ctx, std::vector<Finding>* out);

// Runs every per-file rule over one loaded file, applies suppressions, and
// appends the surviving findings plus any suppression meta-findings. Takes
// the file non-const because matched suppressions are marked used in place.
void LintFile(SourceFile& f, const FileIndex& idx, const LintContext& ctx,
              std::vector<Finding>* findings);

struct RuleDoc {
  std::string_view id;
  std::string_view summary;
};

inline constexpr RuleDoc kRuleDocs[] = {
    {kRuleSqrt, "R1: sqrt/hypot banned in src/core, src/ddp, src/lsh"},
    {kRuleOrdered, "R2: unordered iteration feeding emission needs a sort"},
    {kRuleMemOrder, "R3: atomic ops must name a std::memory_order_*"},
    {kRuleNondet,
     "R4: rand/random_device/time/system_clock outside random.*, obs/"},
    {kRuleNames, "R5: span/metric name literals match [a-z0-9_.]+"},
    {kRuleHeader, "R6: headers use #pragma once, no using namespace"},
    {kRuleProcess,
     "R7: fork/exec/kill/waitpid/socket calls confined to src/mapreduce/, "
     "src/server/, and tools/ddp_worker.cc"},
    {kRuleSerde,
     "R8: Encode/Decode pairs write and read the same field sequence"},
    {kRuleFrame,
     "R9: switches over frame-type enums handle every enumerator"},
    {kRuleLock,
     "R10: no lock held across CommChannel/SpillFileWriter/socket blocking"},
    {kRuleRegistry,
     "R11: metric/span names resolve against src/obs/metric_names.h and "
     "docs/observability.md"},
    {kRuleNoReason, "allow() without '-- <reason>' does not suppress"},
    {kRuleUnused, "allow() that suppresses nothing must be removed"},
};

}  // namespace ddp_lint

// A small C++ tokenizer over the scrubbed `code` view of a SourceFile. The
// scrubber has already removed comments and literal *contents*, so the lexer
// only has to classify what is left: identifiers, numbers, string literals
// (whose quotes survive scrubbing; the value is read back from `raw` at the
// same offsets), and punctuation. This is deliberately not a full C++ lexer —
// it is exactly enough structure for the cross-file rules (R8-R11) to parse
// enum definitions, switch statements, codec function bodies, and call
// argument lists without ever being fooled by comments or string prose.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/source.h"

namespace ddp_lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;   // identifier/number/punct spelling; "" for literals
  std::string value;  // string literal contents, read from raw
  size_t offset = 0;  // offset into SourceFile::code / raw
};

// Tokenizes the scrubbed code. Raw string literals were fully blanked by the
// scrubber and produce no token; plain string literals become kString tokens
// carrying their raw contents. Multi-character operators that matter for
// structure ("::", "->") are single tokens.
std::vector<Token> Lex(const SourceFile& f);

// Index of the token at or after `offset`, or tokens.size().
size_t TokenAtOrAfter(const std::vector<Token>& tokens, size_t offset);

// Given tokens[i] == "(", returns the index one past the matching ")", or
// tokens.size() if unbalanced.
size_t MatchParenTok(const std::vector<Token>& tokens, size_t i);

// Given tokens[i] == "{", returns the index one past the matching "}", or
// tokens.size() if unbalanced.
size_t MatchBraceTok(const std::vector<Token>& tokens, size_t i);

// Given tokens[i] == "<", returns the index one past the balanced ">", or
// tokens.size() if unbalanced.
size_t MatchAngleTok(const std::vector<Token>& tokens, size_t i);

}  // namespace ddp_lint

#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>

namespace ddp_lint {

void AddFinding(std::vector<Finding>* out, const SourceFile& f, size_t offset,
                std::string_view rule, std::string message) {
  out->push_back(
      {f.path, LineOfOffset(f, offset), std::string(rule), std::move(message)});
}

// R1: raw sqrt/hypot in squared-space kernel directories.
void CheckNoRawSqrt(const SourceFile& f, std::vector<Finding>* out) {
  if (!PathContains(f.path, "src/core") && !PathContains(f.path, "src/ddp") &&
      !PathContains(f.path, "src/lsh")) {
    return;
  }
  for (const char* fn :
       {"sqrt", "sqrtf", "sqrtl", "hypot", "hypotf", "hypotl"}) {
    for (size_t pos : FindWord(f.code, fn)) {
      size_t after = SkipSpace(f.code, pos + std::strlen(fn));
      if (after >= f.code.size() || f.code[after] != '(') continue;
      AddFinding(out, f, pos, kRuleSqrt,
                 std::string(fn) +
                     "() in squared-space kernel code; keep distances in d^2 "
                     "and take one sqrt at final assembly (annotate that site)");
    }
  }
}

// R2: range-for over an unordered container in a scope that emits records.
void CheckOrderedEmission(const SourceFile& f, const SymbolInfo& info,
                          std::vector<Finding>* out) {
  if (!PathContains(f.path, "src/")) return;
  if (PathContains(f.path, "src/obs/")) return;  // no pipeline records
  static const std::vector<std::string> kEmitters = {
      "Emit",       "SerializeTo", "push_back", "emplace_back",
      "PutVarint32", "PutVarint64", "PutByte",  "PutRaw",
      "PutDouble",  "PutFloat",    "WriteRecord", "Write", "Append"};
  static const std::vector<std::string> kSorters = {"sort", "stable_sort",
                                                    "partial_sort"};
  const std::string& code = f.code;
  for (size_t pos : FindWord(code, "for")) {
    size_t open = SkipSpace(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    size_t close = MatchParen(code, open);
    if (close == std::string::npos) continue;
    std::string head = code.substr(open + 1, close - open - 2);
    // Find the range-for ':' at paren/angle depth 0, not part of '::'.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = 0; i < head.size(); ++i) {
      char c = head[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::string range = head.substr(colon + 1);
    bool tainted = false;
    for (size_t i = 0; i < range.size();) {
      if (IsIdentChar(range[i])) {
        std::string id = ReadIdent(range, i);
        size_t j = SkipSpace(range, i + id.size());
        char after = j < range.size() ? range[j] : '\0';
        // Bare iteration over the container is hash-order; subscripting or
        // member access (m[k], m.at(k)) yields a value whose own order is
        // the value type's, not the hash table's.
        if (info.unordered_vars.count(id) > 0 && after != '[' && after != '.' &&
            after != '(' && !(after == '-' && j + 1 < range.size() &&
                              range[j + 1] == '>')) {
          tainted = true;
        }
        // ...except when the *element* type is unordered: v[m] is a table.
        if (info.unordered_elem_vars.count(id) > 0 && after == '[') {
          tainted = true;
        }
        i += id.size();
      } else {
        ++i;
      }
    }
    if (!tainted) continue;
    auto scope = EnclosingBlock(code, pos);
    if (!ScopeHas(code, scope, kEmitters, /*call_only=*/true)) continue;
    if (ScopeHas(code, scope, kSorters, /*call_only=*/true)) continue;
    AddFinding(out, f, pos, kRuleOrdered,
               "iteration over an unordered container in a scope that emits "
               "records, with no sort in scope; emission order must be "
               "derivable, not hash-order");
  }
}

// R3: atomic operations must name an explicit std::memory_order_*.
void CheckExplicitMemoryOrder(const SourceFile& f, const SymbolInfo& info,
                              std::vector<Finding>* out) {
  static const std::vector<std::string> kOps = {
      "load",      "store",      "exchange",
      "fetch_add", "fetch_sub",  "fetch_and",
      "fetch_or",  "fetch_xor",  "compare_exchange_weak",
      "compare_exchange_strong"};
  const std::string& code = f.code;
  for (const std::string& op : kOps) {
    for (size_t pos : FindWord(code, op)) {
      // Member call only: preceded by '.' or '->'.
      bool member = (pos >= 1 && code[pos - 1] == '.') ||
                    (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
      if (!member) continue;
      size_t open = SkipSpace(code, pos + op.size());
      if (open >= code.size() || code[open] != '(') continue;
      size_t close = MatchParen(code, open);
      if (close == std::string::npos) continue;
      std::string args = code.substr(open, close - open);
      if (args.find("memory_order") != std::string::npos) continue;
      AddFinding(out, f, pos, kRuleMemOrder,
                 "atomic " + op +
                     "() without an explicit std::memory_order_* argument "
                     "(implicit seq_cst hides the intended ordering)");
    }
  }
  // ++/--/+=/-= on a variable declared std::atomic in this file, within the
  // scope of that declaration.
  for (const auto& [var, scopes] : info.atomic_vars) {
    for (size_t pos : FindWord(code, var)) {
      bool in_scope = false;
      for (const auto& [open, close] : scopes) {
        if (pos >= open && pos < close) in_scope = true;
      }
      if (!in_scope) continue;
      size_t after = SkipSpace(code, pos + var.size());
      bool hit = false;
      if (after + 1 < code.size()) {
        std::string_view two(code.data() + after, 2);
        if (two == "++" || two == "--" || two == "+=" || two == "-=") {
          hit = true;
        }
      }
      if (!hit && pos >= 2) {
        std::string_view two(code.data() + pos - 2, 2);
        if (two == "++" || two == "--") hit = true;
      }
      if (hit) {
        AddFinding(out, f, pos, kRuleMemOrder,
                   "implicit seq_cst increment/decrement of atomic '" + var +
                       "'; use fetch_add/fetch_sub with an explicit "
                       "std::memory_order_*");
      }
    }
  }
}

// R4: unseeded / wall-clock nondeterminism outside the sanctioned modules.
void CheckBannedNondeterminism(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/common/random.") ||
      PathContains(f.path, "src/obs/")) {
    return;
  }
  struct Banned {
    const char* word;
    bool call_only;
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", true, "use ddp::Rng seeded from Options"},
      {"srand", true, "use ddp::Rng seeded from Options"},
      {"random_device", false, "use ddp::Rng seeded from Options"},
      {"time", true, "wall-clock input makes runs unreproducible"},
      {"system_clock", false, "wall-clock input makes runs unreproducible"},
  };
  for (const Banned& b : kBanned) {
    for (size_t pos : FindWord(f.code, b.word)) {
      if (b.call_only) {
        size_t after = SkipSpace(f.code, pos + std::strlen(b.word));
        if (after >= f.code.size() || f.code[after] != '(') continue;
      }
      AddFinding(out, f, pos, kRuleNondet,
                 std::string(b.word) + " is a banned nondeterminism source: " +
                     b.why);
    }
  }
}

// R5: span/metric names are literal, lowercase, dot/underscore-separated.
void CheckNameHygiene(const SourceFile& f, std::vector<Finding>* out) {
  static const std::vector<std::string> kApis = {
      "DDP_TRACE_SPAN",        "DDP_TRACE_SCOPE",
      "DDP_METRIC_COUNTER_ADD", "DDP_METRIC_HISTOGRAM_SECONDS",
      "DDP_METRIC_HISTOGRAM_RECORD", "GetCounter", "GetGauge", "GetHistogram"};
  const std::string& code = f.code;
  auto check_args = [&](size_t open, size_t close) {
    // Offsets agree between raw and code, so read literals from raw where the
    // scrubbed view is blank.
    for (size_t i = open; i < close; ++i) {
      if (f.raw[i] != '"') continue;
      size_t end = i + 1;
      while (end < close && f.raw[end] != '"') {
        if (f.raw[end] == '\\') ++end;
        ++end;
      }
      std::string lit = f.raw.substr(i + 1, end - i - 1);
      bool ok = !lit.empty();
      for (char c : lit) {
        if (!(islower(static_cast<unsigned char>(c)) ||
              isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '.')) {
          ok = false;
        }
      }
      if (!ok) {
        AddFinding(out, f, i, kRuleNames,
                   "span/metric name \"" + lit +
                       "\" must match [a-z0-9_.]+ so exported traces and "
                       "metric keys stay greppable and collator-safe");
      }
      i = end;
    }
  };
  for (const std::string& api : kApis) {
    for (size_t pos : FindWord(code, api)) {
      size_t open = SkipSpace(code, pos + api.size());
      if (open >= code.size() || code[open] != '(') continue;
      size_t close = MatchParen(code, open);
      if (close == std::string::npos) continue;
      check_args(open, close);
    }
  }
  // Direct obs::Span construction: "Span name(...)" with literal args.
  for (size_t pos : FindWord(code, "Span")) {
    size_t i = SkipSpace(code, pos + 4);
    std::string name = ReadIdent(code, i);
    if (!name.empty()) i = SkipSpace(code, i + name.size());
    if (i >= code.size() || code[i] != '(') continue;
    size_t close = MatchParen(code, i);
    if (close == std::string::npos) continue;
    check_args(i, close);
  }
}

// R6: headers must use #pragma once and must not open namespaces wholesale.
void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  if (!IsHeader(f.path)) return;
  if (f.code.find("#pragma once") == std::string::npos) {
    out->push_back({f.path, 1, std::string(kRuleHeader),
                    "header is missing #pragma once"});
  }
  for (size_t pos : FindWord(f.code, "using")) {
    size_t i = SkipSpace(f.code, pos + 5);
    if (f.code.compare(i, 9, "namespace") == 0) {
      AddFinding(out, f, pos, kRuleHeader,
                 "using namespace in a header leaks into every includer");
    }
  }
}

// R7: raw process-control and socket primitives are confined to
// src/mapreduce/, src/server/, and tools/ddp_worker.cc. In src/mapreduce/
// the worker supervisor owns the process lifecycle
// (spawn, heartbeat, kill, reap) and CommChannel owns the transport. A
// fork/kill/waitpid anywhere else escapes the crash-fault model: it creates
// children the supervisor will never reap, or signals pids whose ownership
// it cannot see. A raw socket/bind/connect bypasses the framed, CRC-trailed
// channel protocol and its reconnect semantics. src/server/ builds the
// serving daemon on those primitives and shares the exemption, as does
// tools/ddp_worker.cc — the worker subsystem's process entry point, which
// owns the lifecycle of the sibling workers it spawns for --workers N. Use
// the CommChannel/WorkerSupervisor API (or mr::CrashSelf in chaos tests)
// elsewhere.
void CheckProcessControl(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/mapreduce/") ||
      PathContains(f.path, "src/server/") ||
      PathContains(f.path, "tools/ddp_worker.cc")) {
    return;
  }
  static const std::vector<std::string> kCalls = {
      "fork",   "vfork",  "execl",       "execlp",       "execle",
      "execv",  "execvp", "execve",      "execvpe",      "kill",
      "killpg", "wait",   "waitpid",     "wait3",        "wait4",
      "waitid", "system", "posix_spawn", "posix_spawnp", "socket",
      "socketpair", "bind", "listen",    "connect",      "accept",
      "accept4",
  };
  for (const std::string& fn : kCalls) {
    for (size_t pos : FindWord(f.code, fn)) {
      size_t after = SkipSpace(f.code, pos + fn.size());
      if (after >= f.code.size() || f.code[after] != '(') continue;
      // Free calls only: cv.wait(lock) or queue->kill(id) are member
      // functions of unrelated types, not the POSIX primitives.
      bool member = (pos >= 1 && f.code[pos - 1] == '.') ||
                    (pos >= 2 && f.code[pos - 2] == '-' &&
                     f.code[pos - 1] == '>');
      if (member) continue;
      // Declarations, not calls: `void listen(int)` / `Status bind(...)`.
      // A call cannot be directly preceded by a type or identifier token —
      // unless that token is a statement keyword (`return connect(...)`).
      size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[before - 1]))) {
        --before;
      }
      if (before > 0) {
        const char prev = f.code[before - 1];
        if (prev == '*' || prev == '&') continue;  // `int* accept(`
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          size_t start = before;
          while (start > 0 &&
                 (std::isalnum(static_cast<unsigned char>(f.code[start - 1])) ||
                  f.code[start - 1] == '_')) {
            --start;
          }
          const std::string_view word(f.code.data() + start, before - start);
          static constexpr std::string_view kStmtKeywords[] = {
              "return", "throw", "case", "else", "do",
              "co_return", "co_await", "co_yield",
          };
          const bool keyword =
              std::find(std::begin(kStmtKeywords), std::end(kStmtKeywords),
                        word) != std::end(kStmtKeywords);
          if (!keyword) continue;
        }
      }
      AddFinding(out, f, pos, kRuleProcess,
                 fn +
                     "() outside src/mapreduce/, src/server/, or "
                     "tools/ddp_worker.cc; process lifecycle belongs to the "
                     "worker supervisor (use the CommChannel/WorkerSupervisor "
                     "API)");
    }
  }
}

// ---------------------------------------------------------------------------
// R8: serde symmetry.
// ---------------------------------------------------------------------------

namespace {

std::string FormatOps(const std::vector<SerdeOp>& ops) {
  std::string s;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) s += ", ";
    s += ops[i].kind;
    if (!ops[i].name.empty()) s += "(" + ops[i].name + ")";
  }
  return s;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string s;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) s += ", ";
    s += names[i];
  }
  return s;
}

// Field names that appear exactly once on each side; the relative order of
// these must agree. Loop bodies and length prefixes use side-local temps
// (n, e, i), which the once-on-both-sides filter drops naturally.
std::vector<std::string> CommonNames(const std::vector<SerdeOp>& a,
                                     const std::vector<SerdeOp>& b,
                                     const std::vector<SerdeOp>& order_of) {
  std::map<std::string, int> ca, cb;
  for (const SerdeOp& op : a) {
    if (!op.name.empty()) ++ca[op.name];
  }
  for (const SerdeOp& op : b) {
    if (!op.name.empty()) ++cb[op.name];
  }
  std::vector<std::string> out;
  for (const SerdeOp& op : order_of) {
    if (op.name.empty()) continue;
    auto ia = ca.find(op.name);
    auto ib = cb.find(op.name);
    if (ia != ca.end() && ia->second == 1 && ib != cb.end() &&
        ib->second == 1) {
      out.push_back(op.name);
    }
  }
  return out;
}

}  // namespace

void CheckSerdeSymmetry(const SourceFile& f, const FileIndex& idx,
                        std::vector<Finding>* out) {
  for (const CodecPair& pair : idx.codec_pairs) {
    const CodecFn& enc = pair.encode;
    const CodecFn& dec = pair.decode;
    std::vector<std::string> enc_kinds, dec_kinds;
    for (const SerdeOp& op : enc.ops) enc_kinds.push_back(op.kind);
    for (const SerdeOp& op : dec.ops) dec_kinds.push_back(op.kind);
    if (enc_kinds != dec_kinds) {
      AddFinding(out, f, dec.offset, kRuleSerde,
                 "codec for '" + enc.owner + "' is asymmetric: " + enc.fn +
                     "() writes [" + FormatOps(enc.ops) + "] but " + dec.fn +
                     "() reads [" + FormatOps(dec.ops) + "]");
      continue;
    }
    std::vector<std::string> enc_names = CommonNames(enc.ops, dec.ops, enc.ops);
    std::vector<std::string> dec_names = CommonNames(enc.ops, dec.ops, dec.ops);
    if (enc_names != dec_names) {
      AddFinding(out, f, dec.offset, kRuleSerde,
                 "codec for '" + enc.owner + "' reads fields out of order: " +
                     enc.fn + "() writes [" + JoinNames(enc_names) + "] but " +
                     dec.fn + "() reads [" + JoinNames(dec_names) + "]");
    }
  }
}

// ---------------------------------------------------------------------------
// R9: frame-switch exhaustiveness.
// ---------------------------------------------------------------------------

void CheckFrameExhaustive(const SourceFile& f, const FileIndex& idx,
                          const LintContext& ctx, std::vector<Finding>* out) {
  for (const SwitchStmt& sw : idx.switches) {
    // Only frame-protocol enums: a StatusCode or LogLevel switch may
    // legitimately collapse cases, but an unhandled frame type is a protocol
    // hole — a peer can send a frame the receiver silently mishandles.
    if (sw.enum_name != "MessageType" && sw.enum_name != "FrameType") {
      continue;
    }
    auto it = ctx.enums.find(sw.enum_name);
    if (it == ctx.enums.end()) continue;
    std::vector<std::string> missing;
    for (const std::string& e : it->second) {
      if (std::find(sw.cases.begin(), sw.cases.end(), e) == sw.cases.end()) {
        missing.push_back(e);
      }
    }
    if (missing.empty()) continue;
    if (sw.has_default) {
      AddFinding(out, f, sw.default_offset, kRuleFrame,
                 "default on a switch over " + sw.enum_name +
                     " hides unhandled frame types [" + JoinNames(missing) +
                     "]; handle them or annotate the default");
    } else {
      AddFinding(out, f, sw.offset, kRuleFrame,
                 "switch over " + sw.enum_name + " does not handle [" +
                     JoinNames(missing) +
                     "]; handle every frame type or add an annotated default");
    }
  }
}

// ---------------------------------------------------------------------------
// R10: lock held across blocking calls.
// ---------------------------------------------------------------------------

void CheckLockAcrossBlocking(const SourceFile& f, std::vector<Finding>* out) {
  const std::string& code = f.code;
  // Variables of SpillFileWriter type declared in this file; member calls on
  // them do disk I/O (and can stall on a full disk or slow volume).
  std::set<std::string> spill_vars;
  for (size_t pos : FindWord(code, "SpillFileWriter")) {
    size_t i = SkipSpace(code, pos + std::strlen("SpillFileWriter"));
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      i = SkipSpace(code, i + 1);
    }
    std::string name = ReadIdent(code, i);
    if (!name.empty()) spill_vars.insert(name);
  }
  for (const char* kw : {"lock_guard", "unique_lock", "scoped_lock"}) {
    for (size_t pos : FindWord(code, kw)) {
      size_t i = SkipSpace(code, pos + std::strlen(kw));
      if (i < code.size() && code[i] == '<') {
        i = SkipAngles(code, i);
        if (i == std::string::npos) continue;
        i = SkipSpace(code, i);
      }
      std::string var = ReadIdent(code, i);
      if (var.empty()) continue;
      size_t open = SkipSpace(code, i + var.size());
      if (open >= code.size() || code[open] != '(') continue;
      size_t close = MatchParen(code, open);
      if (close == std::string::npos) continue;
      // std::defer_lock means the guard does not hold the mutex here.
      if (code.substr(open, close - open).find("defer_lock") !=
          std::string::npos) {
        continue;
      }
      auto scope = EnclosingBlock(code, pos);
      size_t region_end = scope.second;
      // An explicit early release ends the critical section.
      for (size_t vp : FindWord(code, var, close, scope.second)) {
        if (vp + var.size() < code.size() && code[vp + var.size()] == '.') {
          std::string m = ReadIdent(code, vp + var.size() + 1);
          if (m == "unlock" || m == "release") {
            region_end = vp;
            break;
          }
        }
      }
      auto report = [&](size_t at, const std::string& what) {
        AddFinding(out, f, at, kRuleLock,
                   "lock '" + var + "' is held across blocking " + what +
                       "; move the I/O outside the critical section or "
                       "annotate why holding is required");
      };
      // Channel I/O: member Send/Recv/Accept calls.
      for (const char* m : {"Send", "Recv", "Accept"}) {
        for (size_t mp : FindWord(code, m, close, region_end)) {
          bool member =
              (mp >= 1 && code[mp - 1] == '.') ||
              (mp >= 2 && code[mp - 2] == '-' && code[mp - 1] == '>');
          if (!member) continue;
          size_t a = SkipSpace(code, mp + std::strlen(m));
          if (a < code.size() && code[a] == '(') {
            report(mp, std::string(m) + "()");
          }
        }
      }
      // Raw socket waits: ::connect / ::accept.
      for (const char* c2 : {"connect", "accept"}) {
        for (size_t mp : FindWord(code, c2, close, region_end)) {
          if (!(mp >= 2 && code[mp - 1] == ':' && code[mp - 2] == ':')) {
            continue;
          }
          size_t a = SkipSpace(code, mp + std::strlen(c2));
          if (a < code.size() && code[a] == '(') {
            report(mp, std::string("::") + c2 + "()");
          }
        }
      }
      // Spill writes: any member call on a SpillFileWriter variable.
      for (const std::string& sv : spill_vars) {
        for (size_t vp : FindWord(code, sv, close, region_end)) {
          size_t a = vp + sv.size();
          size_t m_at = 0;
          if (a < code.size() && code[a] == '.') {
            m_at = a + 1;
          } else if (a + 1 < code.size() && code[a] == '-' &&
                     code[a + 1] == '>') {
            m_at = a + 2;
          } else {
            continue;
          }
          std::string m = ReadIdent(code, m_at);
          size_t b = SkipSpace(code, m_at + m.size());
          if (!m.empty() && b < code.size() && code[b] == '(') {
            report(vp, "SpillFileWriter::" + m + "()");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R11: name-registry drift.
// ---------------------------------------------------------------------------

namespace {

// Metric literals are checked only when they look like complete names
// (at least one interior dot); concatenation fragments like "server.job."
// and ".mr_jobs" are built up dynamically and cannot be resolved statically.
bool LooksLikeFullMetricName(const std::string& lit) {
  if (lit.find('.') == std::string::npos) return false;
  if (lit.front() == '.' || lit.back() == '.') return false;
  return true;
}

}  // namespace

void CheckNameRegistry(const SourceFile& f, const FileIndex& idx,
                       const LintContext& ctx, std::vector<Finding>* out) {
  if (!ctx.registry.present) return;
  if (!PathContains(f.path, "src/")) return;
  if (PathContains(f.path, "metric_names.h")) return;
  for (const NameSite& site : idx.name_sites) {
    for (const auto& [lit, offset] : site.literals) {
      if (site.kind == NameSite::Kind::kMetric) {
        if (!LooksLikeFullMetricName(lit)) continue;
        if (!ctx.registry.HasMetric(lit)) {
          AddFinding(out, f, offset, kRuleRegistry,
                     "metric name \"" + lit +
                         "\" is not in the metric-name registry; register it "
                         "and reference the constant");
        }
      } else {
        if (!ctx.registry.HasSpanOrCategory(lit)) {
          AddFinding(out, f, offset, kRuleRegistry,
                     "span name \"" + lit +
                         "\" is not a registered span name or category; "
                         "register it and reference the constant");
        }
      }
    }
    for (const auto& [ident, offset] : site.idents) {
      if (!ctx.registry.HasConstant(ident)) {
        AddFinding(out, f, offset, kRuleRegistry,
                   "'" + ident +
                       "' is not defined in the metric-name registry");
      }
    }
  }
}

void CheckRegistryDocDrift(const LintContext& ctx, std::vector<Finding>* out) {
  if (!ctx.registry.present || !ctx.doc.present) return;
  const NameRegistry& reg = ctx.registry;
  const DocNames& doc = ctx.doc;
  for (const RegistryEntry& e : reg.metrics) {
    if (!doc.HasMetric(e.literal)) {
      out->push_back({reg.path, e.line, std::string(kRuleRegistry),
                      "registry metric \"" + e.literal +
                          "\" is missing from the observability doc"});
    }
  }
  for (const RegistryEntry& e : reg.spans) {
    if (!doc.HasSpan(e.literal)) {
      out->push_back({reg.path, e.line, std::string(kRuleRegistry),
                      "registry span \"" + e.literal +
                          "\" is missing from the observability doc"});
    }
  }
  for (const RegistryEntry& e : reg.categories) {
    if (!doc.HasCategory(e.literal)) {
      out->push_back({reg.path, e.line, std::string(kRuleRegistry),
                      "registry category \"" + e.literal +
                          "\" is missing from the observability doc"});
    }
  }
  for (const auto& [name, line] : doc.metrics) {
    if (!reg.HasMetric(name)) {
      out->push_back({doc.path, line, std::string(kRuleRegistry),
                      "documented metric \"" + name +
                          "\" has no registry constant"});
    }
  }
  for (const auto& [name, line] : doc.span_names) {
    bool known = false;
    for (const RegistryEntry& e : reg.spans) {
      if (e.literal == name) known = true;
    }
    if (!known) {
      out->push_back({doc.path, line, std::string(kRuleRegistry),
                      "documented span \"" + name +
                          "\" has no registry constant"});
    }
  }
  for (const auto& [name, line] : doc.categories) {
    bool known = false;
    for (const RegistryEntry& e : reg.categories) {
      if (e.literal == name) known = true;
    }
    if (!known) {
      out->push_back({doc.path, line, std::string(kRuleRegistry),
                      "documented category \"" + name +
                          "\" has no registry constant"});
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file driver: rules, then suppression filtering.
// ---------------------------------------------------------------------------

void LintFile(SourceFile& f, const FileIndex& idx, const LintContext& ctx,
              std::vector<Finding>* findings) {
  std::vector<Finding> raw;
  SymbolInfo info;
  CollectSymbols(f, &info);
  CheckNoRawSqrt(f, &raw);
  CheckOrderedEmission(f, info, &raw);
  CheckExplicitMemoryOrder(f, info, &raw);
  CheckBannedNondeterminism(f, &raw);
  CheckNameHygiene(f, &raw);
  CheckHeaderHygiene(f, &raw);
  CheckProcessControl(f, &raw);
  CheckSerdeSymmetry(f, idx, &raw);
  CheckFrameExhaustive(f, idx, ctx, &raw);
  CheckLockAcrossBlocking(f, &raw);
  CheckNameRegistry(f, idx, ctx, &raw);

  // Apply suppressions: same line or the line above, matching rule id, with
  // a written reason.
  for (Finding& fd : raw) {
    bool suppressed = false;
    for (Suppression& s : f.suppressions) {
      if (s.rule != fd.rule) continue;
      if (fd.line < s.target_line || fd.line > s.target_end) continue;
      if (!s.has_reason) continue;
      s.used = true;
      suppressed = true;
    }
    if (!suppressed) findings->push_back(std::move(fd));
  }
  for (const Suppression& s : f.suppressions) {
    if (!s.has_reason) {
      findings->push_back(
          {f.path, s.line, std::string(kRuleNoReason),
           "allow(" + s.rule +
               ") has no '-- <reason>'; suppressions must say why"});
    } else if (!s.used) {
      findings->push_back({f.path, s.line, std::string(kRuleUnused),
                           "allow(" + s.rule +
                               ") suppresses nothing on its target line; "
                               "remove it"});
    }
  }
}

}  // namespace ddp_lint

#include "lint/lexer.h"

#include <cctype>

namespace ddp_lint {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Two-character operators the structural rules care about. Everything else
// is emitted one character at a time; rules never need to distinguish, say,
// "<<" from two "<" tokens except where these appear.
bool IsTwoCharOp(char a, char b) {
  if (a == ':' && b == ':') return true;
  if (a == '-' && b == '>') return true;
  if (a == '+' && b == '+') return true;
  if (a == '-' && b == '-') return true;
  if (a == '=' && b == '=') return true;
  if (a == '!' && b == '=') return true;
  if (a == '<' && b == '=') return true;
  if (a == '>' && b == '=') return true;
  if (a == '&' && b == '&') return true;
  if (a == '|' && b == '|') return true;
  if (a == '+' && b == '=') return true;
  if (a == '-' && b == '=') return true;
  return false;
}

}  // namespace

std::vector<Token> Lex(const SourceFile& f) {
  const std::string& code = f.code;
  std::vector<Token> out;
  for (size_t i = 0; i < code.size();) {
    char c = code[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentChar(c) && !IsDigit(c)) {
      size_t start = i;
      while (i < code.size() && IsIdentChar(code[i])) ++i;
      Token t;
      t.kind = Token::Kind::kIdent;
      t.text = code.substr(start, i - start);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (IsDigit(c)) {
      size_t start = i;
      // Good enough for C++ numeric tokens in this codebase: digits, hex,
      // exponents, suffixes, and digit separators all read as one blob.
      while (i < code.size() &&
             (IsIdentChar(code[i]) || code[i] == '.' || code[i] == '\'' ||
              ((code[i] == '+' || code[i] == '-') && i > start &&
               (code[i - 1] == 'e' || code[i - 1] == 'E' ||
                code[i - 1] == 'p' || code[i - 1] == 'P')))) {
        ++i;
      }
      Token t;
      t.kind = Token::Kind::kNumber;
      t.text = code.substr(start, i - start);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      // The scrubber kept the quotes and blanked the contents; the literal
      // text lives at the same offsets in `raw`. Escapes were blanked too,
      // so the closing quote in `code` is the real terminator.
      size_t end = i + 1;
      while (end < code.size() && code[end] != '"') ++end;
      Token t;
      t.kind = Token::Kind::kString;
      if (end < f.raw.size()) t.value = f.raw.substr(i + 1, end - i - 1);
      t.offset = i;
      out.push_back(std::move(t));
      i = end < code.size() ? end + 1 : end;
      continue;
    }
    if (c == '\'') {
      size_t end = i + 1;
      while (end < code.size() && code[end] != '\'') ++end;
      Token t;
      t.kind = Token::Kind::kChar;
      t.offset = i;
      out.push_back(std::move(t));
      i = end < code.size() ? end + 1 : end;
      continue;
    }
    Token t;
    t.kind = Token::Kind::kPunct;
    t.offset = i;
    if (i + 1 < code.size() && IsTwoCharOp(c, code[i + 1])) {
      t.text = code.substr(i, 2);
      i += 2;
    } else {
      t.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(t));
  }
  return out;
}

size_t TokenAtOrAfter(const std::vector<Token>& tokens, size_t offset) {
  size_t lo = 0, hi = tokens.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (tokens[mid].offset < offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

size_t MatchTok(const std::vector<Token>& tokens, size_t i, const char* open,
                const char* close) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kPunct) continue;
    if (tokens[i].text == open) ++depth;
    if (tokens[i].text == close && --depth == 0) return i + 1;
  }
  return tokens.size();
}

}  // namespace

size_t MatchParenTok(const std::vector<Token>& tokens, size_t i) {
  return MatchTok(tokens, i, "(", ")");
}

size_t MatchBraceTok(const std::vector<Token>& tokens, size_t i) {
  return MatchTok(tokens, i, "{", "}");
}

size_t MatchAngleTok(const std::vector<Token>& tokens, size_t i) {
  return MatchTok(tokens, i, "<", ">");
}

}  // namespace ddp_lint
